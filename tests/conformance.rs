//! Runs the backend-conformance suite (`common::conformance`) against
//! every `LanguageModel` wrapper in the repository: the blocking
//! `ResilientBackend`, the event-driven `Dispatcher`, and the
//! multi-endpoint `RoutedBackend`.
//!
//! Each wrapper supplies one [`Factory`] translating the suite's
//! [`Scenario`] knobs into its own configuration; the suite then holds
//! all three to the same invariants — determinism under faults, permanent
//! error propagation, no memoized errors, rate-token exactness, and
//! exact commutative stats merging. A future wrapper earns the same
//! coverage by adding a factory and a `conformance_suite!` line.

mod common;

use common::conformance::{self as conf, BackendUnderTest, Scenario};
use unidm::backend::{BackendConfig, BackendStats, ResilientBackend};
use unidm::dispatch::Dispatcher;
use unidm::route::{AimdPolicy, RoutePlan, RoutedBackend};
use unidm_llm::LanguageModel;

struct Resilient<'a>(ResilientBackend<'a>);

impl BackendUnderTest for Resilient<'_> {
    fn model(&self) -> &dyn LanguageModel {
        &self.0
    }
    fn stats(&self) -> BackendStats {
        self.0.stats()
    }
}

struct Dispatched<'a>(Dispatcher<'a>);

impl BackendUnderTest for Dispatched<'_> {
    fn model(&self) -> &dyn LanguageModel {
        &self.0
    }
    fn stats(&self) -> BackendStats {
        self.0.stats()
    }
}

struct Routed<'a>(RoutedBackend<'a>);

impl BackendUnderTest for Routed<'_> {
    fn model(&self) -> &dyn LanguageModel {
        &self.0
    }
    fn stats(&self) -> BackendStats {
        self.0.backend_stats()
    }
}

fn base_config(s: Scenario) -> BackendConfig {
    let mut config = BackendConfig::resilient(s.seed);
    if let Some(faults) = s.faults {
        config = config.with_faults(faults);
    }
    if let Some((per_sec, burst)) = s.rate {
        config = config.with_rate_limit(per_sec, burst);
    }
    config
}

fn resilient(inner: &dyn LanguageModel, s: Scenario) -> Box<dyn BackendUnderTest + '_> {
    Box::new(Resilient(ResilientBackend::new(inner, base_config(s))))
}

fn dispatched(inner: &dyn LanguageModel, s: Scenario) -> Box<dyn BackendUnderTest + '_> {
    Box::new(Dispatched(Dispatcher::new(
        inner,
        base_config(s).with_pipelined(),
    )))
}

fn routed(inner: &dyn LanguageModel, s: Scenario) -> Box<dyn BackendUnderTest + '_> {
    // The suite's rate knob maps onto per-endpoint buckets: two replicas,
    // each a fixed (non-adaptive) AIMD bucket at the scenario's rate.
    let mut plan = RoutePlan::replicas(2);
    if let Some((per_sec, burst)) = s.rate {
        plan = plan.with_aimd(AimdPolicy::fixed(per_sec, burst));
    }
    Box::new(Routed(RoutedBackend::from_plan(
        inner,
        base_config(s).with_route(plan),
    )))
}

macro_rules! conformance_suite {
    ($name:ident, $factory:path) => {
        mod $name {
            use super::*;

            #[test]
            fn determinism_and_transparency() {
                conf::check_determinism_and_transparency($factory, stringify!($name));
            }

            #[test]
            fn error_propagation() {
                conf::check_error_propagation($factory, stringify!($name));
            }

            #[test]
            fn no_memoized_errors() {
                conf::check_no_memoized_errors($factory, stringify!($name));
            }

            #[test]
            fn rate_token_exactness() {
                conf::check_rate_token_exactness($factory, stringify!($name));
            }

            #[test]
            fn stats_merge_commutativity() {
                conf::check_stats_merge_commutativity($factory, stringify!($name));
            }
        }
    };
}

conformance_suite!(resilient_backend, super::resilient);
conformance_suite!(dispatcher, super::dispatched);
conformance_suite!(routed_backend, super::routed);
