//! Acceptance tests for single-flight request coalescing: a
//! duplicate-heavy workload across 1/2/8 workers must issue **exactly
//! one** endpoint call per unique canonical key, produce answers
//! bit-identical to serial, and report exact `CacheStats` — including the
//! new `coalesced` counter, pinned precisely under a forced-overlap
//! schedule.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use unidm::{BatchRunner, CanonLevel, PipelineConfig, PromptCache, Task};
use unidm_llm::{Completion, LanguageModel, LlmError, LlmProfile, MockLlm, Usage};
use unidm_synthdata::imputation;
use unidm_tablestore::DataLake;
use unidm_world::World;

/// Wraps a model and counts endpoint calls per prompt — the ground truth
/// for "exactly one call per unique canonical key".
struct CountingModel<'a> {
    inner: &'a MockLlm,
    calls: Mutex<HashMap<String, usize>>,
}

impl<'a> CountingModel<'a> {
    fn new(inner: &'a MockLlm) -> Self {
        CountingModel {
            inner,
            calls: Mutex::new(HashMap::new()),
        }
    }

    fn per_prompt_calls(&self) -> HashMap<String, usize> {
        self.calls.lock().unwrap().clone()
    }
}

impl LanguageModel for CountingModel<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, prompt: &str) -> Result<Arc<Completion>, LlmError> {
        *self
            .calls
            .lock()
            .unwrap()
            .entry(prompt.to_string())
            .or_insert(0) += 1;
        self.inner.complete(prompt)
    }

    fn usage(&self) -> Usage {
        self.inner.usage()
    }

    fn reset_usage(&self) {
        self.inner.reset_usage();
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }
}

fn duplicate_heavy_workload() -> (MockLlm, DataLake, Vec<Task>) {
    let world = World::generate(1301);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 1301);
    let ds = imputation::restaurant(&world, 1301, 12);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let base: Vec<Task> = ds
        .targets
        .iter()
        .map(|t| {
            Task::imputation(
                ds.table.name(),
                t.row,
                ds.target_attr.clone(),
                ds.key_attr.clone(),
            )
        })
        .collect();
    // Each task four times, interleaved: the duplicate-heavy shape.
    let tasks = (0..base.len() * 4)
        .map(|i| base[i % base.len()].clone())
        .collect();
    (llm, lake, tasks)
}

#[test]
fn one_endpoint_call_per_unique_canonical_key_across_worker_counts() {
    let (llm, lake, tasks) = duplicate_heavy_workload();
    let config = PipelineConfig::paper_default().with_seed(1301);

    // Serial reference with the dedup planner off: every duplicate task
    // runs, so the cache sees the full duplicate-heavy lookup stream and
    // its miss count is the number of unique canonical keys.
    let serial_model = CountingModel::new(&llm);
    let serial_cache =
        PromptCache::unbounded(&serial_model).with_canonicalization(CanonLevel::TableStem);
    let serial_answers = BatchRunner::new(&serial_cache, config)
        .with_workers(1)
        .with_dedup(false)
        .answers(&lake, &tasks);
    let serial_stats = serial_cache.stats();
    let unique_keys = serial_stats.misses;
    assert!(unique_keys > 0);
    assert_eq!(serial_stats.coalesced, 0, "serial runs can never coalesce");
    for (prompt, calls) in serial_model.per_prompt_calls() {
        assert_eq!(calls, 1, "serial: duplicate call for {prompt:?}");
    }

    for workers in [2usize, 8] {
        let model = CountingModel::new(&llm);
        let cache = PromptCache::unbounded(&model).with_canonicalization(CanonLevel::TableStem);
        let answers = BatchRunner::new(&cache, config)
            .with_workers(workers)
            .with_dedup(false)
            .answers(&lake, &tasks);
        assert_eq!(
            answers, serial_answers,
            "{workers} workers: answers must be bit-identical to serial"
        );
        let per_prompt = model.per_prompt_calls();
        assert_eq!(
            per_prompt.len(),
            unique_keys,
            "{workers} workers: endpoint must see exactly the unique canonical keys"
        );
        for (prompt, calls) in per_prompt {
            assert_eq!(
                calls, 1,
                "{workers} workers: single-flight must fold duplicate calls for {prompt:?}"
            );
        }
        let stats = cache.stats();
        assert_eq!(
            stats.misses, unique_keys,
            "{workers} workers: misses count leaders only, one per unique key"
        );
        assert_eq!(
            stats.lookups(),
            serial_stats.lookups(),
            "{workers} workers: total lookups are schedule-independent"
        );
        assert_eq!(
            stats.hits + stats.coalesced,
            serial_stats.hits,
            "{workers} workers: every duplicate lookup is served without an endpoint call"
        );
        assert_eq!(
            stats.tokens_saved, serial_stats.tokens_saved,
            "{workers} workers: tokens saved are exact whatever the hit/coalesce split"
        );
    }
}

/// A model whose completions block until the test opens the gate — this
/// pins the coalesced counter exactly: with the leader parked inside the
/// endpoint, every other thread *must* join its in-flight slot.
struct GateModel<'a> {
    inner: &'a MockLlm,
    open: Mutex<bool>,
    opened: Condvar,
    calls: AtomicUsize,
    fail: bool,
}

impl<'a> GateModel<'a> {
    fn new(inner: &'a MockLlm, fail: bool) -> Self {
        GateModel {
            inner,
            open: Mutex::new(false),
            opened: Condvar::new(),
            calls: AtomicUsize::new(0),
            fail,
        }
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.opened.notify_all();
    }

    fn calls(&self) -> usize {
        self.calls.load(Ordering::SeqCst)
    }
}

impl LanguageModel for GateModel<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, prompt: &str) -> Result<Arc<Completion>, LlmError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.opened.wait(open).unwrap();
        }
        drop(open);
        if self.fail {
            return Err(LlmError::Transient { status: 503 });
        }
        self.inner.complete(prompt)
    }

    fn usage(&self) -> Usage {
        self.inner.usage()
    }

    fn reset_usage(&self) {
        self.inner.reset_usage();
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }
}

fn spin_until(deadline: Duration, mut done: impl FnMut() -> bool) {
    let start = Instant::now();
    while !done() {
        assert!(
            start.elapsed() < deadline,
            "condition not reached within {deadline:?}"
        );
        std::thread::yield_now();
    }
}

#[test]
fn forced_overlap_pins_the_coalesced_counter_exactly() {
    const FOLLOWERS: usize = 5;
    let world = World::generate(7);
    let inner = MockLlm::new(&world, LlmProfile::gpt3_175b(), 7);
    let gate = GateModel::new(&inner, false);
    let cache = PromptCache::unbounded(&gate);
    let prompt = "the capital of Denmark is __.";

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..1 + FOLLOWERS {
            handles.push(scope.spawn(|| cache.complete(prompt).unwrap()));
        }
        // The leader is parked inside the endpoint; every follower must
        // have joined its slot before we open the gate — so the coalesced
        // count is exact, not a race.
        spin_until(Duration::from_secs(10), || {
            cache.stats().coalesced == FOLLOWERS
        });
        assert_eq!(gate.calls(), 1, "only the leader may reach the endpoint");
        gate.open();
        let replies: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for reply in &replies {
            assert_eq!(reply, &replies[0], "all callers share one completion");
        }
    });

    let stats = cache.stats();
    assert_eq!(
        (stats.misses, stats.coalesced, stats.hits),
        (1, FOLLOWERS, 0),
        "exact stats under the forced overlap"
    );
    assert_eq!(gate.calls(), 1, "exactly one endpoint call in total");
    // Follow-up lookups are plain hits.
    cache.complete(prompt).unwrap();
    assert_eq!(cache.stats().hits, 1);
}

#[test]
fn leader_errors_propagate_to_coalesced_waiters_and_are_not_memoized() {
    const FOLLOWERS: usize = 3;
    let world = World::generate(7);
    let inner = MockLlm::new(&world, LlmProfile::gpt3_175b(), 7);
    let gate = GateModel::new(&inner, true);
    let cache = PromptCache::unbounded(&gate);
    let prompt = "doomed prompt";

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..1 + FOLLOWERS {
            handles.push(scope.spawn(|| cache.complete(prompt)));
        }
        spin_until(Duration::from_secs(10), || {
            cache.stats().coalesced == FOLLOWERS
        });
        gate.open();
        for handle in handles {
            assert_eq!(
                handle.join().unwrap(),
                Err(LlmError::Transient { status: 503 }),
                "waiters share the leader's error"
            );
        }
    });
    assert_eq!(gate.calls(), 1, "the error cost one endpoint call, not 4");
    assert!(cache.is_empty(), "errors must not be memoized");
    // The slot was cleared: a retry reaches the endpoint again.
    let _ = cache.complete(prompt);
    assert_eq!(gate.calls(), 2, "retry after error leads afresh");
}
