//! Acceptance tests for the cache-aware prompting subsystem:
//! canonicalized keys must lift the imputation-workload hit rate an order
//! of magnitude (≥ 20%, up from ~2% verbatim), snapshots must warm-start a
//! second run so it reports cache hits before any model call, sharded
//! statistics must stay exact under seeded concurrent access, and
//! serial/parallel answers must remain bit-for-bit identical with
//! canonicalization on.

use unidm::{BatchRunner, CanonLevel, PipelineConfig, PromptCache, Task};
use unidm_llm::{LanguageModel, LlmProfile, MockLlm, Usage};
use unidm_synthdata::imputation;
use unidm_tablestore::DataLake;
use unidm_world::World;

const WORKLOAD: usize = 60;

fn workload() -> (World, MockLlm, DataLake, Vec<Task>) {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    let ds = imputation::restaurant(&world, 42, WORKLOAD);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let tasks: Vec<Task> = ds
        .targets
        .iter()
        .map(|t| {
            Task::imputation(
                ds.table.name(),
                t.row,
                ds.target_attr.clone(),
                ds.key_attr.clone(),
            )
        })
        .collect();
    (world, llm, lake, tasks)
}

fn canonical_cache<'a>(llm: &'a dyn LanguageModel) -> PromptCache<'a> {
    PromptCache::unbounded(llm).with_canonicalization(CanonLevel::TableStem)
}

#[test]
fn canonicalization_lifts_imputation_hit_rate_to_at_least_20_percent() {
    let (_, llm, lake, tasks) = workload();
    let config = PipelineConfig::paper_default().with_seed(42);

    // Verbatim baseline: the ~2% regime the roadmap documents.
    let verbatim = PromptCache::unbounded(&llm);
    BatchRunner::new(&verbatim, config).run(&lake, &tasks);
    let verbatim_rate = verbatim.stats().hit_rate();
    assert!(
        verbatim_rate < 0.10,
        "verbatim baseline unexpectedly high: {verbatim_rate:.3}"
    );

    // Canonicalized: per-row retrieval preambles fold into table-level
    // entries, lifting the hit rate an order of magnitude.
    let canonical = canonical_cache(&llm);
    BatchRunner::new(&canonical, config).run(&lake, &tasks);
    let canonical_rate = canonical.stats().hit_rate();
    assert!(
        canonical_rate >= 0.20,
        "canonicalized hit rate must reach 20%: got {canonical_rate:.3}"
    );
    assert!(
        canonical_rate >= verbatim_rate * 5.0,
        "canonicalization should be an order-of-magnitude lift: \
         {verbatim_rate:.3} -> {canonical_rate:.3}"
    );
}

#[test]
fn serial_and_parallel_stay_identical_with_canonicalization_on() {
    let (_, llm, lake, tasks) = workload();
    let config = PipelineConfig::paper_default().with_seed(42);
    let cache = canonical_cache(&llm);
    let runner = BatchRunner::new(&cache, config);
    let serial = runner.with_workers(1).run(&lake, &tasks);
    let parallel = runner.with_workers(8).run(&lake, &tasks);
    for (s, p) in serial.iter().zip(&parallel) {
        let s = s.as_ref().expect("serial ok");
        let p = p.as_ref().expect("parallel ok");
        assert_eq!(s.answer, p.answer, "answers must not depend on scheduling");
        assert_eq!(s.usage, p.usage, "usage must not depend on scheduling");
    }
}

#[test]
fn snapshot_warm_starts_a_second_eval_run_before_any_model_call() {
    let (world, llm, lake, tasks) = workload();
    let config = PipelineConfig::paper_default().with_seed(42);
    let path = std::env::temp_dir().join(format!(
        "unidm-cache-persistence-{}.promptcache",
        std::process::id()
    ));

    // Cold run: populate and persist.
    let cold_cache = canonical_cache(&llm);
    let cold = BatchRunner::new(&cold_cache, config).run(&lake, &tasks);
    let cold_model_tokens = llm.usage().total();
    assert!(cold_model_tokens > 0);
    cold_cache.save_to(&path).expect("snapshot saves");

    // Warm run: a fresh model + cache restored from the snapshot. The
    // first completions are hits — the model is never consulted.
    let fresh_llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    let warm_cache = canonical_cache(&fresh_llm);
    let loaded = warm_cache.load_from(&path).expect("snapshot restores");
    assert!(loaded > 0, "warm run must restore entries");
    assert_eq!(fresh_llm.usage(), Usage::default(), "restore is model-free");

    let warm = BatchRunner::new(&warm_cache, config).run(&lake, &tasks);
    let warm_stats = warm_cache.stats();
    assert!(warm_stats.hits > 0, "warm run must report cache hits");
    assert_eq!(
        fresh_llm.usage(),
        Usage::default(),
        "a fully warm run answers every prompt before any model call"
    );
    assert_eq!(warm_stats.misses, 0, "nothing should miss on a warm replay");

    // Bit-for-bit agreement between the cold and warm runs.
    for (c, w) in cold.iter().zip(&warm) {
        let c = c.as_ref().expect("cold ok");
        let w = w.as_ref().expect("warm ok");
        assert_eq!(c.answer, w.answer);
        assert_eq!(c.usage, w.usage);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn snapshot_text_is_deterministic_across_identical_runs() {
    let (_, llm, lake, tasks) = workload();
    let config = PipelineConfig::paper_default().with_seed(42);
    let snapshots: Vec<String> = (0..2)
        .map(|_| {
            let cache = canonical_cache(&llm);
            BatchRunner::new(&cache, config).run(&lake, &tasks);
            cache.snapshot()
        })
        .collect();
    assert_eq!(snapshots[0], snapshots[1]);
}

#[test]
fn sharded_stats_stay_exact_under_seeded_concurrent_access() {
    // Eight threads hammer one sharded cache with disjoint prompt sets in
    // seeded deterministic orders; afterwards every counter must be exact:
    // one miss per distinct prompt, one hit per repeat, and tokens_saved
    // equal to the sum of the memoized usages of all hits.
    const THREADS: usize = 8;
    const DISTINCT: usize = 12;
    const REPEATS: usize = 5;

    let world = World::generate(7);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 7);
    let cache = PromptCache::unbounded(&llm).with_shards(4);

    // Pre-compute each prompt's usage on a reference model so the
    // expected tokens_saved is known exactly.
    let reference = MockLlm::new(&world, LlmProfile::gpt3_175b(), 7);
    let mut expected_saved = 0usize;
    let mut prompts: Vec<Vec<String>> = Vec::new();
    for t in 0..THREADS {
        let mine: Vec<String> = (0..DISTINCT)
            .map(|i| format!("worker {t} asks deterministic question number {i}"))
            .collect();
        for p in &mine {
            let usage = reference.complete(p).expect("reference completes").usage;
            expected_saved += usage.total() * (REPEATS - 1);
        }
        prompts.push(mine);
    }

    std::thread::scope(|scope| {
        for mine in &prompts {
            let cache = &cache;
            scope.spawn(move || {
                // Seeded deterministic interleaving: pass r visits the
                // prompts at stride r+1 (coprime orders vary the schedule
                // without randomness).
                for r in 0..REPEATS {
                    let stride = r + 1;
                    for k in 0..DISTINCT {
                        let p = &mine[(k * stride) % DISTINCT];
                        cache.complete(p).expect("completes");
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    let lookups = THREADS * DISTINCT * REPEATS;
    assert_eq!(stats.hits + stats.misses, lookups, "every lookup counted");
    // Prompt sets are disjoint across threads, so no cross-thread race on
    // one key: exactly one miss per distinct prompt.
    assert_eq!(stats.misses, THREADS * DISTINCT);
    assert_eq!(stats.hits, lookups - THREADS * DISTINCT);
    assert_eq!(stats.evictions, 0, "unbounded cache must not evict");
    assert_eq!(stats.tokens_saved, expected_saved, "saved tokens exact");
    assert_eq!(cache.len(), THREADS * DISTINCT);

    // Per-shard stats fold exactly into the aggregate.
    let mut folded = unidm::CacheStats::default();
    for s in cache.shard_stats() {
        folded.merge(s);
    }
    assert_eq!(folded, stats);
}

#[test]
fn stats_remain_consistent_when_threads_race_on_one_key() {
    // All threads fight over the same prompts. Double-misses are legal
    // (both racers pay the model), but the ledger must still balance and
    // the map must converge to one entry per distinct prompt.
    const THREADS: usize = 8;
    const ROUNDS: usize = 20;
    let world = World::generate(7);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 7);
    let cache = PromptCache::unbounded(&llm).with_shards(2);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let cache = &cache;
            scope.spawn(move || {
                for r in 0..ROUNDS {
                    cache
                        .complete(&format!("contended prompt {}", r % 3))
                        .expect("completes");
                }
            });
        }
    });
    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses, THREADS * ROUNDS);
    assert!(
        stats.misses >= 3,
        "each distinct prompt misses at least once"
    );
    assert_eq!(
        cache.len(),
        3,
        "racing inserts must converge to one entry each"
    );
}
