//! Robustness tests for `.promptcache` snapshots: corrupt documents must
//! surface a clean [`SnapshotError`] (never panic) and leave the cache
//! untouched, compaction must bound persisted state at the configured
//! capacity (keeping the most recently used entries) and round-trip, and
//! repeated eval scenario runs must not grow the snapshot file without
//! bound.

use unidm::exec::SNAPSHOT_HEADER;
use unidm::{CanonLevel, PromptCache, SnapshotError};
use unidm_eval::CacheConfig;
use unidm_llm::{LanguageModel, LlmProfile, MockLlm, Usage};
use unidm_world::World;

fn llm() -> MockLlm {
    MockLlm::new(&World::generate(7), LlmProfile::gpt3_175b(), 7)
}

/// A populated cache plus its snapshot text.
fn populated<'a>(model: &'a MockLlm) -> (PromptCache<'a>, String) {
    let cache = PromptCache::unbounded(model);
    for prompt in [
        "alpha prompt",
        "beta prompt\nwith a second line",
        "gamma prompt with \\ escapes",
    ] {
        cache.complete(prompt).unwrap();
    }
    let snapshot = cache.snapshot();
    (cache, snapshot)
}

/// Asserts that restoring `doc` into a pre-populated cache fails cleanly
/// and changes nothing: same length, same entries, still serving hits
/// without model calls.
fn assert_rejected_and_untouched(doc: &str, expect_parse: bool) {
    let model = llm();
    let (cache, _) = populated(&model);
    let len_before = cache.len();
    let snapshot_before = cache.snapshot();
    let err = cache.restore(doc).expect_err("corrupt snapshot must fail");
    match (&err, expect_parse) {
        (SnapshotError::Parse { .. }, true) | (SnapshotError::ModelMismatch { .. }, false) => {}
        _ => panic!("unexpected error class for {doc:?}: {err}"),
    }
    // Errors must be printable (callers log them) and carry a source chain
    // that terminates.
    assert!(!err.to_string().is_empty());
    assert_eq!(cache.len(), len_before, "failed restore must not admit");
    assert_eq!(
        cache.snapshot(),
        snapshot_before,
        "failed restore must not mutate existing entries"
    );
    let usage_before = model.usage();
    cache.complete("alpha prompt").unwrap();
    assert_eq!(model.usage(), usage_before, "existing entries still hit");
}

#[test]
fn truncation_at_every_line_is_a_clean_error() {
    let model = llm();
    let (_, snapshot) = populated(&model);
    let lines: Vec<&str> = snapshot.lines().collect();
    // Every strict prefix that cuts into the document (header alone is
    // also incomplete) must fail cleanly without panicking.
    for keep in 0..lines.len() {
        let truncated = lines[..keep].join("\n");
        let fresh = PromptCache::unbounded(&model);
        let err = fresh
            .restore(&truncated)
            .expect_err("truncated snapshot must fail");
        assert!(
            matches!(err, SnapshotError::Parse { .. }),
            "prefix of {keep} lines: {err}"
        );
        assert!(fresh.is_empty(), "prefix of {keep} lines admitted entries");
    }
}

#[test]
fn garbled_documents_are_clean_errors_that_leave_the_cache_untouched() {
    let model = llm();
    let (_, snapshot) = populated(&model);
    let garbled = [
        // Wrong version / header.
        snapshot.replacen("v1", "v0", 1),
        snapshot.replacen("v1", "v2", 1),
        "not a snapshot at all".to_string(),
        String::new(),
        // Corrupted structure.
        snapshot.replacen("entries 3", "entries banana", 1),
        snapshot.replacen("entries 3", "entries 99", 1),
        snapshot.replacen("\np ", "\nx ", 1),
        snapshot.replacen("\nc ", "\nq ", 1),
        snapshot.replacen("\nu ", "\nu banana ", 1),
        format!("{snapshot}rogue trailing line\n"),
        // Binary noise in the body.
        snapshot.replacen("\nc ", "\n\u{0}\u{1}\u{2} ", 1),
    ];
    for doc in &garbled {
        assert_rejected_and_untouched(doc, true);
    }
}

#[test]
fn wrong_model_snapshot_is_refused_without_side_effects() {
    let model = llm();
    let (_, snapshot) = populated(&model);
    let foreign = snapshot.replacen("GPT-3-175B", "GPT-4-Turbo", 1);
    assert_rejected_and_untouched(&foreign, false);
}

#[test]
fn undeclared_entry_count_is_rejected_not_partially_admitted() {
    // Declare more entries than the body holds: the parser must reject the
    // document as a whole, admitting none of the (valid) leading entries.
    let model = llm();
    let (_, snapshot) = populated(&model);
    let overdeclared = snapshot.replacen("entries 3", "entries 4", 1);
    let fresh = PromptCache::unbounded(&model);
    assert!(matches!(
        fresh.restore(&overdeclared),
        Err(SnapshotError::Parse { .. })
    ));
    assert!(
        fresh.is_empty(),
        "atomic restore must not keep the valid prefix"
    );
}

#[test]
fn compacted_snapshot_round_trips_with_the_most_recent_entries() {
    let model = llm();
    // Capacity 6, canonicalized: insert 12, re-touch the first three so
    // recency (not insertion order) decides survival.
    let cache = PromptCache::new(&model, 6).with_canonicalization(CanonLevel::Whitespace);
    for i in 0..12 {
        cache.complete(&format!("robust prompt {i}")).unwrap();
    }
    for i in 0..3 {
        cache.complete(&format!("robust prompt {i}")).unwrap();
    }
    let snapshot = cache.snapshot();
    assert!(snapshot.starts_with(SNAPSHOT_HEADER));
    let persisted = snapshot.lines().filter(|l| l.starts_with("p ")).count();
    assert!(
        persisted <= 6,
        "snapshot must compact to capacity: {persisted} entries"
    );

    // Round-trip: a fresh model + cache restored from the compacted
    // snapshot serves the surviving entries without model calls.
    let fresh_model = llm();
    let restored = PromptCache::new(&fresh_model, 6)
        .with_shards(2)
        .with_canonicalization(CanonLevel::Whitespace);
    assert_eq!(restored.restore(&snapshot).unwrap(), persisted);
    for i in 0..3 {
        restored.complete(&format!("robust prompt {i}")).unwrap();
    }
    assert_eq!(
        fresh_model.usage(),
        Usage::default(),
        "recently-used entries survive compaction and answer model-free"
    );
    assert_eq!(restored.stats().hits, 3);
}

#[test]
fn snapshot_size_is_bounded_across_repeated_scenario_runs() {
    // The ROADMAP-noted failure mode: repeated eval runs used to grow
    // their snapshot files without bound. With a capacity configured, the
    // persisted file must stay bounded no matter how many times the
    // scenario runs (and no matter how much fresh traffic each run adds).
    let dir = std::env::temp_dir().join(format!("unidm-snap-bound-{}", std::process::id()));
    let config = CacheConfig {
        capacity: 20,
        ..CacheConfig::enabled()
    }
    .with_snapshot_dir(&dir);
    let model = llm();

    let mut sizes = Vec::new();
    for round in 0..4 {
        let attached = config.attach("bounded-scenario", &model);
        for i in 0..15 {
            // Fresh prompts every round: an unbounded snapshot would grow
            // by 15 entries per round.
            attached
                .model()
                .complete(&format!("round {round} query {i}"))
                .unwrap();
        }
        attached.finish();
        let text = std::fs::read_to_string(dir.join("bounded-scenario.promptcache")).unwrap();
        let entries = text.lines().filter(|l| l.starts_with("p ")).count();
        assert!(
            entries <= 20,
            "round {round}: snapshot holds {entries} > capacity 20"
        );
        sizes.push(text.len());
    }
    let max = *sizes.iter().max().unwrap();
    let min = *sizes.iter().min().unwrap();
    assert!(
        max <= min * 2,
        "snapshot byte size must plateau, not grow: {sizes:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
