//! Backend-conformance suite: the invariants every `LanguageModel`
//! wrapper in this repository must uphold, written once and run against
//! each wrapper (`ResilientBackend`, `Dispatcher`, `RoutedBackend` — and
//! whatever comes next).
//!
//! A wrapper under test is built by a [`Factory`]: a function from
//! `(inner model, Scenario)` to a boxed [`BackendUnderTest`]. Each check
//! constructs its own inner model and scenario, so a new wrapper gets the
//! whole suite by supplying one factory function.
//!
//! The invariants:
//!
//! 1. **Determinism & transparency** — under a seeded fault schedule,
//!    answers are bit-identical to the inner model's direct answers, and
//!    a serial rerun reproduces the wrapper's stats exactly.
//! 2. **Error propagation** — permanent inner errors surface unchanged,
//!    uncounted as retries.
//! 3. **No memoized errors** — a failing prompt reaches the inner model
//!    on every call; errors are never served from any memo.
//! 4. **Rate-token exactness** — with a rate limit configured, a
//!    fault-free serial workload consumes exactly one token per attempt,
//!    one attempt per call.
//! 5. **Stats-merge commutativity** — wrapper stats merge like
//!    `BackendStats`: exact, commutative, with `default()` as identity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use unidm::backend::BackendStats;
use unidm_llm::{Completion, FaultPlan, LanguageModel, LlmError, LlmProfile, MockLlm, Usage};
use unidm_world::World;

/// What a conformance check asks of the wrapper it drives.
pub trait BackendUnderTest {
    /// The wrapped model calls go through.
    fn model(&self) -> &dyn LanguageModel;
    /// The wrapper's counters in the flat `BackendStats` shape.
    fn stats(&self) -> BackendStats;
}

/// The knobs a check turns; factories translate these into their
/// wrapper's own configuration (a router maps `rate` onto per-endpoint
/// AIMD buckets, the blocking stack onto its token bucket, and so on).
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Seed for jitter, routing draws and fault schedules.
    pub seed: u64,
    /// Fault-injection plan to interpose, if any.
    pub faults: Option<FaultPlan>,
    /// Rate limit as `(tokens_per_sec, burst)`, if any.
    pub rate: Option<(u64, u64)>,
}

/// Builds a wrapper over `inner` per a [`Scenario`].
pub type Factory = for<'a> fn(&'a dyn LanguageModel, Scenario) -> Box<dyn BackendUnderTest + 'a>;

/// An inner model that counts how many completions actually reach it —
/// the probe behind the no-memoized-errors check.
pub struct CountingModel<'a> {
    inner: &'a dyn LanguageModel,
    calls: AtomicU64,
}

impl<'a> CountingModel<'a> {
    /// Wraps `inner` with a call counter.
    pub fn new(inner: &'a dyn LanguageModel) -> Self {
        CountingModel {
            inner,
            calls: AtomicU64::new(0),
        }
    }

    /// Completions that reached the inner model.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }
}

impl LanguageModel for CountingModel<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, prompt: &str) -> Result<Arc<Completion>, LlmError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        self.inner.complete(prompt)
    }

    fn usage(&self) -> Usage {
        self.inner.usage()
    }

    fn reset_usage(&self) {
        self.inner.reset_usage();
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }

    fn latency_profile(&self) -> unidm_llm::LatencyProfile {
        self.inner.latency_profile()
    }
}

fn inner_model() -> MockLlm {
    MockLlm::new(&World::generate(42), LlmProfile::gpt3_175b(), 42)
}

fn prompts(tag: &str, n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("conformance {tag} prompt {i}"))
        .collect()
}

/// Invariant 1: under a seeded fault schedule the wrapper's answers are
/// bit-identical to the inner model's, and a serial rerun reproduces the
/// wrapper's stats exactly.
pub fn check_determinism_and_transparency(factory: Factory, label: &str) {
    let llm = inner_model();
    let workload = prompts("determinism", 25);
    let direct: Vec<String> = workload
        .iter()
        .map(|p| llm.complete(p).expect("direct call succeeds").text.clone())
        .collect();
    let scenario = Scenario {
        seed: 7,
        faults: Some(FaultPlan::moderate(7)),
        rate: None,
    };
    let run = || {
        let wrapper = factory(&llm, scenario);
        let answers: Vec<String> = workload
            .iter()
            .map(|p| {
                wrapper
                    .model()
                    .complete(p)
                    .unwrap_or_else(|e| panic!("{label}: {p:?} must survive faults: {e}"))
                    .text
                    .clone()
            })
            .collect();
        (answers, wrapper.stats())
    };
    let (answers, stats) = run();
    assert_eq!(answers, direct, "{label}: faults must never change answers");
    assert_eq!(stats.calls, workload.len() as u64, "{label}");
    assert_eq!(stats.failures, 0, "{label}: every call completes");
    assert!(
        stats.attempts > stats.calls,
        "{label}: a moderate schedule must actually inject faults: {stats:?}"
    );
    let (answers2, stats2) = run();
    assert_eq!(answers2, answers, "{label}: rerun answers");
    assert_eq!(
        stats2, stats,
        "{label}: serial rerun reproduces every counter"
    );
}

/// Invariant 2: a permanent inner error surfaces unchanged — counted as a
/// failure, never retried.
pub fn check_error_propagation(factory: Factory, label: &str) {
    let llm = inner_model();
    let scenario = Scenario {
        seed: 7,
        faults: None,
        rate: None,
    };
    let wrapper = factory(&llm, scenario);
    assert_eq!(
        wrapper.model().complete("   "),
        Err(LlmError::EmptyPrompt),
        "{label}: permanent errors surface unchanged"
    );
    let stats = wrapper.stats();
    assert_eq!(stats.calls, 1, "{label}");
    assert_eq!(stats.failures, 1, "{label}");
    assert_eq!(
        stats.retries, 0,
        "{label}: permanent errors are not retried"
    );
}

/// Invariant 3: errors are never memoized — a failing prompt reaches the
/// inner model on every call.
pub fn check_no_memoized_errors(factory: Factory, label: &str) {
    let llm = inner_model();
    let counter = CountingModel::new(&llm);
    let scenario = Scenario {
        seed: 7,
        faults: None,
        rate: None,
    };
    let wrapper = factory(&counter, scenario);
    for i in 0..2 {
        assert_eq!(
            wrapper.model().complete("   "),
            Err(LlmError::EmptyPrompt),
            "{label}: call {i}"
        );
    }
    assert_eq!(
        counter.calls(),
        2,
        "{label}: both failing calls must reach the endpoint — errors are never memoized"
    );
    assert_eq!(wrapper.stats().failures, 2, "{label}");
}

/// Invariant 4: with a rate limit configured, a fault-free serial
/// workload of N unique prompts consumes exactly N tokens over exactly N
/// attempts.
pub fn check_rate_token_exactness(factory: Factory, label: &str) {
    let llm = inner_model();
    let scenario = Scenario {
        seed: 7,
        faults: None,
        rate: Some((500, 10)),
    };
    let wrapper = factory(&llm, scenario);
    let workload = prompts("rate", 30);
    for p in &workload {
        wrapper
            .model()
            .complete(p)
            .unwrap_or_else(|e| panic!("{label}: fault-free call failed: {e}"));
    }
    let stats = wrapper.stats();
    let n = workload.len() as u64;
    assert_eq!(stats.calls, n, "{label}");
    assert_eq!(
        stats.attempts, n,
        "{label}: fault-free means one attempt per call"
    );
    assert_eq!(
        stats.rate_tokens, n,
        "{label}: exactly one token per attempt: {stats:?}"
    );
}

/// Invariant 5: wrapper stats merge exactly and commutatively, with the
/// default as identity — so aggregation across shards is order-free.
pub fn check_stats_merge_commutativity(factory: Factory, label: &str) {
    let llm = inner_model();
    let stats_for = |tag: &str, seed: u64| {
        let wrapper = factory(
            &llm,
            Scenario {
                seed,
                faults: Some(FaultPlan::moderate(seed)),
                rate: None,
            },
        );
        for p in &prompts(tag, 12) {
            wrapper
                .model()
                .complete(p)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
        }
        wrapper.stats()
    };
    let a = stats_for("merge-a", 7);
    let b = stats_for("merge-b", 1337);
    let mut ab = a;
    ab.merge(&b);
    let mut ba = b;
    ba.merge(&a);
    assert_eq!(ab, ba, "{label}: merge must be commutative");
    assert_eq!(ab.calls, a.calls + b.calls, "{label}");
    assert_eq!(ab.attempts, a.attempts + b.attempts, "{label}");
    assert_eq!(
        ab.attempt_latency.samples(),
        a.attempt_latency.samples() + b.attempt_latency.samples(),
        "{label}: sketches merge exactly"
    );
    let mut id = a;
    id.merge(&BackendStats::default());
    assert_eq!(id, a, "{label}: merging a default is the identity");
}
