//! Deterministic input generator for the repository's property tests.
//!
//! The offline build has no `proptest`, so the property tests sample their
//! inputs explicitly from a seeded [`StdRng`]: the same coverage style
//! (hundreds of randomized cases per invariant), fully reproducible, with
//! no shrinking. Each helper mirrors a character-class strategy the old
//! proptest version used.

// Shared between independently compiled test binaries; each binary uses
// its own subset of the helpers.
#![allow(dead_code)]

pub mod conformance;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Character pool approximating proptest's `.` (any char) strategy:
/// printable ASCII plus a few multi-byte code points to exercise UTF-8
/// handling.
pub const ANY: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 \
                       .,:;'\"!?/-_()[]{}@#$%&*+=\n\téüñ日本語";

/// Seeded input generator.
pub struct Gen {
    rng: StdRng,
}

impl Gen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A mutable handle on the underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..hi)
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// Uniform u64 over the full range.
    pub fn u64(&mut self) -> u64 {
        self.rng.gen_range(0..u64::MAX)
    }

    /// Uniform bool.
    pub fn bool(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }

    /// A string of `len` chars drawn from `pool`.
    pub fn chars_from(&mut self, pool: &str, len: usize) -> String {
        let chars: Vec<char> = pool.chars().collect();
        (0..len)
            .map(|_| *chars.choose(&mut self.rng).expect("non-empty pool"))
            .collect()
    }

    /// A string of `0..=max` chars drawn from `pool`.
    pub fn string(&mut self, pool: &str, max: usize) -> String {
        let len = self.usize(0, max + 1);
        self.chars_from(pool, len)
    }

    /// Mirrors the `[a-z][a-z_]{0,10}` attribute-name strategy.
    pub fn attr(&mut self) -> String {
        let mut s = self.chars_from("abcdefghijklmnopqrstuvwxyz", 1);
        s.push_str(&self.string("abcdefghijklmnopqrstuvwxyz_", 10));
        s
    }

    /// Mirrors the filtered `[A-Za-z0-9][A-Za-z0-9 .,'/-]{0,24}` value
    /// strategy: trimmed, non-empty, free of the protocol's reserved
    /// separators.
    pub fn value(&mut self) -> String {
        const FIRST: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
        const REST: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 .,'/-";
        loop {
            let mut s = self.chars_from(FIRST, 1);
            s.push_str(&self.string(REST, 24));
            let s = s.trim().to_string();
            if !s.is_empty() && !s.contains("; ") && !s.contains(": ") && !s.contains(" and ") {
                return s;
            }
        }
    }
}
