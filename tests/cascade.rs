//! Acceptance tests for the small→large model cascade
//! (`unidm::route::CascadeBackend`).
//!
//! The contract (ISSUE 7): escalation fires *exactly* on unparseable or
//! low-confidence cheap answers (counts pinned, independently recomputed
//! and reproduced on rerun); on the escalated subset the cascade serves
//! byte-identical large-model answers; and on the eval workload the
//! cascade's large-tier token consumption and billed cost are strictly
//! below a large-model-only run.
//!
//! Token accounting note: the cheap tier sees every prompt, so the
//! cascade's *raw* token total (cheap + large) necessarily exceeds the
//! large-only total. The meaningful comparison — and the one the paper's
//! cost argument rests on — is large-model tokens avoided and billed
//! cost (`LlmProfile::cost_micro_per_token`-weighted tokens), both
//! asserted strictly here.

use std::sync::{Arc, Mutex};

use unidm::route::{answer_confidence_permille, CascadeBackend, CascadePolicy};
use unidm::{BatchRunner, PipelineConfig, Task};
use unidm_llm::{Completion, LanguageModel, LlmError, LlmProfile, MockLlm, Usage};
use unidm_synthdata::imputation;
use unidm_tablestore::DataLake;
use unidm_world::World;

const WORKLOAD: usize = 30;

/// Records every prompt that reaches the inner model, in call order.
struct Recorder<'a> {
    inner: &'a dyn LanguageModel,
    prompts: Mutex<Vec<String>>,
}

impl<'a> Recorder<'a> {
    fn new(inner: &'a dyn LanguageModel) -> Self {
        Recorder {
            inner,
            prompts: Mutex::new(Vec::new()),
        }
    }

    /// The recorded prompts, deduplicated in first-seen order.
    fn unique_prompts(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for p in self.prompts.lock().unwrap().iter() {
            if !seen.contains(p) {
                seen.push(p.clone());
            }
        }
        seen
    }
}

impl LanguageModel for Recorder<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, prompt: &str) -> Result<Arc<Completion>, LlmError> {
        self.prompts.lock().unwrap().push(prompt.to_string());
        self.inner.complete(prompt)
    }

    fn usage(&self) -> Usage {
        self.inner.usage()
    }

    fn reset_usage(&self) {
        self.inner.reset_usage();
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }

    fn latency_profile(&self) -> unidm_llm::LatencyProfile {
        self.inner.latency_profile()
    }
}

/// The eval workload's prompt stream: every unique prompt a serial
/// paper-default imputation batch issues to the large model.
fn eval_prompts(world: &World, large: &MockLlm) -> Vec<String> {
    let ds = imputation::restaurant(world, 42, WORKLOAD);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let tasks: Vec<Task> = ds
        .targets
        .iter()
        .map(|t| {
            Task::imputation(
                ds.table.name(),
                t.row,
                ds.target_attr.clone(),
                ds.key_attr.clone(),
            )
        })
        .collect();
    let recorder = Recorder::new(large);
    BatchRunner::new(&recorder, PipelineConfig::paper_default().with_seed(42))
        .with_workers(1)
        .answers(&lake, &tasks);
    let prompts = recorder.unique_prompts();
    assert!(
        prompts.len() > 50,
        "the eval workload must produce a real prompt stream: {}",
        prompts.len()
    );
    prompts
}

fn models() -> (World, MockLlm, MockLlm) {
    let world = World::generate(42);
    let cheap = MockLlm::new(&world, LlmProfile::gptj_6b(), 42);
    let large = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    (world, cheap, large)
}

/// The gate used throughout this suite. The mock zoo answers final cloze
/// prompts tersely and confidently even when wrong, so the discriminating
/// signal on this workload is hedging *structure* (question marks in
/// cloze rewrites, rambling outputs); 600 puts the gate above that
/// stratum and below clean answers.
const GATE: CascadePolicy = CascadePolicy { gate_permille: 600 };

fn cascade<'a>(cheap: &'a MockLlm, large: &'a MockLlm) -> CascadeBackend<'a> {
    CascadeBackend::new(cheap, large)
        .with_policy(GATE)
        .with_costs_of(&LlmProfile::gptj_6b(), &LlmProfile::gpt3_175b())
}

/// Escalation fires exactly when the cheap answer is unparseable or
/// below the confidence gate — the count matches an independent replay
/// of the gate, decomposes exactly, and reproduces on rerun.
#[test]
fn escalations_fire_exactly_on_unparseable_or_low_confidence_answers() {
    let (world, cheap, large) = models();
    let prompts = eval_prompts(&world, &large);
    let gate = GATE.gate_permille;

    // Independent expectation: ask the cheap model directly and apply the
    // gate by hand.
    let mut expected_escalations = 0u64;
    let mut expected_unparseable = 0u64;
    for p in &prompts {
        let confidence = answer_confidence_permille(&cheap.complete(p).unwrap().text);
        if confidence < gate {
            expected_escalations += 1;
            if confidence == 0 {
                expected_unparseable += 1;
            }
        }
    }
    assert!(
        expected_escalations > 0,
        "the small model must trip the gate somewhere on this workload"
    );
    assert!(
        expected_escalations < prompts.len() as u64,
        "the small model must also clear the gate somewhere"
    );

    let run = || {
        let cascade = cascade(&cheap, &large);
        for p in &prompts {
            cascade.complete(p).unwrap();
        }
        cascade.stats()
    };
    let stats = run();
    assert_eq!(stats.calls, prompts.len() as u64);
    assert_eq!(stats.escalations, expected_escalations, "gate exactness");
    // Pinned: the restaurant-30 workload at seed 42 under GPT-J-6B trips
    // the 600-permille gate on exactly these many prompts. A change here
    // means the pipeline's prompt stream or the gate function moved.
    assert_eq!(stats.escalations, 24, "pinned escalation count");
    assert_eq!(stats.unparseable, expected_unparseable);
    assert_eq!(
        stats.escalations,
        stats.unparseable + stats.low_confidence + stats.error_escalations,
        "escalation causes decompose exactly"
    );
    assert_eq!(stats.error_escalations, 0, "no errors on this workload");
    assert_eq!(stats.endpoints[0].calls, prompts.len() as u64);
    assert_eq!(stats.endpoints[1].calls, stats.escalations);
    assert_eq!(run(), stats, "a rerun reproduces every cascade counter");
}

/// On the escalated subset the cascade's answers are byte-identical to a
/// large-model-only run; on the rest it serves the cheap answer.
#[test]
fn cascade_matches_large_only_answers_on_the_escalated_subset() {
    let (world, cheap, large) = models();
    let prompts = eval_prompts(&world, &large);
    let cascade = cascade(&cheap, &large);
    let gate = cascade.policy().gate_permille;
    let mut escalated = 0usize;
    for p in &prompts {
        let cheap_answer = cheap.complete(p).unwrap();
        let served = cascade.complete(p).unwrap();
        if answer_confidence_permille(&cheap_answer.text) < gate {
            escalated += 1;
            assert_eq!(
                served,
                large.complete(p).unwrap(),
                "escalated prompt must serve the large model's bytes: {p:?}"
            );
        } else {
            assert_eq!(
                served, cheap_answer,
                "confident prompt must serve the cheap model's bytes: {p:?}"
            );
        }
    }
    assert_eq!(cascade.stats().escalations, escalated as u64);
}

/// On the eval workload the cascade consumes strictly fewer large-model
/// tokens — and strictly less billed cost — than a large-model-only run.
#[test]
fn cascade_beats_large_only_on_tokens_and_billed_cost() {
    let (world, cheap, large) = models();
    let prompts = eval_prompts(&world, &large);
    let large_cost = LlmProfile::gpt3_175b().cost_micro_per_token();

    let large_only_tokens: u64 = prompts
        .iter()
        .map(|p| large.complete(p).unwrap().usage.total() as u64)
        .sum();
    let large_only_billed = large_only_tokens * large_cost;

    let cascade = cascade(&cheap, &large);
    for p in &prompts {
        cascade.complete(p).unwrap();
    }
    let stats = cascade.stats();
    assert!(
        stats.endpoints[1].tokens() < large_only_tokens,
        "large-tier tokens {} must be strictly below large-only {}",
        stats.endpoints[1].tokens(),
        large_only_tokens
    );
    assert!(
        stats.billed_micro() < large_only_billed,
        "cascade billed {} must be strictly below large-only {}",
        stats.billed_micro(),
        large_only_billed
    );
    assert_eq!(stats.answers, prompts.len() as u64);
    assert!(
        stats.tokens_per_answer_milli() > 0,
        "tokens-per-answer is reported"
    );
    // The headline ratio: billed cost per answer, cascade vs large-only.
    let large_only_per_answer = large_only_billed / prompts.len() as u64;
    assert!(
        stats.billed_per_answer_micro() < large_only_per_answer,
        "cascade must be cheaper per answer: {} vs {}",
        stats.billed_per_answer_micro(),
        large_only_per_answer
    );
}
