//! Acceptance tests for the tiered cache store (`unidm::store`): a full
//! one-touch scan over a 10^5-row synthetic lake must not displace the
//! hot set (pinned hit-rate floor, deterministic across shard counts and
//! reruns), corrupt store files must surface a clean [`StoreError`] —
//! never a panic — and leave the file untouched, and the tier statistics
//! ([`StoreStats`], [`unidm::CacheStats`]) must merge exactly and
//! order-independently, mirroring `tests/snapshot_robustness.rs` for the
//! v1 text snapshots.

use std::path::PathBuf;
use std::sync::Arc;

use unidm::{CacheStats, CacheStore, CanonLevel, PromptCache, StoreConfig, StoreError, StoreStats};
use unidm_llm::{Completion, LanguageModel, LlmProfile, MockLlm, Usage};
use unidm_world::World;

/// Hot working set the scan must not displace.
const HOT_SET: usize = 64;
/// One-touch keys in the synthetic lake scan.
const SCAN_KEYS: usize = 100_000;
/// Pinned acceptance floor for the post-scan hot-set hit rate. The
/// admission filter is deterministic, so the observed rate is exactly
/// 1.0; the floor leaves headroom only for intentional future retuning.
const HOT_FLOOR: f64 = 0.95;

fn llm() -> MockLlm {
    MockLlm::new(&World::generate(7), LlmProfile::gpt3_175b(), 7)
}

fn temp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "unidm-store-tiered-{}-{tag}.udmstore",
        std::process::id()
    ))
}

fn hot_prompt(i: usize) -> String {
    format!("hot working-set query number {i} over the resident table")
}

/// What one full scan-resistance experiment observed: the final store
/// counters plus the post-scan hot-set hit rate.
#[derive(Debug, PartialEq)]
struct ScanOutcome {
    stats: StoreStats,
    hot_hits: usize,
    warm_model_tokens: usize,
}

/// Establishes a hot set through sharded tiered caches, scans 10^5
/// one-touch synthetic lake rows against the disk tier, then measures
/// whether a cold tier 0 still finds the hot set on disk.
fn run_scan_experiment(tag: &str, shards: usize) -> ScanOutcome {
    let path = temp_store(tag);
    let _ = std::fs::remove_file(&path);
    let model = llm();
    let store = CacheStore::open(
        &path,
        model.name(),
        StoreConfig::default().with_max_entries(HOT_SET),
    )
    .expect("store opens");

    // Pass A: a tiered cache populates the store (first touch each).
    let warm = PromptCache::new(&model, HOT_SET)
        .with_shards(shards)
        .with_canonicalization(CanonLevel::TableStem)
        .with_store(store.clone());
    for i in 0..HOT_SET {
        warm.complete(&hot_prompt(i)).expect("hot prompt completes");
    }
    // Pass B: a fresh tier 0 over the same store — every lookup falls
    // through to the disk tier (second touch: the set is now frequent).
    let replay = PromptCache::new(&model, HOT_SET)
        .with_shards(shards)
        .with_canonicalization(CanonLevel::TableStem)
        .with_store(store.clone());
    let before = model.usage();
    for i in 0..HOT_SET {
        replay.complete(&hot_prompt(i)).expect("replay completes");
    }
    assert_eq!(model.usage(), before, "disk-tier replay is model-free");

    // The scan: one pass over a synthetic 10^5-row lake, each row seen
    // exactly once (probe, miss, offer) — the B-side of every tier-0
    // miss. A recency cache would evict the entire hot set here.
    let row = Arc::new(Completion {
        text: "scan row".to_string(),
        usage: Usage {
            prompt_tokens: 7,
            completion_tokens: 3,
        },
    });
    for i in 0..SCAN_KEYS {
        let prompt = format!("synthetic lake row {i} swept once by the scan");
        assert!(store.get(&prompt).is_none(), "scan rows start cold");
        store.offer(&prompt, &row);
    }

    // A cold tier 0 afterwards: the hot set must still answer from disk.
    let cold = PromptCache::new(&model, HOT_SET)
        .with_shards(shards)
        .with_canonicalization(CanonLevel::TableStem)
        .with_store(store.clone());
    let before = model.usage();
    let hits_before = store.stats().hits;
    for i in 0..HOT_SET {
        cold.complete(&hot_prompt(i)).expect("post-scan completes");
    }
    let hot_hits = store.stats().hits - hits_before;
    let warm_model_tokens = model.usage().total() - before.total();

    let outcome = ScanOutcome {
        stats: store.stats(),
        hot_hits,
        warm_model_tokens,
    };
    let _ = std::fs::remove_file(&path);
    outcome
}

#[test]
fn lake_scan_does_not_displace_the_hot_set() {
    let outcome = run_scan_experiment("scan", 1);
    let rate = outcome.hot_hits as f64 / HOT_SET as f64;
    assert!(
        rate >= HOT_FLOOR,
        "post-scan hot-set hit rate {rate:.3} fell below the pinned floor {HOT_FLOOR}"
    );
    assert_eq!(
        outcome.warm_model_tokens, 0,
        "surviving hot entries answer without model calls"
    );
    assert_eq!(
        outcome.stats.rejected, SCAN_KEYS,
        "every one-touch scan key is rejected at capacity"
    );
    assert_eq!(outcome.stats.evicted, 0, "no resident entry is displaced");
    assert_eq!(outcome.stats.admitted, HOT_SET);
}

#[test]
fn scan_outcome_is_deterministic_across_shard_counts_and_reruns() {
    // The store sits below the sharded tier, so the shard count (the
    // UNIDM_SHARDS matrix axis) must not leak into admission decisions —
    // and a rerun at the same seed must reproduce every counter.
    let one = run_scan_experiment("det-1", 1);
    let eight = run_scan_experiment("det-8", 8);
    let rerun = run_scan_experiment("det-rerun", 8);
    assert_eq!(one, eight, "shard count must not change the outcome");
    assert_eq!(eight, rerun, "rerun must reproduce the outcome exactly");
}

// ── Corruption robustness (mirrors tests/snapshot_robustness.rs) ───────

/// A store file holding three completions, returned as raw bytes.
fn populated_store_bytes(tag: &str) -> Vec<u8> {
    let path = temp_store(tag);
    let _ = std::fs::remove_file(&path);
    let model = llm();
    let store = CacheStore::open(&path, model.name(), StoreConfig::default()).expect("opens");
    let cache = PromptCache::unbounded(&model).with_store(store);
    for prompt in [
        "alpha prompt",
        "beta prompt\nwith a second line",
        "gamma prompt with \\ escapes",
    ] {
        cache.complete(prompt).unwrap();
    }
    let bytes = std::fs::read(&path).expect("store file readable");
    let _ = std::fs::remove_file(&path);
    bytes
}

/// Byte offsets at which a truncation leaves a structurally complete
/// document: the end of the header and the end of every frame.
fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let u32_at = |pos: usize| u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
    // magic(8) + version(4) + model length prefix(4) + model bytes.
    let mut pos = 8 + 4 + 4 + u32_at(12);
    let mut boundaries = vec![pos];
    while pos < bytes.len() {
        pos += 4 + u32_at(pos) + 8; // length prefix + payload + checksum
        boundaries.push(pos);
    }
    assert_eq!(*boundaries.last().unwrap(), bytes.len());
    boundaries
}

#[test]
fn truncation_at_every_byte_is_a_clean_error_or_a_valid_prefix() {
    let bytes = populated_store_bytes("trunc");
    let boundaries = record_boundaries(&bytes);
    assert_eq!(boundaries.len(), 4, "header + three frames");
    let model = llm();
    let path = temp_store("trunc-cut");
    for cut in 0..=bytes.len() {
        let truncated = &bytes[..cut];
        std::fs::write(&path, truncated).unwrap();
        match CacheStore::open(&path, model.name(), StoreConfig::default()) {
            // A cut exactly at a record boundary is the append-only
            // contract at work: the surviving prefix of frames serves.
            Ok(store) => {
                assert!(
                    boundaries.contains(&cut),
                    "open succeeded at non-boundary offset {cut}"
                );
                let expected = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
                assert_eq!(store.len(), expected, "prefix entries at offset {cut}");
                if expected >= 1 {
                    assert!(store.get("alpha prompt").is_some());
                }
            }
            // Any mid-record cut must be a clean, printable error that
            // does not rewrite the evidence.
            Err(err) => {
                assert!(
                    !boundaries.contains(&cut),
                    "boundary offset {cut} must open cleanly: {err}"
                );
                assert!(!err.to_string().is_empty());
                assert_eq!(
                    std::fs::read(&path).unwrap(),
                    truncated,
                    "failed open must not modify the file (offset {cut})"
                );
            }
        }
    }
    let _ = std::fs::remove_file(&path);
}

/// Asserts that opening `bytes` fails with `expect` and leaves the file
/// byte-identical.
fn assert_rejected_and_untouched(tag: &str, bytes: &[u8], expect: fn(&StoreError) -> bool) {
    let model = llm();
    let path = temp_store(tag);
    std::fs::write(&path, bytes).unwrap();
    let err = CacheStore::open(&path, model.name(), StoreConfig::default())
        .expect_err("corrupt store must fail to open");
    assert!(expect(&err), "unexpected error class: {err}");
    assert!(!err.to_string().is_empty(), "errors must be printable");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        bytes,
        "failed open must not modify the file"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wrong_version_wrong_model_and_garbled_frames_are_clean_errors() {
    let bytes = populated_store_bytes("garble");

    // Version bump in the fixed header.
    let mut wrong_version = bytes.clone();
    wrong_version[8] = wrong_version[8].wrapping_add(1);
    assert_rejected_and_untouched("garble-version", &wrong_version, |e| {
        matches!(e, StoreError::Version { .. })
    });

    // Foreign model name (same length, so framing stays intact).
    let model_name = llm().name().to_string();
    let foreign_name: String = model_name.chars().rev().collect();
    let header_end = 16 + model_name.len();
    let mut foreign = bytes.clone();
    foreign[16..header_end].copy_from_slice(foreign_name.as_bytes());
    assert_rejected_and_untouched("garble-model", &foreign, |e| {
        matches!(e, StoreError::ModelMismatch { .. })
    });

    // Bad magic.
    let mut magicless = bytes.clone();
    magicless[0] = b'X';
    assert_rejected_and_untouched("garble-magic", &magicless, |e| {
        matches!(e, StoreError::Format(_))
    });

    // One flipped payload byte in the first frame: checksum mismatch.
    let mut flipped = bytes.clone();
    let frame_payload = header_end + 4 + 8; // length prefix + generation
    flipped[frame_payload + 4] ^= 0x01;
    assert_rejected_and_untouched("garble-checksum", &flipped, |e| {
        matches!(e, StoreError::Format(_))
    });

    // The pristine bytes still open with all three entries — corruption
    // handling must not depend on mutated leftovers.
    let path = temp_store("garble-pristine");
    std::fs::write(&path, &bytes).unwrap();
    let store = CacheStore::open(&path, &model_name, StoreConfig::default()).expect("opens");
    assert_eq!(store.len(), 3);
    let _ = std::fs::remove_file(&path);
}

// ── Order-independent tier statistics ──────────────────────────────────

#[test]
fn store_and_cache_stats_merge_exactly_in_any_order() {
    // Synthetic per-tier StoreStats snapshots: folding them in any order
    // (and any grouping) must produce the same aggregate — the merge is a
    // plain field-wise sum.
    let snapshots: Vec<StoreStats> = (0..6)
        .map(|i| StoreStats {
            hits: 100 + i,
            misses: 50 + 2 * i,
            admitted: 40 + 3 * i,
            rejected: 1000 * i,
            evicted: i,
            expired: 2 * i,
            compactions: i % 2,
            compacted_frames: 8 * i,
        })
        .collect();
    let fold = |order: &[usize]| {
        let mut total = StoreStats::default();
        for &i in order {
            total.merge(snapshots[i]);
        }
        total
    };
    let forward = fold(&[0, 1, 2, 3, 4, 5]);
    assert_eq!(forward, fold(&[5, 4, 3, 2, 1, 0]));
    assert_eq!(forward, fold(&[3, 0, 5, 1, 4, 2]));
    // Associativity: merging pre-merged halves equals the flat fold.
    let mut halves = fold(&[0, 1, 2]);
    halves.merge(fold(&[3, 4, 5]));
    assert_eq!(forward, halves);
    assert_eq!(forward.hits, 615, "sums are exact, not approximate");

    // And the real thing: per-shard CacheStats of a sharded tiered run
    // fold to the same aggregate in every order.
    let model = llm();
    let path = temp_store("stats");
    let _ = std::fs::remove_file(&path);
    let store = CacheStore::open(&path, model.name(), StoreConfig::default()).expect("opens");
    let cache = PromptCache::unbounded(&model)
        .with_shards(8)
        .with_store(store);
    for _round in 0..3 {
        for i in 0..24 {
            cache
                .complete(&format!("stats workload prompt {}", i % 16))
                .expect("completes");
        }
    }
    let per_shard = cache.shard_stats();
    let mut forward = CacheStats::default();
    for s in &per_shard {
        forward.merge(*s);
    }
    let mut reverse = CacheStats::default();
    for s in per_shard.iter().rev() {
        reverse.merge(*s);
    }
    assert_eq!(forward, reverse);
    assert_eq!(forward, cache.stats());
    assert_eq!(forward.hits + forward.misses, 72, "every lookup counted");
    let _ = std::fs::remove_file(&path);
}
