//! Schedule-independence property tests for the open-loop serving
//! simulator (`unidm::serve`).
//!
//! The simulator's contract is that a fixed seed pins *everything*: the
//! event trace, the per-tenant latency/SLO stats, and the counters the
//! `serving` bench section publishes must be byte-identical at 1 and 8
//! replay workers and across reruns — under faults as much as without
//! them. The fault-schedule seed honors `UNIDM_FAULT_SEED` (the CI
//! matrix runs the suite at 7 and 1337), and each test additionally
//! sweeps a second derived seed so a single invocation still covers two
//! schedules.

use unidm::serve::{ArrivalProcess, EventKind, ServeConfig, ServeReport, ServeSim, TenantSpec};
use unidm::BackendConfig;
use unidm_llm::{FaultPlan, LlmProfile, MockLlm};
use unidm_world::World;

/// The fault-schedule seeds under test: `UNIDM_FAULT_SEED` (7 when
/// unset) plus a fixed second schedule.
fn fault_seeds() -> [u64; 2] {
    let base = std::env::var("UNIDM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    [base, if base == 1337 { 7 } else { 1337 }]
}

/// A three-tenant mix exercising all three arrival processes.
fn mix(seed: u64, workers: usize) -> ServeSim {
    let prompts = |tag: &str| -> Vec<String> {
        (0..6)
            .map(|i| format!("What is the {tag} of record {i}?"))
            .collect()
    };
    ServeSim::new(ServeConfig::new(seed).with_servers(4).with_workers(workers))
        .tenant(
            TenantSpec::new("poisson", prompts("timezone"))
                .with_arrival(ArrivalProcess::Poisson)
                .with_rate_milli_per_s(8_000)
                .with_requests(60)
                .with_slo_us(2_000_000),
        )
        .tenant(
            TenantSpec::new("bursty", prompts("capital"))
                .with_arrival(ArrivalProcess::Bursty { burst: 6 })
                .with_rate_milli_per_s(5_000)
                .with_requests(60)
                .with_slo_us(1_000_000),
        )
        .tenant(
            TenantSpec::new("diurnal", prompts("population"))
                .with_arrival(ArrivalProcess::Diurnal {
                    period_us: 20_000_000,
                })
                .with_rate_milli_per_s(3_000)
                .with_requests(60)
                .with_slo_us(5_000_000),
        )
}

/// The exact counters the `serving` section of the committed baseline
/// publishes — the tuple `scripts/diff_bench.py` pins.
fn bench_counters(report: &ServeReport) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        report.requests,
        report.errors,
        report.slo_met,
        report.replay_mismatches,
        report.attainment_permille(),
        report.goodput_per_ks(),
        report.makespan_us,
        report.trace_fnv(),
    )
}

#[test]
fn reports_identical_across_worker_counts_reruns_and_fault_seeds() {
    for fault_seed in fault_seeds() {
        let run = |workers: usize| -> ServeReport {
            // A fresh, identically constructed stack per run: reusing a
            // stack would advance its private fault schedule and virtual
            // clock, which is a different experiment, not a rerun.
            let world = World::generate(11);
            let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 11);
            let stack = BackendConfig::resilient(11)
                .with_faults(FaultPlan::moderate(fault_seed))
                .wrap(&llm);
            mix(11, workers).run(&stack)
        };
        let serial = run(1);
        let parallel = run(8);
        let rerun = run(8);
        assert_eq!(
            serial, parallel,
            "fault seed {fault_seed}: replay worker count changed the report"
        );
        assert_eq!(
            parallel, rerun,
            "fault seed {fault_seed}: rerun at the same seed diverged"
        );
        assert_eq!(
            bench_counters(&serial),
            bench_counters(&parallel),
            "fault seed {fault_seed}: bench counters diverged across worker counts"
        );
        assert_eq!(
            serial.replay_mismatches, 0,
            "fault seed {fault_seed}: the resilient stack is prompt-deterministic"
        );
    }
}

#[test]
fn fault_schedules_are_part_of_the_experiment() {
    // Different fault seeds must be *different* deterministic
    // experiments: each reproduces itself, and the two (virtually always)
    // produce different traces — if they matched, faults would not be
    // reaching the simulator at all.
    let [a_seed, b_seed] = fault_seeds();
    let run = |fault_seed: u64| -> ServeReport {
        let world = World::generate(11);
        let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 11);
        let stack = BackendConfig::resilient(11)
            .with_faults(FaultPlan::moderate(fault_seed))
            .wrap(&llm);
        mix(11, 2).run(&stack)
    };
    assert_eq!(run(a_seed), run(a_seed));
    assert_ne!(
        run(a_seed).trace_fnv(),
        run(b_seed).trace_fnv(),
        "fault seeds {a_seed} and {b_seed} produced identical traces"
    );
}

#[test]
fn trace_is_well_formed_and_stats_reconcile() {
    let world = World::generate(3);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 3);
    let stack = BackendConfig::default().wrap(&llm);
    let report = mix(3, 1).run(&stack);

    // Virtual time never runs backwards in the trace.
    for pair in report.trace.windows(2) {
        assert!(
            pair[0].at_us <= pair[1].at_us,
            "trace went backwards: {:?} then {:?}",
            pair[0],
            pair[1]
        );
    }
    // Every request contributes exactly one arrival, one start, one done.
    let count = |kind_matches: &dyn Fn(EventKind) -> bool| {
        report.trace.iter().filter(|e| kind_matches(e.kind)).count() as u64
    };
    assert_eq!(count(&|k| k == EventKind::Arrival), report.requests);
    assert_eq!(count(&|k| k == EventKind::Start), report.requests);
    assert_eq!(
        count(&|k| matches!(k, EventKind::Done { .. })),
        report.requests
    );

    // Global counters are the per-tenant sums, and attainment follows
    // from them exactly.
    assert_eq!(
        report.requests,
        report.tenants.iter().map(|t| t.requests).sum::<u64>()
    );
    assert_eq!(
        report.errors,
        report.tenants.iter().map(|t| t.errors).sum::<u64>()
    );
    assert_eq!(
        report.slo_met,
        report.tenants.iter().map(|t| t.slo_met).sum::<u64>()
    );
    for t in &report.tenants {
        assert_eq!(t.requests, t.ok + t.errors, "{}: ok/error split", t.name);
        assert!(t.slo_met <= t.ok, "{}: SLO-met answers must be ok", t.name);
        assert_eq!(
            t.attainment_permille,
            t.slo_met * 1000 / t.requests,
            "{}: attainment formula",
            t.name
        );
        // p50 <= p99 <= p999, and all within [min, max].
        let (p50, p99, p999) = (
            t.latency.quantile_us(500),
            t.latency.quantile_us(990),
            t.latency.quantile_us(999),
        );
        assert!(t.latency.min_us() <= p50 && p50 <= p99 && p99 <= p999);
        assert!(p999 <= t.latency.quantile_us(1000));
    }
}
