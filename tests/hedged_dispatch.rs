//! Acceptance tests for the event-driven dispatcher's hedged requests.
//!
//! The contract (ISSUE 6): hedging a straggler — duplicating an attempt
//! once it exceeds the observed latency quantile, first response wins —
//! must be invisible everywhere except the tail. Answers stay
//! bit-identical to the fault-free serial run at every worker count and
//! fault seed; losing copies are cancelled, never delivered and never
//! memoized (neither in the dispatcher's memo nor in a `PromptCache`
//! above it); a hedge duplicate consumes an in-flight slot but **no**
//! rate-limit token, so the budget is charged exactly once per winner;
//! and because the reactor only advances virtual time at quiescence, the
//! aggregate hedge counters are a pure function of the request set —
//! independent of OS thread scheduling.
//!
//! The fault-schedule seed honors `UNIDM_FAULT_SEED` (CI runs the suite
//! at two distinct seeds), so schedule sensitivity is exercised on every
//! push.

use unidm::backend::BackendConfig;
use unidm::dispatch::{Dispatcher, HedgePolicy};
use unidm::{BatchRunner, CanonLevel, PipelineConfig, PromptCache, Task};
use unidm_llm::{FaultPlan, LanguageModel, LlmProfile, MockLlm};
use unidm_synthdata::imputation;
use unidm_tablestore::DataLake;
use unidm_world::World;

const WORKLOAD: usize = 30;

/// The fault-schedule seed: `UNIDM_FAULT_SEED` when set (the CI matrix
/// runs two), 7 otherwise.
fn fault_seed() -> u64 {
    std::env::var("UNIDM_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

fn workload() -> (MockLlm, DataLake, Vec<Task>) {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    let ds = imputation::restaurant(&world, 42, WORKLOAD);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let tasks: Vec<Task> = ds
        .targets
        .iter()
        .map(|t| {
            Task::imputation(
                ds.table.name(),
                t.row,
                ds.target_attr.clone(),
                ds.key_attr.clone(),
            )
        })
        .collect();
    (llm, lake, tasks)
}

/// A hedged pipelined config on a heavy-tail latency plan: no injected
/// errors, 3% of attempts stall at 40× the base latency — the regime
/// where hedging is the whole story.
fn hedged_config(seed: u64) -> BackendConfig {
    BackendConfig::resilient(seed)
        .without_breaker()
        .with_faults(FaultPlan::heavy_tail(seed))
        .with_pipelined()
        .with_hedge(HedgePolicy::at_quantile(900).with_min_samples(8))
}

/// Warms the dispatcher's latency estimator with `n` distinct throwaway
/// prompts so the measured workload can arm hedge timers from its very
/// first wave, then clears the inner model's usage ledger.
fn warm_estimator(dispatcher: &Dispatcher<'_>, llm: &MockLlm, n: u64) {
    for i in 0..n {
        dispatcher
            .complete(&format!("latency estimator warmup {i}"))
            .expect("warmup prompt completes");
    }
    llm.reset_usage();
}

/// Spawns `workers` registered threads that all pass a barrier before
/// touching the dispatcher, then run `work(worker_index)` — the
/// registered-worker shape `BatchRunner`'s pipelined mode uses.
fn fan_out(dispatcher: &Dispatcher<'_>, workers: usize, work: impl Fn(usize) + Sync) {
    let barrier = std::sync::Barrier::new(workers);
    std::thread::scope(|scope| {
        for t in 0..workers {
            let (d, b, work) = (dispatcher, &barrier, &work);
            scope.spawn(move || {
                let _registration = d.register();
                b.wait();
                work(t);
            });
        }
    });
}

/// First-response-wins determinism: the full production shape
/// (`BatchRunner` pipelined mode → single-flight-off `PromptCache` →
/// `Dispatcher` with hedging → heavy-tail `SimBackend`) returns answers
/// bit-identical to the fault-free serial run at 1 and 8 workers and at
/// two fault seeds.
#[test]
fn hedged_answers_bit_identical_across_seeds_and_worker_counts() {
    let (llm, lake, tasks) = workload();
    let pipeline = PipelineConfig::paper_default();
    let reference = BatchRunner::new(&llm, pipeline)
        .with_workers(1)
        .answers(&lake, &tasks);

    let base = fault_seed();
    for seed in [base, base.wrapping_mul(31).wrapping_add(1000)] {
        for workers in [1usize, 8] {
            let dispatcher = Dispatcher::new(&llm, hedged_config(seed));
            warm_estimator(&dispatcher, &llm, 8);
            let cache = PromptCache::unbounded(&dispatcher)
                .with_canonicalization(CanonLevel::TableStem)
                .with_single_flight(false);
            let report = BatchRunner::new(&cache, pipeline)
                .with_workers(workers)
                .with_pipeline(&dispatcher)
                .run_report(&lake, &tasks);
            let answers: Vec<String> = report
                .results
                .iter()
                .map(|r| r.as_ref().expect("task completes").answer.clone())
                .collect();
            assert_eq!(
                answers, reference,
                "hedging must never change answers (seed {seed}, {workers} workers)"
            );
            let stats = dispatcher.stats();
            assert_eq!(stats.failures, 0, "heavy-tail injects no errors");
            assert_eq!(
                stats.hedges_cancelled, stats.hedges_issued,
                "no errors, so every issued hedge has exactly one cancelled loser"
            );
        }
    }
}

/// Losers are never memoized: after a hedged batch, a snapshot of the
/// `PromptCache` replayed over the bare model answers the whole workload
/// with **zero** model calls and answers bit-identical to the fault-free
/// reference — so everything the hedged run memoized is a winner's
/// completion, and nothing else was inserted.
#[test]
fn losing_copies_are_never_memoized() {
    let (llm, lake, tasks) = workload();
    let pipeline = PipelineConfig::paper_default();
    let reference = BatchRunner::new(&llm, pipeline)
        .with_workers(1)
        .answers(&lake, &tasks);

    let seed = fault_seed();
    let dispatcher = Dispatcher::new(&llm, hedged_config(seed));
    warm_estimator(&dispatcher, &llm, 8);
    let cache = PromptCache::unbounded(&dispatcher)
        .with_canonicalization(CanonLevel::TableStem)
        .with_single_flight(false);
    BatchRunner::new(&cache, pipeline)
        .with_workers(8)
        .with_pipeline(&dispatcher)
        .run_report(&lake, &tasks);
    let stats = dispatcher.stats();
    assert_eq!(stats.failures, 0);

    // Requests the dispatcher resolved stay memoized as the winner's
    // bytes: replaying a unique prompt adds zero endpoint attempts.
    let attempts_before = stats.attempts;
    let memo_hit = dispatcher.stats().dispatch_coalesced;
    let direct = llm.complete("The capital of Denmark is __.").unwrap();
    let first = dispatcher
        .complete("The capital of Denmark is __.")
        .unwrap();
    let replay = dispatcher
        .complete("The capital of Denmark is __.")
        .unwrap();
    assert_eq!(first, direct, "the winner's completion is the model's");
    assert_eq!(replay, first, "the memo serves the winner verbatim");
    assert_eq!(
        dispatcher.stats().attempts,
        attempts_before + 1,
        "one fresh prompt dispatches once; the replay is pure memo"
    );
    assert_eq!(dispatcher.stats().dispatch_coalesced, memo_hit + 1);

    // The cache above the dispatcher holds only winners too: its snapshot
    // replayed over the *bare* model serves the entire workload without a
    // single model call, bit-identical to the fault-free reference.
    let snapshot = cache.snapshot();
    let warm = PromptCache::unbounded(&llm).with_canonicalization(CanonLevel::TableStem);
    warm.restore(&snapshot).expect("snapshot restores");
    llm.reset_usage();
    let warm_answers = BatchRunner::new(&warm, pipeline)
        .with_workers(1)
        .answers(&lake, &tasks);
    assert_eq!(
        warm_answers, reference,
        "everything memoized by the hedged run is a winner's completion"
    );
    assert_eq!(
        llm.usage().total(),
        0,
        "the warm replay never reaches the model"
    );
}

/// Hedge duplicates take an in-flight slot but no rate-limit token: with
/// a limiter configured, `rate_tokens` is exactly one per logical request
/// (per winner), however many hedges were issued.
#[test]
fn hedges_consume_rate_limit_budget_once_per_winner() {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    let seed = fault_seed();
    let config = hedged_config(seed).with_rate_limit(500, 50);
    let dispatcher = Dispatcher::new(&llm, config);
    warm_estimator(&dispatcher, &llm, 8);
    let before = dispatcher.stats();

    const PROMPTS_PER_WORKER: usize = 40;
    fan_out(&dispatcher, 8, |t| {
        for i in 0..PROMPTS_PER_WORKER {
            dispatcher
                .complete(&format!("budget probe {t}-{i}"))
                .expect("prompt completes");
        }
    });

    let stats = dispatcher.stats();
    let unique = (8 * PROMPTS_PER_WORKER) as u64;
    assert!(
        stats.hedges_issued > before.hedges_issued,
        "a 3% tail over {unique} prompts must arm hedges: {stats:?}"
    );
    assert_eq!(
        stats.rate_tokens - before.rate_tokens,
        unique,
        "exactly one rate-limit token per winner — hedge copies are free"
    );
    assert_eq!(
        stats.attempts - before.attempts,
        unique + (stats.hedges_issued - before.hedges_issued),
        "every extra endpoint attempt is an accounted hedge duplicate"
    );
    assert_eq!(stats.failures, 0, "heavy-tail injects no errors");
}

/// The aggregate hedge counters are a pure function of the request set:
/// re-running the same registered-worker workload reproduces the whole
/// `BackendStats` (latency sketches included — integer micros only) and
/// the injector's `FaultStats` bit-for-bit, at 1 worker and at 8.
#[test]
fn hedge_counters_are_scheduling_independent() {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    let seed = fault_seed();
    for workers in [1usize, 8] {
        let run = || {
            let dispatcher = Dispatcher::new(&llm, hedged_config(seed));
            warm_estimator(&dispatcher, &llm, 8);
            fan_out(&dispatcher, workers, |t| {
                for i in 0..24 {
                    dispatcher
                        .complete(&format!("schedule probe {t}-{i}"))
                        .expect("prompt completes");
                }
            });
            (dispatcher.stats(), dispatcher.fault_stats().unwrap())
        };
        let (stats_a, faults_a) = run();
        let (stats_b, faults_b) = run();
        assert_eq!(
            stats_a, stats_b,
            "every backend counter (incl. sketches) must reproduce at {workers} workers"
        );
        assert_eq!(
            faults_a, faults_b,
            "the injector's schedule must reproduce at {workers} workers"
        );
        if workers > 1 {
            assert!(
                stats_a.hedges_issued > 0,
                "overlapped waves over a 3% tail must hedge: {stats_a:?}"
            );
        }
    }
}

/// Hedging moves the observed tail, not just counters: on the same
/// heavy-tail schedule, the hedged dispatcher's request-latency P99 (from
/// the exact integer `LatencySketch`) beats the unhedged dispatcher's.
#[test]
fn hedging_cuts_the_observed_p99() {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    let seed = fault_seed();
    let run = |hedge: bool| {
        let mut config = BackendConfig::resilient(seed)
            .without_breaker()
            .with_faults(FaultPlan::heavy_tail(seed))
            .with_pipelined();
        if hedge {
            config = config.with_hedge(HedgePolicy::at_quantile(900).with_min_samples(8));
        }
        let dispatcher = Dispatcher::new(&llm, config);
        warm_estimator(&dispatcher, &llm, 8);
        fan_out(&dispatcher, 8, |t| {
            for i in 0..40 {
                dispatcher
                    .complete(&format!("tail probe {t}-{i}"))
                    .expect("prompt completes");
            }
        });
        dispatcher.stats()
    };
    let plain = run(false);
    let hedged = run(true);
    assert_eq!(plain.hedges_issued, 0, "no policy, no hedges");
    assert!(hedged.hedges_issued > 0);
    let plain_p99 = plain.request_latency.quantile_us(990);
    let hedged_p99 = hedged.request_latency.quantile_us(990);
    assert!(
        hedged_p99 < plain_p99,
        "hedged P99 {hedged_p99}us must beat unhedged P99 {plain_p99}us"
    );
}
