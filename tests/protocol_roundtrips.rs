//! Property tests: the prompt protocol must round-trip arbitrary content.
//!
//! Renderers and parsers live on opposite sides of the text-only interface;
//! these properties guarantee no pipeline state is lost in transit. Inputs
//! are sampled deterministically (see `common::Gen`) — 128 randomized cases
//! per property, reproducible from the fixed seed.

mod common;

use common::Gen;

use unidm_llm::protocol::{
    claim_query_imputation, parse_answer_request, parse_natural_sentence, parse_pcq, parse_pdp,
    parse_pri, parse_pri_response, parse_prm, render_cloze, render_pcq, render_pdp, render_pri,
    render_prm, AnswerPayload, Claim, SerializedRecord, TaskKind,
};

const CASES: usize = 128;

fn record(g: &mut Gen) -> SerializedRecord {
    let n = g.usize(1, 5);
    let mut pairs: Vec<(String, String)> = (0..n).map(|_| (g.attr(), g.value())).collect();
    // Attribute names must be unique within a record.
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    pairs.dedup_by(|a, b| a.0 == b.0);
    SerializedRecord::new(pairs)
}

#[test]
fn serialized_record_roundtrips() {
    let mut g = Gen::new(0x5EC0);
    for _ in 0..CASES {
        let rec = record(&mut g);
        let rendered = rec.render();
        let parsed = SerializedRecord::parse(&rendered).expect("parseable");
        assert_eq!(rec, parsed);
    }
}

#[test]
fn prm_roundtrips() {
    let mut g = Gen::new(0x93a1);
    for _ in 0..CASES {
        let query = g.value();
        let n = g.usize(1, 6);
        let mut unique: Vec<String> = (0..n).map(|_| g.attr()).collect();
        unique.sort();
        unique.dedup();
        let prompt = render_prm(TaskKind::Imputation, &query, &unique);
        let req = parse_prm(&prompt).expect("parseable");
        assert_eq!(req.query, query);
        assert_eq!(req.candidates, unique);
    }
}

#[test]
fn pri_roundtrips() {
    let mut g = Gen::new(0x9714);
    for _ in 0..CASES {
        let query = g.value();
        let n = g.usize(1, 6);
        let recs: Vec<SerializedRecord> = (0..n).map(|_| record(&mut g)).collect();
        let prompt = render_pri(TaskKind::ErrorDetection, &query, &recs);
        let req = parse_pri(&prompt).expect("parseable");
        assert_eq!(req.instances, recs);
    }
}

#[test]
fn pri_response_indices_in_range() {
    let mut g = Gen::new(0x9155);
    for _ in 0..CASES {
        let n = g.usize(1, 20);
        let scores: Vec<u8> = (0..n).map(|_| g.usize(0, 4) as u8).collect();
        let text = scores
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{}:{}", i + 1, s))
            .collect::<Vec<_>>()
            .join(", ");
        let parsed = parse_pri_response(&text);
        assert_eq!(parsed.len(), scores.len());
        for (k, ((i, s), expected)) in parsed.iter().zip(&scores).enumerate() {
            assert_eq!(*i, k);
            assert_eq!(s, expected);
        }
    }
}

#[test]
fn pdp_roundtrips() {
    let mut g = Gen::new(0x9d9);
    for _ in 0..CASES {
        let n = g.usize(1, 5);
        let recs: Vec<SerializedRecord> = (0..n).map(|_| record(&mut g)).collect();
        let prompt = render_pdp(&recs);
        let req = parse_pdp(&prompt).expect("parseable");
        assert_eq!(req.records, recs);
    }
}

#[test]
fn naturalize_preserves_values() {
    let mut g = Gen::new(0x0a70);
    for _ in 0..CASES {
        let rec = record(&mut g);
        let sentence = unidm_llm::protocol::naturalize_record(&rec);
        if let Some(back) = parse_natural_sentence(&sentence) {
            // Every original value must still be present somewhere.
            for (_, v) in &rec.pairs {
                let found = back
                    .pairs
                    .iter()
                    .any(|(_, bv)| bv.contains(v.as_str()) || v.contains(bv.as_str()));
                assert!(found, "value {v:?} lost in {sentence:?} -> {back:?}");
            }
        }
    }
}

#[test]
fn pcq_roundtrips() {
    let mut g = Gen::new(0x9c0);
    for _ in 0..CASES {
        let claim = Claim {
            task: TaskKind::ErrorDetection,
            context: g.value(),
            query: g.value(),
        };
        let back = parse_pcq(&render_pcq(&claim)).expect("parseable");
        assert_eq!(back, claim);
    }
}

#[test]
fn imputation_cloze_preserves_subject_and_attr() {
    let mut g = Gen::new(0xc102e);
    let mut checked = 0usize;
    while checked < CASES {
        let rec = record(&mut g);
        let attr = g.attr();
        if rec.pairs.iter().any(|(a, _)| a.eq_ignore_ascii_case(&attr)) {
            continue;
        }
        // The cloze tail pattern parses attr/subject via " of " and
        // " is __."; exclude subjects that would be ambiguous under that
        // grammar (as a real LLM prompt would phrase such records
        // differently too).
        let subject = rec.subject().unwrap_or("").to_string();
        if subject.contains(" of ") || subject.contains(" is ") || attr.contains("after") {
            continue;
        }
        let claim = Claim {
            task: TaskKind::Imputation,
            context: String::new(),
            query: claim_query_imputation(&rec, &attr),
        };
        let cloze = render_cloze(&claim);
        let req = parse_answer_request(&cloze).expect("parseable");
        match req.payload {
            AnswerPayload::Imputation {
                subject: s,
                attr: a,
                ..
            } => {
                assert_eq!(a, attr);
                assert_eq!(s, subject);
            }
            p => panic!("wrong payload {p:?}"),
        }
        checked += 1;
    }
}
