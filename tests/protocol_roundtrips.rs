//! Property tests: the prompt protocol must round-trip arbitrary content.
//!
//! Renderers and parsers live on opposite sides of the text-only interface;
//! these properties guarantee no pipeline state is lost in transit.

use proptest::prelude::*;

use unidm_llm::protocol::{
    claim_query_imputation, parse_answer_request, parse_natural_sentence, parse_pcq, parse_pdp,
    parse_pri, parse_pri_response, parse_prm, render_cloze, render_pcq, render_pdp, render_pri,
    render_prm, AnswerPayload, Claim, SerializedRecord, TaskKind,
};

/// Attribute names: lowercase identifiers.
fn attr_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z_]{0,10}"
}

/// Values: printable text without the protocol's reserved separators.
fn value_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z0-9][A-Za-z0-9 .,'/-]{0,24}"
        .prop_map(|s| s.trim().to_string())
        .prop_filter("non-empty, no separators", |s| {
            !s.is_empty() && !s.contains("; ") && !s.contains(": ") && !s.contains(" and ")
        })
}

fn record_strategy() -> impl Strategy<Value = SerializedRecord> {
    proptest::collection::vec((attr_strategy(), value_strategy()), 1..5).prop_map(|mut pairs| {
        // Attribute names must be unique within a record.
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        pairs.dedup_by(|a, b| a.0 == b.0);
        SerializedRecord::new(pairs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn serialized_record_roundtrips(rec in record_strategy()) {
        let rendered = rec.render();
        let parsed = SerializedRecord::parse(&rendered).expect("parseable");
        prop_assert_eq!(rec, parsed);
    }

    #[test]
    fn prm_roundtrips(query in value_strategy(), attrs in proptest::collection::vec(attr_strategy(), 1..6)) {
        let mut unique = attrs.clone();
        unique.sort();
        unique.dedup();
        let prompt = render_prm(TaskKind::Imputation, &query, &unique);
        let req = parse_prm(&prompt).expect("parseable");
        prop_assert_eq!(req.query, query);
        prop_assert_eq!(req.candidates, unique);
    }

    #[test]
    fn pri_roundtrips(query in value_strategy(), recs in proptest::collection::vec(record_strategy(), 1..6)) {
        let prompt = render_pri(TaskKind::ErrorDetection, &query, &recs);
        let req = parse_pri(&prompt).expect("parseable");
        prop_assert_eq!(req.instances, recs);
    }

    #[test]
    fn pri_response_indices_in_range(scores in proptest::collection::vec(0u8..=3, 1..20)) {
        let text = scores
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{}:{}", i + 1, s))
            .collect::<Vec<_>>()
            .join(", ");
        let parsed = parse_pri_response(&text);
        prop_assert_eq!(parsed.len(), scores.len());
        for (k, ((i, s), expected)) in parsed.iter().zip(&scores).enumerate() {
            prop_assert_eq!(*i, k);
            prop_assert_eq!(s, expected);
        }
    }

    #[test]
    fn pdp_roundtrips(recs in proptest::collection::vec(record_strategy(), 1..5)) {
        let prompt = render_pdp(&recs);
        let req = parse_pdp(&prompt).expect("parseable");
        prop_assert_eq!(req.records, recs);
    }

    #[test]
    fn naturalize_preserves_values(rec in record_strategy()) {
        let sentence = unidm_llm::protocol::naturalize_record(&rec);
        if let Some(back) = parse_natural_sentence(&sentence) {
            // Every original value must still be present somewhere.
            for (_, v) in &rec.pairs {
                let found = back.pairs.iter().any(|(_, bv)| bv.contains(v.as_str()) || v.contains(bv.as_str()));
                prop_assert!(found, "value {:?} lost in {:?} -> {:?}", v, sentence, back);
            }
        }
    }

    #[test]
    fn pcq_roundtrips(context in value_strategy(), query in value_strategy()) {
        let claim = Claim { task: TaskKind::ErrorDetection, context, query };
        let back = parse_pcq(&render_pcq(&claim)).expect("parseable");
        prop_assert_eq!(back, claim);
    }

    #[test]
    fn imputation_cloze_preserves_subject_and_attr(
        rec in record_strategy(),
        attr in attr_strategy(),
    ) {
        prop_assume!(!rec.pairs.iter().any(|(a, _)| a.eq_ignore_ascii_case(&attr)));
        // The cloze tail pattern parses attr/subject via " of " and " is __.";
        // exclude subjects that would be ambiguous under that grammar (as a
        // real LLM prompt would phrase such records differently too).
        let subject = rec.subject().unwrap_or("").to_string();
        prop_assume!(!subject.contains(" of ") && !subject.contains(" is "));
        prop_assume!(!attr.contains("after"));
        let claim = Claim {
            task: TaskKind::Imputation,
            context: String::new(),
            query: claim_query_imputation(&rec, &attr),
        };
        let cloze = render_cloze(&claim);
        let req = parse_answer_request(&cloze).expect("parseable");
        match req.payload {
            AnswerPayload::Imputation { subject: s, attr: a, .. } => {
                prop_assert_eq!(a, attr);
                prop_assert_eq!(s, subject);
            }
            p => prop_assert!(false, "wrong payload {:?}", p),
        }
    }
}
