//! Acceptance tests for the resilient backend substrate under seeded
//! fault injection.
//!
//! The contract (ISSUE 3): under any seeded fault schedule — timeouts,
//! 429 rate limits, transient 5xx errors, latency spikes — a batched run
//! through [`SimBackend`] completes with answers bit-identical to the
//! fault-free serial run; re-running the same seed reproduces identical
//! retry/breaker statistics; and cache hits consume zero rate-limit
//! budget.
//!
//! The fault-schedule seed honors `UNIDM_FAULT_SEED` (CI runs the suite at
//! two distinct seeds), so schedule sensitivity is exercised on every
//! push.

use unidm::backend::{BackendConfig, BackendStats, RetryPolicy};
use unidm::{BatchRunner, CanonLevel, PipelineConfig, PromptCache, Task};
use unidm_llm::{FaultPlan, LanguageModel, LlmProfile, MockLlm, Usage};
use unidm_synthdata::imputation;
use unidm_tablestore::DataLake;
use unidm_world::World;

const WORKLOAD: usize = 40;

/// The fault-schedule seed: `UNIDM_FAULT_SEED` when set (the CI matrix
/// runs two), 7 otherwise.
fn fault_seed() -> u64 {
    std::env::var("UNIDM_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

fn workload() -> (World, MockLlm, DataLake, Vec<Task>) {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    let ds = imputation::restaurant(&world, 42, WORKLOAD);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let tasks: Vec<Task> = ds
        .targets
        .iter()
        .map(|t| {
            Task::imputation(
                ds.table.name(),
                t.row,
                ds.target_attr.clone(),
                ds.key_attr.clone(),
            )
        })
        .collect();
    (world, llm, lake, tasks)
}

/// A full protection stack for tests: default breaker, a rate limit, and
/// a retry budget deep enough that no interleaving of breaker fast-fails
/// can exhaust it (virtual-clock backoff is free).
fn stack_config(seed: u64, plan: FaultPlan) -> BackendConfig {
    BackendConfig::resilient(seed)
        .with_faults(plan)
        .with_rate_limit(500, 50)
        .with_retry(RetryPolicy {
            max_retries: 32,
            ..RetryPolicy::default()
        })
}

#[test]
fn batched_faulty_answers_are_bit_identical_to_fault_free_serial() {
    let (_, llm, lake, tasks) = workload();
    let pipeline = PipelineConfig::paper_default().with_seed(42);
    let baseline = BatchRunner::new(&llm, pipeline)
        .with_workers(1)
        .answers(&lake, &tasks);

    let base_seed = fault_seed();
    for seed in [base_seed, base_seed + 1] {
        for plan in [
            FaultPlan::light(seed),
            FaultPlan::moderate(seed),
            FaultPlan::heavy(seed),
            FaultPlan::always_faulty(seed, 5),
        ] {
            let backend = stack_config(seed, plan).wrap(&llm);
            let cache = PromptCache::unbounded(backend.model())
                .with_canonicalization(CanonLevel::TableStem);
            let answers = BatchRunner::new(&cache, pipeline)
                .with_workers(4)
                .answers(&lake, &tasks);
            assert_eq!(
                answers, baseline,
                "plan {plan:?} changed answers despite retries"
            );
            let stats = backend.stats().expect("backend enabled");
            assert_eq!(stats.failures, 0, "plan {plan:?}: every call completes");
            if plan.timeout_permille + plan.rate_limit_permille + plan.transient_permille > 100 {
                assert!(
                    stats.retries > 0,
                    "plan {plan:?} should actually have injected faults: {stats:?}"
                );
            }
        }
    }
}

#[test]
fn rerunning_the_same_seed_reproduces_identical_statistics() {
    let (_, llm, lake, tasks) = workload();
    let pipeline = PipelineConfig::paper_default().with_seed(42);
    let seed = fault_seed();
    let run = || {
        let backend = stack_config(seed, FaultPlan::heavy(seed)).wrap(&llm);
        let cache =
            PromptCache::unbounded(backend.model()).with_canonicalization(CanonLevel::TableStem);
        let answers = BatchRunner::new(&cache, pipeline)
            .with_workers(1)
            .answers(&lake, &tasks);
        (
            answers,
            backend.stats().expect("backend enabled"),
            backend.fault_stats().expect("faults configured"),
            backend.elapsed_us(),
            cache.stats(),
        )
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "a serial re-run of the same seed must reproduce every retry, trip, \
         wait and injection counter exactly"
    );
    assert!(
        first.1.retries > 0,
        "heavy plan must exercise the retry loop"
    );
}

#[test]
fn aggregate_retry_statistics_are_scheduling_independent() {
    // Fault outcomes are consumed from a fixed per-prompt schedule, so the
    // schedule-driven counters must not depend on thread interleaving.
    // (Breaker and throttle counters are order-sensitive, so this runs
    // breaker-less and compares only the schedule-driven ones.)
    let (_, llm, lake, tasks) = workload();
    let pipeline = PipelineConfig::paper_default().with_seed(42);
    let seed = fault_seed();
    let run = |workers: usize| {
        let config = stack_config(seed, FaultPlan::moderate(seed)).without_breaker();
        let backend = config.wrap(&llm);
        let answers = BatchRunner::new(backend.model(), pipeline)
            .with_workers(workers)
            .answers(&lake, &tasks);
        (answers, backend.stats().expect("backend enabled"))
    };
    let (serial_answers, serial) = run(1);
    let (parallel_answers, parallel) = run(6);
    assert_eq!(serial_answers, parallel_answers);
    for (name, a, b) in [
        ("calls", serial.calls, parallel.calls),
        ("attempts", serial.attempts, parallel.attempts),
        ("retries", serial.retries, parallel.retries),
        ("timeouts", serial.timeouts, parallel.timeouts),
        ("rate_limited", serial.rate_limited, parallel.rate_limited),
        ("transients", serial.transients, parallel.transients),
        ("failures", serial.failures, parallel.failures),
    ] {
        assert_eq!(a, b, "{name} must be scheduling-independent");
    }
}

#[test]
fn cache_hits_consume_zero_rate_limit_budget() {
    let (world, llm, lake, tasks) = workload();
    let pipeline = PipelineConfig::paper_default().with_seed(42);
    let seed = fault_seed();

    // Cold run: populate the cache through the full faulty stack.
    let cold_backend = stack_config(seed, FaultPlan::moderate(seed)).wrap(&llm);
    let cold_cache =
        PromptCache::unbounded(cold_backend.model()).with_canonicalization(CanonLevel::TableStem);
    let cold = BatchRunner::new(&cold_cache, pipeline)
        .with_workers(4)
        .answers(&lake, &tasks);
    assert!(cold_backend.stats().expect("enabled").attempts > 0);
    let snapshot = cold_cache.snapshot();

    // Warm run: a fresh model, backend and cache restored from the
    // snapshot. Every lookup hits, so nothing may reach the backend — no
    // calls, no attempts, no rate-limit tokens, no retries.
    let fresh_llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    let warm_backend = stack_config(seed, FaultPlan::moderate(seed)).wrap(&fresh_llm);
    let warm_cache =
        PromptCache::unbounded(warm_backend.model()).with_canonicalization(CanonLevel::TableStem);
    warm_cache.restore(&snapshot).expect("snapshot restores");
    let warm = BatchRunner::new(&warm_cache, pipeline)
        .with_workers(4)
        .answers(&lake, &tasks);

    assert_eq!(warm, cold, "warm answers match the cold faulty run");
    assert!(warm_cache.stats().hits > 0, "warm run must hit");
    assert_eq!(warm_cache.stats().misses, 0, "fully warm replay");
    assert_eq!(
        warm_backend.stats().expect("enabled"),
        BackendStats::default(),
        "cache hits must consume zero backend budget of any kind"
    );
    assert_eq!(
        fresh_llm.usage(),
        Usage::default(),
        "the inner model is never consulted on a warm run"
    );
}

#[test]
fn eval_tables_survive_fault_injection() {
    // The eval wiring: a driver run with ExperimentConfig::backend enabled
    // reproduces the fault-free table exactly.
    use unidm_eval::{imputation::table1, ExperimentConfig};

    let seed = fault_seed();
    let plain = table1(ExperimentConfig::quick());
    let faulty = table1(
        ExperimentConfig::quick().with_backend(stack_config(seed, FaultPlan::moderate(seed))),
    );
    for ds in ["Restaurant", "Buy"] {
        for row in ["UniDM", "UniDM (random)", "FM (random)", "FM (manual)"] {
            assert_eq!(
                plain.cell(row, ds),
                faulty.cell(row, ds),
                "{row}/{ds}: fault injection must not move a paper number"
            );
        }
    }
}

#[test]
fn batch_isolates_per_task_failures_under_faults() {
    // A poisoned task (missing table) fails cleanly while its neighbours
    // complete with correct answers through the faulty stack.
    let (_, llm, lake, mut tasks) = workload();
    let pipeline = PipelineConfig::paper_default().with_seed(42);
    let baseline = BatchRunner::new(&llm, pipeline)
        .with_workers(1)
        .run(&lake, &tasks);
    tasks.insert(5, Task::imputation("no_such_table", 0, "a", "b"));

    let seed = fault_seed();
    let backend = stack_config(seed, FaultPlan::heavy(seed)).wrap(&llm);
    let results = BatchRunner::new(backend.model(), pipeline)
        .with_workers(4)
        .run(&lake, &tasks);
    assert!(results[5].is_err(), "poisoned slot fails");
    for (i, r) in results.iter().enumerate() {
        if i == 5 {
            continue;
        }
        let baseline_i = if i < 5 { i } else { i - 1 };
        assert_eq!(
            r.as_ref().expect("healthy slot completes").answer,
            baseline[baseline_i].as_ref().unwrap().answer,
            "slot {i} answer must survive faults around a poisoned neighbour"
        );
    }
}
