//! Property tests over substrate invariants: metrics, distances, the table
//! store, program induction, and the deterministic dice.

use proptest::prelude::*;

use unidm_baselines::tde;
use unidm_eval::metrics::{at_threshold, text_f1, Confusion};
use unidm_llm::{Dice, KnowledgeBase};
use unidm_tablestore::{csv, Table, Value};
use unidm_text::distance::{jaccard, jaro_winkler, levenshtein, normalized_levenshtein};
use unidm_text::Embedder;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn levenshtein_is_a_metric(a in ".{0,24}", b in ".{0,24}", c in ".{0,24}") {
        // Identity, symmetry, triangle inequality.
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn similarity_scores_bounded(a in ".{0,30}", b in ".{0,30}") {
        for s in [normalized_levenshtein(&a, &b), jaro_winkler(&a, &b), jaccard(&a, &b)] {
            prop_assert!((0.0..=1.0).contains(&s), "{s}");
        }
    }

    #[test]
    fn embedding_cosine_bounded_and_reflexive(a in ".{1,40}", b in ".{1,40}") {
        let e = Embedder::default();
        let ea = e.embed(&a);
        let eb = e.embed(&b);
        let sim = ea.cosine(&eb);
        prop_assert!((-1.0..=1.0).contains(&sim));
        if ea.norm() > 0.0 {
            prop_assert!((ea.cosine(&ea) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn token_count_monotone(a in ".{0,60}", b in ".{0,60}") {
        let joined = format!("{a}{b}");
        prop_assert!(unidm_text::count_tokens(&joined) + 1 >= unidm_text::count_tokens(&a));
    }

    #[test]
    fn confusion_f1_bounded(tp in 0usize..200, fp in 0usize..200, fn_ in 0usize..200, tn in 0usize..200) {
        let c = Confusion { tp, fp, fn_, tn };
        prop_assert!((0.0..=1.0).contains(&c.precision()));
        prop_assert!((0.0..=1.0).contains(&c.recall()));
        prop_assert!((0.0..=1.0).contains(&c.f1()));
        // F1 is the harmonic mean: it lies between precision and recall.
        let lo = c.precision().min(c.recall());
        let hi = c.precision().max(c.recall());
        if c.tp + c.fp + c.fn_ > 0 && c.f1() > 0.0 {
            prop_assert!(c.f1() + 1e-9 >= lo && c.f1() <= hi + 1e-9);
        }
    }

    #[test]
    fn threshold_monotonicity(scored in proptest::collection::vec((0.0f64..1.0, any::<bool>()), 1..50)) {
        // Raising the threshold can only reduce predicted positives.
        let low = at_threshold(&scored, 0.2);
        let high = at_threshold(&scored, 0.8);
        prop_assert!(low.tp + low.fp >= high.tp + high.fp);
    }

    #[test]
    fn text_f1_symmetric_and_bounded(a in "[a-z ]{0,30}", b in "[a-z ]{0,30}") {
        let f = text_f1(&a, &b);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!((f - text_f1(&b, &a)).abs() < 1e-9, "precision/recall swap symmetry");
    }

    #[test]
    fn csv_roundtrip(rows in proptest::collection::vec(
        proptest::collection::vec("[A-Za-z0-9 ,\"\n.']{0,16}", 3..4), 0..8)
    ) {
        let mut t = Table::builder("t").columns(["a", "b", "c"]).build();
        for row in &rows {
            t.push_row(row.iter().map(|c| Value::text(c.clone())).collect()).unwrap();
        }
        let text = csv::to_csv(&t);
        let back = csv::from_csv("t", &text).expect("roundtrip parse");
        prop_assert_eq!(back.row_count(), t.row_count());
        for (i, row) in rows.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                let attr = ["a", "b", "c"][j];
                // Values re-parse by type; compare canonical text forms.
                let expected = Value::parse(cell);
                prop_assert_eq!(back.cell(i, attr).unwrap().answer_key(), expected.answer_key());
            }
        }
    }

    #[test]
    fn dice_is_pure(seed in any::<u64>(), ctx in ".{0,20}", tag in "[a-z]{1,8}", p in 0.0f64..1.0) {
        let d1 = Dice::new(seed);
        let d2 = Dice::new(seed);
        prop_assert_eq!(d1.uniform(&ctx, &tag), d2.uniform(&ctx, &tag));
        prop_assert_eq!(d1.chance(&ctx, &tag, p), d2.chance(&ctx, &tag, p));
    }

    #[test]
    fn tde_program_reproduces_its_examples(
        year in 1980u32..2024, month in 1u32..13, day in 1u32..29,
        year2 in 1980u32..2024, month2 in 1u32..13, day2 in 1u32..29,
    ) {
        // Synthesize from two iso→us date examples, then verify the program
        // reproduces both training outputs exactly (soundness of search).
        let mk = |y: u32, m: u32, d: u32| (format!("{y}-{m:02}-{d:02}"), format!("{m:02}/{d:02}/{y}"));
        let examples = vec![mk(year, month, day), mk(year2, month2, day2)];
        if let Some(prog) = tde::synthesize(&examples) {
            for (i, o) in &examples {
                let got = prog.apply(i);
                prop_assert_eq!(got.as_deref(), Some(o.as_str()));
            }
        }
    }

    #[test]
    fn llm_induction_is_sound(
        first in "[a-z]{2,8}", last in "[a-z]{2,8}",
        first2 in "[a-z]{2,8}", last2 in "[a-z]{2,8}",
    ) {
        // Whatever program induction finds must reproduce the examples.
        let kb = KnowledgeBase::empty();
        let examples = vec![
            (format!("{first} {last}"), format!("{last}, {first}")),
            (format!("{first2} {last2}"), format!("{last2}, {first2}")),
        ];
        if let Some(prog) = unidm_llm::skills::induce::induce(&examples, &kb) {
            for (i, o) in &examples {
                let got = prog.apply(i, &kb);
                prop_assert_eq!(got.as_deref(), Some(o.as_str()));
            }
        }
    }
}
