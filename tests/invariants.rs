//! Property tests over substrate invariants: metrics, distances, the table
//! store, program induction, and the deterministic dice.
//!
//! Inputs are sampled deterministically (see `common::Gen`) — 128
//! randomized cases per invariant, reproducible from the fixed seed.

mod common;

use common::{Gen, ANY};

use unidm_baselines::tde;
use unidm_eval::metrics::{at_threshold, text_f1, Confusion};
use unidm_llm::{Dice, KnowledgeBase};
use unidm_tablestore::{csv, Table, Value};
use unidm_text::distance::{jaccard, jaro_winkler, levenshtein, normalized_levenshtein};
use unidm_text::Embedder;

const CASES: usize = 128;

#[test]
fn levenshtein_is_a_metric() {
    let mut g = Gen::new(0x1e7);
    for _ in 0..CASES {
        let a = g.string(ANY, 24);
        let b = g.string(ANY, 24);
        let c = g.string(ANY, 24);
        // Identity, symmetry, triangle inequality.
        assert_eq!(levenshtein(&a, &a), 0);
        assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }
}

#[test]
fn similarity_scores_bounded() {
    let mut g = Gen::new(0x51);
    for _ in 0..CASES {
        let a = g.string(ANY, 30);
        let b = g.string(ANY, 30);
        for s in [
            normalized_levenshtein(&a, &b),
            jaro_winkler(&a, &b),
            jaccard(&a, &b),
        ] {
            assert!((0.0..=1.0).contains(&s), "{s}");
        }
    }
}

#[test]
fn embedding_cosine_bounded_and_reflexive() {
    let mut g = Gen::new(0xe3bed);
    let e = Embedder::default();
    for _ in 0..CASES {
        let a = {
            let mut s = g.string(ANY, 39);
            s.push('x');
            s
        };
        let b = {
            let mut s = g.string(ANY, 39);
            s.push('y');
            s
        };
        let ea = e.embed(&a);
        let eb = e.embed(&b);
        let sim = ea.cosine(&eb);
        assert!((-1.0..=1.0).contains(&sim));
        if ea.norm() > 0.0 {
            assert!((ea.cosine(&ea) - 1.0).abs() < 1e-5);
        }
    }
}

#[test]
fn token_count_monotone() {
    let mut g = Gen::new(0x70c);
    for _ in 0..CASES {
        let a = g.string(ANY, 60);
        let b = g.string(ANY, 60);
        let joined = format!("{a}{b}");
        assert!(unidm_text::count_tokens(&joined) + 1 >= unidm_text::count_tokens(&a));
    }
}

#[test]
fn confusion_f1_bounded() {
    let mut g = Gen::new(0xf1);
    for _ in 0..CASES {
        let c = Confusion {
            tp: g.usize(0, 200),
            fp: g.usize(0, 200),
            fn_: g.usize(0, 200),
            tn: g.usize(0, 200),
        };
        assert!((0.0..=1.0).contains(&c.precision()));
        assert!((0.0..=1.0).contains(&c.recall()));
        assert!((0.0..=1.0).contains(&c.f1()));
        // F1 is the harmonic mean: it lies between precision and recall.
        let lo = c.precision().min(c.recall());
        let hi = c.precision().max(c.recall());
        if c.tp + c.fp + c.fn_ > 0 && c.f1() > 0.0 {
            assert!(c.f1() + 1e-9 >= lo && c.f1() <= hi + 1e-9);
        }
    }
}

#[test]
fn threshold_monotonicity() {
    let mut g = Gen::new(0x7412);
    for _ in 0..CASES {
        let n = g.usize(1, 50);
        let scored: Vec<(f64, bool)> = (0..n).map(|_| (g.f64(0.0, 1.0), g.bool())).collect();
        // Raising the threshold can only reduce predicted positives.
        let low = at_threshold(&scored, 0.2);
        let high = at_threshold(&scored, 0.8);
        assert!(low.tp + low.fp >= high.tp + high.fp);
    }
}

#[test]
fn text_f1_symmetric_and_bounded() {
    let mut g = Gen::new(0x7e8);
    for _ in 0..CASES {
        let a = g.string("abcdefghijklmnopqrstuvwxyz ", 30);
        let b = g.string("abcdefghijklmnopqrstuvwxyz ", 30);
        let f = text_f1(&a, &b);
        assert!((0.0..=1.0).contains(&f));
        assert!(
            (f - text_f1(&b, &a)).abs() < 1e-9,
            "precision/recall swap symmetry"
        );
    }
}

#[test]
fn csv_roundtrip() {
    let mut g = Gen::new(0xc5f);
    const CELL: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 ,\"\n.'";
    for _ in 0..CASES {
        let n_rows = g.usize(0, 8);
        let rows: Vec<Vec<String>> = (0..n_rows)
            .map(|_| (0..3).map(|_| g.string(CELL, 16)).collect())
            .collect();
        let mut t = Table::builder("t").columns(["a", "b", "c"]).build();
        for row in &rows {
            t.push_row(row.iter().map(|c| Value::text(c.clone())).collect())
                .unwrap();
        }
        let text = csv::to_csv(&t);
        let back = csv::from_csv("t", &text).expect("roundtrip parse");
        assert_eq!(back.row_count(), t.row_count());
        for (i, row) in rows.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                let attr = ["a", "b", "c"][j];
                // Values re-parse by type; compare canonical text forms.
                let expected = Value::parse(cell);
                assert_eq!(
                    back.cell(i, attr).unwrap().answer_key(),
                    expected.answer_key()
                );
            }
        }
    }
}

#[test]
fn dice_is_pure() {
    let mut g = Gen::new(0xd1ce);
    for _ in 0..CASES {
        let seed = g.u64();
        let ctx = g.string(ANY, 20);
        let tag = {
            let mut t = g.chars_from("abcdefghijklmnopqrstuvwxyz", 1);
            t.push_str(&g.string("abcdefghijklmnopqrstuvwxyz", 7));
            t
        };
        let p = g.f64(0.0, 1.0);
        let d1 = Dice::new(seed);
        let d2 = Dice::new(seed);
        assert_eq!(d1.uniform(&ctx, &tag), d2.uniform(&ctx, &tag));
        assert_eq!(d1.chance(&ctx, &tag, p), d2.chance(&ctx, &tag, p));
    }
}

#[test]
fn tde_program_reproduces_its_examples() {
    let mut g = Gen::new(0x7de);
    for _ in 0..CASES {
        let mk = |g: &mut Gen| {
            let y = g.usize(1980, 2024) as u32;
            let m = g.usize(1, 13) as u32;
            let d = g.usize(1, 29) as u32;
            (format!("{y}-{m:02}-{d:02}"), format!("{m:02}/{d:02}/{y}"))
        };
        // Synthesize from two iso→us date examples, then verify the program
        // reproduces both training outputs exactly (soundness of search).
        let examples = vec![mk(&mut g), mk(&mut g)];
        if let Some(prog) = tde::synthesize(&examples) {
            for (i, o) in &examples {
                let got = prog.apply(i);
                assert_eq!(got.as_deref(), Some(o.as_str()));
            }
        }
    }
}

#[test]
fn llm_induction_is_sound() {
    let mut g = Gen::new(0x1d0ce);
    let name = |g: &mut Gen| {
        let len = g.usize(2, 9);
        g.chars_from("abcdefghijklmnopqrstuvwxyz", len)
    };
    for _ in 0..CASES {
        // Whatever program induction finds must reproduce the examples.
        let kb = KnowledgeBase::empty();
        let (first, last) = (name(&mut g), name(&mut g));
        let (first2, last2) = (name(&mut g), name(&mut g));
        let examples = vec![
            (format!("{first} {last}"), format!("{last}, {first}")),
            (format!("{first2} {last2}"), format!("{last2}, {first2}")),
        ];
        if let Some(prog) = unidm_llm::skills::induce::induce(&examples, &kb) {
            for (i, o) in &examples {
                let got = prog.apply(i, &kb);
                assert_eq!(got.as_deref(), Some(o.as_str()));
            }
        }
    }
}
