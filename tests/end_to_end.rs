//! Cross-crate integration tests: generator → pipeline → metrics.

use unidm::{PipelineConfig, Task, UniDm};
use unidm_eval::metrics::answers_match;
use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
use unidm_synthdata::{imputation, matching, tableqa};
use unidm_tablestore::DataLake;
use unidm_world::World;

fn setup() -> (World, MockLlm) {
    let world = World::generate(1234);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 1234);
    (world, llm)
}

#[test]
fn whole_experiment_is_deterministic() {
    let run = || {
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 9, 20);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let unidm = UniDm::new(&llm, PipelineConfig::paper_default().with_seed(9));
        ds.targets
            .iter()
            .map(|t| {
                unidm
                    .run(
                        &lake,
                        &Task::imputation("restaurants", t.row, "city", "name"),
                    )
                    .unwrap()
                    .answer
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "same seed, same world, same answers");
}

#[test]
fn pipeline_beats_no_context_on_restaurants() {
    let (world, llm) = setup();
    let ds = imputation::restaurant(&world, 9, 40);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let score = |config: PipelineConfig| {
        let unidm = UniDm::new(&llm, config);
        ds.targets
            .iter()
            .filter(|t| {
                let out = unidm
                    .run(
                        &lake,
                        &Task::imputation("restaurants", t.row, "city", "name"),
                    )
                    .unwrap();
                answers_match(&out.answer, &t.truth.to_string())
            })
            .count()
    };
    let full = score(PipelineConfig::paper_default().with_seed(9));
    let bare = score(PipelineConfig::all_off().with_seed(9));
    assert!(full >= bare, "full pipeline {full} vs bare {bare}");
    assert!(full >= 30, "full pipeline should be strong: {full}/40");
}

#[test]
fn usage_accounting_is_consistent() {
    let (world, llm) = setup();
    let ds = imputation::buy(&world, 9, 5);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let unidm = UniDm::new(&llm, PipelineConfig::paper_default().with_seed(9));
    llm.reset_usage();
    let mut sum = 0usize;
    for t in &ds.targets {
        let out = unidm
            .run(
                &lake,
                &Task::imputation("buy", t.row, "manufacturer", "name"),
            )
            .unwrap();
        assert!(out.usage.total() > 0);
        sum += out.usage.total();
    }
    assert_eq!(
        sum,
        llm.usage().total(),
        "per-run deltas must add up to the model's cumulative counter"
    );
}

#[test]
fn er_task_handles_all_four_benchmarks() {
    let (world, llm) = setup();
    let unidm = UniDm::new(&llm, PipelineConfig::paper_default().with_seed(9));
    let lake = DataLake::new();
    for ds in [
        matching::beer(&world, 9),
        matching::amazon_google(&world, 9),
        matching::itunes_amazon(&world, 9),
        matching::walmart_amazon(&world, 9),
    ] {
        let pair = &ds.pairs[0];
        let task = Task::EntityResolution {
            a: unidm_eval::matching::to_serialized(&ds.schema, &pair.a),
            b: unidm_eval::matching::to_serialized(&ds.schema, &pair.b),
            pool: Vec::new(),
        };
        let out = unidm.run(&lake, &task).unwrap();
        let ans = out.answer.trim().to_lowercase();
        assert!(ans == "yes" || ans == "no", "{}: got {ans}", ds.name);
    }
}

#[test]
fn tableqa_walkthrough_matches_figure3() {
    let (world, llm) = setup();
    let ds = tableqa::medals(&world, 9, 8, 12);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let unidm = UniDm::new(&llm, PipelineConfig::paper_default().with_seed(9));
    let correct = ds
        .questions
        .iter()
        .filter(|q| {
            let out = unidm
                .run(
                    &lake,
                    &Task::TableQa {
                        table: "medals".into(),
                        question: q.question.clone(),
                    },
                )
                .unwrap();
            out.answer == q.answer.to_string()
        })
        .count();
    assert!(
        correct * 10 >= ds.questions.len() * 7,
        "correct {correct}/12"
    );
}

#[test]
fn weaker_model_is_not_better() {
    let world = World::generate(1234);
    let strong = MockLlm::new(&world, LlmProfile::gpt4_turbo(), 1234);
    let weak = MockLlm::new(&world, LlmProfile::gptj_6b(), 1234);
    let ds = imputation::restaurant(&world, 9, 40);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let score = |llm: &dyn LanguageModel| {
        let unidm = UniDm::new(llm, PipelineConfig::paper_default().with_seed(9));
        ds.targets
            .iter()
            .filter(|t| {
                let out = unidm
                    .run(
                        &lake,
                        &Task::imputation("restaurants", t.row, "city", "name"),
                    )
                    .unwrap();
                answers_match(&out.answer, &t.truth.to_string())
            })
            .count()
    };
    let s = score(&strong);
    let w = score(&weak);
    assert!(s >= w, "GPT-4-level {s} vs GPT-J-level {w}");
}

#[test]
fn extraction_task_end_to_end() {
    let (world, llm) = setup();
    let ds = unidm_synthdata::extraction::nba_players(&world, 9);
    let unidm = UniDm::new(&llm, PipelineConfig::paper_default().with_seed(9));
    let lake = DataLake::new();
    let mut f1_sum = 0.0;
    let n = 20.min(ds.len());
    for (doc, truth) in ds.docs.iter().zip(&ds.truth).take(n) {
        let task = Task::Extraction {
            document: doc.text.clone(),
            attr: "height".into(),
        };
        let answer = unidm.run(&lake, &task).unwrap().answer;
        let answer = if answer == "unknown" {
            String::new()
        } else {
            answer
        };
        f1_sum += unidm_eval::metrics::text_f1(&answer, &truth["height"]);
    }
    assert!(
        f1_sum / n as f64 > 0.5,
        "height extraction mean F1 {:.2}",
        f1_sum / n as f64
    );
}
