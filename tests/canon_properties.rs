//! Property tests for `unidm::canon`: seeded-generator checks that
//! canonicalization is idempotent, insensitive to insignificant whitespace
//! at `CanonLevel::Whitespace` and above, and that `PromptKey::hash64` is
//! a pure, stable function of the key — equal for equal keys, unchanged by
//! cache configuration such as shard count, and pinned to golden values so
//! cross-run (and cross-platform) stability cannot silently regress.

mod common;

use common::Gen;

use unidm::{CanonLevel, PromptCache, PromptKey};
use unidm_llm::protocol::{
    render_pcq, render_pdp, render_pri, render_prm, Claim, SerializedRecord, TaskKind,
};
use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
use unidm_world::World;

const CASES: usize = 128;

/// A random prompt in one of the recognized shapes (or an unstructured
/// one), built from protocol-safe attribute/value strings.
fn random_prompt(g: &mut Gen) -> String {
    let task = *[
        TaskKind::Imputation,
        TaskKind::ErrorDetection,
        TaskKind::TableQa,
    ]
    .get(g.usize(0, 3))
    .unwrap();
    let records = || -> Vec<SerializedRecord> {
        vec![SerializedRecord::new(vec![
            ("city".into(), "Alicante".into()),
            ("country".into(), "Spain".into()),
        ])]
    };
    match g.usize(0, 5) {
        0 => {
            let candidates = vec![g.attr(), g.attr()];
            render_prm(task, &format!("{}, {}", g.value(), g.attr()), &candidates)
        }
        1 => render_pri(task, &g.value(), &records()),
        2 => render_pdp(&records()),
        3 => render_pcq(&Claim {
            task,
            context: format!("{} belongs to the country {}.", g.value(), g.value()),
            query: format!("city: {}; country: ?", g.value()),
        }),
        _ => {
            let mut lines = Vec::new();
            for _ in 0..g.usize(1, 4) {
                lines.push(format!("{} {}", g.value(), g.value()));
            }
            lines.join("\n")
        }
    }
}

/// Mangles only *insignificant* whitespace: inflates blank runs, pads line
/// edges, and wraps the prompt in blank lines — exactly what
/// `CanonLevel::Whitespace` normalization is specified to erase.
fn mangle_whitespace(g: &mut Gen, prompt: &str) -> String {
    let mut out = String::new();
    for _ in 0..g.usize(0, 3) {
        out.push('\n');
    }
    for (i, line) in prompt.lines().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        for _ in 0..g.usize(0, 3) {
            out.push(if g.bool() { ' ' } else { '\t' });
        }
        for ch in line.chars() {
            if ch == ' ' {
                for _ in 0..g.usize(1, 4) {
                    out.push(if g.bool() { ' ' } else { '\t' });
                }
            } else {
                out.push(ch);
            }
        }
        for _ in 0..g.usize(0, 3) {
            out.push(' ');
        }
    }
    for _ in 0..g.usize(0, 3) {
        out.push('\n');
    }
    out
}

#[test]
fn canonicalization_is_idempotent_on_random_prompts() {
    let mut g = Gen::new(0xca01);
    for _ in 0..CASES {
        let prompt = random_prompt(&mut g);
        for level in [
            CanonLevel::Verbatim,
            CanonLevel::Whitespace,
            CanonLevel::TableStem,
            CanonLevel::Semantic,
        ] {
            let once = PromptKey::canonicalize(&prompt, level);
            let twice = PromptKey::canonicalize(&once.text(), level);
            assert_eq!(once, twice, "idempotence at {level} for {prompt:?}");
            assert_eq!(
                once.hash64(),
                twice.hash64(),
                "equal keys must hash equal at {level}"
            );
        }
    }
}

#[test]
fn whitespace_mangling_never_changes_the_key() {
    let mut g = Gen::new(0xca02);
    for _ in 0..CASES {
        let prompt = random_prompt(&mut g);
        let mangled = mangle_whitespace(&mut g, &prompt);
        for level in [
            CanonLevel::Whitespace,
            CanonLevel::TableStem,
            CanonLevel::Semantic,
        ] {
            let clean = PromptKey::canonicalize(&prompt, level);
            let noisy = PromptKey::canonicalize(&mangled, level);
            assert_eq!(
                clean, noisy,
                "{level}: whitespace noise must fold away\n  clean: {prompt:?}\n  noisy: {mangled:?}"
            );
            assert_eq!(clean.hash64(), noisy.hash64());
        }
    }
}

#[test]
fn text_reconstructs_the_key_exactly() {
    // stem/suffix/splice is a lossless decomposition: re-canonicalizing
    // the reconstructed text must reproduce the stem and suffix, and at
    // Whitespace level the text equals the normalized prompt.
    let mut g = Gen::new(0xca03);
    for _ in 0..CASES {
        let prompt = random_prompt(&mut g);
        let key = PromptKey::canonicalize(&prompt, CanonLevel::Whitespace);
        let again = PromptKey::canonicalize(&key.text(), CanonLevel::Whitespace);
        assert_eq!(key.stem(), again.stem());
        assert_eq!(key.suffix(), again.suffix());
    }
}

#[test]
fn hash_is_equal_for_equal_keys_and_separates_distinct_ones() {
    let mut g = Gen::new(0xca04);
    let mut seen: Vec<(PromptKey, u64)> = Vec::new();
    for _ in 0..CASES {
        let prompt = random_prompt(&mut g);
        let key = PromptKey::canonicalize(&prompt, CanonLevel::TableStem);
        let hash = key.hash64();
        assert_eq!(hash, key.hash64(), "hashing must be pure");
        for (other, other_hash) in &seen {
            if *other == key {
                assert_eq!(hash, *other_hash, "equal keys, equal hashes");
            } else {
                // FNV-1a over short distinct strings: collisions are
                // astronomically unlikely at this sample size, and any
                // real one would repro deterministically from the seed.
                assert_ne!(
                    hash, *other_hash,
                    "distinct keys collided: {key:?} vs {other:?}"
                );
            }
        }
        seen.push((key, hash));
    }
}

#[test]
fn hash_is_pinned_to_golden_values() {
    // Cross-run and cross-platform stability: `hash64` is specified as
    // FNV-1a over the canonical text's bytes (canonicalization is
    // idempotent, so the text determines the key and no stem/suffix
    // framing is needed). Persisted snapshots re-shard by this hash, so
    // it must never drift.
    let fox = PromptKey::canonicalize("The quick  brown fox", CanonLevel::Whitespace);
    assert_eq!(fox.hash64(), 0x2374_316b_9b44_9782);
    let unidm = PromptKey::canonicalize("unidm", CanonLevel::Whitespace);
    assert_eq!(unidm.hash64(), 0x4b41_5b4e_9aa3_742e);
}

#[test]
fn hash_is_stable_across_shard_counts() {
    // The same workload memoized into caches of every shard width must
    // produce identical snapshots (entries keyed and hashed identically);
    // only the shard *mask* changes with the count, never the hash.
    let world = World::generate(11);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 11);
    let mut g = Gen::new(0xca05);
    let prompts: Vec<String> = (0..24).map(|_| random_prompt(&mut g)).collect();

    let snapshot_at = |shards: usize| {
        let cache = PromptCache::unbounded(&llm)
            .with_shards(shards)
            .with_canonicalization(CanonLevel::Whitespace);
        for p in &prompts {
            cache.complete(p).expect("prompt completes");
        }
        cache.snapshot()
    };
    let one = snapshot_at(1);
    assert_eq!(one, snapshot_at(2));
    assert_eq!(one, snapshot_at(8));

    // And the canonical keys themselves spread over shards rather than
    // piling onto one (masking a uniform 64-bit hash).
    let distinct: std::collections::HashSet<u64> = prompts
        .iter()
        .map(|p| PromptKey::canonicalize(p, CanonLevel::Whitespace).hash64() & 7)
        .collect();
    assert!(
        distinct.len() >= 3,
        "24 random keys should touch several of 8 shards: {distinct:?}"
    );
}
