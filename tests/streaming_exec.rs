//! Golden acceptance tests for streaming batch execution (ISSUE 9): for
//! the same task sequence, [`BatchRunner::run_streaming`] must be
//! indistinguishable from the materialized [`BatchRunner::run_report`] —
//! full [`unidm::RunOutput`] equality (answers, per-run usage, trace
//! prompts), identical cache keys and cache statistics, and exactly equal
//! dedup counters — at every partition size, with dedup on and off, under
//! both dispatch modes (blocking and pipelined), and under seeded fault
//! injection.
//!
//! The cache-shard count honors `UNIDM_SHARDS` and the fault-schedule
//! seed honors `UNIDM_FAULT_SEED` (the CI matrix runs 1/8 shards and
//! seeds 7/1337), so both axes are exercised on every push.

use unidm::{
    BackendConfig, BatchRunner, CanonLevel, Dispatcher, PipelineConfig, PromptCache, RunOutput,
    Task, UniDmError,
};
use unidm_llm::{FaultPlan, LlmProfile, MockLlm};
use unidm_synthdata::imputation;
use unidm_tablestore::DataLake;
use unidm_world::World;

const WORKLOAD: usize = 30;

/// The fault-schedule seed: `UNIDM_FAULT_SEED` when set (the CI matrix
/// runs 7 and 1337), 7 otherwise.
fn fault_seed() -> u64 {
    std::env::var("UNIDM_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

/// An imputation workload with duplicates interleaved so that repeated
/// tasks land in different partitions at small partition sizes.
fn workload() -> (MockLlm, DataLake, Vec<Task>) {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    let ds = imputation::restaurant(&world, 42, WORKLOAD);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let base: Vec<Task> = ds
        .targets
        .iter()
        .map(|t| {
            Task::imputation(
                ds.table.name(),
                t.row,
                ds.target_attr.clone(),
                ds.key_attr.clone(),
            )
        })
        .collect();
    // Every third task repeats later in the stream, far enough away that
    // partitions of <= 16 tasks see the duplicate in a *later* partition
    // (exercising the cross-partition memo, not just local dedup).
    let mut tasks = base.clone();
    tasks.extend(base.iter().step_by(3).cloned());
    (llm, lake, tasks)
}

/// Collects `run_streaming` outputs, asserting the sink sees results in
/// task order.
fn stream_all(
    runner: &BatchRunner<'_>,
    lake: &DataLake,
    tasks: &[Task],
) -> (Vec<Result<RunOutput, UniDmError>>, unidm::StreamReport) {
    let mut out = Vec::with_capacity(tasks.len());
    let report = runner.run_streaming(lake, tasks.iter().cloned(), |i, result| {
        assert_eq!(i, out.len(), "sink must be called in task order");
        out.push(result);
    });
    (out, report)
}

#[test]
fn streaming_equals_materialized_at_every_partition_size() {
    let (llm, lake, tasks) = workload();
    let pipeline = PipelineConfig::paper_default().with_seed(42);
    for dedup in [true, false] {
        let reference = BatchRunner::new(&llm, pipeline)
            .with_workers(1)
            .with_dedup(dedup);
        let report = reference.run_report(&lake, &tasks);
        for partition_tasks in [1, 3, 16, 64, 1000] {
            let runner = BatchRunner::new(&llm, pipeline)
                .with_workers(1)
                .with_dedup(dedup)
                .with_partition_tasks(partition_tasks);
            let (streamed, stream_report) = stream_all(&runner, &lake, &tasks);
            assert_eq!(
                streamed, report.results,
                "streaming (dedup {dedup}, partition {partition_tasks}) diverged"
            );
            assert_eq!(stream_report.tasks, tasks.len());
            assert_eq!(
                stream_report.unique_tasks, report.unique_tasks,
                "unique-task accounting must be partition-size invariant"
            );
            assert_eq!(
                stream_report.coalesced_tasks, report.coalesced_tasks,
                "coalesced-task accounting must be partition-size invariant"
            );
            assert_eq!(
                stream_report.partitions,
                tasks.len().div_ceil(partition_tasks.max(1))
            );
        }
    }
}

#[test]
fn streaming_produces_identical_cache_keys_and_stats() {
    let (llm, lake, tasks) = workload();
    let pipeline = PipelineConfig::paper_default().with_seed(42);

    // Materialized run over a fresh cache (shard count from UNIDM_SHARDS).
    let reference_cache = PromptCache::unbounded(&llm).with_canonicalization(CanonLevel::TableStem);
    let report = BatchRunner::new(&reference_cache, pipeline)
        .with_workers(1)
        .with_dedup(true)
        .run_report(&lake, &tasks);

    // Streaming run over another fresh cache: same canonical keys, same
    // hit/miss/coalesced/saved statistics, same outputs.
    let streaming_cache = PromptCache::unbounded(&llm).with_canonicalization(CanonLevel::TableStem);
    let runner = BatchRunner::new(&streaming_cache, pipeline)
        .with_workers(1)
        .with_dedup(true)
        .with_partition_tasks(8);
    let (streamed, _) = stream_all(&runner, &lake, &tasks);
    assert_eq!(streamed, report.results);
    assert_eq!(
        streaming_cache.canonical_prompts(),
        reference_cache.canonical_prompts(),
        "streaming must produce byte-identical canonical cache keys"
    );
    assert_eq!(
        streaming_cache.stats(),
        reference_cache.stats(),
        "serial cache statistics must be execution-shape invariant"
    );
}

#[test]
fn streaming_survives_the_steal_queue() {
    let (llm, lake, tasks) = workload();
    let pipeline = PipelineConfig::paper_default().with_seed(42);
    let serial = BatchRunner::new(&llm, pipeline)
        .with_workers(1)
        .with_dedup(true)
        .run_report(&lake, &tasks);
    let runner = BatchRunner::new(&llm, pipeline)
        .with_workers(8)
        .with_dedup(true)
        .with_partition_tasks(16);
    let (streamed, stream_report) = stream_all(&runner, &lake, &tasks);
    assert_eq!(
        streamed, serial.results,
        "8-worker streaming partitions must match the serial materialized run"
    );
    assert_eq!(stream_report.unique_tasks, serial.unique_tasks);
    assert_eq!(stream_report.coalesced_tasks, serial.coalesced_tasks);
}

#[test]
fn streaming_under_faults_matches_the_fault_free_run() {
    let (llm, lake, tasks) = workload();
    let pipeline = PipelineConfig::paper_default().with_seed(42);
    let fault_free = BatchRunner::new(&llm, pipeline)
        .with_workers(1)
        .with_dedup(true)
        .run_report(&lake, &tasks);
    let fault_free_answers: Vec<Option<String>> = fault_free
        .results
        .iter()
        .map(|r| r.as_ref().ok().map(|o| o.answer.clone()))
        .collect();

    let base = fault_seed();
    for seed in [base, 1337] {
        let backend = BackendConfig::resilient(seed)
            .with_faults(FaultPlan::moderate(seed))
            .wrap(&llm);
        let runner = BatchRunner::new(backend.model(), pipeline)
            .with_workers(1)
            .with_dedup(true)
            .with_partition_tasks(8);
        let (streamed, stream_report) = stream_all(&runner, &lake, &tasks);
        let streamed_answers: Vec<Option<String>> = streamed
            .iter()
            .map(|r| r.as_ref().ok().map(|o| o.answer.clone()))
            .collect();
        assert_eq!(
            streamed_answers, fault_free_answers,
            "faults (seed {seed}) must never change streamed answers"
        );
        assert_eq!(stream_report.unique_tasks, fault_free.unique_tasks);
        assert_eq!(stream_report.coalesced_tasks, fault_free.coalesced_tasks);
        let stats = backend.stats().expect("backend attached");
        assert_eq!(stats.failures, 0, "every faulty call must complete");
    }
}

#[test]
fn streaming_through_the_pipelined_dispatcher_matches_blocking() {
    let (llm, lake, tasks) = workload();
    let pipeline = PipelineConfig::paper_default().with_seed(42);
    let blocking = BatchRunner::new(&llm, pipeline)
        .with_workers(1)
        .with_dedup(true)
        .run_report(&lake, &tasks);
    let blocking_answers: Vec<Option<String>> = blocking
        .results
        .iter()
        .map(|r| r.as_ref().ok().map(|o| o.answer.clone()))
        .collect();

    let seed = fault_seed();
    let dispatcher = Dispatcher::new(
        &llm,
        BackendConfig::resilient(seed)
            .without_breaker()
            .with_faults(FaultPlan::heavy_tail(seed))
            .with_pipelined(),
    );
    // Cache-level single-flight must be off above a pipelined dispatcher
    // (the reactor coalesces duplicate prompts itself).
    let cache = PromptCache::unbounded(&dispatcher)
        .with_canonicalization(CanonLevel::TableStem)
        .with_single_flight(false);
    let runner = BatchRunner::new(&cache, pipeline)
        .with_workers(8)
        .with_dedup(true)
        .with_partition_tasks(16)
        .with_pipeline(&dispatcher);
    let (streamed, stream_report) = stream_all(&runner, &lake, &tasks);
    let streamed_answers: Vec<Option<String>> = streamed
        .iter()
        .map(|r| r.as_ref().ok().map(|o| o.answer.clone()))
        .collect();
    assert_eq!(
        streamed_answers, blocking_answers,
        "pipelined streaming answers must be bit-identical to blocking"
    );
    assert_eq!(stream_report.unique_tasks, blocking.unique_tasks);
    assert_eq!(stream_report.coalesced_tasks, blocking.coalesced_tasks);
    assert_eq!(dispatcher.stats().failures, 0);
}
