//! Acceptance tests for canonicalization v2 ([`CanonLevel::Semantic`]):
//! `p_dp` record blocks and `p_ri` instance lists that differ only in
//! element order must fold to one cache entry whose hits replay the
//! canonical completion permutation-corrected — per-element attribution
//! is order-invariant and replay is bit-for-bit deterministic across
//! reruns and shard counts — the folds must carry through the disk
//! tier, and the answer drift semantic folding induces on the eval
//! suite must stay within the documented budget.

use unidm::{CacheStore, CanonLevel, PromptCache, StoreConfig};
use unidm_eval::{imputation, CacheConfig, ExperimentConfig};
use unidm_llm::protocol::{render_pdp, render_pri, SerializedRecord, TaskKind};
use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
use unidm_world::World;

/// Documented answer-drift budget of `CanonLevel::Semantic` (see the
/// level's rustdoc and README): no eval-suite cell may move more than
/// this many points (cells are percentages) versus an uncached run.
const DRIFT_BUDGET: f64 = 2.0;

fn llm() -> MockLlm {
    MockLlm::new(&World::generate(42), LlmProfile::gpt3_175b(), 42)
}

fn records() -> Vec<SerializedRecord> {
    vec![
        SerializedRecord::new(vec![
            ("city".into(), "Alicante".into()),
            ("country".into(), "Spain".into()),
        ]),
        SerializedRecord::new(vec![
            ("city".into(), "Bergen".into()),
            ("country".into(), "Norway".into()),
        ]),
        SerializedRecord::new(vec![
            ("city".into(), "Cork".into()),
            ("country".into(), "Ireland".into()),
        ]),
    ]
}

/// Every rotation + the reversal of `items`.
fn orderings(items: &[SerializedRecord]) -> Vec<Vec<SerializedRecord>> {
    let mut out = Vec::new();
    for start in 0..items.len() {
        let mut rotated = items.to_vec();
        rotated.rotate_left(start);
        out.push(rotated);
    }
    let mut reversed = items.to_vec();
    reversed.reverse();
    out.push(reversed);
    out
}

/// Splits a completion into one attributable piece per element, pairing
/// piece `j` with the identity of the element at position `j` of the
/// request ordering; sorted by identity so orderings compare directly.
fn attribution(
    order: &[SerializedRecord],
    text: &str,
    split: &dyn Fn(&str) -> Vec<String>,
) -> Vec<(String, String)> {
    let pieces = split(text);
    assert_eq!(pieces.len(), order.len(), "one piece per element: {text:?}");
    let mut pairs: Vec<(String, String)> = order
        .iter()
        .map(SerializedRecord::render)
        .zip(pieces)
        .collect();
    pairs.sort();
    pairs
}

/// Asserts that all `prompts` (the same elements in the given `orders`)
/// fold to one Semantic cache entry whose hits replay the canonical
/// completion permutation-corrected: every element carries the same
/// attributed piece in every ordering, replay is deterministic, and no
/// reordering reaches the model — while TableStem keys each ordering
/// separately (the v1 behavior the fold improves on).
fn assert_folds_replay(
    prompts: &[String],
    orders: &[Vec<SerializedRecord>],
    split: &dyn Fn(&str) -> Vec<String>,
) {
    for shards in [1, 8] {
        let model = llm();
        let semantic = PromptCache::unbounded(&model)
            .with_shards(shards)
            .with_canonicalization(CanonLevel::Semantic);
        let first = semantic.complete(&prompts[0]).expect("first completes");
        let usage_after_first = model.usage();
        let baseline = attribution(&orders[0], &first.text, split);
        for (reordered, order) in prompts[1..].iter().zip(&orders[1..]) {
            let replay = semantic.complete(reordered).expect("reordered completes");
            let again = semantic.complete(reordered).expect("replay repeats");
            assert_eq!(replay.text, again.text, "replay must be deterministic");
            assert_eq!(replay.usage, first.usage, "usage replays the one entry");
            assert_eq!(
                attribution(order, &replay.text, split),
                baseline,
                "per-element attribution must be order-invariant"
            );
        }
        assert_eq!(
            model.usage(),
            usage_after_first,
            "reorderings never reach the model at Semantic ({shards} shards)"
        );
        let stats = semantic.stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (2 * (prompts.len() - 1), 1),
            "every reordering (and its repeat) is a fold hit"
        );

        // v1 contrast: TableStem sees each ordering as a distinct key.
        let stem_model = llm();
        let stem = PromptCache::unbounded(&stem_model)
            .with_shards(shards)
            .with_canonicalization(CanonLevel::TableStem);
        for p in prompts {
            stem.complete(p).expect("completes");
        }
        assert_eq!(stem.stats().hits, 0, "TableStem must not fold reorderings");
    }
}

/// Piece extractor for `p_ri` completions ("1:2, 2:0, ..."): the k-th
/// piece is instance k's relevance score, so the index prefixes must
/// count 1..=n in order.
fn pri_scores(text: &str) -> Vec<String> {
    text.split(',')
        .enumerate()
        .map(|(j, chunk)| {
            let (index, score) = chunk.trim().split_once(':').expect("k:score pair");
            assert_eq!(index.parse::<usize>().ok(), Some(j + 1), "indices renumber");
            score.trim().to_string()
        })
        .collect()
}

/// Piece extractor for `p_dp` completions: one naturalized sentence per
/// record, newline-joined, in request record order.
fn pdp_lines(text: &str) -> Vec<String> {
    text.lines().map(str::to_string).collect()
}

#[test]
fn reordered_pdp_record_blocks_fold_with_order_invariant_lines() {
    let orders = orderings(&records());
    let prompts: Vec<String> = orders.iter().map(|order| render_pdp(order)).collect();
    assert!(prompts.windows(2).all(|w| w[0] != w[1]), "orders differ");
    assert_folds_replay(&prompts, &orders, &pdp_lines);
}

#[test]
fn reordered_pri_instance_lists_fold_with_order_invariant_scores() {
    let orders = orderings(&records());
    let prompts: Vec<String> = orders
        .iter()
        .map(|order| render_pri(TaskKind::Imputation, "city: Cork; country: ?", order))
        .collect();
    assert!(prompts.windows(2).all(|w| w[0] != w[1]), "orders differ");
    assert_folds_replay(&prompts, &orders, &pri_scores);
}

#[test]
fn folded_entries_carry_through_the_disk_tier() {
    // The store is keyed by canonical text, so a reordering offered by
    // one process is a disk hit for another — through a cold tier 0.
    let path = std::env::temp_dir().join(format!("unidm-canon-v2-{}.udmstore", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let model = llm();
    let store = CacheStore::open(&path, model.name(), StoreConfig::default()).expect("opens");

    let writer = PromptCache::unbounded(&model)
        .with_canonicalization(CanonLevel::Semantic)
        .with_store(store.clone());
    let original = render_pdp(&records());
    let canonical = writer.complete(&original).expect("completes");

    let reader = PromptCache::unbounded(&model)
        .with_canonicalization(CanonLevel::Semantic)
        .with_store(store.clone());
    let mut reversed = records();
    reversed.reverse();
    let usage_before = model.usage();
    let replay = reader
        .complete(&render_pdp(&reversed))
        .expect("reordered completes");
    assert_eq!(model.usage(), usage_before, "served from disk, not model");
    assert_eq!(replay.usage, canonical.usage);
    assert_eq!(
        attribution(&reversed, &replay.text, &pdp_lines),
        attribution(&records(), &canonical.text, &pdp_lines),
        "each record keeps its sentence through the disk tier"
    );
    assert_eq!(store.stats().hits, 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn semantic_folding_keeps_eval_answer_drift_within_budget() {
    // Semantic is the one level that is not exact memoization: folded
    // `p_ri` hits replay the canonical (sorted) list's completion, so
    // index-keyed relevance scores can land on permuted instances. The
    // drift that induces on the paper tables must stay within the
    // documented budget — here measured on Table 1 (imputation, the
    // full p_rm/p_ri/p_dp pipeline) against an uncached run.
    let uncached = imputation::table1(ExperimentConfig::quick());
    let folded = imputation::table1(ExperimentConfig::quick().with_cache(CacheConfig {
        level: CanonLevel::Semantic,
        ..CacheConfig::enabled()
    }));
    assert_eq!(uncached.columns, folded.columns);
    let mut max_drift = 0.0f64;
    for (u, f) in uncached.rows.iter().zip(&folded.rows) {
        assert_eq!(u.method, f.method);
        for (a, b) in u.cells.iter().zip(&f.cells) {
            max_drift = max_drift.max((a - b).abs());
        }
    }
    assert!(
        max_drift <= DRIFT_BUDGET,
        "semantic folding drifted table 1 by {max_drift:.2} points \
         (documented budget {DRIFT_BUDGET})"
    );
}
