//! Acceptance tests for the multi-endpoint router (`unidm::route`).
//!
//! The contract (ISSUE 7): a `RoutedBackend` fleet — weighted endpoints,
//! per-endpoint breakers, AIMD rate adaptation, endpoint-aware fault
//! schedules — returns answers bit-identical to a fault-free direct run
//! whatever the fleet does, across fault seeds, worker counts and both
//! dispatch modes; a permanently faulty endpoint loses all traffic once
//! its breaker opens and is probed again after the cooldown; and a serial
//! rerun reproduces per-endpoint call counts exactly.
//!
//! The fault-schedule seed honors `UNIDM_FAULT_SEED` (the CI matrix runs
//! two), so schedule sensitivity is exercised on every push.

use unidm::backend::{BackendConfig, BreakerPolicy};
use unidm::dispatch::Dispatcher;
use unidm::route::{EndpointConfig, RoutePlan, RoutedBackend};
use unidm::{BatchRunner, CanonLevel, PipelineConfig, PromptCache, Task};
use unidm_llm::{FaultPlan, LanguageModel, LlmProfile, MockLlm};
use unidm_synthdata::imputation;
use unidm_tablestore::DataLake;
use unidm_world::World;

const WORKLOAD: usize = 30;

/// The fault-schedule seed: `UNIDM_FAULT_SEED` when set, 7 otherwise.
fn fault_seed() -> u64 {
    std::env::var("UNIDM_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

fn workload() -> (MockLlm, DataLake, Vec<Task>) {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    let ds = imputation::restaurant(&world, 42, WORKLOAD);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let tasks: Vec<Task> = ds
        .targets
        .iter()
        .map(|t| {
            Task::imputation(
                ds.table.name(),
                t.row,
                ds.target_attr.clone(),
                ds.key_attr.clone(),
            )
        })
        .collect();
    (llm, lake, tasks)
}

/// A three-replica fleet over `llm`, every replica behind its own
/// moderate fault injector and breaker.
fn fleet(llm: &MockLlm, seed: u64) -> RoutedBackend<'_> {
    RoutedBackend::from_plan(
        llm,
        BackendConfig::resilient(seed)
            .with_faults(FaultPlan::moderate(seed))
            .with_route(RoutePlan::replicas(3)),
    )
}

/// Answers are bit-identical to the fault-free serial run across 2 fault
/// seeds × {1, 8} workers × {blocking, pipelined} dispatch, with zero
/// failed calls.
#[test]
fn routed_answers_bit_identical_across_seeds_workers_and_modes() {
    let (llm, lake, tasks) = workload();
    let pipeline = PipelineConfig::paper_default().with_seed(42);
    let reference = BatchRunner::new(&llm, pipeline)
        .with_workers(1)
        .answers(&lake, &tasks);

    let base = fault_seed();
    for seed in [base, base.wrapping_mul(31).wrapping_add(1000)] {
        for workers in [1usize, 8] {
            // Blocking: cache → router → per-endpoint breaker/injector.
            let router = fleet(&llm, seed);
            let cache =
                PromptCache::unbounded(&router).with_canonicalization(CanonLevel::TableStem);
            let answers = BatchRunner::new(&cache, pipeline)
                .with_workers(workers)
                .answers(&lake, &tasks);
            assert_eq!(
                answers, reference,
                "blocking routed run changed answers (seed {seed}, {workers} workers)"
            );
            let stats = router.stats();
            assert_eq!(stats.failures, 0, "every routed call completes");
            assert!(
                stats.endpoints.iter().all(|e| e.calls > 0),
                "equal weights must spread traffic over all replicas: {stats:?}"
            );

            // Pipelined: the event-driven dispatcher drives the same
            // fleet (faults live inside the router, so the dispatcher
            // itself is fault-free).
            let router = fleet(&llm, seed);
            let dispatcher =
                Dispatcher::new(&router, BackendConfig::resilient(seed).with_pipelined());
            let cache = PromptCache::unbounded(&dispatcher)
                .with_canonicalization(CanonLevel::TableStem)
                .with_single_flight(false);
            let answers = BatchRunner::new(&cache, pipeline)
                .with_workers(workers)
                .with_pipeline(&dispatcher)
                .answers(&lake, &tasks);
            assert_eq!(
                answers, reference,
                "pipelined routed run changed answers (seed {seed}, {workers} workers)"
            );
            assert_eq!(dispatcher.stats().failures, 0);
            assert_eq!(router.stats().failures, 0);
        }
    }
}

/// A permanently faulty endpoint loses **all** traffic once its breaker
/// opens, and is probed again (regains traffic) after the cooldown.
#[test]
fn dead_endpoint_sheds_all_traffic_then_recovers_a_probe_after_cooldown() {
    let llm = {
        let world = World::generate(42);
        MockLlm::new(&world, LlmProfile::gpt3_175b(), 42)
    };
    let dead_plan = FaultPlan {
        timeout_permille: 1000,
        rate_limit_permille: 0,
        transient_permille: 0,
        slow_permille: 0,
        max_consecutive_faults: u32::MAX,
        ..FaultPlan::none(fault_seed())
    };
    let breaker = BreakerPolicy {
        failure_threshold: 2,
        cooldown_us: 3_600_000_000, // one virtual hour
    };
    let router = RoutedBackend::new(fault_seed())
        .endpoint(
            &llm,
            EndpointConfig::new()
                .with_faults(dead_plan)
                .with_breaker(breaker),
        )
        // The healthy peer is injector-free, so only the dead endpoint's
        // timeouts and the retry backoffs advance the virtual clock —
        // nowhere near the one-hour cooldown.
        .endpoint(&llm, EndpointConfig::new().with_breaker(breaker));

    // Phase A: drive traffic until the dead endpoint's breaker trips.
    for i in 0..25 {
        router.complete(&format!("phase-a prompt {i}")).unwrap();
    }
    let a = router.stats();
    assert_eq!(a.failures, 0, "the healthy peer absorbs everything");
    assert_eq!(a.endpoints[0].breaker_trips, 1, "the dead endpoint trips");
    assert_eq!(
        a.endpoints[0].attempts, 2,
        "exactly threshold-many attempts reach a permanently dead endpoint"
    );

    // Phase B: with the breaker open, the dead endpoint receives zero
    // further attempts — every selection skips it.
    for i in 0..25 {
        router.complete(&format!("phase-b prompt {i}")).unwrap();
    }
    let b = router.stats();
    assert_eq!(
        b.endpoints[0].attempts, a.endpoints[0].attempts,
        "an open breaker must shed all traffic"
    );
    assert!(
        b.endpoints[0].breaker_open_skips > a.endpoints[0].breaker_open_skips,
        "selections keep skipping the open endpoint"
    );
    assert_eq!(b.endpoints[1].successes, 50);

    // Phase C: after the cooldown the breaker half-opens and the endpoint
    // regains traffic (probe attempts resume).
    router.clock().sleep_micros(breaker.cooldown_us);
    for i in 0..25 {
        router.complete(&format!("phase-c prompt {i}")).unwrap();
    }
    let c = router.stats();
    assert!(
        c.endpoints[0].attempts > b.endpoints[0].attempts,
        "the cooled-down endpoint must be probed again: {c:?}"
    );
    assert_eq!(c.failures, 0, "probe failures still land on the peer");
}

/// A serial rerun of the same routed workload reproduces `RouterStats` —
/// per-endpoint call counts included — bit-for-bit.
#[test]
fn per_endpoint_call_counts_reproduce_exactly_on_serial_rerun() {
    let (llm, lake, tasks) = workload();
    let pipeline = PipelineConfig::paper_default().with_seed(42);
    let seed = fault_seed();
    let run = || {
        let router = fleet(&llm, seed);
        let cache = PromptCache::unbounded(&router).with_canonicalization(CanonLevel::TableStem);
        let answers = BatchRunner::new(&cache, pipeline)
            .with_workers(1)
            .answers(&lake, &tasks);
        (answers, router.stats())
    };
    let (answers_a, stats_a) = run();
    let (answers_b, stats_b) = run();
    assert_eq!(answers_a, answers_b);
    assert_eq!(
        stats_a, stats_b,
        "a serial rerun must reproduce every router counter exactly"
    );
    let calls: Vec<u64> = stats_a.endpoints.iter().map(|e| e.calls).collect();
    assert_eq!(calls.len(), 3);
    assert_eq!(calls.iter().sum::<u64>(), stats_a.calls);
    assert!(
        calls.iter().all(|&c| c > 0),
        "every replica takes first-attempt traffic: {calls:?}"
    );
}

/// Replicas sharing one fault plan draw distinct schedules end-to-end:
/// the same eval workload leaves different fault footprints on different
/// endpoints (the endpoint-aware slot keying at work above the unit
/// tests).
#[test]
fn replica_fault_footprints_differ_on_the_eval_workload() {
    let (llm, lake, tasks) = workload();
    let pipeline = PipelineConfig::paper_default().with_seed(42);
    let router = fleet(&llm, fault_seed());
    let cache = PromptCache::unbounded(&router).with_canonicalization(CanonLevel::TableStem);
    BatchRunner::new(&cache, pipeline)
        .with_workers(1)
        .answers(&lake, &tasks);
    let stats = router.stats();
    let footprints: Vec<(u64, u64, u64)> = stats
        .endpoints
        .iter()
        .map(|e| (e.timeouts, e.rate_limited, e.transients))
        .collect();
    assert!(
        footprints.windows(2).any(|w| w[0] != w[1]),
        "replicas must not fault in lockstep: {footprints:?}"
    );
}
