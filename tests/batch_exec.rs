//! Acceptance test for the parallel batch execution engine: a 50+-task
//! imputation workload run serially, batched, and batched+cached must
//! produce identical answers, with the cached path consuming strictly
//! fewer model tokens — and per-run usage must come from the run's own
//! meter, never from the model's global counter.

use unidm::{BatchRunner, PipelineConfig, PromptCache, Task, UniDm};
use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
use unidm_synthdata::imputation;
use unidm_tablestore::DataLake;
use unidm_world::World;

const WORKLOAD: usize = 60;

fn workload() -> (MockLlm, DataLake, Vec<Task>) {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    let ds = imputation::restaurant(&world, 42, WORKLOAD);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let tasks: Vec<Task> = ds
        .targets
        .iter()
        .map(|t| {
            Task::imputation(
                ds.table.name(),
                t.row,
                ds.target_attr.clone(),
                ds.key_attr.clone(),
            )
        })
        .collect();
    (llm, lake, tasks)
}

#[test]
fn batched_cached_workload_saves_tokens_with_identical_answers() {
    let (llm, lake, tasks) = workload();
    assert!(tasks.len() >= 50, "workload must be at least 50 tasks");
    let config = PipelineConfig::paper_default().with_seed(42);

    // Serial reference: workers = 1, no cache.
    llm.reset_usage();
    let serial = BatchRunner::new(&llm, config)
        .with_workers(1)
        .run(&lake, &tasks);
    let serial_tokens = llm.usage().total();

    // Batched + cached: shared worker pool over a prompt cache.
    llm.reset_usage();
    let cache = PromptCache::unbounded(&llm);
    let cached = BatchRunner::new(&cache, config).run(&lake, &tasks);
    let cached_tokens = llm.usage().total();

    // Identical answers and identical per-run usage, slot by slot.
    assert_eq!(serial.len(), cached.len());
    for (s, c) in serial.iter().zip(&cached) {
        let s = s.as_ref().expect("serial run ok");
        let c = c.as_ref().expect("cached run ok");
        assert_eq!(s.answer, c.answer);
        assert_eq!(
            s.usage, c.usage,
            "per-run usage must be schedule- and cache-invariant"
        );
    }

    // The cache must have deduplicated cross-task prompts.
    let stats = cache.stats();
    assert!(
        stats.hits > 0,
        "expected cache hits across {} tasks: {stats:?}",
        tasks.len()
    );
    assert!(
        cached_tokens < serial_tokens,
        "batched+cached must consume fewer model tokens: {cached_tokens} vs {serial_tokens}"
    );
    assert_eq!(
        serial_tokens,
        cached_tokens + stats.tokens_saved,
        "every token must be either paid to the model or accounted as saved"
    );
}

#[test]
fn per_run_usage_is_independent_of_global_counter() {
    let (llm, lake, tasks) = workload();
    let unidm = UniDm::new(&llm, PipelineConfig::paper_default().with_seed(42));

    // Pollute the global counter between two identical runs; the per-run
    // meter must not notice.
    let first = unidm.run(&lake, &tasks[0]).expect("run ok");
    for _ in 0..5 {
        llm.complete("background traffic that a global diff would misattribute")
            .unwrap();
    }
    let second = unidm.run(&lake, &tasks[0]).expect("run ok");
    assert!(first.usage.total() > 0);
    assert_eq!(first.usage, second.usage);
    assert_eq!(first.answer, second.answer);
}

#[test]
fn parallel_equals_serial_on_the_workload() {
    let (llm, lake, tasks) = workload();
    let config = PipelineConfig::paper_default().with_seed(42);
    let serial = BatchRunner::new(&llm, config)
        .with_workers(1)
        .run(&lake, &tasks);
    let parallel = BatchRunner::new(&llm, config)
        .with_workers(8)
        .run(&lake, &tasks);
    for (s, p) in serial.iter().zip(&parallel) {
        let s = s.as_ref().expect("serial ok");
        let p = p.as_ref().expect("parallel ok");
        assert_eq!(s.answer, p.answer);
        assert_eq!(s.usage, p.usage);
    }
}
