//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal harness exposing the slice of criterion the benches use:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. It measures wall-clock time per iteration and prints a
//! median/mean summary line per benchmark — no statistical analysis, plots,
//! or baselines, but the same source compiles against it unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Entry point: collects benchmark groups.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { samples: 30 }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id.as_ref(), 30, f);
        self
    }
}

/// A named group of benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup {
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id.as_ref(), self.samples, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine under test.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.timings.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.timings.push(start.elapsed());
            drop(out);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        timings: Vec::new(),
    };
    f(&mut b);
    if b.timings.is_empty() {
        println!("  {id}: no samples");
        return;
    }
    b.timings.sort_unstable();
    let median = b.timings[b.timings.len() / 2];
    let total: Duration = b.timings.iter().sum();
    let mean = total / b.timings.len() as u32;
    println!(
        "  {id}: median {median:?}, mean {mean:?} ({} samples)",
        b.timings.len()
    );
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0usize;
        group.sample_size(5).bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert_eq!(runs, 5);
    }

    #[test]
    fn bench_function_outside_group() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("direct", |b| b.iter(|| ran = true));
        assert!(ran);
    }
}
