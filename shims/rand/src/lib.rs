//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal reimplementation of the slice of `rand` the UniDM
//! reproduction actually uses: [`rngs::StdRng`] seeded through
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] / [`Rng::gen_bool`],
//! and [`seq::SliceRandom`]'s `shuffle` / `choose`.
//!
//! The generator is SplitMix64 — statistically solid for simulation
//! workloads and fully deterministic from the seed, which is all the
//! reproduction needs (every consumer seeds explicitly; there is no
//! `thread_rng`). The output stream differs from upstream `rand`'s
//! ChaCha-based `StdRng`, so seeded draws are deterministic *within* this
//! workspace but not bit-compatible with upstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)` (`inclusive` widens to
    /// `[low, high]`).
    fn sample_from<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_from<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from empty range");
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (lo + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Each float type keeps the draw within its own mantissa width so the
// unit value stays strictly below 1.0 (a 53-bit draw cast to f32 can
// round up to exactly 1.0, breaking the half-open contract).
macro_rules! impl_sample_uniform_float {
    ($($t:ty, $bits:expr);* $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_from<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, 24; f64, 53);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_from(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_from(start, end, true, rng)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(1..=2usize);
            assert!((1..=2).contains(&v));
            let f = rng.gen_range(0.8..1.0);
            assert!((0.8..1.0).contains(&f));
            let n = rng.gen_range(-9..10);
            assert!((-9..10).contains(&n));
        }
    }

    #[test]
    fn float_ranges_stay_half_open() {
        // A 53-bit draw cast to f32 rounds up to 1.0 near the top of the
        // range; the f32 path must draw at its own mantissa width.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100_000 {
            let f: f32 = rng.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&f), "{f}");
            let d: f64 = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&d), "{d}");
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "{heads}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        let original = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, original, "50 elements should not shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original, "shuffle must be a permutation");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!(
                (800..1200).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }
}
