//! Resilience quickstart: run a batched workload through the full backend
//! substrate — prompt cache over rate limiter, retry loop and circuit
//! breaker over a seeded fault injector — and verify that a hostile
//! endpoint changes *nothing* about the answers.
//!
//! The stack assembled here is the production shape:
//!
//! ```text
//! BatchRunner → PromptCache → ResilientBackend → SimBackend → MockLlm
//!                  (hits)       limiter/retry/      seeded       inner
//!                  stop here     breaker            faults       model
//! ```
//!
//! Everything timing-related runs on a virtual clock, so the multi-second
//! stalls the fault plan injects replay in milliseconds of wall time.
//!
//! ```text
//! cargo run --example resilient_backend
//! ```

use unidm::backend::BackendConfig;
use unidm::{BatchRunner, CanonLevel, PipelineConfig, PromptCache, Task};
use unidm_llm::{FaultPlan, LlmProfile, MockLlm};
use unidm_synthdata::imputation;
use unidm_tablestore::DataLake;
use unidm_world::World;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);

    // The same 40-row imputation workload as `batch_quickstart`.
    let ds = imputation::restaurant(&world, 42, 40);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let tasks: Vec<Task> = ds
        .targets
        .iter()
        .map(|t| {
            Task::imputation(
                ds.table.name(),
                t.row,
                ds.target_attr.clone(),
                ds.key_attr.clone(),
            )
        })
        .collect();
    let pipeline = PipelineConfig::paper_default().with_seed(42);

    // Ground truth: the fault-free serial run.
    let baseline = BatchRunner::new(&llm, pipeline)
        .with_workers(1)
        .answers(&lake, &tasks);

    // A hostile endpoint: ~45% of attempts time out, get rate limited or
    // fail transiently, plus a client-side budget of 200 attempts/sec.
    let config = BackendConfig::resilient(7)
        .with_faults(FaultPlan::heavy(7))
        .with_rate_limit(200, 20);
    let backend = config.wrap(&llm);
    let cache =
        PromptCache::unbounded(backend.model()).with_canonicalization(CanonLevel::TableStem);

    println!(
        "Running {} tasks through a heavy fault schedule...\n",
        tasks.len()
    );
    let answers = BatchRunner::new(&cache, pipeline).answers(&lake, &tasks);

    let stats = backend.stats().expect("backend enabled");
    let faults = backend.fault_stats().expect("faults configured");
    println!("Endpoint behaviour (injected by SimBackend, seed 7):");
    println!(
        "  {} attempts: {} clean, {} slow, {} timeouts, {} rate limits, {} transient 5xx",
        faults.attempts,
        faults.clean,
        faults.slow,
        faults.timeouts,
        faults.rate_limits,
        faults.transients,
    );
    println!("\nWhat the resilient layer did about it:");
    println!(
        "  {} calls -> {} attempts ({} retries), {} breaker trips, {} fast-fails",
        stats.calls, stats.attempts, stats.retries, stats.breaker_trips, stats.breaker_fast_fails,
    );
    println!(
        "  {} throttle waits ({:.2}s virtual); {:.2} virtual seconds total",
        stats.throttle_waits,
        stats.throttle_wait_us as f64 / 1e6,
        backend.elapsed_us() as f64 / 1e6,
    );
    println!(
        "  cache: {} hits / {} misses — hits never touched the backend at all",
        cache.stats().hits,
        cache.stats().misses,
    );

    assert_eq!(
        answers, baseline,
        "faults, throttling and breaker trips must never change answers"
    );
    assert_eq!(stats.failures, 0, "every call completed");
    println!(
        "\nAll {} answers bit-identical to the fault-free serial run.",
        answers.len()
    );
    Ok(())
}
