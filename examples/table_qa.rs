//! Table question answering (paper appendix C, Figure 3): "how many gold
//! medals did Australia and Switzerland total?"
//!
//! ```text
//! cargo run --example table_qa
//! ```

use unidm::{PipelineConfig, Task, UniDm};
use unidm_llm::{LlmProfile, MockLlm};
use unidm_synthdata::tableqa;
use unidm_tablestore::DataLake;
use unidm_world::World;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    let ds = tableqa::medals(&world, 42, 8, 10);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let unidm = UniDm::new(&llm, PipelineConfig::paper_default());

    println!("== Table question answering (Figure 3) ==\n");
    println!("Medals table ({} nations):", ds.table.row_count());
    for row in 0..ds.table.row_count().min(4) {
        let nation = ds.table.cell(row, "nation")?;
        let gold = ds.table.cell(row, "gold")?;
        let total = ds.table.cell(row, "total")?;
        println!("  {nation}: {gold} gold, {total} total");
    }
    println!("  ...\n");

    let mut correct = 0;
    for q in &ds.questions {
        let task = Task::TableQa {
            table: "medals".into(),
            question: q.question.clone(),
        };
        let out = unidm.run(&lake, &task)?;
        let ok = out.answer == q.answer.to_string();
        if ok {
            correct += 1;
        }
        println!(
            "Q: {}\n   -> {} (truth {}){}",
            q.question,
            out.answer,
            q.answer,
            if ok { "" } else { "  [wrong]" }
        );
    }
    println!(
        "\n{correct}/{} questions answered correctly",
        ds.questions.len()
    );

    // Show one full trace, matching the paper's walkthrough.
    let q = &ds.questions[0];
    let out = unidm.run(
        &lake,
        &Task::TableQa {
            table: "medals".into(),
            question: q.question.clone(),
        },
    )?;
    println!("\nWalkthrough for the first question:");
    println!("  Selected attributes: {:?}", out.trace.selected_attrs);
    println!(
        "  Parsed context:\n{}",
        out.trace
            .context_text
            .lines()
            .map(|l| format!("    {l}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    Ok(())
}
