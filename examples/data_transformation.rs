//! Data transformation by example: UniDM against the search-based TDE
//! baseline on syntactic and semantic cases (paper Table 2's mechanism).
//!
//! ```text
//! cargo run --example data_transformation
//! ```

use unidm::{PipelineConfig, Task, UniDm};
use unidm_baselines::tde;
use unidm_llm::{LlmProfile, MockLlm};
use unidm_tablestore::DataLake;
use unidm_world::World;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    let unidm = UniDm::new(&llm, PipelineConfig::paper_default());
    let lake = DataLake::new();

    // (label, examples, input, expected)
    type Case = (
        &'static str,
        Vec<(&'static str, &'static str)>,
        &'static str,
        &'static str,
    );
    let cases: Vec<Case> = vec![
        (
            "compact date -> pretty (dictionary)",
            vec![("20210315", "Mar 15 2021"), ("19990405", "Apr 5 1999")],
            "20201103",
            "Nov 3 2020",
        ),
        (
            "name -> initials (syntactic)",
            vec![("John Smith", "J. Smith"), ("Mary Jones", "M. Jones")],
            "Alan Turing",
            "A. Turing",
        ),
        (
            "country -> ISO code (semantic)",
            vec![("Japan", "JPN"), ("Uruguay", "URY")],
            "Mexico",
            "MEX",
        ),
    ];

    println!("== Data transformation by example ==\n");
    for (label, examples, input, truth) in cases {
        let examples: Vec<(String, String)> = examples
            .into_iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        let task = Task::Transformation {
            examples: examples.clone(),
            input: input.to_string(),
        };
        let unidm_out = unidm.run(&lake, &task)?.answer;
        let tde_out = tde::transform(&examples, input);
        println!("{label}");
        println!("  examples: {examples:?}");
        println!("  input:    {input}   (truth: {truth})");
        println!("  UniDM:    {unidm_out}");
        println!("  TDE:      {tde_out}\n");
    }
    println!(
        "TDE's pure program search handles the syntactic cases but has no\n\
         semantic operator for country codes — the gap that collapses it on\n\
         Bing-QueryLogs in Table 2."
    );
    Ok(())
}
