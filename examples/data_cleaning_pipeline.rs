//! A realistic data-cleaning workflow over a dirty hospital table: detect
//! erroneous cells with UniDM, then repair the detected cells by imputation
//! — the clean → integrate → interpret loop the paper's introduction
//! motivates for data lakes.
//!
//! ```text
//! cargo run --release --example data_cleaning_pipeline
//! ```

use unidm::{PipelineConfig, Task, UniDm};
use unidm_eval::metrics::Confusion;
use unidm_llm::{LlmProfile, MockLlm};
use unidm_synthdata::errors;
use unidm_tablestore::DataLake;
use unidm_world::World;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = World::generate(7);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 7);
    let ds = errors::hospital(&world, 7, 0.05);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let unidm = UniDm::new(&llm, PipelineConfig::paper_default());

    println!("== Data cleaning pipeline: hospital table ==");
    println!(
        "{} rows, {} labelled cells, {:.1}% injected errors\n",
        ds.table.row_count(),
        ds.len(),
        ds.error_rate() * 100.0
    );

    // Phase 1: error detection over a slice of cells.
    let mut confusion = Confusion::default();
    let mut flagged = Vec::new();
    for cell in ds.cells.iter().take(400) {
        let task = Task::error_detection("hospital", cell.row, cell.attr.clone());
        let answer = unidm.run(&lake, &task)?.answer;
        let predicted = answer.trim().eq_ignore_ascii_case("yes");
        confusion.record(predicted, cell.is_error);
        if predicted {
            flagged.push(cell);
        }
    }
    println!(
        "Detection: precision {:.1}%, recall {:.1}%, F1 {:.1}%",
        confusion.precision() * 100.0,
        confusion.recall() * 100.0,
        confusion.f1() * 100.0
    );

    // Phase 2: repair the flagged cells by imputation and check against the
    // pre-corruption ground truth.
    let mut repaired = 0usize;
    let mut attempted = 0usize;
    for cell in flagged.iter().take(40) {
        if !cell.is_error {
            continue; // a false positive; repairs of clean cells are skipped
        }
        attempted += 1;
        let task = Task::imputation("hospital", cell.row, cell.attr.clone(), "name");
        let answer = unidm.run(&lake, &task)?.answer;
        if unidm_eval::metrics::answers_match(&answer, &cell.clean.to_string()) {
            repaired += 1;
        }
    }
    println!("Repair: {repaired}/{attempted} flagged errors restored to their clean value");
    println!(
        "(corrupted counties repair via same-city rows; typo'd unique addresses are\n\
         unrecoverable by design — detection and repair are different problems)"
    );
    Ok(())
}
