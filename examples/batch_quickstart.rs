//! Batched quickstart: run a whole imputation workload through the
//! parallel batch engine with a canonicalizing prompt cache, then rerun it
//! warm from a snapshot.
//!
//! Where `quickstart` runs one task through `UniDm::run`, this example
//! builds a batch of tasks over one table, layers a [`PromptCache`] over
//! the model — sharded, and canonicalized at [`CanonLevel::TableStem`] so
//! every row shares the table-level retrieval entry — and fans the batch
//! out across the worker pool with [`BatchRunner`]. It then saves the
//! cache to a snapshot file and replays the same workload through a fresh
//! cache warm-started from that snapshot: the second run answers entirely
//! from memory, before any model call.
//!
//! ```text
//! cargo run --example batch_quickstart
//! ```

use unidm::{BatchRunner, CanonLevel, PipelineConfig, PromptCache, Task};
use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
use unidm_synthdata::imputation;
use unidm_tablestore::DataLake;
use unidm_world::World;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);

    // A 40-row imputation workload over the Restaurant benchmark table:
    // every target row is missing its city.
    let ds = imputation::restaurant(&world, 42, 40);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let tasks: Vec<Task> = ds
        .targets
        .iter()
        .map(|t| {
            Task::imputation(
                ds.table.name(),
                t.row,
                ds.target_attr.clone(),
                ds.key_attr.clone(),
            )
        })
        .collect();

    // The cache is itself a `LanguageModel`, so the runner threads it
    // under every worker transparently. Table-stem canonicalization folds
    // the per-row retrieval preambles into shared entries.
    let cache = PromptCache::unbounded(&llm)
        .with_shards(8)
        .with_canonicalization(CanonLevel::TableStem);
    let runner = BatchRunner::new(&cache, PipelineConfig::paper_default().with_seed(42));
    println!(
        "Running {} imputation tasks on {} worker(s)...\n",
        tasks.len(),
        runner.workers()
    );
    let outputs = runner.run(&lake, &tasks);

    let mut correct = 0usize;
    let mut run_tokens = 0usize;
    for (out, target) in outputs.iter().zip(&ds.targets) {
        let out = out.as_ref().map_err(Clone::clone)?;
        if out.answer.eq_ignore_ascii_case(&target.truth.to_string()) {
            correct += 1;
        }
        // Per-run cost comes from the run's own meter, not a global diff.
        run_tokens += out.usage.total();
    }

    let stats = cache.stats();
    println!("Accuracy: {correct}/{} correct", outputs.len());
    println!("Logical tokens across runs: {run_tokens}");
    println!(
        "Tokens the model actually processed: {}",
        llm.usage().total()
    );
    println!(
        "Prompt cache ({} shards, {} canonicalization): {} hits / {} misses \
         ({:.0}% hit rate), {} tokens saved",
        cache.shards(),
        cache.level(),
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.tokens_saved,
    );

    // Persist the memo and warm-start a second run from the snapshot —
    // what a repeated eval run does with `--cache-dir`.
    let snapshot_path = std::env::temp_dir().join("unidm-batch-quickstart.promptcache");
    cache.save_to(&snapshot_path)?;
    println!("\nSnapshot saved to {}", snapshot_path.display());

    let fresh_llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    let warm = PromptCache::unbounded(&fresh_llm)
        .with_shards(8)
        .with_canonicalization(CanonLevel::TableStem);
    let restored = warm.load_from(&snapshot_path)?;
    let warm_runner = BatchRunner::new(&warm, PipelineConfig::paper_default().with_seed(42));
    let warm_outputs = warm_runner.run(&lake, &tasks);
    let warm_stats = warm.stats();
    println!(
        "Warm start: {restored} entries restored; rerun hit {} / missed {} \
         ({:.0}% hit rate) with {} model tokens",
        warm_stats.hits,
        warm_stats.misses,
        warm_stats.hit_rate() * 100.0,
        fresh_llm.usage().total(),
    );
    for (cold, warm) in outputs.iter().zip(&warm_outputs) {
        assert_eq!(
            cold.as_ref().map_err(Clone::clone)?.answer,
            warm.as_ref().map_err(Clone::clone)?.answer,
            "warm answers must match the cold run bit-for-bit"
        );
    }
    let _ = std::fs::remove_file(&snapshot_path);
    Ok(())
}
