//! Batched quickstart: run a whole imputation workload through the
//! parallel batch engine with a shared prompt cache.
//!
//! Where `quickstart` runs one task through `UniDm::run`, this example
//! builds a batch of tasks over one table, layers a [`PromptCache`] over
//! the model so repeated retrieval/parsing prompts are deduplicated, and
//! fans the batch out across the worker pool with [`BatchRunner`]. Results
//! come back in task order with exact per-run token accounting.
//!
//! ```text
//! cargo run --example batch_quickstart
//! ```

use unidm::{BatchRunner, PipelineConfig, PromptCache, Task};
use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
use unidm_synthdata::imputation;
use unidm_tablestore::DataLake;
use unidm_world::World;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);

    // A 40-row imputation workload over the Restaurant benchmark table:
    // every target row is missing its city.
    let ds = imputation::restaurant(&world, 42, 40);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let tasks: Vec<Task> = ds
        .targets
        .iter()
        .map(|t| {
            Task::imputation(
                ds.table.name(),
                t.row,
                ds.target_attr.clone(),
                ds.key_attr.clone(),
            )
        })
        .collect();

    // The cache is itself a `LanguageModel`, so the runner threads it
    // under every worker transparently.
    let cache = PromptCache::unbounded(&llm);
    let runner = BatchRunner::new(&cache, PipelineConfig::paper_default().with_seed(42));
    println!(
        "Running {} imputation tasks on {} worker(s)...\n",
        tasks.len(),
        runner.workers()
    );
    let outputs = runner.run(&lake, &tasks);

    let mut correct = 0usize;
    let mut run_tokens = 0usize;
    for (out, target) in outputs.iter().zip(&ds.targets) {
        let out = out.as_ref().map_err(Clone::clone)?;
        if out.answer.eq_ignore_ascii_case(&target.truth.to_string()) {
            correct += 1;
        }
        // Per-run cost comes from the run's own meter, not a global diff.
        run_tokens += out.usage.total();
    }

    let stats = cache.stats();
    println!("Accuracy: {correct}/{} correct", outputs.len());
    println!("Logical tokens across runs: {run_tokens}");
    println!(
        "Tokens the model actually processed: {}",
        llm.usage().total()
    );
    println!(
        "Prompt cache: {} hits / {} misses ({:.0}% hit rate), {} tokens saved",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.tokens_saved,
    );
    Ok(())
}
