//! Entity resolution on the Walmart-Amazon benchmark: UniDM against the
//! trained Ditto baseline on the same candidate pairs.
//!
//! ```text
//! cargo run --release --example entity_resolution
//! ```

use unidm::{PipelineConfig, Task, UniDm};
use unidm_baselines::ditto::Ditto;
use unidm_eval::matching::to_serialized;
use unidm_eval::metrics::Confusion;
use unidm_llm::{LlmProfile, MockLlm};
use unidm_synthdata::matching;
use unidm_tablestore::DataLake;
use unidm_world::World;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    let ds = matching::walmart_amazon(&world, 42);
    println!("== Entity resolution: {} ==", ds.name);
    println!(
        "{} evaluation pairs ({:.0}% positive), {} training pairs\n",
        ds.len(),
        ds.positive_rate() * 100.0,
        ds.train.len()
    );

    // UniDM: zero-shot with automatically retrieved demonstrations.
    let unidm = UniDm::new(&llm, PipelineConfig::paper_default());
    let pool: Vec<_> = ds
        .train
        .iter()
        .take(40)
        .map(|p| {
            (
                to_serialized(&ds.schema, &p.a),
                to_serialized(&ds.schema, &p.b),
                p.is_match,
            )
        })
        .collect();
    let lake = DataLake::new();
    let mut unidm_conf = Confusion::default();
    for pair in ds.pairs.iter().take(100) {
        let task = Task::EntityResolution {
            a: to_serialized(&ds.schema, &pair.a),
            b: to_serialized(&ds.schema, &pair.b),
            pool: pool.clone(),
        };
        let answer = unidm.run(&lake, &task)?.answer;
        unidm_conf.record(answer.trim().eq_ignore_ascii_case("yes"), pair.is_match);
    }

    // Ditto: trained on the full labelled split.
    let ditto = Ditto::train(&ds.train);
    let mut ditto_conf = Confusion::default();
    for pair in ds.pairs.iter().take(100) {
        ditto_conf.record(ditto.matches(&pair.a, &pair.b), pair.is_match);
    }

    println!("UniDM  F1: {:.1}%", unidm_conf.f1() * 100.0);
    println!(
        "Ditto  F1: {:.1}% (fine-tuned on {} labelled pairs)",
        ditto_conf.f1() * 100.0,
        ds.train.len()
    );

    // Show one worked pair.
    let pair = &ds.pairs[0];
    let task = Task::EntityResolution {
        a: to_serialized(&ds.schema, &pair.a),
        b: to_serialized(&ds.schema, &pair.b),
        pool: pool.clone(),
    };
    let out = unidm.run(&lake, &task)?;
    println!("\nWorked example:");
    println!("  A: {}", pair.a.text_blob());
    println!("  B: {}", pair.b.text_blob());
    println!("  UniDM answer: {} (truth: {})", out.answer, pair.is_match);
    Ok(())
}
