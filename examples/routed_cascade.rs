//! Routing and cascading quickstart: spread a batched workload over a
//! weighted multi-endpoint fleet (per-endpoint breakers, fault schedules
//! and AIMD rate adaptation), then cut its bill with a small→large model
//! cascade — all on the virtual clock, all deterministic, all asserted.
//!
//! The routed stack assembled here:
//!
//! ```text
//! BatchRunner → PromptCache → RoutedBackend ─┬─ breaker ─ SimBackend e0 ─┐
//!                 canonical     seeded        ├─ breaker ─ SimBackend e1 ─┼─ MockLlm
//!                 single-flight weighted pick ├─ breaker ─ SimBackend e2 ─┘
//!                               AIMD buckets  └─ (each its own schedule)
//! ```
//!
//! Every replica shares one fault *plan* but draws its own fault
//! *schedule* (slot keying mixes in the endpoint id), so the fleet
//! degrades like real replicas do: independently. Rate limits observed at
//! one endpoint halve only that endpoint's AIMD bucket; successes earn
//! the rate back additively. The fleet's virtual-time makespan beats a
//! single endpoint of the same per-endpoint capacity — with answers
//! bit-identical to a fault-free run.
//!
//! The cascade then routes each prompt to GPT-J-6B first and escalates to
//! GPT-3-175B only when the cheap answer is unparseable or hedged below a
//! confidence gate — strictly fewer large-model tokens, strictly lower
//! billed cost per answer.
//!
//! ```text
//! cargo run --example routed_cascade
//! ```

use unidm::backend::BackendConfig;
use unidm::route::{AimdPolicy, CascadeBackend, CascadePolicy, RoutePlan, RoutedBackend};
use unidm::{BatchRunner, CanonLevel, PipelineConfig, PromptCache, Task};
use unidm_llm::{FaultPlan, LanguageModel, LlmProfile, MockLlm};
use unidm_synthdata::imputation;
use unidm_tablestore::DataLake;
use unidm_world::World;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);

    // The same 40-row imputation workload as `hedged_dispatch`.
    let ds = imputation::restaurant(&world, 42, 40);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let tasks: Vec<Task> = ds
        .targets
        .iter()
        .map(|t| {
            Task::imputation(
                ds.table.name(),
                t.row,
                ds.target_attr.clone(),
                ds.key_attr.clone(),
            )
        })
        .collect();
    let pipeline = PipelineConfig::paper_default().with_seed(42);

    // Ground truth: the fault-free serial run.
    let baseline = BatchRunner::new(&llm, pipeline)
        .with_workers(1)
        .answers(&lake, &tasks);

    // ── A routed fleet vs a single endpoint ─────────────────────────────
    // Every replica: moderate faults (timeouts, 429s, 5xxs, stragglers),
    // its own breaker, and an adaptive AIMD token bucket seeded at
    // 5 attempts/sec. `run(1)` is the single-endpoint reference; `run(3)`
    // the fleet. Identical per-endpoint capacity — only the replica count
    // differs.
    let seed = 7;
    let run_fleet = |replicas: u32| {
        let router = RoutedBackend::from_plan(
            &llm,
            BackendConfig::resilient(seed)
                .with_faults(FaultPlan::moderate(seed))
                .with_route(RoutePlan::replicas(replicas).with_aimd(AimdPolicy::per_sec(5))),
        );
        let cache = PromptCache::unbounded(&router).with_canonicalization(CanonLevel::TableStem);
        let answers = BatchRunner::new(&cache, pipeline)
            .with_workers(1)
            .answers(&lake, &tasks);
        let makespan = router.clock().now_micros();
        (answers, router.stats(), makespan)
    };
    let (single_answers, single_stats, single_makespan) = run_fleet(1);
    let (fleet_answers, fleet_stats, fleet_makespan) = run_fleet(3);

    println!("Routed fleet (moderate faults, AIMD from 5 attempts/sec per endpoint):\n");
    println!(
        "  1 endpoint:  makespan {:>8.3}s   {} attempts, {} rate-limited, {} throttle waits",
        single_makespan as f64 / 1e6,
        single_stats.attempts(),
        single_stats.endpoints[0].rate_limited,
        single_stats.endpoints[0].throttle_waits,
    );
    println!(
        "  3 replicas:  makespan {:>8.3}s   {} attempts, per-endpoint calls {:?}, {} trips",
        fleet_makespan as f64 / 1e6,
        fleet_stats.attempts(),
        fleet_stats
            .endpoints
            .iter()
            .map(|e| e.calls)
            .collect::<Vec<_>>(),
        fleet_stats.breaker_trips(),
    );

    assert_eq!(single_answers, baseline, "faults never change answers");
    assert_eq!(fleet_answers, baseline, "routing never changes answers");
    assert_eq!(fleet_stats.failures, 0, "every routed call completed");
    assert!(
        fleet_stats.endpoints.iter().all(|e| e.calls > 0),
        "equal weights spread traffic over every replica"
    );
    assert!(
        fleet_makespan < single_makespan,
        "three token buckets refill three times faster than one"
    );

    // Replicas draw independent fault schedules from the shared plan.
    let footprints: Vec<(u64, u64)> = fleet_stats
        .endpoints
        .iter()
        .map(|e| (e.timeouts, e.rate_limited))
        .collect();
    assert!(
        footprints.windows(2).any(|w| w[0] != w[1]),
        "replicas must not fault in lockstep: {footprints:?}"
    );

    // ── The small→large cascade ─────────────────────────────────────────
    // The pipeline's prompts depend on its answers, so fix the stream
    // first: record every unique canonical prompt of a large-only run,
    // then replay it through the cascade. Cheap answers that clear a 600‰
    // confidence gate are served as-is; unparseable or hedged ones
    // escalate to the large tier.
    let cheap = MockLlm::new(&world, LlmProfile::gptj_6b(), 42);
    let large = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    let recording = PromptCache::unbounded(&large).with_canonicalization(CanonLevel::TableStem);
    BatchRunner::new(&recording, pipeline)
        .with_workers(1)
        .answers(&lake, &tasks);
    let prompts = recording.canonical_prompts();
    let large_cost = LlmProfile::gpt3_175b().cost_micro_per_token();
    let large_only_tokens = large.usage().total() as u64;
    let large_only_billed = large_only_tokens * large_cost;

    let cascade = CascadeBackend::new(&cheap, &large)
        .with_policy(CascadePolicy { gate_permille: 600 })
        .with_costs_of(&LlmProfile::gptj_6b(), &LlmProfile::gpt3_175b());
    for prompt in &prompts {
        cascade.complete(prompt)?;
    }
    let stats = cascade.stats();
    let large_only_per_answer = large_only_billed / stats.answers;

    println!(
        "\nCascade {} → {} over {} unique prompts (gate 600‰):",
        cheap.name(),
        large.name(),
        prompts.len(),
    );
    println!(
        "  {} escalated ({} unparseable, {} low-confidence); large-tier tokens {} \
         vs {} large-only",
        stats.escalations,
        stats.unparseable,
        stats.low_confidence,
        stats.endpoints[1].tokens(),
        large_only_tokens,
    );
    println!(
        "  billed per answer: {}µ vs {}µ large-only ({}% of the bill)",
        stats.billed_per_answer_micro(),
        large_only_per_answer,
        100 * stats.billed_per_answer_micro() / large_only_per_answer.max(1),
    );

    assert!(
        stats.escalations > 0 && stats.escalations < stats.calls,
        "the gate must escalate some prompts and clear others"
    );
    assert!(
        stats.billed_per_answer_micro() < large_only_per_answer,
        "the cascade must be strictly cheaper per answer"
    );
    assert_eq!(
        stats.escalations,
        stats.unparseable + stats.low_confidence + stats.error_escalations,
        "escalation causes decompose exactly"
    );

    println!("\nAll answers bit-identical to the fault-free serial run; cascade strictly cheaper.");
    Ok(())
}
