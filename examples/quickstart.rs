//! Quickstart: impute a missing value with the full UniDM pipeline.
//!
//! Reproduces the paper's running example (Figure 2): given a table of
//! cities where Copenhagen's timezone is missing, the pipeline retrieves
//! context, parses it into natural text, constructs a cloze question, and
//! lets the model fill the blank.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use unidm::{PipelineConfig, Task, UniDm};
use unidm_llm::{LlmProfile, MockLlm};
use unidm_tablestore::{DataLake, Table, Value};
use unidm_world::World;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The synthetic world doubles as the model's pretraining corpus.
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);

    // A small city table; Copenhagen's timezone is missing.
    let mut cities = Table::builder("cities")
        .columns(["city", "country", "timezone"])
        .build();
    for (city, country, tz) in [
        ("Florence", "Italy", "Central European Time"),
        ("Alicante", "Spain", "Central European Time"),
        ("Antwerp", "Belgium", "Central European Time"),
        ("Athens", "Greece", "Eastern European Time"),
        ("Helsinki", "Finland", "Eastern European Time"),
        ("Tokyo", "Japan", "Japan Standard Time"),
    ] {
        cities.push_row(vec![
            Value::text(city),
            Value::text(country),
            Value::text(tz),
        ])?;
    }
    cities.push_row(vec![
        Value::text("Copenhagen"),
        Value::text("Denmark"),
        Value::Null,
    ])?;
    let target_row = cities.row_count() - 1;
    let lake: DataLake = [cities].into_iter().collect();

    let unidm = UniDm::new(&llm, PipelineConfig::paper_default());
    let task = Task::imputation("cities", target_row, "timezone", "city");
    let output = unidm.run(&lake, &task)?;

    println!("== UniDM quickstart: data imputation ==\n");
    println!(
        "Meta-wise retrieval selected attributes: {:?}",
        output.trace.selected_attrs
    );
    println!("\nRetrieved context records:");
    for r in &output.trace.context_records {
        println!("  {r}");
    }
    println!(
        "\nParsed context C':\n{}",
        indent(&output.trace.context_text)
    );
    println!(
        "\nTarget prompt (cloze question):\n{}",
        indent(&output.trace.target_prompt)
    );
    println!("\nAnswer: {}", output.answer);
    println!("Tokens consumed: {}", output.usage.total());
    Ok(())
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
