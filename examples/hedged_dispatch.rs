//! Hedged-dispatch quickstart: run a batched workload through the
//! event-driven dispatcher against an endpoint with a heavy latency tail,
//! and watch hedged requests cut the virtual-time P99 and makespan — with
//! answers bit-identical to the synchronous path.
//!
//! The stack assembled here is the pipelined production shape:
//!
//! ```text
//! BatchRunner (pipelined) → PromptCache → Dispatcher → SimBackend → MockLlm
//!    continuous admission    single-flight   reactor:     3% of       inner
//!    into open in-flight     off — the       budget,      attempts    model
//!    slots, no barriers      reactor         pacing,      stall 40×
//!                            coalesces       retry,
//!                                            hedge
//! ```
//!
//! Everything runs on a virtual clock: the reactor advances time deadline
//! by deadline, so overlapped requests overlap (elapsed virtual time is
//! the makespan, not the latency sum) and the multi-second stalls replay
//! in milliseconds of wall time. The whole timeline is deterministic, so
//! this example *asserts* its output.
//!
//! ```text
//! cargo run --example hedged_dispatch
//! ```

use unidm::backend::BackendConfig;
use unidm::dispatch::{Dispatcher, HedgePolicy};
use unidm::{BatchRunner, CanonLevel, PipelineConfig, PromptCache, Task};
use unidm_llm::{Clock, FaultPlan, LanguageModel, LlmProfile, MockLlm};
use unidm_synthdata::imputation;
use unidm_tablestore::DataLake;
use unidm_world::World;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);

    // The same 40-row imputation workload as `resilient_backend`.
    let ds = imputation::restaurant(&world, 42, 40);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let tasks: Vec<Task> = ds
        .targets
        .iter()
        .map(|t| {
            Task::imputation(
                ds.table.name(),
                t.row,
                ds.target_attr.clone(),
                ds.key_attr.clone(),
            )
        })
        .collect();
    let pipeline = PipelineConfig::paper_default().with_seed(42);

    // Ground truth: the fault-free serial run.
    let baseline = BatchRunner::new(&llm, pipeline)
        .with_workers(1)
        .answers(&lake, &tasks);

    // A heavy-tail endpoint: every attempt succeeds, but 3% of them stall
    // for 2 virtual seconds against a 50ms base — a 40× straggler tail.
    let seed = 7;
    let tail = FaultPlan::heavy_tail(seed);

    // Regime 1 — synchronous: the blocking resilient backend, one
    // round-trip per call. Concurrent virtual sleeps *sum*, so elapsed
    // virtual time is total latency, and every straggler lands in the P99.
    let sync_backend = BackendConfig::resilient(seed)
        .without_breaker()
        .with_faults(tail)
        .wrap(&llm);
    let sync_cache =
        PromptCache::unbounded(sync_backend.model()).with_canonicalization(CanonLevel::TableStem);
    let sync_answers = BatchRunner::new(&sync_cache, pipeline)
        .with_workers(1)
        .answers(&lake, &tasks);
    let sync_stats = sync_backend.stats().expect("backend enabled");
    let sync_makespan = sync_backend.elapsed_us();
    let sync_p99 = sync_stats.request_latency.quantile_us(990);

    // Regimes 2 and 3 — the event-driven dispatcher, without and with
    // hedging. Workers register with the reactor and feed ready tasks
    // into open in-flight slots (continuous admission, no barriers);
    // completions are timer-wheel events, so overlapped attempts overlap
    // in virtual time. With a `HedgePolicy`, a straggler exceeding the
    // observed P90 attempt latency gets a duplicate — first response
    // wins, the loser is cancelled and never memoized.
    let run_dispatched = |hedge: Option<HedgePolicy>| {
        let mut config = BackendConfig::resilient(seed)
            .without_breaker()
            .with_faults(tail)
            .with_pipelined();
        if let Some(policy) = hedge {
            config = config.with_hedge(policy);
        }
        let dispatcher = Dispatcher::new(&llm, config);
        // Warm the latency estimator so the first wave can arm hedges.
        for i in 0..8 {
            dispatcher
                .complete(&format!("latency estimator warmup {i}"))
                .expect("warmup completes");
        }
        // Above a pipelined dispatcher the cache runs with single-flight
        // off: registered workers never block outside the reactor, which
        // coalesces duplicate prompts itself.
        let cache = PromptCache::unbounded(&dispatcher)
            .with_canonicalization(CanonLevel::TableStem)
            .with_single_flight(false);
        let report = BatchRunner::new(&cache, pipeline)
            .with_workers(8)
            .with_pipeline(&dispatcher)
            .run_report(&lake, &tasks);
        let answers: Vec<String> = report
            .results
            .iter()
            .map(|r| r.as_ref().expect("task completes").answer.clone())
            .collect();
        (answers, dispatcher.stats(), dispatcher.clock().now_micros())
    };

    let (pipe_answers, pipe_stats, pipe_makespan) = run_dispatched(None);
    let hedge_policy = HedgePolicy::at_quantile(900).with_min_samples(8);
    let (hedged_answers, hedged_stats, hedged_makespan) = run_dispatched(Some(hedge_policy));
    let pipe_p99 = pipe_stats.request_latency.quantile_us(990);
    let hedged_p99 = hedged_stats.request_latency.quantile_us(990);

    println!("Heavy-tail endpoint (seed {seed}): 3% of attempts stall 2s vs 50ms base\n");
    println!(
        "  synchronous:      makespan {:>8.3}s   P99 {:>6.3}s   ({} attempts)",
        sync_makespan as f64 / 1e6,
        sync_p99 as f64 / 1e6,
        sync_stats.attempts,
    );
    println!(
        "  pipelined:        makespan {:>8.3}s   P99 {:>6.3}s   ({} attempts)",
        pipe_makespan as f64 / 1e6,
        pipe_p99 as f64 / 1e6,
        pipe_stats.attempts,
    );
    println!(
        "  pipelined+hedged: makespan {:>8.3}s   P99 {:>6.3}s   ({} attempts: {} hedges issued, {} won, {} cancelled)",
        hedged_makespan as f64 / 1e6,
        hedged_p99 as f64 / 1e6,
        hedged_stats.attempts,
        hedged_stats.hedges_issued,
        hedged_stats.hedges_won,
        hedged_stats.hedges_cancelled,
    );

    // The whole timeline is deterministic — assert the story, don't just
    // print it.
    assert_eq!(sync_answers, baseline, "faults never change answers");
    assert_eq!(pipe_answers, baseline, "pipelining never changes answers");
    assert_eq!(hedged_answers, baseline, "hedging never changes answers");
    assert!(
        pipe_makespan < sync_makespan,
        "overlapping in-flight requests must beat blocking round-trips"
    );
    assert!(
        hedged_makespan < sync_makespan && hedged_p99 < sync_p99,
        "hedged stragglers must cut both the makespan and the P99"
    );
    assert!(
        hedged_stats.hedges_issued > 0,
        "the 3% tail must arm hedges"
    );
    assert_eq!(
        hedged_stats.hedges_cancelled, hedged_stats.hedges_issued,
        "no injected errors: every hedge pair has exactly one cancelled loser"
    );
    assert_eq!(hedged_stats.failures, 0, "every call completed");

    // Re-running the hedged regime reproduces the timeline bit-for-bit:
    // every endpoint attempt, every hedge decision, every latency sample
    // and the makespan. (Only the cache-hit / dispatcher-call *split* is
    // timing-dependent — a worker that races the leader coalesces in the
    // reactor instead of hitting the cache — so `calls` and
    // `dispatch_coalesced` are compared as their schedule-exact sum.)
    let (replay_answers, replay_stats, replay_makespan) = run_dispatched(Some(hedge_policy));
    assert_eq!(replay_answers, hedged_answers);
    assert_eq!(replay_stats.attempts, hedged_stats.attempts);
    assert_eq!(replay_stats.hedges_issued, hedged_stats.hedges_issued);
    assert_eq!(replay_stats.hedges_won, hedged_stats.hedges_won);
    assert_eq!(replay_stats.hedges_cancelled, hedged_stats.hedges_cancelled);
    assert_eq!(
        replay_stats.calls - replay_stats.dispatch_coalesced,
        hedged_stats.calls - hedged_stats.dispatch_coalesced,
        "dispatched requests (calls minus coalesced) are schedule-exact"
    );
    assert_eq!(replay_stats.attempt_latency, hedged_stats.attempt_latency);
    assert_eq!(replay_stats.request_latency, hedged_stats.request_latency);
    assert_eq!(
        replay_makespan, hedged_makespan,
        "the virtual timeline reproduces"
    );

    println!(
        "\nAll {} answers bit-identical across every regime; hedged replay \
         reproduced every counter exactly.",
        baseline.len()
    );
    Ok(())
}
