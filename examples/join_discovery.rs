//! Join discovery (paper appendix D, Figure 4): is
//! `fifa_ranking.country_abrv` joinable with `countries_and_continents.ISO`?
//!
//! ```text
//! cargo run --example join_discovery
//! ```

use unidm::{PipelineConfig, Task, UniDm};
use unidm_llm::{LlmProfile, MockLlm};
use unidm_tablestore::DataLake;
use unidm_world::World;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    let unidm = UniDm::new(&llm, PipelineConfig::paper_default());
    let lake = DataLake::new();

    // The two columns of the paper's Figure 4.
    let abrv: Vec<String> = world
        .fifa
        .ranking
        .iter()
        .take(12)
        .map(|r| r.country_abrv.clone())
        .collect();
    let iso: Vec<String> = world.geo.countries.iter().map(|c| c.iso3.clone()).collect();
    let full: Vec<String> = world
        .fifa
        .ranking
        .iter()
        .take(12)
        .map(|r| r.country_full.clone())
        .collect();
    let populations: Vec<String> = world
        .geo
        .cities
        .iter()
        .take(12)
        .map(|c| c.population.to_string())
        .collect();

    println!("== Join discovery (Figure 4) ==\n");
    for (left_name, left, right_name, right) in [
        (
            "fifa_ranking.country_abrv",
            &abrv,
            "countries_and_continents.ISO",
            &iso,
        ),
        (
            "fifa_ranking.country_full",
            &full,
            "countries_and_continents.ISO",
            &iso,
        ),
        (
            "cities.population",
            &populations,
            "countries_and_continents.ISO",
            &iso,
        ),
    ] {
        let task = Task::JoinDiscovery {
            left_name: left_name.into(),
            left_values: left.clone(),
            right_name: right_name.into(),
            right_values: right.clone(),
        };
        let out = unidm.run(&lake, &task)?;
        println!("{left_name}  vs  {right_name}");
        println!(
            "  sample: {:?} vs {:?}",
            &left[..4.min(left.len())],
            &right[..4.min(right.len())]
        );
        println!("  -> {}\n", out.answer);
    }
    println!(
        "Note: country_full joins ISO through the model's abbreviation knowledge\n\
         (\"Germany is abbreviated as GER\") even though the raw values never overlap —\n\
         the semantic-join case embedding baselines miss."
    );
    Ok(())
}
