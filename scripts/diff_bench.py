#!/usr/bin/env python3
"""Diff two committed BENCH_*.json perf baselines.

Usage: diff_bench.py [--allow-workload-change] OLD.json NEW.json

The throughput bench emits two kinds of numbers:

* **Exact counters** — model calls, cache misses, tokens saved, endpoint
  calls, warm-path allocations, cascade billing. The whole stack is
  deterministic, so for an unchanged workload these must not regress
  between consecutive baselines: a new PR may make them better, never
  worse. Any regression fails this script (exit 1).
* **Times** — wall seconds, tasks/sec, virtual-time makespans and
  quantiles. These depend on the machine and on scheduling; they are
  printed for information and never fail the diff.

The hit/coalesced split of a cached regime is timing-dependent under
parallelism (a lookup that races the leader coalesces; one that arrives
later hits), so the script compares their *sum* — lookups served without
an endpoint call — which is exact.

Only regimes present in both files are compared, so baselines can add new
regimes without breaking the diff. If the two files describe different
workloads (task count, seed or model), nothing is comparable and the
script **fails** — a silent workload change would disable the perf gate
while appearing green. Re-baselining on purpose requires the explicit
`--allow-workload-change` flag, which downgrades the mismatch to a
notice.
"""

import json
import sys


# Fields that vary with machine or scheduling: printed, never compared.
INFORMATIONAL = ("wall_s", "tasks_per_s", "makespan_us", "p99_us", "virtual_us")


def load(path):
    with open(path) as f:
        return json.load(f)


def main(argv):
    args = list(argv[1:])
    allow_workload_change = "--allow-workload-change" in args
    args = [a for a in args if a != "--allow-workload-change"]
    if len(args) != 2:
        print(
            "usage: diff_bench.py [--allow-workload-change] OLD.json NEW.json",
            file=sys.stderr,
        )
        return 2
    old_path, new_path = args
    old, new = load(old_path), load(new_path)

    workload = ("tasks", "seed", "model")
    if any(old.get(k) != new.get(k) for k in workload):
        detail = {k: (old.get(k), new.get(k)) for k in workload}
        if allow_workload_change:
            print(
                f"workload mismatch between {old_path} and {new_path} "
                f"({detail}); re-baselining as requested, nothing compared."
            )
            return 0
        print(
            f"REGRESSED workload mismatch between {old_path} and {new_path} "
            f"({detail}): the perf gate has nothing to compare. If the "
            "workload change is intentional, re-run with "
            "--allow-workload-change to re-baseline.",
            file=sys.stderr,
        )
        return 1

    failures = []

    def must_not_increase(scope, key, o, n):
        if key in o and key in n:
            if n[key] > o[key]:
                failures.append(f"{scope}: {key} regressed {o[key]} -> {n[key]}")
            elif n[key] < o[key]:
                print(f"  improved  {scope}: {key} {o[key]} -> {n[key]}")

    def must_not_decrease(scope, key_label, o_val, n_val):
        if n_val < o_val:
            failures.append(f"{scope}: {key_label} regressed {o_val} -> {n_val}")
        elif n_val > o_val:
            print(f"  improved  {scope}: {key_label} {o_val} -> {n_val}")

    old_regimes = {r["name"]: r for r in old.get("regimes", [])}
    new_regimes = {r["name"]: r for r in new.get("regimes", [])}
    shared = [name for name in old_regimes if name in new_regimes]
    print(f"comparing {len(shared)} shared regimes of {old_path} vs {new_path}:")
    for name in shared:
        o, n = old_regimes[name], new_regimes[name]
        scope = f"regime '{name}'"
        for key in ("model_calls", "model_tokens", "cache_misses"):
            must_not_increase(scope, key, o, n)
        if "cache_hits" in o and "cache_hits" in n:
            must_not_decrease(
                scope,
                "cache_hits+cache_coalesced",
                o.get("cache_hits", 0) + o.get("cache_coalesced", 0),
                n.get("cache_hits", 0) + n.get("cache_coalesced", 0),
            )
        if "tokens_saved" in o and "tokens_saved" in n:
            must_not_decrease(scope, "tokens_saved", o["tokens_saved"], n["tokens_saved"])
        times = ", ".join(
            f"{k} {o.get(k)} -> {n.get(k)}" for k in INFORMATIONAL if k in o and k in n
        )
        if times:
            print(f"  info      {scope}: {times}")

    o_dup, n_dup = old.get("duplicate_heavy"), new.get("duplicate_heavy")
    if o_dup and n_dup:
        for key in ("unique_canonical_keys", "endpoint_calls"):
            must_not_increase("duplicate_heavy", key, o_dup, n_dup)
        must_not_decrease(
            "duplicate_heavy",
            "planner_coalesced_tasks",
            o_dup.get("planner_coalesced_tasks", 0),
            n_dup.get("planner_coalesced_tasks", 0),
        )
        # planner_steals is timing-dependent: informational only.
        print(
            f"  info      duplicate_heavy: planner_steals "
            f"{o_dup.get('planner_steals')} -> {n_dup.get('planner_steals')}"
        )

    o_warm, n_warm = old.get("warm_lookups"), new.get("warm_lookups")
    if o_warm and n_warm:
        for key in ("allocations", "bytes"):
            must_not_increase("warm_lookups", key, o_warm, n_warm)

    # Routed-fleet section (PR 7+): virtual-time goodput is deterministic
    # but the fault plan is part of the regime's definition, so makespans
    # and goodput are informational; the binary itself asserts the fleet
    # beats every single endpoint.
    o_routed, n_routed = old.get("routed"), new.get("routed")
    if o_routed and n_routed:
        for kind in ("single_endpoint", "fleet"):
            for o_run, n_run in zip(o_routed.get(kind, []), n_routed.get(kind, [])):
                print(
                    f"  info      routed {kind} seed {n_run.get('fault_seed')}: "
                    f"makespan_us {o_run.get('makespan_us')} -> {n_run.get('makespan_us')}, "
                    f"goodput {o_run.get('goodput_answers_per_vs')} -> "
                    f"{n_run.get('goodput_answers_per_vs')}"
                )

    # Cascade section (PR 7+): billed cost and large-tier token counters
    # are deterministic and exact — a new PR may cut the cascade's cost,
    # never raise it.
    o_cascade, n_cascade = old.get("cascade"), new.get("cascade")
    if o_cascade and n_cascade:
        for key in (
            "large_tier_tokens",
            "cascade_billed_micro",
            "billed_per_answer_micro",
            "tokens_per_answer_milli",
        ):
            must_not_increase("cascade", key, o_cascade, n_cascade)
        print(
            f"  info      cascade: escalations "
            f"{o_cascade.get('escalations')} -> {n_cascade.get('escalations')}"
        )

    # Open-loop serving section (PR 8+): the simulator is deterministic
    # end to end, so its SLO counters are exact — a new PR may complete
    # more requests within SLO, never fewer. Latency quantiles and
    # goodput depend on the regime definition and are informational; the
    # trace digest changes whenever any timing changes, so it is printed,
    # not compared.
    o_serve, n_serve = old.get("serving"), new.get("serving")
    if o_serve and n_serve:
        if o_serve.get("requests") != n_serve.get("requests"):
            detail = (o_serve.get("requests"), n_serve.get("requests"))
            if allow_workload_change:
                print(f"  notice    serving: request count changed {detail}")
            else:
                failures.append(
                    f"serving: request count changed {detail[0]} -> {detail[1]} "
                    "(workload change; pass --allow-workload-change to re-baseline)"
                )
        else:
            must_not_increase("serving", "errors", o_serve, n_serve)
            must_not_increase("serving", "replay_mismatches", o_serve, n_serve)
            must_not_decrease(
                "serving",
                "slo_met",
                o_serve.get("slo_met", 0),
                n_serve.get("slo_met", 0),
            )
            o_tenants = {t["name"]: t for t in o_serve.get("tenants", [])}
            n_tenants = {t["name"]: t for t in n_serve.get("tenants", [])}
            for name in o_tenants:
                if name not in n_tenants:
                    continue
                o_t, n_t = o_tenants[name], n_tenants[name]
                scope = f"serving tenant '{name}'"
                must_not_increase(scope, "errors", o_t, n_t)
                must_not_decrease(
                    scope,
                    "attainment_permille",
                    o_t.get("attainment_permille", 0),
                    n_t.get("attainment_permille", 0),
                )
                print(
                    f"  info      {scope}: p50_us {o_t.get('p50_us')} -> {n_t.get('p50_us')}, "
                    f"p99_us {o_t.get('p99_us')} -> {n_t.get('p99_us')}, "
                    f"p999_us {o_t.get('p999_us')} -> {n_t.get('p999_us')}, "
                    f"goodput_per_ks {o_t.get('goodput_per_ks')} -> {n_t.get('goodput_per_ks')}"
                )
            print(
                f"  info      serving: trace_fnv {o_serve.get('trace_fnv')} -> "
                f"{n_serve.get('trace_fnv')}, makespan_us "
                f"{o_serve.get('makespan_us')} -> {n_serve.get('makespan_us')}"
            )
    elif n_serve and not o_serve:
        print("  notice    serving: new section (no old baseline to compare)")

    # Out-of-core scale section (PR 9+): the streaming run is deterministic
    # end to end, so its counters — tasks, partitions, dedup accounting,
    # answers, model calls, and the FNV digest of the answer stream — are
    # pinned exactly: any drift means the streaming executor changed
    # behaviour. Peak live bytes depend on allocator layout and are
    # informational here (the bench binary itself asserts the hard budget);
    # wall time is informational as everywhere else.
    o_scale, n_scale = old.get("scale"), new.get("scale")
    if o_scale and n_scale:
        scale_workload = ("rows", "chunk_rows", "page_budget", "partition_tasks")
        if any(o_scale.get(k) != n_scale.get(k) for k in scale_workload):
            detail = {k: (o_scale.get(k), n_scale.get(k)) for k in scale_workload}
            if allow_workload_change:
                print(f"  notice    scale: workload changed {detail}")
            else:
                failures.append(
                    f"scale: workload changed {detail} (pass "
                    "--allow-workload-change to re-baseline)"
                )
        else:
            for key in (
                "tasks",
                "partitions",
                "unique_tasks",
                "coalesced_tasks",
                "answers",
                "errors",
                "model_calls",
                "answer_fnv",
            ):
                if o_scale.get(key) != n_scale.get(key):
                    failures.append(
                        f"scale: {key} drifted {o_scale.get(key)} -> "
                        f"{n_scale.get(key)} (exact-pinned counter)"
                    )
            print(
                f"  info      scale: peak_live_bytes "
                f"{o_scale.get('peak_live_bytes')} -> {n_scale.get('peak_live_bytes')} "
                f"(budget {n_scale.get('peak_budget_bytes')}), wall_s "
                f"{o_scale.get('wall_s')} -> {n_scale.get('wall_s')}"
            )
    elif n_scale and not o_scale:
        print("  notice    scale: new section (no old baseline to compare)")

    # Tiered-store section (PR 10+): the store is deterministic — admission
    # is a pure function of the key-touch history — so every counter is
    # pinned exactly. Two invariants of the *new* baseline are also hard
    # gates on their own: a warm replay must use zero model calls, and the
    # warm lookup path must stay allocation-free.
    o_store, n_store = old.get("store"), new.get("store")
    if n_store:
        if n_store.get("warm_model_calls", 0) != 0:
            failures.append(
                f"store: warm replay made {n_store['warm_model_calls']} model "
                "calls (must be 0)"
            )
        if n_store.get("warm_lookups", {}).get("allocations", 0) != 0:
            failures.append(
                f"store: warm lookups allocated "
                f"{n_store['warm_lookups']['allocations']} times (must be 0)"
            )
        scan = n_store.get("scan", {})
        if scan.get("hot_hit_rate_permille", 0) < 950:
            failures.append(
                f"store: post-scan hot-set hit rate "
                f"{scan.get('hot_hit_rate_permille')}‰ fell below the 950‰ floor"
            )
    if o_store and n_store:
        store_workload = [
            ("scan", "hot_set"),
            ("scan", "scan_keys"),
            ("compaction", "capacity"),
        ]
        changed = {
            f"{sec}.{key}": (o_store.get(sec, {}).get(key), n_store.get(sec, {}).get(key))
            for sec, key in store_workload
            if o_store.get(sec, {}).get(key) != n_store.get(sec, {}).get(key)
        }
        if changed:
            if allow_workload_change:
                print(f"  notice    store: workload changed {changed}")
            else:
                failures.append(
                    f"store: workload changed {changed} (pass "
                    "--allow-workload-change to re-baseline)"
                )
        else:
            for sub in ("cold", "warm", "scan", "compaction"):
                o_sub, n_sub = o_store.get(sub, {}), n_store.get(sub, {})
                for key in sorted(o_sub):
                    if key in n_sub and o_sub[key] != n_sub[key]:
                        failures.append(
                            f"store {sub}: {key} drifted {o_sub[key]} -> "
                            f"{n_sub[key]} (exact-pinned counter)"
                        )
    elif n_store and not o_store:
        print("  notice    store: new section (no old baseline to compare)")

    # Canon v2 section (PR 10+): on the same recorded duplicate stream the
    # Semantic fold must keep beating TableStem, and fold hits may only
    # grow between baselines.
    o_canon, n_canon = old.get("canon_v2"), new.get("canon_v2")
    if n_canon:
        sem_hits = n_canon.get("semantic", {}).get("hits", 0)
        stem_hits = n_canon.get("tablestem", {}).get("hits", 0)
        if sem_hits <= stem_hits:
            failures.append(
                f"canon_v2: semantic hits {sem_hits} must exceed tablestem "
                f"hits {stem_hits} on the reordered-duplicate stream"
            )
    if o_canon and n_canon:
        if o_canon.get("foldable_prompts") != n_canon.get("foldable_prompts"):
            detail = (o_canon.get("foldable_prompts"), n_canon.get("foldable_prompts"))
            if allow_workload_change:
                print(f"  notice    canon_v2: foldable stream changed {detail}")
            else:
                failures.append(
                    f"canon_v2: foldable stream changed {detail[0]} -> {detail[1]} "
                    "(pass --allow-workload-change to re-baseline)"
                )
        else:
            must_not_decrease(
                "canon_v2",
                "semantic hits",
                o_canon.get("semantic", {}).get("hits", 0),
                n_canon.get("semantic", {}).get("hits", 0),
            )
            must_not_increase(
                "canon_v2 semantic",
                "misses",
                o_canon.get("semantic", {}),
                n_canon.get("semantic", {}),
            )
    elif n_canon and not o_canon:
        print("  notice    canon_v2: new section (no old baseline to compare)")

    if failures:
        print(f"\n{len(failures)} counter regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  REGRESSED {failure}", file=sys.stderr)
        return 1
    print("\nno counter regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
