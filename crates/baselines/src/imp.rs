//! IMP (Mei et al. 2021): imputation with pre-trained language-model
//! semantics.
//!
//! The original fine-tunes a PLM to embed records and votes among nearest
//! neighbours. Offline we keep the architecture with TF-IDF-weighted
//! lexical similarity: rare tokens (street names, brand tokens, model
//! codes) dominate the neighbour search the way contextual embeddings
//! weight discriminative spans, while ubiquitous tokens ("Cafe", "Pro")
//! wash out.

use unidm_tablestore::{Table, TableError};
use unidm_text::tfidf::TfIdf;

/// A fitted IMP model over one table and target attribute.
#[derive(Debug)]
pub struct Imp {
    model: TfIdf,
    texts: Vec<String>,
    labels: Vec<Option<String>>,
    k: usize,
}

impl Imp {
    /// Indexes every row of `table` (excluding `target_attr`).
    ///
    /// # Errors
    ///
    /// Returns table errors for invalid references.
    pub fn fit(table: &Table, target_attr: &str, k: usize) -> Result<Self, TableError> {
        let target_idx = table.schema().require(target_attr)?;
        let mut texts = Vec::with_capacity(table.row_count());
        let mut labels = Vec::with_capacity(table.row_count());
        for rec in table.iter_rows() {
            let fields: Vec<String> = rec
                .values()
                .iter()
                .enumerate()
                .filter(|(i, v)| *i != target_idx && !v.is_null())
                .map(|(_, v)| v.to_string())
                .collect();
            // Digit-only tokens (house numbers, phone digits) carry no
            // semantics for a subword PLM encoder; drop them the way the
            // original model's tokenizer washes them out.
            let mut text: String = fields
                .join(" ")
                .split_whitespace()
                .filter(|w| {
                    !w.chars()
                        .all(|c| c.is_ascii_digit() || !c.is_alphanumeric())
                })
                .collect::<Vec<_>>()
                .join(" ");
            // Position bias: encoders weight a title's leading token (the
            // brand) above mid-string tokens; emulate by doubling it.
            if let Some(first) = text.split_whitespace().next() {
                text = format!("{first} {text}");
            }
            texts.push(text);
            let label = rec
                .get(target_idx)
                .filter(|v| !v.is_null())
                .map(|v| v.to_string());
            labels.push(label);
        }
        let model = TfIdf::fit(texts.iter().map(String::as_str));
        Ok(Imp {
            model,
            texts,
            labels,
            k: k.max(1),
        })
    }

    /// Imputes the target attribute of `row` by weighted k-NN vote.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RowOutOfBounds`] for an invalid row.
    pub fn impute(&self, row: usize) -> Result<String, TableError> {
        let query = self.texts.get(row).ok_or(TableError::RowOutOfBounds {
            index: row,
            len: self.texts.len(),
        })?;
        let mut scored: Vec<(f64, &str)> = self
            .texts
            .iter()
            .zip(&self.labels)
            .enumerate()
            .filter(|(i, (_, label))| *i != row && label.is_some())
            .map(|(_, (t, label))| {
                (
                    self.model.similarity(query, t),
                    label.as_deref().unwrap_or(""),
                )
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut votes: std::collections::HashMap<&str, f64> = std::collections::HashMap::new();
        for (sim, label) in scored.into_iter().take(self.k) {
            *votes.entry(label).or_insert(0.0) += sim.max(0.0);
        }
        Ok(votes
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(l, _)| l.to_string())
            .unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_synthdata::imputation;
    use unidm_world::World;

    #[test]
    fn knn_restaurant_accuracy_mid_high() {
        // Paper: IMP reaches 77.2% on Restaurant — below the LLM methods but
        // far above the statistical ones.
        let world = World::generate(7);
        let ds = imputation::restaurant(&world, 3, 60);
        let imp = Imp::fit(&ds.table, "city", 5).unwrap();
        let correct = ds
            .targets
            .iter()
            .filter(|t| {
                imp.impute(t.row).unwrap().to_lowercase() == t.truth.to_string().to_lowercase()
            })
            .count();
        let acc = correct as f64 / ds.targets.len() as f64;
        assert!(acc > 0.4, "kNN should find street neighbours: {acc}");
    }

    #[test]
    fn buy_accuracy_high() {
        let world = World::generate(7);
        let ds = imputation::buy(&world, 3, 60);
        let imp = Imp::fit(&ds.table, "manufacturer", 5).unwrap();
        let correct = ds
            .targets
            .iter()
            .filter(|t| {
                imp.impute(t.row).unwrap().to_lowercase() == t.truth.to_string().to_lowercase()
            })
            .count();
        let acc = correct as f64 / ds.targets.len() as f64;
        assert!(acc > 0.7, "brand names cluster by embedding: {acc}");
    }

    #[test]
    fn out_of_range_errors() {
        let world = World::generate(7);
        let ds = imputation::restaurant(&world, 3, 5);
        let imp = Imp::fit(&ds.table, "city", 3).unwrap();
        assert!(imp.impute(99999).is_err());
    }
}
