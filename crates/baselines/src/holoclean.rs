//! HoloClean (Rekatsinas et al. 2017): holistic data repair with
//! probabilistic inference.
//!
//! The imputation side scores candidate values by co-occurrence with the
//! record's evidence attributes; the detection side flags statistically
//! anomalous cells (rare values in low-cardinality columns, numeric
//! outliers). Both are purely statistical — no language model, no world
//! knowledge — which is exactly why they trail the LLM methods on tables
//! whose evidence is lexical (addresses, product names).

use std::collections::HashMap;

use unidm_tablestore::{Table, TableError, Value};

/// Imputes `attr` of row `row` by co-occurrence voting.
///
/// Every other attribute of the record votes for target values it co-occurs
/// with elsewhere in the table; ties and empty evidence fall back to the
/// column mode.
///
/// # Errors
///
/// Returns table errors for invalid references.
pub fn impute(table: &Table, row: usize, attr: &str) -> Result<String, TableError> {
    let target_idx = table.schema().require(attr)?;
    let record = table.row(row)?.clone();
    let mut votes: HashMap<String, f64> = HashMap::new();
    for (i, _name) in table.schema().names().enumerate() {
        if i == target_idx {
            continue;
        }
        let Some(evidence) = record.get(i) else {
            continue;
        };
        if evidence.is_null() {
            continue;
        }
        let ev_key = evidence.answer_key();
        // Conditional distribution P(target | evidence attribute value).
        let mut counts: HashMap<String, usize> = HashMap::new();
        let mut total = 0usize;
        for r in table.iter_rows() {
            let same = r.get(i).is_some_and(|v| v.answer_key() == ev_key);
            if !same {
                continue;
            }
            if let Some(t) = r.get(target_idx) {
                if !t.is_null() {
                    *counts.entry(t.to_string()).or_insert(0) += 1;
                    total += 1;
                }
            }
        }
        if total < 2 {
            // Unique evidence value: no statistical signal.
            continue;
        }
        for (value, count) in counts {
            *votes.entry(value).or_insert(0.0) += count as f64 / total as f64;
        }
    }
    // Ties must not fall to HashMap iteration order (randomized per
    // instance): break them lexicographically so repeated runs agree.
    if let Some((best, _)) = votes.into_iter().max_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.0.cmp(&a.0))
    }) {
        return Ok(best);
    }
    // Fallback: column mode.
    let stats = table.column_stats(attr)?;
    Ok(stats.mode().unwrap_or("").to_string())
}

/// Flags cell (`row`, `attr`) as erroneous when it is statistically
/// anomalous.
///
/// # Errors
///
/// Returns table errors for invalid references.
pub fn detect_error(table: &Table, row: usize, attr: &str) -> Result<bool, TableError> {
    let value = table.cell(row, attr)?.clone();
    if value.is_null() {
        return Ok(false);
    }
    // Numeric columns: flag > 3 sigma outliers.
    if let Some(x) = numeric_only(&value) {
        let nums: Vec<f64> = table
            .column(attr)?
            .filter_map(|v| numeric_only(&v))
            .collect();
        if nums.len() >= 8 {
            let mean = nums.iter().sum::<f64>() / nums.len() as f64;
            let var = nums.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / nums.len() as f64;
            let sd = var.sqrt().max(1e-9);
            return Ok((x - mean).abs() / sd > 3.0);
        }
        return Ok(false);
    }
    // Categorical columns: a unique value in a column where values repeat is
    // suspicious.
    let stats = table.column_stats(attr)?;
    let freq = stats.count(&value);
    let distinct = stats.distinct().max(1);
    let avg_multiplicity = (stats.total() - stats.null_count()) as f64 / distinct as f64;
    Ok(freq <= 1 && avg_multiplicity > 2.0)
}

fn numeric_only(v: &Value) -> Option<f64> {
    match v {
        Value::Int(_) | Value::Float(_) => v.as_f64(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_synthdata::{errors, imputation};
    use unidm_world::World;

    #[test]
    fn imputes_from_cooccurrence_when_present() {
        // Build a table where `country` determines `timezone`.
        let mut t = Table::builder("t")
            .columns(["city", "country", "tz"])
            .build();
        for (c, n, z) in [
            ("A", "Spain", "CET"),
            ("B", "Spain", "CET"),
            ("C", "Spain", "CET"),
            ("D", "Japan", "JST"),
            ("E", "Japan", "JST"),
        ] {
            t.push_row(vec![c.into(), n.into(), z.into()]).unwrap();
        }
        t.push_row(vec!["F".into(), "Spain".into(), Value::Null])
            .unwrap();
        assert_eq!(impute(&t, 5, "tz").unwrap(), "CET");
    }

    #[test]
    fn falls_back_to_mode_without_signal() {
        let mut t = Table::builder("t").columns(["name", "city"]).build();
        for i in 0..6 {
            t.push_row(vec![format!("N{i}").into(), "Springfield".into()])
                .unwrap();
        }
        t.push_row(vec!["X".into(), Value::Null]).unwrap();
        assert_eq!(impute(&t, 6, "city").unwrap().to_lowercase(), "springfield");
    }

    #[test]
    fn restaurant_accuracy_is_low() {
        // The paper reports 33.1% — unique names/addresses starve the
        // co-occurrence model. Verify it is far below the LLM methods.
        let world = World::generate(7);
        let ds = imputation::restaurant(&world, 3, 60);
        let correct = ds
            .targets
            .iter()
            .filter(|t| {
                impute(&ds.table, t.row, "city").unwrap().to_lowercase()
                    == t.truth.to_string().to_lowercase()
            })
            .count();
        let acc = correct as f64 / ds.targets.len() as f64;
        assert!(acc < 0.7, "statistical imputation should struggle: {acc}");
    }

    #[test]
    fn detects_numeric_outliers() {
        let world = World::generate(7);
        let ds = errors::adult(&world, 3, 300, 0.05);
        let mut tp = 0;
        let mut total_err = 0;
        for c in &ds.cells {
            if c.attr == "age" && c.is_error {
                total_err += 1;
                if detect_error(&ds.table, c.row, "age").unwrap() {
                    tp += 1;
                }
            }
        }
        assert!(total_err > 0);
        assert!(
            tp * 2 >= total_err,
            "most age outliers detected: {tp}/{total_err}"
        );
    }

    #[test]
    fn unique_in_repetitive_column_flagged() {
        let mut t = Table::builder("t").columns(["county"]).build();
        for _ in 0..10 {
            t.push_row(vec!["Marshall".into()]).unwrap();
        }
        t.push_row(vec!["Mxrshxll".into()]).unwrap();
        assert!(detect_error(&t, 10, "county").unwrap());
        assert!(!detect_error(&t, 0, "county").unwrap());
    }
}
