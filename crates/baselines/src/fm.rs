//! FM — "Can foundation models wrangle your data?" (Narayan et al. 2022).
//!
//! FM drives the same LLM with hand-built few-shot prompts: serialized
//! demonstration records plus a short question. Context demonstrations are
//! chosen either at random (`ContextStrategy::Random`) or by the guiding
//! rules the paper calls "manual" — in practice, nearest neighbours by
//! lexical similarity (`ContextStrategy::Manual`). Only serialization is
//! applied; there is no context parsing and no cloze construction.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use unidm_llm::protocol::{
    render_fm_entity_resolution, render_fm_error_detection, render_fm_imputation,
    render_fm_transformation, SerializedRecord,
};
use unidm_llm::{LanguageModel, LlmError};
use unidm_tablestore::Table;
use unidm_text::tfidf::TfIdf;

/// How FM selects its demonstration records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextStrategy {
    /// Uniformly sampled demonstrations ("FM (random)").
    Random,
    /// Similarity-selected demonstrations ("FM (manual)": the costly
    /// human-guided selection, approximated by nearest neighbours).
    Manual,
}

/// The FM baseline bound to a language model.
#[derive(Clone)]
pub struct Fm<'a> {
    llm: &'a dyn LanguageModel,
    strategy: ContextStrategy,
    demos: usize,
    seed: u64,
}

impl std::fmt::Debug for Fm<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fm")
            .field("llm", &self.llm.name())
            .field("strategy", &self.strategy)
            .field("demos", &self.demos)
            .finish()
    }
}

impl<'a> Fm<'a> {
    /// Creates an FM runner with the paper's default of 3 demonstrations.
    pub fn new(llm: &'a dyn LanguageModel, strategy: ContextStrategy, seed: u64) -> Self {
        Fm {
            llm,
            strategy,
            demos: 3,
            seed,
        }
    }

    /// Imputes `attr` of row `row` in `table`.
    ///
    /// # Errors
    ///
    /// Propagates LLM and table errors.
    pub fn impute(&self, table: &Table, row: usize, attr: &str) -> Result<String, FmError> {
        let record = serialize_row(table, row, attr)?;
        // Demonstration pool: rows with a known target value.
        let idx = table.schema().require(attr).map_err(FmError::Table)?;
        let pool: Vec<usize> = (0..table.row_count())
            .filter(|&r| r != row)
            .filter(|&r| {
                table
                    .row_at(r)
                    .is_ok_and(|rec| rec.get(idx).is_some_and(|v| !v.is_null()))
            })
            .collect();
        let chosen = self.select(
            &pool,
            |r| {
                let rec = serialize_row(table, *r, attr).unwrap_or_default();
                rec.render()
            },
            &record.render(),
        );
        let mut demos = Vec::with_capacity(chosen.len());
        for r in chosen {
            let demo_rec = serialize_row(table, r, attr)?;
            let answer = table.cell(r, attr).map_err(FmError::Table)?.to_string();
            demos.push((demo_rec, answer));
        }
        let prompt = render_fm_imputation(&demos, &record, attr);
        Ok(self
            .llm
            .complete(&prompt)
            .map_err(FmError::Llm)?
            .text
            .clone())
    }

    /// Judges whether two records co-refer, using `pool` for demonstrations.
    ///
    /// # Errors
    ///
    /// Propagates LLM errors.
    pub fn resolve(
        &self,
        a: &SerializedRecord,
        b: &SerializedRecord,
        pool: &[(SerializedRecord, SerializedRecord, bool)],
    ) -> Result<bool, FmError> {
        let query = format!("{} {}", a.render(), b.render());
        let indices: Vec<usize> = (0..pool.len()).collect();
        let chosen = self.select(
            &indices,
            |i| format!("{} {}", pool[*i].0.render(), pool[*i].1.render()),
            &query,
        );
        let demos: Vec<(SerializedRecord, SerializedRecord, bool)> =
            chosen.into_iter().map(|i| pool[i].clone()).collect();
        let prompt = render_fm_entity_resolution(&demos, a, b);
        let reply = self.llm.complete(&prompt).map_err(FmError::Llm)?;
        Ok(reply.text.trim().eq_ignore_ascii_case("yes"))
    }

    /// Judges whether cell (`row`, `attr`) holds an error; demonstrations
    /// are `(attr, value, is_error)` triples.
    ///
    /// # Errors
    ///
    /// Propagates LLM and table errors.
    pub fn detect_error(
        &self,
        table: &Table,
        row: usize,
        attr: &str,
        demos: &[(String, String, bool)],
    ) -> Result<bool, FmError> {
        let value = table.cell(row, attr).map_err(FmError::Table)?.to_string();
        let prompt = render_fm_error_detection(demos, attr, &value);
        let reply = self.llm.complete(&prompt).map_err(FmError::Llm)?;
        Ok(reply.text.trim().eq_ignore_ascii_case("yes"))
    }

    /// Transforms `input` following `examples`.
    ///
    /// # Errors
    ///
    /// Propagates LLM errors.
    pub fn transform(&self, examples: &[(String, String)], input: &str) -> Result<String, FmError> {
        let prompt = render_fm_transformation(examples, input);
        Ok(self
            .llm
            .complete(&prompt)
            .map_err(FmError::Llm)?
            .text
            .clone())
    }

    /// Selects up to `self.demos` pool members per the strategy.
    fn select<T: Copy>(&self, pool: &[T], text_of: impl Fn(&T) -> String, query: &str) -> Vec<T> {
        match self.strategy {
            ContextStrategy::Random => {
                let mut rng = StdRng::seed_from_u64(self.seed);
                let mut v: Vec<T> = pool.to_vec();
                v.shuffle(&mut rng);
                v.truncate(self.demos);
                v
            }
            ContextStrategy::Manual => {
                let model = TfIdf::fit(
                    pool.iter()
                        .map(&text_of)
                        .collect::<Vec<_>>()
                        .iter()
                        .map(String::as_str),
                );
                let mut scored: Vec<(f64, usize)> = pool
                    .iter()
                    .enumerate()
                    .map(|(i, t)| (model.similarity(query, &text_of(t)), i))
                    .collect();
                scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
                scored
                    .into_iter()
                    .take(self.demos)
                    .map(|(_, i)| pool[i])
                    .collect()
            }
        }
    }
}

/// Errors from FM runs.
#[derive(Debug, Clone, PartialEq)]
pub enum FmError {
    /// The language model failed.
    Llm(LlmError),
    /// A table reference failed.
    Table(unidm_tablestore::TableError),
}

impl std::fmt::Display for FmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FmError::Llm(e) => write!(f, "llm error: {e}"),
            FmError::Table(e) => write!(f, "table error: {e}"),
        }
    }
}

impl std::error::Error for FmError {}

/// Serializes one row without the target attribute (nulls skipped).
fn serialize_row(table: &Table, row: usize, skip_attr: &str) -> Result<SerializedRecord, FmError> {
    let rec = table.row(row).map_err(FmError::Table)?;
    let mut pairs = Vec::new();
    for (i, name) in table.schema().names().enumerate() {
        if name.eq_ignore_ascii_case(skip_attr) {
            continue;
        }
        let v = rec.get(i).map(|v| v.to_string()).unwrap_or_default();
        if !v.is_empty() {
            pairs.push((name.to_string(), v));
        }
    }
    Ok(SerializedRecord::new(pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_llm::{LlmProfile, MockLlm};
    use unidm_synthdata::imputation;
    use unidm_world::World;

    fn setup() -> (World, MockLlm) {
        let world = World::generate(7);
        let llm = MockLlm::new(&world, LlmProfile::gpt4_turbo(), 1);
        (world, llm)
    }

    #[test]
    fn fm_manual_imputes_restaurants() {
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 3, 20);
        let fm = Fm::new(&llm, ContextStrategy::Manual, 5);
        let mut correct = 0;
        for t in &ds.targets {
            let out = fm.impute(&ds.table, t.row, "city").unwrap();
            if out.to_lowercase() == t.truth.to_string().to_lowercase() {
                correct += 1;
            }
        }
        assert!(correct >= 12, "manual FM should be decent: {correct}/20");
    }

    #[test]
    fn fm_manual_beats_random_on_average() {
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 4, 40);
        let run = |strategy| {
            let fm = Fm::new(&llm, strategy, 5);
            ds.targets
                .iter()
                .filter(|t| {
                    fm.impute(&ds.table, t.row, "city").unwrap().to_lowercase()
                        == t.truth.to_string().to_lowercase()
                })
                .count()
        };
        let manual = run(ContextStrategy::Manual);
        let random = run(ContextStrategy::Random);
        assert!(manual >= random, "manual {manual} vs random {random}");
    }

    #[test]
    fn fm_transform() {
        let (_, llm) = setup();
        let fm = Fm::new(&llm, ContextStrategy::Random, 5);
        let out = fm
            .transform(
                &[
                    ("20000101".to_string(), "2000-01-01".to_string()),
                    ("19991231".to_string(), "1999-12-31".to_string()),
                ],
                "20210315",
            )
            .unwrap();
        assert_eq!(out, "2021-03-15");
    }

    #[test]
    fn fm_detect_error() {
        let (world, llm) = setup();
        let ds = unidm_synthdata::errors::hospital(&world, 3, 0.05);
        let fm = Fm::new(&llm, ContextStrategy::Random, 5);
        let demos = vec![
            ("county".to_string(), "mxrshxll".to_string(), true),
            ("city".to_string(), "Boston".to_string(), false),
        ];
        // The labelled cells are ordered errors-first; evaluate a clean
        // slice from the tail and a dirty slice from the head.
        let mut clean_flagged = 0;
        for c in ds.cells.iter().rev().take(30) {
            assert!(!c.is_error, "tail cells are clean by construction");
            if fm.detect_error(&ds.table, c.row, &c.attr, &demos).unwrap() {
                clean_flagged += 1;
            }
        }
        assert!(
            clean_flagged < 10,
            "clean cells mostly pass: {clean_flagged}/30"
        );
        let mut dirty_flagged = 0;
        for c in ds.cells.iter().take(30) {
            assert!(c.is_error, "head cells are errors by construction");
            if fm.detect_error(&ds.table, c.row, &c.attr, &demos).unwrap() {
                dirty_flagged += 1;
            }
        }
        assert!(
            dirty_flagged > 20,
            "errors mostly caught: {dirty_flagged}/30"
        );
    }

    #[test]
    fn fm_resolve_runs() {
        let (world, llm) = setup();
        let ds = unidm_synthdata::matching::beer(&world, 3);
        let fm = Fm::new(&llm, ContextStrategy::Manual, 5);
        let pool: Vec<_> = ds
            .train
            .iter()
            .map(|p| (rec_of(&ds, &p.a), rec_of(&ds, &p.b), p.is_match))
            .collect();
        let p = &ds.pairs[0];
        let _ = fm
            .resolve(&rec_of(&ds, &p.a), &rec_of(&ds, &p.b), &pool)
            .unwrap();
    }

    fn rec_of(
        ds: &unidm_synthdata::MatchingDataset,
        r: &unidm_tablestore::Record,
    ) -> SerializedRecord {
        SerializedRecord::new(
            ds.schema
                .names()
                .zip(r.values())
                .filter(|(_, v)| !v.is_null())
                .map(|(a, v)| (a.to_string(), v.to_string()))
                .collect(),
        )
    }
}
