//! CMI (Shichao et al. 2008): missing-value imputation based on data
//! clustering.
//!
//! Records are clustered with k-modes over their categorical answer keys;
//! a missing value is imputed as the mode of its cluster. Works when the
//! clusters align with the target attribute, fails when the evidence is
//! high-cardinality text.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use unidm_tablestore::{Table, TableError};

/// A fitted k-modes clustering over a table.
#[derive(Debug, Clone)]
pub struct Cmi {
    /// Cluster assignment per row.
    assignments: Vec<usize>,
    /// Number of clusters.
    k: usize,
}

impl Cmi {
    /// Clusters the table's rows (excluding `target_attr` from the distance)
    /// with k-modes; `k` defaults to `sqrt(rows)` when `None`.
    ///
    /// # Errors
    ///
    /// Returns table errors for invalid references.
    pub fn fit(
        table: &Table,
        target_attr: &str,
        k: Option<usize>,
        seed: u64,
    ) -> Result<Self, TableError> {
        let n = table.row_count();
        let k = k
            .unwrap_or_else(|| ((n as f64).sqrt() * 2.0).round() as usize)
            .clamp(1, n.max(1));
        let target_idx = table.schema().require(target_attr)?;
        let keys: Vec<Vec<String>> = table
            .iter_rows()
            .map(|r| {
                r.values()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != target_idx)
                    .map(|(_, v)| category_key(&v.to_string()))
                    .collect()
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(seed);
        let mut centroid_rows: Vec<usize> = (0..n).collect();
        centroid_rows.shuffle(&mut rng);
        centroid_rows.truncate(k);
        let mut centroids: Vec<Vec<String>> =
            centroid_rows.iter().map(|&r| keys[r].clone()).collect();

        let mut assignments = vec![0usize; n];
        for _iter in 0..8 {
            let mut changed = false;
            for (row, key) in keys.iter().enumerate() {
                let best = (0..centroids.len())
                    .min_by_key(|&c| hamming(key, &centroids[c]))
                    .unwrap_or(0);
                if assignments[row] != best {
                    assignments[row] = best;
                    changed = true;
                }
            }
            // Recompute modes per cluster and dimension.
            for (c, centroid) in centroids.iter_mut().enumerate() {
                for d in 0..centroid.len() {
                    let mut counts: HashMap<&str, usize> = HashMap::new();
                    for (row, key) in keys.iter().enumerate() {
                        if assignments[row] == c {
                            *counts.entry(key[d].as_str()).or_insert(0) += 1;
                        }
                    }
                    // Sort before taking the max: ties on (count, length)
                    // must not fall back to HashMap iteration order, which
                    // is randomized per process.
                    let mut counts: Vec<(&str, usize)> = counts.into_iter().collect();
                    counts.sort_unstable();
                    if let Some((mode, _)) = counts
                        .into_iter()
                        .max_by_key(|&(v, c)| (c, std::cmp::Reverse(v.len())))
                    {
                        centroid[d] = mode.to_string();
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Ok(Cmi { assignments, k })
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Imputes `attr` of `row` as the mode of the row's cluster.
    ///
    /// # Errors
    ///
    /// Returns table errors for invalid references.
    pub fn impute(&self, table: &Table, row: usize, attr: &str) -> Result<String, TableError> {
        let target_idx = table.schema().require(attr)?;
        if row >= self.assignments.len() {
            return Err(TableError::RowOutOfBounds {
                index: row,
                len: self.assignments.len(),
            });
        }
        let cluster = self.assignments[row];
        let mut counts: HashMap<String, usize> = HashMap::new();
        for (r, rec) in table.iter_rows().enumerate() {
            if self.assignments.get(r) == Some(&cluster) && r != row {
                if let Some(v) = rec.get(target_idx) {
                    if !v.is_null() {
                        *counts.entry(v.to_string()).or_insert(0) += 1;
                    }
                }
            }
        }
        // Deterministic tie-break (see `fit`): never let HashMap order pick.
        let mut counts: Vec<(String, usize)> = counts.into_iter().collect();
        counts.sort_unstable();
        if let Some((best, _)) = counts
            .into_iter()
            .max_by_key(|(v, c)| (*c, std::cmp::Reverse(v.len())))
        {
            return Ok(best);
        }
        let stats = table.column_stats(attr)?;
        Ok(stats.mode().unwrap_or("").to_string())
    }
}

/// Reduces a free-text value to a categorical key: its leading
/// alphanumeric token. Phone numbers reduce to their area code, product
/// names to their brand token — the coarse categories k-modes needs.
fn category_key(value: &str) -> String {
    value
        .split(|c: char| !c.is_alphanumeric())
        .find(|t| !t.is_empty())
        .unwrap_or("")
        .to_lowercase()
}

fn hamming(a: &[String], b: &[String]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count() + a.len().abs_diff(b.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_tablestore::Value;

    #[test]
    fn clusters_recover_structure() {
        // Two clean clusters on (type, country) determining city.
        let mut t = Table::builder("t")
            .columns(["type", "country", "city"])
            .build();
        for _ in 0..10 {
            t.push_row(vec!["sushi".into(), "Japan".into(), "Tokyo".into()])
                .unwrap();
            t.push_row(vec!["tapas".into(), "Spain".into(), "Madrid".into()])
                .unwrap();
        }
        t.push_row(vec!["sushi".into(), "Japan".into(), Value::Null])
            .unwrap();
        let cmi = Cmi::fit(&t, "city", Some(2), 1).unwrap();
        assert_eq!(cmi.impute(&t, 20, "city").unwrap(), "Tokyo");
    }

    #[test]
    fn k_defaults_to_sqrt() {
        let mut t = Table::builder("t").columns(["a", "b"]).build();
        for i in 0..25 {
            t.push_row(vec![format!("x{}", i % 3).into(), Value::Int(i)])
                .unwrap();
        }
        let cmi = Cmi::fit(&t, "b", None, 1).unwrap();
        assert_eq!(cmi.k(), 10, "2×sqrt(25)");
    }

    #[test]
    fn deterministic_for_seed() {
        let mut t = Table::builder("t").columns(["a", "b"]).build();
        for i in 0..30 {
            t.push_row(vec![
                format!("v{}", i % 4).into(),
                format!("w{}", i % 2).into(),
            ])
            .unwrap();
        }
        let a = Cmi::fit(&t, "b", Some(3), 9).unwrap();
        let b = Cmi::fit(&t, "b", Some(3), 9).unwrap();
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn out_of_range_row_errors() {
        let mut t = Table::builder("t").columns(["a", "b"]).build();
        t.push_row(vec!["x".into(), "y".into()]).unwrap();
        let cmi = Cmi::fit(&t, "b", Some(1), 1).unwrap();
        assert!(cmi.impute(&t, 5, "b").is_err());
    }
}
