//! Magellan (Konda et al. 2016): classical entity-matching with
//! hand-crafted similarity features and an off-the-shelf learner.
//!
//! The stand-in uses the canonical Magellan feature set (token Jaccard,
//! normalized edit similarity, overlap coefficient, numeric difference)
//! and fits a single-feature decision stump per dataset — deliberately
//! weaker than Ditto's learned combination, matching their gap in Table 4.

use unidm_synthdata::matching::EntityPair;
use unidm_tablestore::Record;
use unidm_text::distance::{jaccard, normalized_levenshtein, overlap_coefficient};

/// Magellan feature vector of a candidate pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MagellanFeatures {
    /// Token Jaccard of the text blobs.
    pub jaccard: f64,
    /// Normalized Levenshtein similarity of the first fields.
    pub edit: f64,
    /// Overlap coefficient of token sets.
    pub overlap: f64,
}

/// Computes the feature vector.
pub fn features(a: &Record, b: &Record) -> MagellanFeatures {
    let fa = a
        .values()
        .first()
        .map(|v| v.to_string())
        .unwrap_or_default();
    let fb = b
        .values()
        .first()
        .map(|v| v.to_string())
        .unwrap_or_default();
    MagellanFeatures {
        jaccard: jaccard(&a.text_blob(), &b.text_blob()),
        edit: normalized_levenshtein(&fa.to_lowercase(), &fb.to_lowercase()),
        overlap: overlap_coefficient(&a.text_blob(), &b.text_blob()),
    }
}

/// Which feature the stump splits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SplitFeature {
    Jaccard,
    Edit,
    Overlap,
}

/// A trained Magellan matcher (decision stump).
#[derive(Debug, Clone, PartialEq)]
pub struct Magellan {
    feature: SplitFeature,
    threshold: f64,
}

impl Magellan {
    /// Trains the stump: picks the (feature, threshold) pair with the best
    /// training F1.
    pub fn train(pairs: &[EntityPair]) -> Self {
        let feats: Vec<(MagellanFeatures, bool)> = pairs
            .iter()
            .map(|p| (features(&p.a, &p.b), p.is_match))
            .collect();
        let mut best = (
            Magellan {
                feature: SplitFeature::Jaccard,
                threshold: 0.5,
            },
            -1.0f64,
        );
        for feature in [
            SplitFeature::Jaccard,
            SplitFeature::Edit,
            SplitFeature::Overlap,
        ] {
            for t in 0..=40 {
                let threshold = t as f64 / 40.0;
                let model = Magellan { feature, threshold };
                let (mut tp, mut fp, mut fn_) = (0.0, 0.0, 0.0);
                for (f, label) in &feats {
                    match (model.value(f) >= threshold, *label) {
                        (true, true) => tp += 1.0,
                        (true, false) => fp += 1.0,
                        (false, true) => fn_ += 1.0,
                        (false, false) => {}
                    }
                }
                let f1 = if tp == 0.0 {
                    0.0
                } else {
                    2.0 * tp / (2.0 * tp + fp + fn_)
                };
                if f1 > best.1 {
                    best = (model, f1);
                }
            }
        }
        best.0
    }

    fn value(&self, f: &MagellanFeatures) -> f64 {
        match self.feature {
            SplitFeature::Jaccard => f.jaccard,
            SplitFeature::Edit => f.edit,
            SplitFeature::Overlap => f.overlap,
        }
    }

    /// Binary match decision.
    pub fn matches(&self, a: &Record, b: &Record) -> bool {
        self.value(&features(a, b)) >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_synthdata::matching;
    use unidm_world::World;

    fn f1_of(model: &Magellan, pairs: &[EntityPair]) -> f64 {
        let (mut tp, mut fp, mut fn_) = (0, 0, 0);
        for p in pairs {
            match (model.matches(&p.a, &p.b), p.is_match) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                _ => {}
            }
        }
        2.0 * tp as f64 / (2.0 * tp as f64 + fp as f64 + fn_ as f64).max(1.0)
    }

    #[test]
    fn reasonable_on_easy_weak_on_hard() {
        let world = World::generate(7);
        let beer = matching::beer(&world, 3);
        let hard = matching::amazon_google(&world, 3);
        let m_beer = Magellan::train(&beer.train);
        let m_hard = Magellan::train(&hard.train);
        let f1_beer = f1_of(&m_beer, &beer.pairs);
        let f1_hard = f1_of(&m_hard, &hard.pairs);
        assert!(f1_beer > 0.6, "beer f1 {f1_beer:.3}");
        assert!(
            f1_beer > f1_hard,
            "beer {f1_beer:.3} vs amazon-google {f1_hard:.3}"
        );
    }

    #[test]
    fn ditto_beats_magellan() {
        let world = World::generate(7);
        let ds = matching::walmart_amazon(&world, 3);
        let magellan = Magellan::train(&ds.train);
        let ditto = crate::ditto::Ditto::train(&ds.train);
        let f1_m = f1_of(&magellan, &ds.pairs);
        let (mut tp, mut fp, mut fn_) = (0, 0, 0);
        for p in &ds.pairs {
            match (ditto.matches(&p.a, &p.b), p.is_match) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                _ => {}
            }
        }
        let f1_d = 2.0 * tp as f64 / (2.0 * tp as f64 + fp as f64 + fn_ as f64);
        assert!(f1_d >= f1_m - 0.02, "ditto {f1_d:.3} vs magellan {f1_m:.3}");
    }
}
