//! TDE — Transform-Data-by-Example (He et al. 2018).
//!
//! A search engine over a library of *syntactic* string operators: token
//! slicing, reordering, casing and literal glue. It has no semantic
//! knowledge, which is why the paper's TDE collapses from 63% on
//! StackOverflow to 32% on Bing-QueryLogs where the required
//! transformations are knowledge-backed (country → ISO code).

/// One piece of a TDE program's output.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TdePiece {
    /// Literal glue.
    Lit(String),
    /// Whole input token.
    Token(usize),
    /// Fixed byte slice of a token.
    Slice {
        idx: usize,
        start: usize,
        len: usize,
    },
    /// First character of a token.
    FirstChar(usize),
}

/// A synthesized TDE program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TdeProgram {
    pieces: Vec<TdePiece>,
    casing: Casing,
}

/// Whole-output casing applied after assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Casing {
    None,
    Upper,
    Lower,
}

impl TdeProgram {
    /// Applies the program to `input`.
    pub fn apply(&self, input: &str) -> Option<String> {
        let tokens = tokens_of(input);
        let mut out = String::new();
        for piece in &self.pieces {
            match piece {
                TdePiece::Lit(s) => out.push_str(s),
                TdePiece::Token(i) => out.push_str(tokens.get(*i)?),
                TdePiece::Slice { idx, start, len } => {
                    let t = tokens.get(*idx)?;
                    if !t.is_ascii() {
                        return None;
                    }
                    out.push_str(t.get(*start..start + len)?);
                }
                TdePiece::FirstChar(i) => out.push(tokens.get(*i)?.chars().next()?),
            }
        }
        Some(match self.casing {
            Casing::None => out,
            Casing::Upper => out.to_uppercase(),
            Casing::Lower => out.to_lowercase(),
        })
    }
}

fn tokens_of(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        if c.is_alphanumeric() {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Synthesizes a TDE program consistent with all examples, or `None`.
pub fn synthesize(examples: &[(String, String)]) -> Option<TdeProgram> {
    if examples.is_empty() {
        return None;
    }
    for casing in [Casing::None, Casing::Upper, Casing::Lower] {
        if let Some(prog) = synthesize_cased(examples, casing) {
            return Some(prog);
        }
    }
    None
}

fn synthesize_cased(examples: &[(String, String)], casing: Casing) -> Option<TdeProgram> {
    let (input, output) = &examples[0];
    let target = match casing {
        Casing::None => output.clone(),
        // To invert the casing for alignment, compare case-insensitively.
        Casing::Upper | Casing::Lower => output.clone(),
    };
    let tokens = tokens_of(input);
    let mut pieces = Vec::new();
    let mut found = Vec::new();
    let mut budget = 30_000usize;
    dfs(
        &target,
        0,
        &tokens,
        casing,
        &mut pieces,
        &mut found,
        &mut budget,
    );
    for candidate in found {
        if candidate.iter().all(|p| matches!(p, TdePiece::Lit(_))) {
            continue;
        }
        let prog = TdeProgram {
            pieces: candidate,
            casing,
        };
        if examples
            .iter()
            .all(|(i, o)| prog.apply(i).as_deref() == Some(o.as_str()))
        {
            return Some(prog);
        }
    }
    None
}

fn matches_cased(rest: &str, s: &str, casing: Casing) -> bool {
    match casing {
        Casing::None => rest.starts_with(s),
        Casing::Upper => rest.starts_with(&s.to_uppercase()),
        Casing::Lower => rest.starts_with(&s.to_lowercase()),
    }
}

fn dfs(
    output: &str,
    pos: usize,
    tokens: &[String],
    casing: Casing,
    pieces: &mut Vec<TdePiece>,
    found: &mut Vec<Vec<TdePiece>>,
    budget: &mut usize,
) {
    if *budget == 0 || found.len() >= 48 {
        return;
    }
    *budget -= 1;
    if pos >= output.len() {
        found.push(pieces.clone());
        return;
    }
    let rest = &output[pos..];
    for (i, t) in tokens.iter().enumerate() {
        if t.len() >= 2 && matches_cased(rest, t, casing) {
            pieces.push(TdePiece::Token(i));
            dfs(output, pos + t.len(), tokens, casing, pieces, found, budget);
            pieces.pop();
        }
    }
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ascii() || t.len() < 2 {
            continue;
        }
        for start in 0..t.len() {
            for len in (2..=(t.len() - start).min(8)).rev() {
                let Some(s) = t.get(start..start + len) else {
                    continue;
                };
                if s.len() != t.len() && matches_cased(rest, s, casing) {
                    pieces.push(TdePiece::Slice { idx: i, start, len });
                    dfs(output, pos + len, tokens, casing, pieces, found, budget);
                    pieces.pop();
                }
            }
        }
    }
    for (i, t) in tokens.iter().enumerate() {
        if let Some(c) = t.chars().next() {
            if matches_cased(rest, &c.to_string(), casing) {
                pieces.push(TdePiece::FirstChar(i));
                dfs(
                    output,
                    pos + c.len_utf8(),
                    tokens,
                    casing,
                    pieces,
                    found,
                    budget,
                );
                pieces.pop();
            }
        }
    }
    if let Some(c) = rest.chars().next() {
        if !c.is_alphanumeric() {
            match pieces.last_mut() {
                Some(TdePiece::Lit(s)) => {
                    s.push(c);
                    dfs(
                        output,
                        pos + c.len_utf8(),
                        tokens,
                        casing,
                        pieces,
                        found,
                        budget,
                    );
                    if let Some(TdePiece::Lit(s)) = pieces.last_mut() {
                        s.pop();
                    }
                }
                _ => {
                    pieces.push(TdePiece::Lit(c.to_string()));
                    dfs(
                        output,
                        pos + c.len_utf8(),
                        tokens,
                        casing,
                        pieces,
                        found,
                        budget,
                    );
                    pieces.pop();
                }
            }
        }
    }
}

/// Runs TDE on one case: synthesize from the examples, apply to the input.
/// Returns the input unchanged when no program is found (TDE's observable
/// failure mode).
pub fn transform(examples: &[(String, String)], input: &str) -> String {
    synthesize(examples)
        .and_then(|p| p.apply(input))
        .unwrap_or_else(|| input.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn solves_date_reorder() {
        let p = synthesize(&ex(&[
            ("2021-03-15", "03/15/2021"),
            ("1999-12-01", "12/01/1999"),
        ]))
        .unwrap();
        assert_eq!(p.apply("2005-07-04").unwrap(), "07/04/2005");
    }

    #[test]
    fn solves_compact_date_split() {
        let out = transform(
            &ex(&[("20210315", "2021-03-15"), ("19991201", "1999-12-01")]),
            "20050704",
        );
        assert_eq!(out, "2005-07-04");
    }

    #[test]
    fn solves_name_swap_and_initials() {
        assert_eq!(
            transform(
                &ex(&[("John Smith", "Smith, John"), ("Mary Jones", "Jones, Mary")]),
                "Alan Turing"
            ),
            "Turing, Alan"
        );
        assert_eq!(
            transform(
                &ex(&[("John Smith", "J. Smith"), ("Mary Jones", "M. Jones")]),
                "Alan Turing"
            ),
            "A. Turing"
        );
    }

    #[test]
    fn solves_uppercase() {
        assert_eq!(
            transform(&ex(&[("abc", "ABC"), ("xy", "XY")]), "hello"),
            "HELLO"
        );
    }

    #[test]
    fn fails_on_semantic_transforms() {
        // Non-prefix ISO codes have no syntactic program; TDE returns the
        // input. (Prefix codes like Germany → GER *are* syntactically
        // solvable — real TDE gets those too.)
        let out = transform(&ex(&[("Denmark", "DNK"), ("Spain", "ESP")]), "France");
        assert_ne!(out, "FRA");
    }

    #[test]
    fn fails_on_month_names() {
        // No month dictionary in the syntactic operator library.
        let out = transform(&ex(&[("03", "March"), ("11", "November")]), "07");
        assert_ne!(out, "July");
    }

    #[test]
    fn empty_examples_identity() {
        assert_eq!(transform(&[], "x"), "x");
    }
}
