//! WarpGate (Cong et al. 2022): embedding-based semantic join discovery.
//!
//! Columns are embedded as the mean of their value embeddings; a candidate
//! pair's joinability score is the cosine similarity, thresholded. The
//! embedding view is what Figure 5 stresses: look-alike columns (two
//! person-name columns with disjoint values) still embed closely, producing
//! the false positives that let UniDM's instance-level reasoning win the
//! sweep.

use unidm_text::{Embedder, Embedding};

/// Embeds a column as the renormalized mean of its value embeddings.
pub fn column_embedding(values: &[String]) -> Embedding {
    let embedder = Embedder::default();
    embedder.embed_fields(values.iter().map(String::as_str))
}

/// Joinability score of two columns in `[0, 1]`.
pub fn score(left: &[String], right: &[String]) -> f64 {
    if left.is_empty() || right.is_empty() {
        return 0.0;
    }
    let l = column_embedding(left);
    let r = column_embedding(right);
    f64::from(l.cosine(&r)).clamp(0.0, 1.0)
}

/// Binary decision at `threshold`.
pub fn joinable(left: &[String], right: &[String], threshold: f64) -> bool {
    score(left, right) >= threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_columns_score_one() {
        let c = v(&["GER", "ITA", "FRA"]);
        assert!(score(&c, &c) > 0.99);
    }

    #[test]
    fn overlapping_columns_score_high() {
        let a = v(&["Germany", "Italy", "France", "Spain"]);
        let b = v(&["germany", "italy", "france", "india"]);
        assert!(score(&a, &b) > 0.6);
    }

    #[test]
    fn unrelated_columns_score_low() {
        let a = v(&["3.14", "2.71", "1.41"]);
        let b = v(&["Imperial Stout", "Pale Ale", "Saison"]);
        assert!(score(&a, &b) < 0.4);
    }

    #[test]
    fn lookalike_name_columns_fool_the_embedding() {
        // Person-name columns drawn from the same first/last-name pools
        // share tokens without sharing any *value* — not joinable, yet the
        // embedding scores them like an overlapping pair. This is the
        // WarpGate failure mode the paper's Figure 5 exposes.
        let a = v(&["James Smith", "Mary Johnson", "Robert Brown"]);
        let b = v(&["James Johnson", "Mary Brown", "Robert Smith"]);
        let exact_overlap = a.iter().filter(|x| b.contains(x)).count();
        assert_eq!(exact_overlap, 0, "no joinable values");
        assert!(score(&a, &b) > 0.6, "got {}", score(&a, &b));
    }

    #[test]
    fn empty_columns_score_zero() {
        assert_eq!(score(&[], &v(&["x"])), 0.0);
    }
}
