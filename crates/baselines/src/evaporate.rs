//! Evaporate (Arora et al. 2023): information extraction by synthesizing
//! extraction code.
//!
//! *Evaporate-code* synthesizes one extraction rule per attribute from a
//! few sample documents and applies it everywhere — cheap but brittle when
//! page templates vary. *Evaporate-code+* synthesizes an ensemble of rules
//! and votes — the stronger variant that beats UniDM in Table 11.

use std::collections::BTreeMap;

use unidm_synthdata::extraction::Document;

/// One synthesized extraction rule: grab the text between two anchors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Text immediately before the value.
    pub prefix: String,
    /// Text immediately after the value.
    pub suffix: String,
}

impl Rule {
    /// Applies the rule to a document.
    pub fn apply(&self, text: &str) -> Option<String> {
        let start = text.find(&self.prefix)? + self.prefix.len();
        let rest = &text[start..];
        let end = rest.find(&self.suffix)?;
        let value = rest[..end].trim();
        (!value.is_empty()).then(|| value.to_string())
    }
}

/// Candidate anchor pairs per attribute — the patterns a code synthesizer
/// would discover from sample pages.
fn candidate_rules(attr: &str) -> Vec<Rule> {
    let cap = |s: &str| {
        let mut cs = s.chars();
        match cs.next() {
            Some(c) => c.to_uppercase().collect::<String>() + cs.as_str(),
            None => String::new(),
        }
    };
    let mut rules = vec![
        // Infobox rows: <tr><th>Attr</th><td>value</td></tr>
        Rule {
            prefix: format!("<th>{}</th><td>", cap(attr)),
            suffix: "</td>".to_string(),
        },
        // Key-value spans: "attr = value<"
        Rule {
            prefix: format!("{attr} = "),
            suffix: "<".to_string(),
        },
    ];
    match attr {
        "player" => {
            rules.push(Rule {
                prefix: "<h1>".into(),
                suffix: "</h1>".into(),
            });
            rules.push(Rule {
                prefix: "<h2>".into(),
                suffix: "</h2>".into(),
            });
            rules.push(Rule {
                prefix: "<title>".into(),
                suffix: " |".into(),
            });
        }
        "height" => {
            rules.push(Rule {
                prefix: "ht&nbsp;".into(),
                suffix: "<".into(),
            });
            rules.push(Rule {
                prefix: "Standing ".into(),
                suffix: " tall".into(),
            });
        }
        "position" => {
            rules.push(Rule {
                prefix: "pos: ".into(),
                suffix: "<".into(),
            });
            rules.push(Rule {
                prefix: "plays the ".into(),
                suffix: " position".into(),
            });
        }
        "college" => {
            rules.push(Rule {
                prefix: "college = ".into(),
                suffix: "<".into(),
            });
            rules.push(Rule {
                prefix: "college basketball at ".into(),
                suffix: " before".into(),
            });
        }
        _ => {}
    }
    rules
}

/// Synthesizes the single best rule for `attr` from sample documents
/// (Evaporate-code): the candidate that fires on the most samples.
pub fn synthesize_single(docs: &[Document], attr: &str) -> Option<Rule> {
    candidate_rules(attr)
        .into_iter()
        .map(|r| {
            let hits = docs.iter().filter(|d| r.apply(&d.text).is_some()).count();
            (hits, r)
        })
        .filter(|(hits, _)| *hits > 0)
        .max_by_key(|(hits, _)| *hits)
        .map(|(_, r)| r)
}

/// Extracts with Evaporate-code: one rule fit on the sample, applied to all.
pub fn extract_single(
    sample: &[Document],
    docs: &[Document],
    attrs: &[String],
) -> Vec<BTreeMap<String, String>> {
    let rules: BTreeMap<&str, Option<Rule>> = attrs
        .iter()
        .map(|a| (a.as_str(), synthesize_single(sample, a)))
        .collect();
    docs.iter()
        .map(|d| {
            attrs
                .iter()
                .filter_map(|a| {
                    rules
                        .get(a.as_str())
                        .and_then(|r| r.as_ref())
                        .and_then(|r| r.apply(&d.text))
                        .map(|v| (a.clone(), v))
                })
                .collect()
        })
        .collect()
}

/// Extracts with Evaporate-code+: every candidate rule votes per document;
/// the first rule that fires (in sample-support order) wins.
pub fn extract_ensemble(
    sample: &[Document],
    docs: &[Document],
    attrs: &[String],
) -> Vec<BTreeMap<String, String>> {
    // Rank candidates by sample support, keep all that ever fire.
    let mut ranked: BTreeMap<&str, Vec<Rule>> = BTreeMap::new();
    for a in attrs {
        let mut scored: Vec<(usize, Rule)> = candidate_rules(a)
            .into_iter()
            .map(|r| {
                let hits = sample.iter().filter(|d| r.apply(&d.text).is_some()).count();
                (hits, r)
            })
            .filter(|(h, _)| *h > 0)
            .collect();
        scored.sort_by_key(|(h, _)| std::cmp::Reverse(*h));
        ranked.insert(a.as_str(), scored.into_iter().map(|(_, r)| r).collect());
    }
    docs.iter()
        .map(|d| {
            attrs
                .iter()
                .filter_map(|a| {
                    ranked
                        .get(a.as_str())
                        .and_then(|rules| rules.iter().find_map(|r| r.apply(&d.text)))
                        .map(|v| (a.clone(), v))
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_synthdata::extraction;
    use unidm_world::World;

    fn text_f1(pred: &str, truth: &str) -> f64 {
        let p: Vec<String> = unidm_text::words(pred);
        let t: Vec<String> = unidm_text::words(truth);
        if p.is_empty() || t.is_empty() {
            return f64::from(u8::from(p == t));
        }
        let common = p.iter().filter(|w| t.contains(w)).count() as f64;
        if common == 0.0 {
            return 0.0;
        }
        let precision = common / p.len() as f64;
        let recall = common / t.len() as f64;
        2.0 * precision * recall / (precision + recall)
    }

    fn avg_f1(preds: &[BTreeMap<String, String>], ds: &extraction::ExtractionDataset) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (pred, truth) in preds.iter().zip(&ds.truth) {
            for attr in &ds.attrs {
                let p = pred.get(attr).map(String::as_str).unwrap_or("");
                sum += text_f1(p, &truth[attr]);
                n += 1;
            }
        }
        sum / n as f64
    }

    #[test]
    fn ensemble_beats_single() {
        let world = World::generate(7);
        let ds = extraction::nba_players(&world, 3);
        let sample = &ds.docs[..10.min(ds.docs.len())];
        let single = extract_single(sample, &ds.docs, &ds.attrs);
        let ensemble = extract_ensemble(sample, &ds.docs, &ds.attrs);
        let f1_single = avg_f1(&single, &ds);
        let f1_ensemble = avg_f1(&ensemble, &ds);
        assert!(
            f1_ensemble > f1_single,
            "ensemble {f1_ensemble:.3} vs single {f1_single:.3}"
        );
        assert!(
            f1_ensemble > 0.6,
            "ensemble should be strong: {f1_ensemble:.3}"
        );
    }

    #[test]
    fn rule_extracts_infobox_row() {
        let r = Rule {
            prefix: "<th>Height</th><td>".into(),
            suffix: "</td>".into(),
        };
        assert_eq!(
            r.apply("<tr><th>Height</th><td>6 ft 10 in</td></tr>")
                .as_deref(),
            Some("6 ft 10 in")
        );
        assert_eq!(r.apply("no table here"), None);
    }

    #[test]
    fn single_rule_misses_other_templates() {
        let world = World::generate(7);
        let ds = extraction::nba_players(&world, 3);
        // Fit on infobox docs only; prose/messy pages should often miss.
        let infobox: Vec<Document> = ds
            .docs
            .iter()
            .filter(|d| d.template == extraction::Template::Infobox)
            .take(8)
            .cloned()
            .collect();
        let preds = extract_single(&infobox, &ds.docs, &ds.attrs);
        let misses = preds
            .iter()
            .zip(&ds.docs)
            .filter(|(p, d)| {
                d.template != extraction::Template::Infobox && !p.contains_key("height")
            })
            .count();
        assert!(
            misses > 0,
            "single-rule extraction should miss non-infobox pages"
        );
    }
}
