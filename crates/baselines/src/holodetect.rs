//! HoloDetect (Heidari et al. 2019): few-shot error detection.
//!
//! HoloDetect learns an error model from a handful of labelled examples by
//! featurizing cells (value frequency, format agreement with the column,
//! character-level likelihood under a noisy-channel model) and fitting a
//! classifier. We reproduce the featurization and fit per-feature
//! thresholds that maximize F1 on the labelled seed.

use std::collections::HashMap;

use unidm_tablestore::{Table, TableError};
use unidm_text::format::FormatSignature;

/// A labelled training cell: (row, attr, is_error).
pub type LabeledExample = (usize, String, bool);

/// Cell features used by the error model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellFeatures {
    /// Relative frequency of the exact value in its column.
    pub frequency: f64,
    /// Format-signature agreement with the column's modal signature.
    pub format_agreement: f64,
    /// Fraction of the value's letter trigrams that are novel for the
    /// column (count ≤ 1 — i.e. contributed only by this cell).
    pub novelty: f64,
    /// Robust z-score for numeric values (0 for text).
    pub numeric_z: f64,
}

/// A fitted HoloDetect model for one table.
#[derive(Debug, Clone)]
pub struct HoloDetect {
    column_models: HashMap<String, ColumnModel>,
    threshold: f64,
    weights: [f64; 4],
}

#[derive(Debug, Clone)]
struct ColumnModel {
    value_freq: HashMap<String, usize>,
    non_null: usize,
    modal_signature: FormatSignature,
    trigram_counts: HashMap<String, usize>,
    mean: f64,
    sd: f64,
}

/// Letter-only character trigrams: digits and punctuation carry format,
/// not spelling, and are covered by the signature feature.
fn letter_trigrams(s: &str) -> Vec<String> {
    let letters: String = s
        .to_lowercase()
        .chars()
        .map(|c| if c.is_alphabetic() { c } else { ' ' })
        .collect();
    letters
        .split_whitespace()
        .flat_map(|w| unidm_text::tokenize::char_ngrams(w, 3))
        .collect()
}

impl ColumnModel {
    fn fit(table: &Table, attr: &str) -> Result<Self, TableError> {
        let mut value_freq: HashMap<String, usize> = HashMap::new();
        let mut signatures: HashMap<String, (FormatSignature, usize)> = HashMap::new();
        let mut trigrams: HashMap<String, usize> = HashMap::new();
        let mut nums: Vec<f64> = Vec::new();
        let mut non_null = 0usize;
        for v in table.column(attr)? {
            if v.is_null() {
                continue;
            }
            non_null += 1;
            let s = v.to_string();
            *value_freq.entry(s.to_lowercase()).or_insert(0) += 1;
            let sig = FormatSignature::of(&s);
            let e = signatures.entry(sig.to_string()).or_insert((sig, 0));
            e.1 += 1;
            for g in letter_trigrams(&s) {
                *trigrams.entry(g).or_insert(0) += 1;
            }
            if let Some(x) = v.as_f64() {
                nums.push(x);
            }
        }
        // Sort by rendered signature before taking the max: ties on count
        // must not fall back to HashMap iteration order, which is
        // randomized per process.
        let mut signatures: Vec<(String, (FormatSignature, usize))> =
            signatures.into_iter().collect();
        signatures.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let modal_signature = signatures
            .into_iter()
            .max_by_key(|(_, (_, c))| *c)
            .map(|(_, (s, _))| s)
            .unwrap_or_default();
        let (mean, sd) = if nums.len() >= 4 {
            let m = nums.iter().sum::<f64>() / nums.len() as f64;
            let var = nums.iter().map(|x| (x - m).powi(2)).sum::<f64>() / nums.len() as f64;
            (m, var.sqrt().max(1e-9))
        } else {
            (0.0, 0.0)
        };
        Ok(ColumnModel {
            value_freq,
            non_null,
            modal_signature,
            trigram_counts: trigrams,
            mean,
            sd,
        })
    }

    fn features(&self, value: &str, numeric: Option<f64>) -> CellFeatures {
        let frequency = self
            .value_freq
            .get(&value.to_lowercase())
            .copied()
            .unwrap_or(0) as f64
            / self.non_null.max(1) as f64;
        let format_agreement = FormatSignature::of(value).agreement(&self.modal_signature);
        let grams = letter_trigrams(value);
        let novelty = if grams.is_empty() {
            0.0
        } else {
            let novel = grams
                .iter()
                .filter(|g| self.trigram_counts.get(*g).copied().unwrap_or(0) <= 1)
                .count();
            novel as f64 / grams.len() as f64
        };
        let numeric_z = match (numeric, self.sd > 0.0) {
            (Some(x), true) => ((x - self.mean) / self.sd).abs(),
            _ => 0.0,
        };
        CellFeatures {
            frequency,
            format_agreement,
            novelty,
            numeric_z,
        }
    }
}

impl HoloDetect {
    /// Fits the model on `table` with the labelled `seed` examples.
    ///
    /// # Errors
    ///
    /// Returns table errors for invalid references.
    pub fn fit(
        table: &Table,
        attrs: &[String],
        seed: &[LabeledExample],
    ) -> Result<Self, TableError> {
        let mut column_models = HashMap::new();
        for attr in attrs {
            column_models.insert(attr.clone(), ColumnModel::fit(table, attr)?);
        }
        let mut model = HoloDetect {
            column_models,
            threshold: 0.5,
            weights: [0.15, 0.1, 0.55, 0.2],
        };
        // Fit the decision threshold on the labelled seed by direct F1
        // search over the scored examples.
        let mut scored: Vec<(f64, bool)> = Vec::new();
        for (row, attr, is_error) in seed {
            if let Ok(score) = model.score(table, *row, attr) {
                scored.push((score, *is_error));
            }
        }
        let mut best = (model.threshold, -1.0f64);
        for i in 0..=40 {
            let th = i as f64 / 40.0;
            let (mut tp, mut fp, mut fn_) = (0.0, 0.0, 0.0);
            for &(s, e) in &scored {
                match (s >= th, e) {
                    (true, true) => tp += 1.0,
                    (true, false) => fp += 1.0,
                    (false, true) => fn_ += 1.0,
                    (false, false) => {}
                }
            }
            let f1 = if tp == 0.0 {
                0.0
            } else {
                2.0 * tp / (2.0 * tp + fp + fn_)
            };
            if f1 > best.1 {
                best = (th, f1);
            }
        }
        model.threshold = best.0;
        Ok(model)
    }

    /// Error score of a cell in `[0, 1]` (higher = more likely an error).
    ///
    /// # Errors
    ///
    /// Returns table errors for invalid references.
    pub fn score(&self, table: &Table, row: usize, attr: &str) -> Result<f64, TableError> {
        let value = table.cell(row, attr)?;
        let Some(cm) = self.column_models.get(attr) else {
            return Ok(0.0);
        };
        let f = cm.features(&value.to_string(), value.as_f64());
        let rarity = 1.0 - (f.frequency * 4.0).min(1.0);
        let misformat = 1.0 - f.format_agreement;
        let outlier = (f.numeric_z / 6.0).min(1.0);
        let [w0, w1, w2, w3] = self.weights;
        Ok((w0 * rarity + w1 * misformat + w2 * f.novelty + w3 * outlier).clamp(0.0, 1.0))
    }

    /// Binary decision at the fitted threshold.
    ///
    /// # Errors
    ///
    /// Returns table errors for invalid references.
    pub fn detect(&self, table: &Table, row: usize, attr: &str) -> Result<bool, TableError> {
        Ok(self.score(table, row, attr)? >= self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_synthdata::errors;
    use unidm_world::World;

    fn fitted() -> (unidm_synthdata::ErrorDetectionDataset, HoloDetect) {
        let world = World::generate(7);
        let ds = errors::hospital(&world, 3, 0.05);
        let seed: Vec<LabeledExample> = ds
            .cells
            .iter()
            .take(120)
            .map(|c| (c.row, c.attr.clone(), c.is_error))
            .collect();
        let model = HoloDetect::fit(&ds.table, &ds.attrs, &seed).unwrap();
        (ds, model)
    }

    #[test]
    fn detects_most_typos() {
        let (ds, model) = fitted();
        let (mut tp, mut fp, mut fn_) = (0, 0, 0);
        for c in &ds.cells {
            let pred = model.detect(&ds.table, c.row, &c.attr).unwrap();
            match (pred, c.is_error) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                _ => {}
            }
        }
        let f1 = 2.0 * tp as f64 / (2.0 * tp as f64 + fp as f64 + fn_ as f64);
        assert!(
            f1 > 0.7,
            "HoloDetect should reach high F1: {f1:.3} (tp {tp} fp {fp} fn {fn_})"
        );
    }

    #[test]
    fn scores_bounded() {
        let (ds, model) = fitted();
        for c in ds.cells.iter().take(50) {
            let s = model.score(&ds.table, c.row, &c.attr).unwrap();
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn unknown_attr_scores_zero() {
        let (ds, model) = fitted();
        assert_eq!(model.score(&ds.table, 0, "name").unwrap(), 0.0);
    }
}
