//! Baseline systems from the UniDM evaluation (paper §5.1).
//!
//! Every method UniDM is compared against, implemented as an independent
//! algorithm over the same substrates:
//!
//! | Paper baseline | Module | Approach |
//! |---|---|---|
//! | FM (Narayan et al. 2022), random & manual context | [`fm`] | few-shot prompts on the shared LLM |
//! | HoloClean (Rekatsinas et al. 2017) | [`holoclean`] | co-occurrence repair + frequency/outlier detection |
//! | CMI (Shichao et al. 2008) | [`cmi`] | k-modes cluster imputation |
//! | IMP (Mei et al. 2021) | [`imp`] | embedding-kNN imputation |
//! | TDE (He et al. 2018) | [`tde`] | syntactic program search by example |
//! | HoloDetect (Heidari et al. 2019) | [`holodetect`] | few-shot featurized error model |
//! | Ditto (Li et al. 2020) | [`ditto`] | embedding matcher trained on labelled pairs |
//! | Magellan (Konda et al. 2016) | [`magellan`] | classical similarity-feature matcher |
//! | WarpGate (Cong et al. 2022) | [`warpgate`] | embedding-cosine join discovery |
//! | Evaporate-code / code+ (Arora et al. 2023) | [`evaporate`] | synthesized extraction rules (single / ensemble) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cmi;
pub mod ditto;
pub mod evaporate;
pub mod fm;
pub mod holoclean;
pub mod holodetect;
pub mod imp;
pub mod magellan;
pub mod tde;
pub mod warpgate;
