//! Ditto (Li et al. 2020): entity matching with a fine-tuned pre-trained
//! language model.
//!
//! Ditto serializes a pair, encodes it with a PLM and trains a binary head
//! on labelled pairs. The offline stand-in keeps the shape: embed both
//! records with hashed n-gram embeddings, compute similarity features, and
//! fit a weighted-threshold classifier on the training split. Because it
//! *trains on the target domain*, it handles domain-specific jargon that
//! zero-shot LLMs stumble on — the paper's Amazon-Google story.

use unidm_synthdata::matching::EntityPair;
use unidm_tablestore::Record;
use unidm_text::distance::jaccard;
use unidm_text::Embedder;

/// Pair features shared by [`Ditto`] and the Magellan baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairFeatures {
    /// Cosine of record embeddings.
    pub cosine: f64,
    /// Token Jaccard of record text blobs.
    pub jaccard: f64,
    /// Relative numeric agreement of the records' numeric fields.
    pub numeric_agreement: f64,
}

/// Computes pair features.
pub fn features(a: &Record, b: &Record) -> PairFeatures {
    let embedder = Embedder::default();
    let ea = embedder.embed(&a.text_blob());
    let eb = embedder.embed(&b.text_blob());
    let nums = |r: &Record| -> Vec<f64> { r.values().iter().filter_map(|v| v.as_f64()).collect() };
    let na = nums(a);
    let nb = nums(b);
    let numeric_agreement = if na.is_empty() || nb.is_empty() {
        0.5
    } else {
        let x = na[0];
        let y = nb[0];
        let denom = x.abs().max(y.abs()).max(1e-9);
        1.0 - ((x - y).abs() / denom).min(1.0)
    };
    PairFeatures {
        cosine: f64::from(ea.cosine(&eb)),
        jaccard: jaccard(&a.text_blob(), &b.text_blob()),
        numeric_agreement,
    }
}

/// A trained Ditto-style matcher.
#[derive(Debug, Clone, PartialEq)]
pub struct Ditto {
    weights: [f64; 3],
    threshold: f64,
}

impl Ditto {
    /// Trains on labelled pairs: grid-searches feature weights and the
    /// decision threshold for maximum training F1.
    pub fn train(pairs: &[EntityPair]) -> Self {
        let feats: Vec<(PairFeatures, bool)> = pairs
            .iter()
            .map(|p| (features(&p.a, &p.b), p.is_match))
            .collect();
        let mut best = (
            Ditto {
                weights: [0.5, 0.4, 0.1],
                threshold: 0.5,
            },
            -1.0f64,
        );
        for w0 in [0.3f64, 0.5, 0.7] {
            for w1 in [0.1f64, 0.3, 0.5] {
                let w2: f64 = (1.0 - w0 - w1).max(0.0);
                for t in 0..=30 {
                    let threshold = 0.2 + t as f64 * 0.02;
                    let model = Ditto {
                        weights: [w0, w1, w2],
                        threshold,
                    };
                    let f1 = model.f1_on(&feats);
                    if f1 > best.1 {
                        best = (model, f1);
                    }
                }
            }
        }
        best.0
    }

    fn score_features(&self, f: &PairFeatures) -> f64 {
        let [w0, w1, w2] = self.weights;
        w0 * f.cosine + w1 * f.jaccard + w2 * f.numeric_agreement
    }

    fn f1_on(&self, feats: &[(PairFeatures, bool)]) -> f64 {
        let (mut tp, mut fp, mut fn_) = (0.0, 0.0, 0.0);
        for (f, label) in feats {
            match (self.score_features(f) >= self.threshold, *label) {
                (true, true) => tp += 1.0,
                (true, false) => fp += 1.0,
                (false, true) => fn_ += 1.0,
                (false, false) => {}
            }
        }
        if tp == 0.0 {
            0.0
        } else {
            2.0 * tp / (2.0 * tp + fp + fn_)
        }
    }

    /// Match score of one pair in `[0, 1]`.
    pub fn score(&self, a: &Record, b: &Record) -> f64 {
        self.score_features(&features(a, b))
    }

    /// Binary decision at the trained threshold.
    pub fn matches(&self, a: &Record, b: &Record) -> bool {
        self.score(a, b) >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_synthdata::matching;
    use unidm_world::World;

    #[test]
    fn trains_and_separates_beer() {
        let world = World::generate(7);
        let ds = matching::beer(&world, 3);
        let model = Ditto::train(&ds.train);
        let (mut tp, mut fp, mut fn_) = (0, 0, 0);
        for p in &ds.pairs {
            match (model.matches(&p.a, &p.b), p.is_match) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                _ => {}
            }
        }
        let f1 = 2.0 * tp as f64 / (2.0 * tp as f64 + fp as f64 + fn_ as f64);
        assert!(f1 > 0.8, "Ditto should be strong on Beer: {f1:.3}");
    }

    #[test]
    fn features_sane() {
        let a = Record::new(vec!["Kelvar Studio Pro".into(), 100.0.into()]);
        let b = Record::new(vec!["Kelvar Studio Pro".into(), 100.0.into()]);
        let f = features(&a, &b);
        assert!(f.cosine > 0.99);
        assert!((f.jaccard - 1.0).abs() < 1e-9);
        assert!((f.numeric_agreement - 1.0).abs() < 1e-9);
        let c = Record::new(vec!["Different Thing".into(), 5.0.into()]);
        let g = features(&a, &c);
        assert!(g.cosine < f.cosine);
        assert!(g.numeric_agreement < 0.2);
    }

    #[test]
    fn trained_threshold_in_range() {
        let world = World::generate(7);
        let ds = matching::walmart_amazon(&world, 3);
        let model = Ditto::train(&ds.train);
        assert!((0.2..=0.81).contains(&model.threshold));
    }
}
