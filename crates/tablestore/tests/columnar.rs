//! Property tests for the chunked columnar storage layer: randomized
//! tables must survive build → spill → reload byte-identically, chunk
//! boundaries must be invisible through every accessor, and the pager
//! must honor its residency budget.
//!
//! The offline build has no `proptest`, so inputs are sampled explicitly
//! from a seeded [`StdRng`] — the same coverage style (many randomized
//! shapes per invariant), fully reproducible, with no shrinking.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use unidm_tablestore::{ColumnStats, Schema, Table, TableError, Value, DEFAULT_PAGE_BUDGET};

/// A unique temp path for one spilled segment.
fn segment_path(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("unidm-columnar-{}-{tag}.seg", std::process::id()));
    path
}

/// Samples a random value: text from a small pool (dictionary-friendly),
/// free text, ints, floats, bools, or null — so columns land in every
/// [`unidm_tablestore::ColumnChunk`] encoding.
fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..6usize) {
        0 => Value::text(["red", "green", "blue", "cyan"][rng.gen_range(0..4usize)]),
        1 => Value::text(format!("item-{}", rng.gen_range(0..1_000_000u64))),
        2 => Value::Int(rng.gen_range(0..10_000u64) as i64 - 5_000),
        3 => Value::Float(rng.gen_range(0..1_000u64) as f64 / 8.0),
        4 => Value::Bool(rng.gen_bool(0.5)),
        _ => Value::Null,
    }
}

/// Builds a random table: random width, chunk size, and row count, with
/// some columns kept homogeneous (all-text / all-int) so dictionary and
/// integer encodings are both exercised alongside the mixed fallback.
fn random_table(rng: &mut StdRng, name: &str) -> Table {
    let width = rng.gen_range(1..5usize);
    let chunk_rows = rng.gen_range(1..40usize);
    let rows = rng.gen_range(0..200usize);
    let names: Vec<String> = (0..width).map(|c| format!("c{c}")).collect();
    let kinds: Vec<usize> = (0..width).map(|_| rng.gen_range(0..3usize)).collect();
    let mut table = Table::with_chunk_rows(
        name,
        Schema::from_names(names.iter().map(String::as_str)).unwrap(),
        chunk_rows,
    );
    for _ in 0..rows {
        let row: Vec<Value> = kinds
            .iter()
            .map(|kind| match kind {
                0 => random_value(rng),
                1 if rng.gen_bool(0.9) => {
                    Value::text(["ok", "warn", "err"][rng.gen_range(0..3usize)])
                }
                1 => Value::Null,
                _ if rng.gen_bool(0.9) => Value::Int(rng.gen_range(0..1_000u64) as i64),
                _ => Value::Null,
            })
            .collect();
        table.push_row(row).unwrap();
    }
    table
}

#[test]
fn spill_reload_roundtrip_is_identity() {
    let mut rng = StdRng::seed_from_u64(0xC01);
    for case in 0..60 {
        let table = random_table(&mut rng, "roundtrip");
        let path = segment_path(&format!("rt{case}"));
        let budget = rng.gen_range(1..5usize);
        let spilled = table.spill_to(&path, budget).unwrap();
        assert!(spilled.is_spilled());
        assert_eq!(spilled.row_count(), table.row_count());
        assert_eq!(spilled.schema(), table.schema());
        // Row-by-row equality through the owned accessor, then the
        // logical PartialEq (which walks iter_rows on both sides).
        for i in 0..table.row_count() {
            assert_eq!(
                spilled.row_at(i).unwrap(),
                table.row_at(i).unwrap(),
                "case {case}: row {i} changed across spill/reload"
            );
        }
        assert_eq!(spilled, table, "case {case}");
        // Reopen the segment cold: a fresh reader must agree too.
        let reopened = Table::open_segment(&path, budget).unwrap();
        assert_eq!(reopened, table, "case {case}: cold reopen diverged");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn chunk_boundary_edges() {
    let chunk_rows = 8;
    // Exactly the boundary shapes ISSUE 9 names: empty, a single row,
    // exactly one chunk, an exact multiple of the chunk size, and one
    // row past a boundary.
    for rows in [0usize, 1, 7, 8, 9, 16, 24, 25] {
        let mut table = Table::with_chunk_rows(
            "edges",
            Schema::from_names(["id", "label"]).unwrap(),
            chunk_rows,
        );
        for i in 0..rows {
            table
                .push_row(vec![Value::Int(i as i64), Value::text(format!("r{i}"))])
                .unwrap();
        }
        assert_eq!(table.row_count(), rows);
        assert_eq!(table.chunk_count(), rows / chunk_rows);
        assert_eq!(table.is_empty(), rows == 0);
        // Every accessor agrees at and around the boundaries.
        let collected: Vec<i64> = table
            .iter_rows()
            .map(|r| match &r.values()[0] {
                Value::Int(i) => *i,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(collected, (0..rows as i64).collect::<Vec<_>>());
        let column: Vec<Value> = table.column("label").unwrap().collect();
        assert_eq!(column.len(), rows);
        for (i, v) in column.iter().enumerate() {
            assert_eq!(v, &Value::text(format!("r{i}")));
        }
        if rows > 0 {
            assert_eq!(
                table.cell_value(rows - 1, "id").unwrap(),
                Value::Int(rows as i64 - 1)
            );
        }
        assert!(matches!(
            table.row_at(rows),
            Err(TableError::RowOutOfBounds { .. })
        ));

        // The same shapes must survive a spill (the final partial chunk
        // of a spilled table is the one place a sealed chunk may be
        // short).
        let path = segment_path(&format!("edge{rows}"));
        let spilled = table.spill_to(&path, 2).unwrap();
        assert_eq!(spilled, table, "spill changed a {rows}-row table");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn incremental_stats_match_whole_column_compute() {
    let mut rng = StdRng::seed_from_u64(0xC02);
    for _ in 0..40 {
        let table = random_table(&mut rng, "stats");
        for col in table.schema().columns() {
            let folded = table.column_stats(col.name()).unwrap();
            let values: Vec<Value> = table.column(col.name()).unwrap().collect();
            let whole = ColumnStats::compute(&values);
            assert_eq!(
                folded,
                whole,
                "per-chunk folded stats diverged on column {}",
                col.name()
            );
        }
    }
}

#[test]
fn pager_budget_is_respected_while_scanning() {
    let mut rng = StdRng::seed_from_u64(0xC03);
    let mut table = Table::with_chunk_rows("paged", Schema::from_names(["n", "tag"]).unwrap(), 16);
    for i in 0..400 {
        table
            .push_row(vec![
                Value::Int(i),
                Value::text(["a", "b", "c"][(i % 3) as usize]),
            ])
            .unwrap();
    }
    let path = segment_path("budget");
    for budget in [1usize, 3, DEFAULT_PAGE_BUDGET] {
        let spilled = table.spill_to(&path, budget).unwrap();
        // Random access across the whole range: the cache may never hold
        // more than `budget` chunks, whatever the access pattern.
        for _ in 0..200 {
            let i = rng.gen_range(0..400usize);
            assert_eq!(spilled.cell_value(i, "n").unwrap(), Value::Int(i as i64));
            assert!(
                spilled.resident_chunks() <= budget,
                "budget {budget} exceeded: {} resident",
                spilled.resident_chunks()
            );
        }
        // A full sequential scan pages every chunk through the cache.
        assert_eq!(spilled.iter_rows().count(), 400);
        assert!(spilled.resident_chunks() <= budget);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn spilled_tables_are_read_only_and_findable() {
    let mut table = Table::with_chunk_rows(
        "frozen",
        Schema::from_names(["city", "country"]).unwrap(),
        4,
    );
    for (city, country) in [
        ("Florence", "Italy"),
        ("Milan", "Italy"),
        ("Graz", "Austria"),
        ("Porto", "Portugal"),
        ("Lisbon", "Portugal"),
    ] {
        table
            .push_row(vec![Value::text(city), Value::text(country)])
            .unwrap();
    }
    let path = segment_path("frozen");
    let mut spilled = table.spill_to(&path, 2).unwrap();
    assert!(matches!(
        spilled.push_row(vec![Value::text("Vienna"), Value::text("Austria")]),
        Err(TableError::SpilledReadOnly)
    ));
    assert!(matches!(
        spilled.set_cell(0, "city", Value::text("Rome")),
        Err(TableError::SpilledReadOnly)
    ));
    // find() works chunk-wise over the paged segment, same answer as the
    // resident table.
    assert_eq!(
        spilled.find("country", &Value::text("Portugal")).unwrap(),
        table.find("country", &Value::text("Portugal")).unwrap(),
    );
    std::fs::remove_file(&path).ok();
}
