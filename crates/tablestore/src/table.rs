//! Tables: named schema + rows.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{ColumnStats, Record, Schema, TableError, Value};

/// A named relational table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Record>,
}

impl Table {
    /// Creates an empty table with the given name and schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Starts a [`TableBuilder`].
    pub fn builder(name: impl Into<String>) -> TableBuilder {
        TableBuilder {
            name: name.into(),
            columns: Vec::new(),
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows in order.
    pub fn rows(&self) -> &[Record] {
        &self.rows
    }

    /// Mutable access to all rows.
    pub fn rows_mut(&mut self) -> &mut [Record] {
        &mut self.rows
    }

    /// Appends a row.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::ArityMismatch`] if the value count differs from
    /// the schema width.
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<(), TableError> {
        if values.len() != self.schema.len() {
            return Err(TableError::ArityMismatch {
                got: values.len(),
                expected: self.schema.len(),
            });
        }
        self.rows.push(Record::new(values));
        Ok(())
    }

    /// The row at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RowOutOfBounds`] if `index >= row_count()`.
    pub fn row(&self, index: usize) -> Result<&Record, TableError> {
        self.rows.get(index).ok_or(TableError::RowOutOfBounds {
            index,
            len: self.rows.len(),
        })
    }

    /// The cell at (`row`, `attr`).
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RowOutOfBounds`] or
    /// [`TableError::UnknownAttribute`].
    pub fn cell(&self, row: usize, attr: &str) -> Result<&Value, TableError> {
        self.row(row)?.field(&self.schema, attr)
    }

    /// Overwrites the cell at (`row`, `attr`).
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RowOutOfBounds`] or
    /// [`TableError::UnknownAttribute`].
    pub fn set_cell(&mut self, row: usize, attr: &str, value: Value) -> Result<(), TableError> {
        let schema = self.schema.clone();
        let len = self.rows.len();
        let rec = self
            .rows
            .get_mut(row)
            .ok_or(TableError::RowOutOfBounds { index: row, len })?;
        rec.set_field(&schema, attr, value)
    }

    /// Iterator over the values of one column.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::UnknownAttribute`] for an unknown column.
    pub fn column(&self, attr: &str) -> Result<impl Iterator<Item = &Value> + '_, TableError> {
        let idx = self.schema.require(attr)?;
        Ok(self.rows.iter().filter_map(move |r| r.get(idx)))
    }

    /// Statistics over one column.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::UnknownAttribute`] for an unknown column.
    pub fn column_stats(&self, attr: &str) -> Result<ColumnStats, TableError> {
        Ok(ColumnStats::compute(self.column(attr)?))
    }

    /// A new table with only the given attributes (in the given order).
    ///
    /// # Errors
    ///
    /// Returns [`TableError::UnknownAttribute`] for unknown names, or
    /// [`TableError::DuplicateAttribute`] if `attrs` repeats a name.
    pub fn project(&self, attrs: &[&str]) -> Result<Table, TableError> {
        let schema = Schema::from_names(attrs.iter().map(|s| s.to_string()))?;
        let mut t = Table::new(self.name.clone(), schema);
        for r in &self.rows {
            let p = r.project(&self.schema, attrs)?;
            t.rows.push(p);
        }
        Ok(t)
    }

    /// Uniformly samples up to `k` distinct row indices, excluding `exclude`.
    pub fn sample_rows<R: Rng>(&self, rng: &mut R, k: usize, exclude: &[usize]) -> Vec<usize> {
        let excl: std::collections::HashSet<usize> = exclude.iter().copied().collect();
        let mut candidates: Vec<usize> =
            (0..self.rows.len()).filter(|i| !excl.contains(i)).collect();
        candidates.shuffle(rng);
        candidates.truncate(k);
        candidates
    }

    /// Indices of rows whose `attr` value equals `value` (by answer key).
    ///
    /// # Errors
    ///
    /// Returns [`TableError::UnknownAttribute`] for an unknown column.
    pub fn find(&self, attr: &str, value: &Value) -> Result<Vec<usize>, TableError> {
        let idx = self.schema.require(attr)?;
        let key = value.answer_key();
        Ok(self
            .rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.get(idx).is_some_and(|v| v.answer_key() == key))
            .map(|(i, _)| i)
            .collect())
    }
}

/// Builder for [`Table`], collecting column names before creation.
///
/// # Examples
///
/// ```
/// use unidm_tablestore::Table;
/// let t = Table::builder("people").column("name").column("age").build();
/// assert_eq!(t.schema().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    columns: Vec<String>,
}

impl TableBuilder {
    /// Adds a column.
    pub fn column(mut self, name: impl Into<String>) -> Self {
        self.columns.push(name.into());
        self
    }

    /// Adds several columns.
    pub fn columns<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.columns.extend(names.into_iter().map(Into::into));
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics if a column name is duplicated; builders are used with literal
    /// names where a duplicate is a programming error.
    pub fn build(self) -> Table {
        let schema = Schema::from_names(self.columns).expect("duplicate column name in builder");
        Table::new(self.name, schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn city_table() -> Table {
        let mut t = Table::builder("cities")
            .columns(["city", "country", "timezone"])
            .build();
        for (c, n, z) in [
            ("Florence", "Italy", "CET"),
            ("Alicante", "Spain", "CET"),
            ("Antwerp", "Belgium", "CET"),
            ("Copenhagen", "Denmark", "CET"),
        ] {
            t.push_row(vec![Value::text(c), Value::text(n), Value::text(z)])
                .unwrap();
        }
        t
    }

    #[test]
    fn push_and_access() {
        let t = city_table();
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.cell(1, "country").unwrap(), &Value::text("Spain"));
    }

    #[test]
    fn arity_checked() {
        let mut t = city_table();
        assert!(matches!(
            t.push_row(vec![Value::text("x")]),
            Err(TableError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn row_out_of_bounds() {
        let t = city_table();
        assert!(matches!(t.row(99), Err(TableError::RowOutOfBounds { .. })));
    }

    #[test]
    fn set_cell_roundtrip() {
        let mut t = city_table();
        t.set_cell(3, "timezone", Value::Null).unwrap();
        assert!(t.cell(3, "timezone").unwrap().is_null());
    }

    #[test]
    fn column_iterator() {
        let t = city_table();
        let countries: Vec<String> = t
            .column("country")
            .unwrap()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(countries, vec!["Italy", "Spain", "Belgium", "Denmark"]);
        assert!(t.column("nope").is_err());
    }

    #[test]
    fn project_preserves_rows() {
        let t = city_table();
        let p = t.project(&["timezone", "city"]).unwrap();
        assert_eq!(
            p.schema().names().collect::<Vec<_>>(),
            vec!["timezone", "city"]
        );
        assert_eq!(p.row_count(), 4);
        assert_eq!(p.cell(0, "city").unwrap(), &Value::text("Florence"));
    }

    #[test]
    fn sample_excludes() {
        let t = city_table();
        let mut rng = StdRng::seed_from_u64(7);
        let s = t.sample_rows(&mut rng, 10, &[0]);
        assert_eq!(s.len(), 3);
        assert!(!s.contains(&0));
    }

    #[test]
    fn sample_truncates() {
        let t = city_table();
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(t.sample_rows(&mut rng, 2, &[]).len(), 2);
    }

    #[test]
    fn find_by_answer_key() {
        let t = city_table();
        let hits = t.find("country", &Value::text("italy")).unwrap();
        assert_eq!(hits, vec![0]);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn builder_duplicate_panics() {
        let _ = Table::builder("t").column("a").column("a").build();
    }
}
