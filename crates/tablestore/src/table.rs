//! Tables: named schema + chunked columnar row storage.
//!
//! Rows are sealed into fixed-size columnar [`Chunk`]s ([`DEFAULT_CHUNK_ROWS`]
//! rows each) as they are ingested; a trailing partial chunk stays row-major
//! until it fills. Sealed chunks are immutable and `Arc`-shared, so cloning a
//! table (or refreshing a [`DataLake`](crate::DataLake) entry) bumps
//! reference counts instead of copying cell data. Tables larger than RAM can
//! be spilled to a segment file ([`Table::spill_to`] /
//! [`Table::open_segment`]) after which chunks page in and out through a
//! budget-bounded LRU [`Pager`] — spilled tables are read-only.
//!
//! Two accessor families coexist:
//!
//! * The original borrowing accessors ([`Table::row`], [`Table::cell`])
//!   return references by pinning a decoded *chunk-resident view* of the
//!   touched chunk for the table's lifetime. They keep every pre-columnar
//!   call site working but are unsuitable for out-of-core scans.
//! * The owned accessors ([`Table::row_at`], [`Table::cell_value`],
//!   [`Table::iter_rows`], [`Table::column`]) decode on the fly and never
//!   pin, so memory stays bounded by the pager budget regardless of table
//!   size. Streaming paths use these exclusively.

use std::collections::HashSet;
use std::path::Path;
use std::sync::{Arc, OnceLock};

use rand::seq::SliceRandom;
use rand::Rng;

use crate::chunk::Chunk;
use crate::segment::{Pager, SegmentReader, SegmentWriter};
use crate::{ColumnStats, Record, Schema, TableError, Value};

/// Default number of rows per sealed chunk.
pub const DEFAULT_CHUNK_ROWS: usize = 256;

/// Above this row count, [`Table::sample_rows`] switches from the exact
/// shuffle (which materializes one index per row) to bounded rejection
/// sampling. Kept high enough that every evaluation-scale table takes the
/// shuffle path, so sampled prompts are unchanged by the columnar refactor.
const SAMPLE_SHUFFLE_MAX: usize = 4096;

/// One sealed row partition: either resident in memory or paged from the
/// spill segment on demand. The `view` pins decoded rows for the borrowing
/// accessors; owned accessors never touch it.
#[derive(Debug)]
struct Slot {
    state: SlotState,
    rows: usize,
    view: OnceLock<Box<[Record]>>,
}

#[derive(Debug)]
enum SlotState {
    /// Chunk lives in memory (shared, immutable).
    Resident(Arc<Chunk>),
    /// Chunk lives in the spill segment; fetched through the pager.
    Spilled,
}

impl Slot {
    fn resident(chunk: Arc<Chunk>) -> Slot {
        Slot {
            rows: chunk.len(),
            state: SlotState::Resident(chunk),
            view: OnceLock::new(),
        }
    }

    fn spilled(rows: usize) -> Slot {
        Slot {
            rows,
            state: SlotState::Spilled,
            view: OnceLock::new(),
        }
    }
}

/// A named relational table over chunked columnar storage.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    chunk_rows: usize,
    sealed: Vec<Slot>,
    sealed_rows: usize,
    tail: Vec<Record>,
    pager: Option<Arc<Pager>>,
}

impl Table {
    /// Creates an empty table with the given name and schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table::with_chunk_rows(name, schema, DEFAULT_CHUNK_ROWS)
    }

    /// Creates an empty table with an explicit rows-per-chunk partition
    /// size (minimum 1). Smaller chunks lower the paging granularity of a
    /// spilled table; larger chunks amortize encoding overhead.
    pub fn with_chunk_rows(name: impl Into<String>, schema: Schema, chunk_rows: usize) -> Self {
        Table {
            name: name.into(),
            schema,
            chunk_rows: chunk_rows.max(1),
            sealed: Vec::new(),
            sealed_rows: 0,
            tail: Vec::new(),
            pager: None,
        }
    }

    /// Starts a [`TableBuilder`].
    pub fn builder(name: impl Into<String>) -> TableBuilder {
        TableBuilder {
            name: name.into(),
            columns: Vec::new(),
            chunk_rows: DEFAULT_CHUNK_ROWS,
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rows per sealed chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Number of sealed chunks (excludes the row-major tail).
    pub fn chunk_count(&self) -> usize {
        self.sealed.len()
    }

    /// True if the table's chunks live in a spill segment (read-only).
    pub fn is_spilled(&self) -> bool {
        self.pager.is_some()
    }

    /// Number of chunks currently resident in memory: all of them for an
    /// in-memory table, the pager's cache occupancy for a spilled one.
    pub fn resident_chunks(&self) -> usize {
        match &self.pager {
            Some(p) => p.resident_chunks(),
            None => self.sealed.len(),
        }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.sealed_rows + self.tail.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.row_count() == 0
    }

    /// Appends a row, sealing a columnar chunk (with its per-column
    /// statistics) whenever the tail fills.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::ArityMismatch`] if the value count differs from
    /// the schema width, or [`TableError::SpilledReadOnly`] for a spilled
    /// table.
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<(), TableError> {
        if self.is_spilled() {
            return Err(TableError::SpilledReadOnly);
        }
        if values.len() != self.schema.len() {
            return Err(TableError::ArityMismatch {
                got: values.len(),
                expected: self.schema.len(),
            });
        }
        self.tail.push(Record::new(values));
        if self.tail.len() >= self.chunk_rows {
            self.seal_tail();
        }
        Ok(())
    }

    /// Seals the (full) tail into a columnar chunk, computing its
    /// per-column statistics eagerly — this is the "stats at ingest" path
    /// that [`Table::column_stats`] folds instead of rescanning.
    fn seal_tail(&mut self) {
        let chunk = Chunk::from_rows(self.schema.len(), &self.tail);
        chunk.all_stats();
        self.sealed_rows += chunk.len();
        self.sealed.push(Slot::resident(Arc::new(chunk)));
        self.tail.clear();
    }

    /// The chunk behind sealed slot `slot`, paging it in if spilled.
    fn chunk(&self, slot: usize) -> Result<Arc<Chunk>, TableError> {
        match &self.sealed[slot].state {
            SlotState::Resident(chunk) => Ok(chunk.clone()),
            SlotState::Spilled => self
                .pager
                .as_ref()
                .expect("spilled slot without pager")
                .chunk(slot),
        }
    }

    /// Splits a validated row index into (sealed slot, offset) or a tail
    /// offset. Valid because every sealed chunk is full except possibly the
    /// last one of a spilled table (which has no tail).
    fn locate(&self, index: usize) -> Result<RowAddr, TableError> {
        if index < self.sealed_rows {
            Ok(RowAddr::Sealed {
                slot: index / self.chunk_rows,
                offset: index % self.chunk_rows,
            })
        } else if index - self.sealed_rows < self.tail.len() {
            Ok(RowAddr::Tail(index - self.sealed_rows))
        } else {
            Err(TableError::RowOutOfBounds {
                index,
                len: self.row_count(),
            })
        }
    }

    /// The pinned decoded view of sealed slot `slot` (decoding it on first
    /// touch). Once pinned, the rows stay resident for the table's
    /// lifetime — this is what keeps the borrowing accessors alive on top
    /// of columnar storage.
    fn view(&self, slot: usize) -> Result<&[Record], TableError> {
        if let Some(v) = self.sealed[slot].view.get() {
            return Ok(v);
        }
        let decoded = self.chunk(slot)?.decode_rows().into_boxed_slice();
        Ok(self.sealed[slot].view.get_or_init(|| decoded))
    }

    /// The row at `index`, borrowed from a chunk-resident view.
    ///
    /// Touching a row pins its whole chunk's decoded view in memory for the
    /// table's lifetime; prefer [`Table::row_at`] on out-of-core paths.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RowOutOfBounds`] if `index >= row_count()`, or
    /// [`TableError::Segment`] if a spilled chunk cannot be read.
    pub fn row(&self, index: usize) -> Result<&Record, TableError> {
        match self.locate(index)? {
            RowAddr::Sealed { slot, offset } => Ok(&self.view(slot)?[offset]),
            RowAddr::Tail(i) => Ok(&self.tail[i]),
        }
    }

    /// The row at `index`, decoded on the fly (never pins a view).
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RowOutOfBounds`] if `index >= row_count()`, or
    /// [`TableError::Segment`] if a spilled chunk cannot be read.
    pub fn row_at(&self, index: usize) -> Result<Record, TableError> {
        match self.locate(index)? {
            RowAddr::Sealed { slot, offset } => Ok(self.chunk(slot)?.record(offset)),
            RowAddr::Tail(i) => Ok(self.tail[i].clone()),
        }
    }

    /// The cell at (`row`, `attr`), borrowed from a chunk-resident view
    /// (see [`Table::row`] for the pinning caveat).
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RowOutOfBounds`],
    /// [`TableError::UnknownAttribute`], or [`TableError::Segment`].
    pub fn cell(&self, row: usize, attr: &str) -> Result<&Value, TableError> {
        self.row(row)?.field(&self.schema, attr)
    }

    /// The cell at (`row`, `attr`), decoded on the fly (never pins).
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RowOutOfBounds`],
    /// [`TableError::UnknownAttribute`], or [`TableError::Segment`].
    pub fn cell_value(&self, row: usize, attr: &str) -> Result<Value, TableError> {
        let col = self.schema.require(attr)?;
        match self.locate(row)? {
            RowAddr::Sealed { slot, offset } => Ok(self.chunk(slot)?.value(offset, col)),
            RowAddr::Tail(i) => Ok(self.tail[i]
                .get(col)
                .cloned()
                .expect("tail row width checked on ingest")),
        }
    }

    /// Overwrites the cell at (`row`, `attr`). Writes into a sealed chunk
    /// re-encode that chunk copy-on-write (other tables sharing the old
    /// chunk are unaffected).
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RowOutOfBounds`],
    /// [`TableError::UnknownAttribute`], or
    /// [`TableError::SpilledReadOnly`] for a spilled table.
    pub fn set_cell(&mut self, row: usize, attr: &str, value: Value) -> Result<(), TableError> {
        if self.is_spilled() {
            return Err(TableError::SpilledReadOnly);
        }
        match self.locate(row)? {
            RowAddr::Tail(i) => {
                let schema = self.schema.clone();
                self.tail[i].set_field(&schema, attr, value)
            }
            RowAddr::Sealed { slot, offset } => {
                let col = self.schema.require(attr)?;
                let mut rows = self.chunk(slot)?.decode_rows();
                rows[offset].values_mut()[col] = value;
                let rebuilt = Chunk::from_rows(self.schema.len(), &rows);
                rebuilt.all_stats();
                self.sealed[slot] = Slot::resident(Arc::new(rebuilt));
                Ok(())
            }
        }
    }

    /// Iterator over all rows in order, decoding chunk-by-chunk (owned
    /// records, never pins a view). For a spilled table, memory stays
    /// bounded by the pager budget.
    ///
    /// # Panics
    ///
    /// The iterator panics if a spilled chunk cannot be read mid-scan.
    pub fn iter_rows(&self) -> RowIter<'_> {
        RowIter {
            table: self,
            index: 0,
            cached: None,
        }
    }

    /// Iterator over the values of one column, decoding cell-by-cell from
    /// the encoded chunks (owned values, never pins a view).
    ///
    /// # Errors
    ///
    /// Returns [`TableError::UnknownAttribute`] for an unknown column.
    ///
    /// # Panics
    ///
    /// The iterator panics if a spilled chunk cannot be read mid-scan.
    pub fn column(&self, attr: &str) -> Result<ColumnIter<'_>, TableError> {
        let col = self.schema.require(attr)?;
        Ok(ColumnIter {
            table: self,
            col,
            index: 0,
            cached: None,
        })
    }

    /// Statistics over one column, folded incrementally: each sealed
    /// chunk's statistics (computed once at ingest, or lazily after a page
    /// from disk) are merged, then the tail is accumulated — the column is
    /// never rescanned as a whole.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::UnknownAttribute`] for an unknown column, or
    /// [`TableError::Segment`] if a spilled chunk cannot be read.
    pub fn column_stats(&self, attr: &str) -> Result<ColumnStats, TableError> {
        let col = self.schema.require(attr)?;
        let mut folded = ColumnStats::default();
        for slot in 0..self.sealed.len() {
            folded.merge(self.chunk(slot)?.stats(col));
        }
        for rec in &self.tail {
            folded.accumulate(rec.get(col).expect("tail row width checked on ingest"));
        }
        Ok(folded)
    }

    /// A new in-memory table with only the given attributes (in the given
    /// order). Sealed chunks share their encoded columns with the source
    /// (`Arc` bumps, no cell copies); projecting a *spilled* table pages
    /// every chunk in, so the projection is fully resident.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::UnknownAttribute`] for unknown names,
    /// [`TableError::DuplicateAttribute`] if `attrs` repeats a name, or
    /// [`TableError::Segment`] if a spilled chunk cannot be read.
    pub fn project(&self, attrs: &[&str]) -> Result<Table, TableError> {
        let schema = Schema::from_names(attrs.iter().map(|s| s.to_string()))?;
        let cols: Vec<usize> = attrs
            .iter()
            .map(|a| self.schema.require(a))
            .collect::<Result<_, _>>()?;
        let mut t = Table::with_chunk_rows(self.name.clone(), schema, self.chunk_rows);
        for slot in 0..self.sealed.len() {
            let projected = Arc::new(self.chunk(slot)?.project(&cols));
            t.sealed_rows += projected.len();
            t.sealed.push(Slot::resident(projected));
        }
        for rec in &self.tail {
            t.tail.push(rec.project(&self.schema, attrs)?);
        }
        Ok(t)
    }

    /// Uniformly samples up to `k` distinct row indices, excluding
    /// `exclude`.
    ///
    /// Up to `SAMPLE_SHUFFLE_MAX` (4096) rows this shuffles the full index
    /// range (the original, golden-stable draw order); above it, it
    /// switches to rejection sampling so the working set stays `O(k)`
    /// instead of `O(rows)` on out-of-core tables.
    pub fn sample_rows<R: Rng>(&self, rng: &mut R, k: usize, exclude: &[usize]) -> Vec<usize> {
        let n = self.row_count();
        let excl: HashSet<usize> = exclude.iter().copied().collect();
        let available = n - excl.iter().filter(|&&i| i < n).count();
        let want = k.min(available);
        if n <= SAMPLE_SHUFFLE_MAX || want * 2 >= available {
            let mut candidates: Vec<usize> = (0..n).filter(|i| !excl.contains(i)).collect();
            candidates.shuffle(rng);
            candidates.truncate(k);
            return candidates;
        }
        // Sparse draw: want is far below the candidate count, so repeated
        // uniform draws collide rarely and never materialize 0..n.
        let mut chosen = Vec::with_capacity(want);
        let mut seen = HashSet::with_capacity(want * 2);
        while chosen.len() < want {
            let i = rng.gen_range(0..n);
            if !excl.contains(&i) && seen.insert(i) {
                chosen.push(i);
            }
        }
        chosen
    }

    /// Indices of rows whose `attr` value equals `value` (by answer key),
    /// searched chunk-wise: chunks whose already-computed statistics show a
    /// zero count are skipped without decoding, dictionary columns match
    /// against the dictionary instead of materializing cells.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::UnknownAttribute`] for an unknown column, or
    /// [`TableError::Segment`] if a spilled chunk cannot be read.
    pub fn find(&self, attr: &str, value: &Value) -> Result<Vec<usize>, TableError> {
        let col = self.schema.require(attr)?;
        let key = value.answer_key();
        let mut hits = Vec::new();
        let mut base = 0usize;
        for slot in 0..self.sealed.len() {
            let chunk = self.chunk(slot)?;
            let prunable = chunk
                .stats_if_computed(col)
                .is_some_and(|s| s.count(value) == 0 && !(key.is_empty() && s.null_count() > 0));
            if !prunable {
                hits.extend(
                    chunk
                        .column(col)
                        .find_key(&key)
                        .into_iter()
                        .map(|o| base + o),
                );
            }
            base += chunk.len();
        }
        for (i, rec) in self.tail.iter().enumerate() {
            if rec.get(col).is_some_and(|v| v.answer_key() == key) {
                hits.push(base + i);
            }
        }
        Ok(hits)
    }

    /// Writes every chunk (and the tail) to a segment file at `path` and
    /// returns the spilled, read-only table paging at most `budget` chunks
    /// at a time. The source table is unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::Segment`] on I/O failure.
    pub fn spill_to(&self, path: impl AsRef<Path>, budget: usize) -> Result<Table, TableError> {
        let mut writer = SegmentWriter::create(
            path,
            self.name.clone(),
            self.schema.clone(),
            self.chunk_rows,
        )?;
        for rec in self.iter_rows() {
            writer.push_row(rec.into_values())?;
        }
        writer.finish(budget)
    }

    /// Opens a previously written segment file as a read-only table whose
    /// chunks page in through an LRU cache of at most `budget` chunks.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::Segment`] on I/O failure or a malformed file.
    pub fn open_segment(path: impl AsRef<Path>, budget: usize) -> Result<Table, TableError> {
        let reader = SegmentReader::open(path)?;
        let mut sealed = Vec::with_capacity(reader.chunk_count());
        let mut sealed_rows = 0usize;
        for idx in 0..reader.chunk_count() {
            let rows = reader.chunk_len(idx);
            sealed_rows += rows;
            sealed.push(Slot::spilled(rows));
        }
        Ok(Table {
            name: reader.name().to_string(),
            schema: reader.schema().clone(),
            chunk_rows: reader.chunk_rows(),
            sealed,
            sealed_rows,
            tail: Vec::new(),
            pager: Some(Arc::new(Pager::new(reader, budget))),
        })
    }
}

/// Cloning shares sealed chunks and the pager by reference count — no cell
/// data is copied. Pinned views are dropped (the clone re-decodes on
/// demand), which is what lets [`DataLake`](crate::DataLake) refresh
/// entries without deep-copying tables.
impl Clone for Table {
    fn clone(&self) -> Self {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            chunk_rows: self.chunk_rows,
            sealed: self
                .sealed
                .iter()
                .map(|s| match &s.state {
                    SlotState::Resident(chunk) => Slot::resident(chunk.clone()),
                    SlotState::Spilled => Slot::spilled(s.rows),
                })
                .collect(),
            sealed_rows: self.sealed_rows,
            tail: self.tail.clone(),
            pager: self.pager.clone(),
        }
    }
}

/// Logical equality: same name, schema, and row sequence (chunking,
/// spill state, and pinned views are representation details).
impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.schema == other.schema
            && self.row_count() == other.row_count()
            && self.iter_rows().eq(other.iter_rows())
    }
}

enum RowAddr {
    Sealed { slot: usize, offset: usize },
    Tail(usize),
}

/// Chunk-wise row iterator returned by [`Table::iter_rows`].
#[derive(Debug)]
pub struct RowIter<'a> {
    table: &'a Table,
    index: usize,
    cached: Option<(usize, Arc<Chunk>)>,
}

impl Iterator for RowIter<'_> {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        let t = self.table;
        if self.index >= t.row_count() {
            return None;
        }
        let rec = if self.index < t.sealed_rows {
            let slot = self.index / t.chunk_rows;
            let offset = self.index % t.chunk_rows;
            if self.cached.as_ref().is_none_or(|(s, _)| *s != slot) {
                let chunk = t.chunk(slot).expect("segment read during row iteration");
                self.cached = Some((slot, chunk));
            }
            self.cached
                .as_ref()
                .expect("chunk cached above")
                .1
                .record(offset)
        } else {
            t.tail[self.index - t.sealed_rows].clone()
        };
        self.index += 1;
        Some(rec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.table.row_count().saturating_sub(self.index);
        (left, Some(left))
    }
}

/// Chunk-wise column iterator returned by [`Table::column`].
#[derive(Debug)]
pub struct ColumnIter<'a> {
    table: &'a Table,
    col: usize,
    index: usize,
    cached: Option<(usize, Arc<Chunk>)>,
}

impl Iterator for ColumnIter<'_> {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        let t = self.table;
        if self.index >= t.row_count() {
            return None;
        }
        let value = if self.index < t.sealed_rows {
            let slot = self.index / t.chunk_rows;
            let offset = self.index % t.chunk_rows;
            if self.cached.as_ref().is_none_or(|(s, _)| *s != slot) {
                let chunk = t.chunk(slot).expect("segment read during column scan");
                self.cached = Some((slot, chunk));
            }
            self.cached
                .as_ref()
                .expect("chunk cached above")
                .1
                .value(offset, self.col)
        } else {
            t.tail[self.index - t.sealed_rows]
                .get(self.col)
                .cloned()
                .expect("tail row width checked on ingest")
        };
        self.index += 1;
        Some(value)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.table.row_count().saturating_sub(self.index);
        (left, Some(left))
    }
}

/// Builder for [`Table`], collecting column names before creation.
///
/// # Examples
///
/// ```
/// use unidm_tablestore::Table;
/// let t = Table::builder("people").column("name").column("age").build();
/// assert_eq!(t.schema().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    columns: Vec<String>,
    chunk_rows: usize,
}

impl TableBuilder {
    /// Adds a column.
    pub fn column(mut self, name: impl Into<String>) -> Self {
        self.columns.push(name.into());
        self
    }

    /// Adds several columns.
    pub fn columns<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.columns.extend(names.into_iter().map(Into::into));
        self
    }

    /// Overrides the rows-per-chunk partition size (default
    /// [`DEFAULT_CHUNK_ROWS`]).
    pub fn chunk_rows(mut self, rows: usize) -> Self {
        self.chunk_rows = rows.max(1);
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics if a column name is duplicated; builders are used with literal
    /// names where a duplicate is a programming error.
    pub fn build(self) -> Table {
        let schema = Schema::from_names(self.columns).expect("duplicate column name in builder");
        Table::with_chunk_rows(self.name, schema, self.chunk_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn city_table() -> Table {
        let mut t = Table::builder("cities")
            .columns(["city", "country", "timezone"])
            .build();
        for (c, n, z) in [
            ("Florence", "Italy", "CET"),
            ("Alicante", "Spain", "CET"),
            ("Antwerp", "Belgium", "CET"),
            ("Copenhagen", "Denmark", "CET"),
        ] {
            t.push_row(vec![Value::text(c), Value::text(n), Value::text(z)])
                .unwrap();
        }
        t
    }

    /// The same rows, sealed into 2-row chunks so every accessor crosses
    /// chunk boundaries.
    fn chunked_city_table() -> Table {
        let src = city_table();
        let mut t = Table::with_chunk_rows("cities", src.schema().clone(), 2);
        for rec in src.iter_rows() {
            t.push_row(rec.into_values()).unwrap();
        }
        t
    }

    #[test]
    fn push_and_access() {
        let t = city_table();
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.cell(1, "country").unwrap(), &Value::text("Spain"));
    }

    #[test]
    fn chunked_accessors_agree_with_row_major() {
        let a = city_table();
        let b = chunked_city_table();
        assert_eq!(b.chunk_count(), 2);
        assert!(b.tail.is_empty());
        for i in 0..a.row_count() {
            assert_eq!(a.row(i).unwrap(), b.row(i).unwrap());
            assert_eq!(b.row_at(i).unwrap(), *a.row(i).unwrap());
            assert_eq!(
                b.cell_value(i, "timezone").unwrap(),
                *a.cell(i, "timezone").unwrap()
            );
        }
        assert_eq!(a, b, "logical equality ignores chunking");
    }

    #[test]
    fn arity_checked() {
        let mut t = city_table();
        assert!(matches!(
            t.push_row(vec![Value::text("x")]),
            Err(TableError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn row_out_of_bounds() {
        let t = city_table();
        assert!(matches!(t.row(99), Err(TableError::RowOutOfBounds { .. })));
        assert!(matches!(
            t.row_at(99),
            Err(TableError::RowOutOfBounds { .. })
        ));
    }

    #[test]
    fn set_cell_roundtrip() {
        let mut t = city_table();
        t.set_cell(3, "timezone", Value::Null).unwrap();
        assert!(t.cell(3, "timezone").unwrap().is_null());
    }

    #[test]
    fn set_cell_in_sealed_chunk_is_copy_on_write() {
        let mut t = chunked_city_table();
        let shared = t.clone();
        t.set_cell(0, "timezone", Value::text("WET")).unwrap();
        assert_eq!(t.cell_value(0, "timezone").unwrap(), Value::text("WET"));
        assert_eq!(
            shared.cell_value(0, "timezone").unwrap(),
            Value::text("CET"),
            "clone sharing the old chunk is unaffected"
        );
    }

    #[test]
    fn column_iterator() {
        let t = chunked_city_table();
        let countries: Vec<String> = t
            .column("country")
            .unwrap()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(countries, vec!["Italy", "Spain", "Belgium", "Denmark"]);
        assert!(t.column("nope").is_err());
    }

    #[test]
    fn column_stats_fold_matches_compute() {
        let t = chunked_city_table();
        let folded = t.column_stats("timezone").unwrap();
        let whole: Vec<Value> = t.column("timezone").unwrap().collect();
        let expect = ColumnStats::compute(whole.iter());
        assert_eq!(folded.total(), expect.total());
        assert_eq!(folded.sorted_counts(), expect.sorted_counts());
    }

    #[test]
    fn project_preserves_rows() {
        let t = city_table();
        let p = t.project(&["timezone", "city"]).unwrap();
        assert_eq!(
            p.schema().names().collect::<Vec<_>>(),
            vec!["timezone", "city"]
        );
        assert_eq!(p.row_count(), 4);
        assert_eq!(p.cell(0, "city").unwrap(), &Value::text("Florence"));
    }

    #[test]
    fn project_shares_sealed_chunks() {
        let t = chunked_city_table();
        let p = t.project(&["city"]).unwrap();
        assert_eq!(p.chunk_count(), t.chunk_count());
        let (orig, proj) = match (&t.sealed[0].state, &p.sealed[0].state) {
            (SlotState::Resident(a), SlotState::Resident(b)) => (a.clone(), b.clone()),
            _ => panic!("expected resident chunks"),
        };
        assert!(Arc::ptr_eq(proj.column(0), orig.column(0)));
    }

    #[test]
    fn sample_excludes() {
        let t = city_table();
        let mut rng = StdRng::seed_from_u64(7);
        let s = t.sample_rows(&mut rng, 10, &[0]);
        assert_eq!(s.len(), 3);
        assert!(!s.contains(&0));
    }

    #[test]
    fn sample_truncates() {
        let t = city_table();
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(t.sample_rows(&mut rng, 2, &[]).len(), 2);
    }

    #[test]
    fn sample_large_table_is_bounded_and_distinct() {
        let mut t = Table::builder("big").column("n").chunk_rows(512).build();
        for i in 0..(SAMPLE_SHUFFLE_MAX + 100) {
            t.push_row(vec![Value::Int(i as i64)]).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(11);
        let s = t.sample_rows(&mut rng, 10, &[0, 1, 2]);
        assert_eq!(s.len(), 10);
        let distinct: HashSet<usize> = s.iter().copied().collect();
        assert_eq!(distinct.len(), 10);
        assert!(s.iter().all(|&i| i > 2 && i < t.row_count()));
    }

    #[test]
    fn find_by_answer_key() {
        let t = city_table();
        let hits = t.find("country", &Value::text("italy")).unwrap();
        assert_eq!(hits, vec![0]);
        let chunked = chunked_city_table();
        assert_eq!(
            chunked.find("country", &Value::text("italy")).unwrap(),
            vec![0]
        );
        assert_eq!(
            chunked.find("timezone", &Value::text("cet")).unwrap(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn find_matches_nulls_via_empty_key() {
        let mut t = Table::builder("t").column("a").chunk_rows(2).build();
        t.push_row(vec![Value::Null]).unwrap();
        t.push_row(vec![Value::text("x")]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        assert_eq!(t.find("a", &Value::Null).unwrap(), vec![0, 2]);
    }

    #[test]
    fn clone_shares_chunks() {
        let t = chunked_city_table();
        let c = t.clone();
        let (a, b) = match (&t.sealed[0].state, &c.sealed[0].state) {
            (SlotState::Resident(a), SlotState::Resident(b)) => (a.clone(), b.clone()),
            _ => panic!("expected resident chunks"),
        };
        assert!(Arc::ptr_eq(&a, &b), "clone must share sealed chunks");
        assert_eq!(t, c);
    }

    #[test]
    fn spill_roundtrip_and_read_only() {
        let mut path = std::env::temp_dir();
        path.push(format!("unidm-table-spill-{}.seg", std::process::id()));
        let t = chunked_city_table();
        let mut spilled = t.spill_to(&path, 1).unwrap();
        assert!(spilled.is_spilled());
        assert_eq!(spilled, t, "spill → reload preserves every row");
        assert!(spilled.resident_chunks() <= 1);
        assert!(matches!(
            spilled.push_row(vec![Value::Null, Value::Null, Value::Null]),
            Err(TableError::SpilledReadOnly)
        ));
        assert!(matches!(
            spilled.set_cell(0, "city", Value::Null),
            Err(TableError::SpilledReadOnly)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn builder_duplicate_panics() {
        let _ = Table::builder("t").column("a").column("a").build();
    }
}
