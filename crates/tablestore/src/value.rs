//! Dynamically typed cell values.

use std::fmt;

/// A single cell value in a table.
///
/// Values are dynamically typed because data-lake tables are messy: the same
/// column can hold text and numbers, and missing values are first-class
/// ([`Value::Null`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// A missing value. Displayed as an empty string.
    #[default]
    Null,
    /// A text value.
    Text(String),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// True if this value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Renders the value as a plain string (empty for null).
    ///
    /// Unlike `to_string` this avoids allocating for text values it can
    /// borrow; use it in hot paths.
    pub fn as_text(&self) -> std::borrow::Cow<'_, str> {
        match self {
            Value::Null => "".into(),
            Value::Text(s) => s.as_str().into(),
            Value::Int(i) => i.to_string().into(),
            Value::Float(x) => format_float(*x).into(),
            Value::Bool(b) => if *b { "true" } else { "false" }.into(),
        }
    }

    /// Interprets the value as a float if possible.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            Value::Text(s) => s.trim().parse().ok(),
            _ => None,
        }
    }

    /// Parses a string into the most specific value type.
    ///
    /// Empty / whitespace strings parse to [`Value::Null`].
    ///
    /// # Examples
    ///
    /// ```
    /// use unidm_tablestore::Value;
    /// assert_eq!(Value::parse("42"), Value::Int(42));
    /// assert_eq!(Value::parse("3.5"), Value::Float(3.5));
    /// assert_eq!(Value::parse(""), Value::Null);
    /// assert_eq!(Value::parse("Copenhagen"), Value::text("Copenhagen"));
    /// ```
    pub fn parse(s: &str) -> Value {
        let t = s.trim();
        if t.is_empty() {
            return Value::Null;
        }
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(x) = t.parse::<f64>() {
            if x.is_finite() {
                return Value::Float(x);
            }
        }
        match t {
            "true" | "TRUE" | "True" => Value::Bool(true),
            "false" | "FALSE" | "False" => Value::Bool(false),
            _ => Value::Text(t.to_string()),
        }
    }

    /// Case- and punctuation-insensitive comparison key used to judge whether
    /// a model answer matches ground truth.
    pub fn answer_key(&self) -> String {
        match self {
            Value::Float(x) => format_float(*x),
            v => canonical_key(&v.as_text()),
        }
    }
}

fn canonical_key(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for ch in s.trim().chars() {
        if ch.is_alphanumeric() {
            out.extend(ch.to_lowercase());
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    out.trim_end().to_string()
}

fn format_float(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_text())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_types() {
        assert_eq!(Value::parse("7"), Value::Int(7));
        assert_eq!(Value::parse("-3"), Value::Int(-3));
        assert_eq!(Value::parse("2.25"), Value::Float(2.25));
        assert_eq!(Value::parse("true"), Value::Bool(true));
        assert_eq!(Value::parse("  "), Value::Null);
        assert_eq!(Value::parse("10.0.0.1"), Value::text("10.0.0.1"));
    }

    #[test]
    fn display_null_empty() {
        assert_eq!(Value::Null.to_string(), "");
        assert!(Value::Null.is_null());
    }

    #[test]
    fn as_f64_variants() {
        assert_eq!(Value::Int(2).as_f64(), Some(2.0));
        assert_eq!(Value::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::text("1.5").as_f64(), Some(1.5));
        assert_eq!(Value::text("x").as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn answer_key_canonicalises() {
        assert_eq!(Value::text("Beverly Hills.").answer_key(), "beverly hills");
        assert_eq!(Value::text("BEVERLY  HILLS").answer_key(), "beverly hills");
        assert_eq!(Value::Int(42).answer_key(), "42");
    }

    #[test]
    fn float_formatting_stable() {
        assert_eq!(Value::Float(3.0).to_string(), "3.0");
        assert_eq!(Value::Float(3.25).to_string(), "3.25");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("x"), Value::text("x"));
        assert_eq!(Value::from(1i64), Value::Int(1));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
