//! The data lake: a named collection of tables with no declared join relations.

use crate::{Table, TableError};

/// A data lake `D = {D1, ..., Dl}`.
///
/// Tables are stored in insertion order; names are unique, and re-adding a
/// table with an existing name replaces it (lakes are refreshed wholesale in
/// practice). Refreshes and clones are cheap: a [`Table`]'s sealed chunks
/// are immutable and `Arc`-shared, so cloning a lake — as eval drivers and
/// streaming partitions do — bumps reference counts instead of deep-copying
/// cell data.
#[derive(Debug, Clone, Default)]
pub struct DataLake {
    tables: Vec<Table>,
}

impl DataLake {
    /// Creates an empty lake.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if the lake holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Adds (or replaces) a table, returning the previous table of the same
    /// name if one existed.
    pub fn add(&mut self, table: Table) -> Option<Table> {
        if let Some(pos) = self.tables.iter().position(|t| t.name() == table.name()) {
            Some(std::mem::replace(&mut self.tables[pos], table))
        } else {
            self.tables.push(table);
            None
        }
    }

    /// The table named `name`.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name() == name)
    }

    /// Mutable access to the table named `name`.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.iter_mut().find(|t| t.name() == name)
    }

    /// The table named `name`, or an error.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::UnknownTable`] when absent.
    pub fn require(&self, name: &str) -> Result<&Table, TableError> {
        self.table(name)
            .ok_or_else(|| TableError::UnknownTable(name.to_string()))
    }

    /// Iterator over all tables in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter()
    }

    /// All table names in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.iter().map(|t| t.name())
    }
}

impl FromIterator<Table> for DataLake {
    fn from_iter<T: IntoIterator<Item = Table>>(iter: T) -> Self {
        let mut lake = DataLake::new();
        for t in iter {
            lake.add(t);
        }
        lake
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Schema, Value};

    fn table(name: &str) -> Table {
        let mut t = Table::new(name, Schema::from_names(["a"]).unwrap());
        t.push_row(vec![Value::Int(1)]).unwrap();
        t
    }

    #[test]
    fn add_and_lookup() {
        let mut lake = DataLake::new();
        assert!(lake.add(table("x")).is_none());
        assert!(lake.add(table("y")).is_none());
        assert_eq!(lake.len(), 2);
        assert!(lake.table("x").is_some());
        assert!(lake.table("z").is_none());
        assert!(lake.require("z").is_err());
    }

    #[test]
    fn replace_same_name() {
        let mut lake = DataLake::new();
        lake.add(table("x"));
        let prev = lake.add(table("x"));
        assert!(prev.is_some());
        assert_eq!(lake.len(), 1);
    }

    #[test]
    fn from_iterator_collects() {
        let lake: DataLake = vec![table("a"), table("b")].into_iter().collect();
        assert_eq!(lake.names().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn refresh_and_clone_share_chunks() {
        // A lake refresh (re-add under the same name) and a lake clone must
        // both share sealed chunk storage with the source table rather than
        // deep-copying rows. Chunk sharing is observable through the
        // columnar API: a shared chunk serves identical data through both
        // handles, and Table::clone is documented to be an Arc bump.
        let mut big = Table::builder("big").column("a").chunk_rows(2).build();
        for i in 0..10 {
            big.push_row(vec![Value::Int(i)]).unwrap();
        }
        let mut lake = DataLake::new();
        lake.add(big.clone());
        let cloned_lake = lake.clone();
        // Replace with a clone of the same table: the previous table comes
        // back out; the new entry still shares chunks with `big`.
        let prev = lake.add(big.clone()).expect("replaced");
        assert_eq!(prev.row_count(), 10);
        assert_eq!(lake.table("big").unwrap(), &big);
        assert_eq!(cloned_lake.table("big").unwrap(), &big);
    }

    #[test]
    fn table_mut_edits() {
        let mut lake = DataLake::new();
        lake.add(table("x"));
        lake.table_mut("x")
            .unwrap()
            .push_row(vec![Value::Int(2)])
            .unwrap();
        assert_eq!(lake.table("x").unwrap().row_count(), 2);
    }
}
