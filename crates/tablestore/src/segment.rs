//! Spill-to-disk segment format and the bounded chunk pager.
//!
//! A *segment* is one table's sealed chunks serialized to a single file so
//! a lake larger than RAM can page row partitions in and out on demand:
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────┐
//! │ magic "UDMSEG1\0"                                          │
//! │ header: table name, schema (names + dtypes), chunk_rows    │
//! │ chunk 0 payload │ chunk 1 payload │ ... │ chunk N payload  │
//! │ directory: per-chunk (offset, byte len, row count)         │
//! │ u64 directory offset (last 8 bytes)                        │
//! └────────────────────────────────────────────────────────────┘
//! ```
//!
//! Each chunk payload stores its columns in the same encodings
//! [`ColumnChunk`] uses in memory (dictionary codes, packed ints, tagged
//! values), so paging a chunk back in is a straight decode with no row
//! materialization. All integers are little-endian; the format is
//! versioned by the magic and dependency-free.
//!
//! [`SegmentWriter`] streams rows chunk-by-chunk (peak memory: one chunk),
//! and [`Pager`] serves random chunk reads through an LRU cache bounded by
//! a configurable chunk *budget* — the knob that caps resident memory for
//! spilled tables regardless of row count.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::chunk::{Chunk, ColumnChunk};
use crate::{DataType, Record, Schema, TableError, Value};

const MAGIC: &[u8; 8] = b"UDMSEG1\0";

/// Default number of chunks a spilled table keeps resident.
pub const DEFAULT_PAGE_BUDGET: usize = 16;

fn io_err(context: &str, e: std::io::Error) -> TableError {
    TableError::Segment(format!("{context}: {e}"))
}

fn format_err(msg: impl Into<String>) -> TableError {
    TableError::Segment(msg.into())
}

// ── Little-endian primitives ────────────────────────────────────────────

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A cursor over a decoded byte buffer.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TableError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format_err("truncated segment payload"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, TableError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, TableError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, TableError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, TableError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, TableError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, TableError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format_err("invalid utf-8 in segment"))
    }
}

// ── Chunk payload encode/decode ─────────────────────────────────────────

const TAG_DICT: u8 = 0;
const TAG_INTS: u8 = 1;
const TAG_MIXED: u8 = 2;

const VTAG_NULL: u8 = 0;
const VTAG_TEXT: u8 = 1;
const VTAG_INT: u8 = 2;
const VTAG_FLOAT: u8 = 3;
const VTAG_BOOL: u8 = 4;

fn encode_column(out: &mut Vec<u8>, col: &ColumnChunk) {
    match col {
        ColumnChunk::Dict { dict, codes } => {
            out.push(TAG_DICT);
            put_u32(out, dict.len() as u32);
            for entry in dict {
                put_str(out, entry);
            }
            for &code in codes {
                put_u32(out, code);
            }
        }
        ColumnChunk::Ints { values, present } => {
            out.push(TAG_INTS);
            for &v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for &p in present {
                out.push(u8::from(p));
            }
        }
        ColumnChunk::Mixed(values) => {
            out.push(TAG_MIXED);
            for v in values {
                match v {
                    Value::Null => out.push(VTAG_NULL),
                    Value::Text(s) => {
                        out.push(VTAG_TEXT);
                        put_str(out, s);
                    }
                    Value::Int(i) => {
                        out.push(VTAG_INT);
                        out.extend_from_slice(&i.to_le_bytes());
                    }
                    Value::Float(x) => {
                        out.push(VTAG_FLOAT);
                        put_u64(out, x.to_bits());
                    }
                    Value::Bool(b) => {
                        out.push(VTAG_BOOL);
                        out.push(u8::from(*b));
                    }
                }
            }
        }
    }
}

fn decode_column(cur: &mut Cursor<'_>, rows: usize) -> Result<ColumnChunk, TableError> {
    match cur.u8()? {
        TAG_DICT => {
            let dict_len = cur.u32()? as usize;
            let mut dict = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                dict.push(cur.str()?);
            }
            let mut codes = Vec::with_capacity(rows);
            for _ in 0..rows {
                let code = cur.u32()?;
                if code != crate::chunk::NULL_CODE && code as usize >= dict_len {
                    return Err(format_err("dictionary code out of range"));
                }
                codes.push(code);
            }
            Ok(ColumnChunk::Dict { dict, codes })
        }
        TAG_INTS => {
            let mut values = Vec::with_capacity(rows);
            for _ in 0..rows {
                values.push(cur.i64()?);
            }
            let mut present = Vec::with_capacity(rows);
            for _ in 0..rows {
                present.push(cur.u8()? != 0);
            }
            Ok(ColumnChunk::Ints { values, present })
        }
        TAG_MIXED => {
            let mut values = Vec::with_capacity(rows);
            for _ in 0..rows {
                values.push(match cur.u8()? {
                    VTAG_NULL => Value::Null,
                    VTAG_TEXT => Value::Text(cur.str()?),
                    VTAG_INT => Value::Int(cur.i64()?),
                    VTAG_FLOAT => Value::Float(cur.f64()?),
                    VTAG_BOOL => Value::Bool(cur.u8()? != 0),
                    tag => return Err(format_err(format!("unknown value tag {tag}"))),
                });
            }
            Ok(ColumnChunk::Mixed(values))
        }
        tag => Err(format_err(format!("unknown column tag {tag}"))),
    }
}

/// Serializes one chunk into its segment payload.
fn encode_chunk(chunk: &Chunk) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, chunk.len() as u64);
    for c in 0..chunk.width() {
        encode_column(&mut out, chunk.column(c));
    }
    out
}

fn decode_chunk(buf: &[u8], width: usize) -> Result<Chunk, TableError> {
    let mut cur = Cursor::new(buf);
    let rows = cur.u64()? as usize;
    let mut columns = Vec::with_capacity(width);
    for _ in 0..width {
        columns.push(Arc::new(decode_column(&mut cur, rows)?));
    }
    Ok(Chunk::from_columns(rows, columns))
}

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Text => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Bool => 3,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType, TableError> {
    Ok(match tag {
        0 => DataType::Text,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Bool,
        t => return Err(format_err(format!("unknown dtype tag {t}"))),
    })
}

fn encode_header(name: &str, schema: &Schema, chunk_rows: usize) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_str(&mut out, name);
    put_u32(&mut out, schema.len() as u32);
    for col in schema.columns() {
        put_str(&mut out, col.name());
        out.push(dtype_tag(col.dtype()));
    }
    put_u64(&mut out, chunk_rows as u64);
    out
}

/// Location of one chunk inside a segment file.
#[derive(Debug, Clone, Copy)]
struct ChunkEntry {
    offset: u64,
    bytes: u64,
    rows: u64,
}

// ── Writer ──────────────────────────────────────────────────────────────

/// Streams rows into a segment file chunk-by-chunk: peak memory is one
/// chunk's rows plus its encoded payload, independent of the total row
/// count. This is the ingest path for lakes larger than RAM — the
/// streaming CSV reader and the synthetic scale generator both bottom out
/// here.
#[derive(Debug)]
pub struct SegmentWriter {
    path: PathBuf,
    file: BufWriter<File>,
    name: String,
    schema: Schema,
    chunk_rows: usize,
    buffer: Vec<Record>,
    entries: Vec<ChunkEntry>,
    offset: u64,
}

impl SegmentWriter {
    /// Creates (truncating) the segment file and writes its header.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::Segment`] on I/O failure.
    pub fn create(
        path: impl AsRef<Path>,
        name: impl Into<String>,
        schema: Schema,
        chunk_rows: usize,
    ) -> Result<Self, TableError> {
        let path = path.as_ref().to_path_buf();
        let name = name.into();
        let file = File::create(&path).map_err(|e| io_err("create segment", e))?;
        let mut file = BufWriter::new(file);
        let header = encode_header(&name, &schema, chunk_rows.max(1));
        file.write_all(&header)
            .map_err(|e| io_err("write header", e))?;
        Ok(SegmentWriter {
            path,
            file,
            name,
            schema,
            chunk_rows: chunk_rows.max(1),
            buffer: Vec::new(),
            entries: Vec::new(),
            offset: header.len() as u64,
        })
    }

    /// The table name the segment is being written under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema rows must conform to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rows accepted so far.
    pub fn rows_written(&self) -> usize {
        self.entries.iter().map(|e| e.rows as usize).sum::<usize>() + self.buffer.len()
    }

    /// Appends one row, sealing and writing a chunk whenever the buffer
    /// fills.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::ArityMismatch`] for rows of the wrong width
    /// and [`TableError::Segment`] on I/O failure.
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<(), TableError> {
        if values.len() != self.schema.len() {
            return Err(TableError::ArityMismatch {
                got: values.len(),
                expected: self.schema.len(),
            });
        }
        self.buffer.push(Record::new(values));
        if self.buffer.len() >= self.chunk_rows {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), TableError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let chunk = Chunk::from_rows(self.schema.len(), &self.buffer);
        let payload = encode_chunk(&chunk);
        self.file
            .write_all(&payload)
            .map_err(|e| io_err("write chunk", e))?;
        self.entries.push(ChunkEntry {
            offset: self.offset,
            bytes: payload.len() as u64,
            rows: chunk.len() as u64,
        });
        self.offset += payload.len() as u64;
        self.buffer.clear();
        Ok(())
    }

    /// Flushes the trailing partial chunk, writes the directory, and
    /// reopens the segment as a spilled [`crate::Table`] paging at most
    /// `budget` chunks at a time.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::Segment`] on I/O failure.
    pub fn finish(mut self, budget: usize) -> Result<crate::Table, TableError> {
        self.flush_chunk()?;
        let mut dir = Vec::new();
        put_u64(&mut dir, self.entries.len() as u64);
        for e in &self.entries {
            put_u64(&mut dir, e.offset);
            put_u64(&mut dir, e.bytes);
            put_u64(&mut dir, e.rows);
        }
        put_u64(&mut dir, self.offset); // directory offset, last 8 bytes
        self.file
            .write_all(&dir)
            .map_err(|e| io_err("write directory", e))?;
        self.file.flush().map_err(|e| io_err("flush segment", e))?;
        drop(self.file);
        crate::Table::open_segment(&self.path, budget)
    }
}

// ── Reader / pager ──────────────────────────────────────────────────────

/// An open segment file: header metadata plus random chunk reads.
#[derive(Debug)]
pub struct SegmentReader {
    file: Mutex<File>,
    path: PathBuf,
    name: String,
    schema: Schema,
    chunk_rows: usize,
    entries: Vec<ChunkEntry>,
}

impl SegmentReader {
    /// Opens a segment and reads its header and directory.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::Segment`] on I/O failure or a malformed file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TableError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path).map_err(|e| io_err("open segment", e))?;
        let file_len = file
            .metadata()
            .map_err(|e| io_err("stat segment", e))?
            .len();
        if file_len < (MAGIC.len() + 8) as u64 {
            return Err(format_err("segment file too short"));
        }

        // Header.
        let mut head = vec![0u8; MAGIC.len()];
        file.read_exact(&mut head)
            .map_err(|e| io_err("read magic", e))?;
        if head != MAGIC {
            return Err(format_err("bad segment magic (not a UDMSEG1 file)"));
        }
        let mut rest = Vec::new();
        // Read the remainder of the header region lazily: header fields are
        // small, so read a bounded prefix and parse with a cursor.
        let header_budget = (file_len as usize - MAGIC.len()).min(1 << 20);
        rest.resize(header_budget, 0);
        file.read_exact(&mut rest)
            .map_err(|e| io_err("read header", e))?;
        let mut cur = Cursor::new(&rest);
        let name = cur.str()?;
        let ncols = cur.u32()? as usize;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let col_name = cur.str()?;
            let dtype = dtype_from_tag(cur.u8()?)?;
            columns.push(crate::Column::typed(col_name, dtype));
        }
        let schema = Schema::new(columns)?;
        let chunk_rows = cur.u64()? as usize;

        // Directory: offset in the last 8 bytes.
        file.seek(SeekFrom::End(-8))
            .map_err(|e| io_err("seek directory offset", e))?;
        let mut tail = [0u8; 8];
        file.read_exact(&mut tail)
            .map_err(|e| io_err("read directory offset", e))?;
        let dir_offset = u64::from_le_bytes(tail);
        if dir_offset >= file_len {
            return Err(format_err("directory offset out of range"));
        }
        file.seek(SeekFrom::Start(dir_offset))
            .map_err(|e| io_err("seek directory", e))?;
        let mut dir = vec![0u8; (file_len - 8 - dir_offset) as usize];
        file.read_exact(&mut dir)
            .map_err(|e| io_err("read directory", e))?;
        let mut cur = Cursor::new(&dir);
        let nchunks = cur.u64()? as usize;
        let mut entries = Vec::with_capacity(nchunks);
        for _ in 0..nchunks {
            let offset = cur.u64()?;
            let bytes = cur.u64()?;
            let rows = cur.u64()?;
            if offset.checked_add(bytes).is_none_or(|end| end > file_len) {
                return Err(format_err("chunk entry out of range"));
            }
            entries.push(ChunkEntry {
                offset,
                bytes,
                rows,
            });
        }

        Ok(SegmentReader {
            file: Mutex::new(file),
            path,
            name,
            schema,
            chunk_rows: chunk_rows.max(1),
            entries,
        })
    }

    /// The table name recorded in the header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema recorded in the header.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The row-partition size the segment was written with.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Number of chunks in the segment.
    pub fn chunk_count(&self) -> usize {
        self.entries.len()
    }

    /// Rows in chunk `idx`.
    pub fn chunk_len(&self, idx: usize) -> usize {
        self.entries[idx].rows as usize
    }

    /// Total rows across all chunks.
    pub fn row_count(&self) -> usize {
        self.entries.iter().map(|e| e.rows as usize).sum()
    }

    /// The segment file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads and decodes chunk `idx` from disk.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::Segment`] on I/O failure or a malformed
    /// payload.
    pub fn read_chunk(&self, idx: usize) -> Result<Chunk, TableError> {
        let entry = *self
            .entries
            .get(idx)
            .ok_or_else(|| format_err(format!("chunk {idx} out of range")))?;
        let mut buf = vec![0u8; entry.bytes as usize];
        {
            let mut file = self.file.lock().expect("segment file lock");
            file.seek(SeekFrom::Start(entry.offset))
                .map_err(|e| io_err("seek chunk", e))?;
            file.read_exact(&mut buf)
                .map_err(|e| io_err("read chunk", e))?;
        }
        let chunk = decode_chunk(&buf, self.schema.len())?;
        if chunk.len() != entry.rows as usize {
            return Err(format_err("chunk row count mismatch"));
        }
        Ok(chunk)
    }
}

/// A bounded LRU cache of decoded chunks over a [`SegmentReader`] — the
/// memory budget for a spilled table. At most `budget` chunks are resident
/// at once; a lookup past the budget evicts the least recently used chunk
/// (outstanding `Arc`s keep evicted chunks alive until their readers
/// drop).
#[derive(Debug)]
pub struct Pager {
    segment: SegmentReader,
    budget: usize,
    cache: Mutex<PageCache>,
}

#[derive(Debug, Default)]
struct PageCache {
    resident: HashMap<usize, (Arc<Chunk>, u64)>,
    tick: u64,
}

impl Pager {
    /// Wraps a segment with an LRU budget of `budget` chunks (minimum 1).
    pub fn new(segment: SegmentReader, budget: usize) -> Self {
        Pager {
            segment,
            budget: budget.max(1),
            cache: Mutex::new(PageCache::default()),
        }
    }

    /// The underlying segment.
    pub fn segment(&self) -> &SegmentReader {
        &self.segment
    }

    /// The configured chunk budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Chunks currently resident in the cache.
    pub fn resident_chunks(&self) -> usize {
        self.cache.lock().expect("pager lock").resident.len()
    }

    /// Returns chunk `idx`, reading it from disk on a miss and evicting
    /// the least recently used chunk when over budget.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::Segment`] on I/O failure.
    pub fn chunk(&self, idx: usize) -> Result<Arc<Chunk>, TableError> {
        {
            let mut cache = self.cache.lock().expect("pager lock");
            cache.tick += 1;
            let tick = cache.tick;
            if let Some((chunk, stamp)) = cache.resident.get_mut(&idx) {
                *stamp = tick;
                return Ok(chunk.clone());
            }
        }
        // Miss: read outside the cache lock (the reader serializes file
        // access itself), then insert. A racing thread may have inserted
        // the same chunk meanwhile; either copy is identical.
        let chunk = Arc::new(self.segment.read_chunk(idx)?);
        let mut cache = self.cache.lock().expect("pager lock");
        cache.tick += 1;
        let tick = cache.tick;
        cache.resident.insert(idx, (chunk.clone(), tick));
        while cache.resident.len() > self.budget {
            let victim = cache
                .resident
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&k, _)| k)
                .expect("non-empty over-budget cache");
            cache.resident.remove(&victim);
        }
        Ok(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "unidm-segment-test-{}-{name}.seg",
            std::process::id()
        ));
        p
    }

    fn schema() -> Schema {
        Schema::from_names(["city", "country", "pop"]).unwrap()
    }

    fn row(i: usize) -> Vec<Value> {
        vec![
            Value::text(format!("city-{}", i % 7)),
            Value::text(format!("country-{}", i % 3)),
            Value::Int(i as i64),
        ]
    }

    #[test]
    fn write_read_roundtrip() {
        let path = tmp("roundtrip");
        let mut w = SegmentWriter::create(&path, "cities", schema(), 8).unwrap();
        for i in 0..21 {
            w.push_row(row(i)).unwrap();
        }
        assert_eq!(w.rows_written(), 21);
        let table = w.finish(2).unwrap();
        assert_eq!(table.name(), "cities");
        assert_eq!(table.row_count(), 21);
        for i in 0..21 {
            assert_eq!(table.row_at(i).unwrap(), Record::new(row(i)));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pager_respects_budget() {
        let path = tmp("budget");
        let mut w = SegmentWriter::create(&path, "t", schema(), 4).unwrap();
        for i in 0..40 {
            w.push_row(row(i)).unwrap();
        }
        w.finish(16).unwrap();
        let reader = SegmentReader::open(&path).unwrap();
        assert_eq!(reader.chunk_count(), 10);
        let pager = Pager::new(reader, 3);
        for idx in 0..10 {
            let chunk = pager.chunk(idx).unwrap();
            assert_eq!(chunk.len(), 4);
            assert!(pager.resident_chunks() <= 3);
        }
        // Re-reading a resident chunk does not grow the cache.
        pager.chunk(9).unwrap();
        assert!(pager.resident_chunks() <= 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_files_rejected() {
        let path = tmp("malformed");
        std::fs::write(&path, b"definitely not a segment").unwrap();
        assert!(matches!(
            SegmentReader::open(&path),
            Err(TableError::Segment(_))
        ));
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            SegmentReader::open(&path),
            Err(TableError::Segment(_))
        ));
    }

    #[test]
    fn empty_segment_roundtrip() {
        let path = tmp("empty");
        let w = SegmentWriter::create(&path, "empty", schema(), 8).unwrap();
        let table = w.finish(2).unwrap();
        assert_eq!(table.row_count(), 0);
        assert!(table.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
