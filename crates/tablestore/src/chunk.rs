//! Chunked columnar storage: the in-memory unit of the out-of-core table.
//!
//! A [`Chunk`] holds one fixed-size row partition of a table, stored
//! column-major: one [`ColumnChunk`] per attribute. Text columns are
//! dictionary-encoded (one `u32` code per cell, distinct strings stored
//! once), integer columns are stored as flat `i64` arrays with a
//! present-mask, and anything heterogeneous falls back to a plain value
//! vector. Per-column [`ColumnStats`] are computed once when the chunk is
//! sealed at ingest and folded by [`Table::column_stats`] instead of
//! rescanning the column.
//!
//! Chunks are immutable once sealed and shared via `Arc`: cloning a table,
//! projecting columns, or refreshing a lake entry bumps reference counts
//! instead of deep-copying cell data.
//!
//! [`Table::column_stats`]: crate::Table::column_stats

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::{ColumnStats, Record, Value};

/// Dictionary code marking a null cell in a [`ColumnChunk::Dict`] column.
pub const NULL_CODE: u32 = u32::MAX;

/// One column of one row partition, in its most compact encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnChunk {
    /// Dictionary-encoded text: `codes[i]` indexes into `dict`;
    /// [`NULL_CODE`] marks a null cell.
    Dict {
        /// Distinct strings in first-appearance order.
        dict: Vec<String>,
        /// One code per row.
        codes: Vec<u32>,
    },
    /// Integers with a present-mask (`present[i] == false` means null).
    Ints {
        /// One value per row (`0` where absent).
        values: Vec<i64>,
        /// One presence flag per row.
        present: Vec<bool>,
    },
    /// Heterogeneous fallback: values stored directly.
    Mixed(Vec<Value>),
}

impl ColumnChunk {
    /// Encodes a column of values into the most compact representation:
    /// all-text columns dictionary-encode, all-integer columns pack into
    /// `i64`s, anything mixed (floats, bools, text+numbers) stays as
    /// values.
    pub fn encode(values: Vec<Value>) -> ColumnChunk {
        let all_text = values
            .iter()
            .all(|v| matches!(v, Value::Null | Value::Text(_)));
        if all_text {
            let mut dict: Vec<String> = Vec::new();
            let mut index: HashMap<&str, u32> = HashMap::new();
            let mut codes = Vec::with_capacity(values.len());
            for v in &values {
                match v {
                    Value::Null => codes.push(NULL_CODE),
                    Value::Text(s) => {
                        if let Some(&code) = index.get(s.as_str()) {
                            codes.push(code);
                        } else {
                            let code = dict.len() as u32;
                            index.insert(s.as_str(), code);
                            dict.push(s.clone());
                            codes.push(code);
                        }
                    }
                    _ => unreachable!("all_text checked above"),
                }
            }
            return ColumnChunk::Dict { dict, codes };
        }
        let all_int = values
            .iter()
            .all(|v| matches!(v, Value::Null | Value::Int(_)));
        if all_int {
            let mut ints = Vec::with_capacity(values.len());
            let mut present = Vec::with_capacity(values.len());
            for v in &values {
                match v {
                    Value::Int(i) => {
                        ints.push(*i);
                        present.push(true);
                    }
                    _ => {
                        ints.push(0);
                        present.push(false);
                    }
                }
            }
            return ColumnChunk::Ints {
                values: ints,
                present,
            };
        }
        ColumnChunk::Mixed(values)
    }

    /// Number of cells in the column.
    pub fn len(&self) -> usize {
        match self {
            ColumnChunk::Dict { codes, .. } => codes.len(),
            ColumnChunk::Ints { values, .. } => values.len(),
            ColumnChunk::Mixed(values) => values.len(),
        }
    }

    /// True if the column holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes the cell at `row` (owned).
    ///
    /// # Panics
    ///
    /// Panics if `row >= len()`; chunk-internal offsets are validated by
    /// the table before decoding.
    pub fn value(&self, row: usize) -> Value {
        match self {
            ColumnChunk::Dict { dict, codes } => match codes[row] {
                NULL_CODE => Value::Null,
                code => Value::Text(dict[code as usize].clone()),
            },
            ColumnChunk::Ints { values, present } => {
                if present[row] {
                    Value::Int(values[row])
                } else {
                    Value::Null
                }
            }
            ColumnChunk::Mixed(values) => values[row].clone(),
        }
    }

    /// Iterator over all cells (owned, decode-on-the-fly).
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// Offsets of cells equal to `key` (a [`Value::answer_key`]).
    ///
    /// For dictionary columns this matches against the (small) dictionary
    /// first and then scans codes — no per-row string materialization.
    pub fn find_key(&self, key: &str) -> Vec<usize> {
        match self {
            ColumnChunk::Dict { dict, codes } => {
                let matching: Vec<u32> = dict
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| Value::text(s.as_str()).answer_key() == key)
                    .map(|(i, _)| i as u32)
                    .collect();
                if matching.is_empty() && !key.is_empty() {
                    return Vec::new();
                }
                codes
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| {
                        if **c == NULL_CODE {
                            key.is_empty()
                        } else {
                            matching.contains(*c)
                        }
                    })
                    .map(|(i, _)| i)
                    .collect()
            }
            _ => (0..self.len())
                .filter(|&i| self.value(i).answer_key() == key)
                .collect(),
        }
    }

    /// Frequency statistics over the column (same accounting as
    /// [`ColumnStats::compute`]).
    pub fn stats(&self) -> ColumnStats {
        match self {
            ColumnChunk::Dict { dict, codes } => {
                // Count per code first (integer keys), then fold codes that
                // collide under the answer key — cheaper than hashing a
                // string per row.
                let mut per_code = vec![0usize; dict.len()];
                let mut nulls = 0usize;
                for &c in codes {
                    if c == NULL_CODE {
                        nulls += 1;
                    } else {
                        per_code[c as usize] += 1;
                    }
                }
                let mut stats = ColumnStats::with_counts(codes.len(), nulls);
                for (i, &n) in per_code.iter().enumerate() {
                    if n > 0 {
                        stats.add_key(Value::text(dict[i].as_str()).answer_key(), n);
                    }
                }
                stats
            }
            _ => {
                let values: Vec<Value> = self.iter().collect();
                ColumnStats::compute(values.iter())
            }
        }
    }
}

/// One sealed row partition of a table: column-major storage plus lazily
/// materialized per-column statistics.
#[derive(Debug)]
pub struct Chunk {
    len: usize,
    columns: Vec<Arc<ColumnChunk>>,
    stats: OnceLock<Vec<Arc<ColumnStats>>>,
}

impl Chunk {
    /// Seals `rows` (all of width `width`) into a columnar chunk.
    ///
    /// # Panics
    ///
    /// Panics if a row's width differs from `width`; the table checks
    /// arity on ingest.
    pub fn from_rows(width: usize, rows: &[Record]) -> Chunk {
        let mut columns = Vec::with_capacity(width);
        for c in 0..width {
            let col: Vec<Value> = rows
                .iter()
                .map(|r| r.get(c).cloned().expect("row width checked on ingest"))
                .collect();
            columns.push(Arc::new(ColumnChunk::encode(col)));
        }
        Chunk {
            len: rows.len(),
            columns,
            stats: OnceLock::new(),
        }
    }

    /// Builds a chunk directly from encoded columns (segment reload path).
    ///
    /// # Panics
    ///
    /// Panics if the columns disagree on length.
    pub fn from_columns(len: usize, columns: Vec<Arc<ColumnChunk>>) -> Chunk {
        for col in &columns {
            assert_eq!(col.len(), len, "column length mismatch");
        }
        Chunk {
            len,
            columns,
            stats: OnceLock::new(),
        }
    }

    /// Number of rows in the chunk.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The encoded column at `idx`.
    pub fn column(&self, idx: usize) -> &Arc<ColumnChunk> {
        &self.columns[idx]
    }

    /// Decodes the cell at (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Decodes one full row.
    pub fn record(&self, row: usize) -> Record {
        Record::new(self.columns.iter().map(|c| c.value(row)).collect())
    }

    /// Decodes every row (the chunk-resident view behind the borrowing
    /// accessors).
    pub fn decode_rows(&self) -> Vec<Record> {
        (0..self.len).map(|r| self.record(r)).collect()
    }

    /// Per-column statistics, computed once on first use (eagerly at seal
    /// time on the ingest path, lazily for chunks paged back from disk).
    pub fn stats(&self, col: usize) -> &Arc<ColumnStats> {
        &self.all_stats()[col]
    }

    /// Statistics for every column, computing them on first call.
    pub fn all_stats(&self) -> &[Arc<ColumnStats>] {
        self.stats
            .get_or_init(|| self.columns.iter().map(|c| Arc::new(c.stats())).collect())
    }

    /// Statistics for `col` only if they are already materialized — used
    /// by `find` to prune chunks without paying for a stats build.
    pub fn stats_if_computed(&self, col: usize) -> Option<&Arc<ColumnStats>> {
        self.stats.get().map(|s| &s[col])
    }

    /// A chunk over a subset of columns, sharing the encoded column data
    /// (`Arc` bumps, no cell copies).
    pub fn project(&self, cols: &[usize]) -> Chunk {
        let columns = cols.iter().map(|&c| self.columns[c].clone()).collect();
        let projected = Chunk {
            len: self.len,
            columns,
            stats: OnceLock::new(),
        };
        if let Some(all) = self.stats.get() {
            let _ = projected
                .stats
                .set(cols.iter().map(|&c| all[c].clone()).collect());
        }
        projected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(vals: Vec<Value>) -> Record {
        Record::new(vals)
    }

    #[test]
    fn text_columns_dictionary_encode() {
        let col = ColumnChunk::encode(vec![
            Value::text("CET"),
            Value::text("GMT"),
            Value::text("CET"),
            Value::Null,
        ]);
        match &col {
            ColumnChunk::Dict { dict, codes } => {
                assert_eq!(dict, &vec!["CET".to_string(), "GMT".to_string()]);
                assert_eq!(codes, &vec![0, 1, 0, NULL_CODE]);
            }
            other => panic!("expected dict encoding, got {other:?}"),
        }
        assert_eq!(col.value(1), Value::text("GMT"));
        assert_eq!(col.value(3), Value::Null);
    }

    #[test]
    fn int_columns_pack() {
        let col = ColumnChunk::encode(vec![Value::Int(7), Value::Null, Value::Int(-3)]);
        assert!(matches!(col, ColumnChunk::Ints { .. }));
        assert_eq!(col.value(0), Value::Int(7));
        assert_eq!(col.value(1), Value::Null);
        assert_eq!(col.value(2), Value::Int(-3));
    }

    #[test]
    fn mixed_columns_fall_back() {
        let col = ColumnChunk::encode(vec![Value::Int(1), Value::text("x"), Value::Float(2.5)]);
        assert!(matches!(col, ColumnChunk::Mixed(_)));
        assert_eq!(col.value(2), Value::Float(2.5));
    }

    #[test]
    fn stats_match_row_major_compute() {
        let values = vec![
            Value::text("CET"),
            Value::text("cet"),
            Value::text("GMT"),
            Value::Null,
        ];
        let col = ColumnChunk::encode(values.clone());
        let expect = ColumnStats::compute(values.iter());
        let got = col.stats();
        assert_eq!(got.total(), expect.total());
        assert_eq!(got.null_count(), expect.null_count());
        assert_eq!(got.distinct(), expect.distinct());
        assert_eq!(got.count(&Value::text("CET")), 2);
    }

    #[test]
    fn find_key_on_dict_and_mixed() {
        let dict = ColumnChunk::encode(vec![
            Value::text("Italy"),
            Value::text("Spain"),
            Value::text("ITALY"),
        ]);
        assert_eq!(dict.find_key("italy"), vec![0, 2]);
        assert_eq!(dict.find_key("france"), Vec::<usize>::new());
        let mixed = ColumnChunk::encode(vec![Value::Int(5), Value::text("5")]);
        assert_eq!(mixed.find_key(&Value::Int(5).answer_key()), vec![0, 1]);
    }

    #[test]
    fn chunk_roundtrips_rows() {
        let rows = vec![
            rec(vec![Value::text("a"), Value::Int(1)]),
            rec(vec![Value::Null, Value::Null]),
            rec(vec![Value::text("b"), Value::Int(2)]),
        ];
        let chunk = Chunk::from_rows(2, &rows);
        assert_eq!(chunk.len(), 3);
        assert_eq!(chunk.width(), 2);
        assert_eq!(chunk.decode_rows(), rows);
        assert_eq!(chunk.record(1), rows[1]);
        assert_eq!(chunk.value(2, 0), Value::text("b"));
    }

    #[test]
    fn projection_shares_columns() {
        let rows = vec![rec(vec![
            Value::text("a"),
            Value::Int(1),
            Value::Bool(true),
        ])];
        let chunk = Chunk::from_rows(3, &rows);
        let proj = chunk.project(&[2, 0]);
        assert!(Arc::ptr_eq(proj.column(0), chunk.column(2)));
        assert!(Arc::ptr_eq(proj.column(1), chunk.column(0)));
        assert_eq!(
            proj.record(0),
            rec(vec![Value::Bool(true), Value::text("a")])
        );
    }

    #[test]
    fn projection_carries_computed_stats() {
        let rows = vec![rec(vec![Value::text("a"), Value::Int(1)])];
        let chunk = Chunk::from_rows(2, &rows);
        chunk.all_stats();
        let proj = chunk.project(&[1]);
        assert!(proj.stats_if_computed(0).is_some());
    }
}
