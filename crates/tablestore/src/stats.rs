//! Per-column statistics.
//!
//! These drive the statistics-based baselines (HoloClean's co-occurrence
//! repair, CMI's clustering) and the error-detection generators.

use std::collections::HashMap;

use crate::Value;

/// Frequency statistics over one column.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnStats {
    counts: HashMap<String, usize>,
    nulls: usize,
    total: usize,
}

impl ColumnStats {
    /// Computes statistics from an iterator of values.
    pub fn compute<'a, I>(values: I) -> Self
    where
        I: IntoIterator<Item = &'a Value>,
    {
        let mut s = ColumnStats::default();
        for v in values {
            s.total += 1;
            if v.is_null() {
                s.nulls += 1;
            } else {
                *s.counts.entry(v.answer_key()).or_insert(0) += 1;
            }
        }
        s
    }

    /// Starts statistics with known totals and no value counts yet — the
    /// chunk-side fast path that counts dictionary codes before folding
    /// them into answer-key buckets.
    pub fn with_counts(total: usize, nulls: usize) -> Self {
        ColumnStats {
            counts: HashMap::new(),
            nulls,
            total,
        }
    }

    /// Adds `n` occurrences of an already-computed answer key (does not
    /// touch the totals — pair with [`ColumnStats::with_counts`]).
    pub fn add_key(&mut self, key: String, n: usize) {
        *self.counts.entry(key).or_insert(0) += n;
    }

    /// Folds one more value into the statistics.
    pub fn accumulate(&mut self, v: &Value) {
        self.total += 1;
        if v.is_null() {
            self.nulls += 1;
        } else {
            *self.counts.entry(v.answer_key()).or_insert(0) += 1;
        }
    }

    /// Merges another column's statistics into this one — the per-chunk
    /// fold behind [`Table::column_stats`]: chunk statistics are computed
    /// once at ingest and summed here instead of rescanning the column.
    ///
    /// [`Table::column_stats`]: crate::Table::column_stats
    pub fn merge(&mut self, other: &ColumnStats) {
        self.total += other.total;
        self.nulls += other.nulls;
        for (key, n) in &other.counts {
            *self.counts.entry(key.clone()).or_insert(0) += n;
        }
    }

    /// Total number of cells seen (including nulls).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of null cells.
    pub fn null_count(&self) -> usize {
        self.nulls
    }

    /// Number of distinct non-null values (by answer key).
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Occurrences of `value` (by answer key).
    pub fn count(&self, value: &Value) -> usize {
        self.counts.get(&value.answer_key()).copied().unwrap_or(0)
    }

    /// Relative frequency of `value` among non-null cells, in `[0, 1]`.
    pub fn frequency(&self, value: &Value) -> f64 {
        let non_null = self.total - self.nulls;
        if non_null == 0 {
            return 0.0;
        }
        self.count(value) as f64 / non_null as f64
    }

    /// The most frequent value key, ties broken lexicographically.
    pub fn mode(&self) -> Option<&str> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(k, _)| k.as_str())
    }

    /// All (value key, count) pairs sorted by descending count then key.
    pub fn sorted_counts(&self) -> Vec<(&str, usize)> {
        let mut v: Vec<(&str, usize)> = self.counts.iter().map(|(k, c)| (k.as_str(), *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ColumnStats {
        let vals = [
            Value::text("CET"),
            Value::text("CET"),
            Value::text("cet"),
            Value::text("GMT"),
            Value::Null,
        ];
        ColumnStats::compute(vals.iter())
    }

    #[test]
    fn counts_case_insensitive() {
        let s = stats();
        assert_eq!(s.total(), 5);
        assert_eq!(s.null_count(), 1);
        assert_eq!(s.distinct(), 2);
        assert_eq!(s.count(&Value::text("CET")), 3);
    }

    #[test]
    fn frequency_excludes_nulls() {
        let s = stats();
        assert!((s.frequency(&Value::text("gmt")) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mode_majority() {
        let s = stats();
        assert_eq!(s.mode(), Some("cet"));
    }

    #[test]
    fn sorted_counts_order() {
        let s = stats();
        let sc = s.sorted_counts();
        assert_eq!(sc[0], ("cet", 3));
        assert_eq!(sc[1], ("gmt", 1));
    }

    #[test]
    fn merge_equals_whole_column_compute() {
        let a = [Value::text("CET"), Value::text("GMT"), Value::Null];
        let b = [Value::text("cet"), Value::Int(3)];
        let mut merged = ColumnStats::compute(a.iter());
        merged.merge(&ColumnStats::compute(b.iter()));
        let whole = ColumnStats::compute(a.iter().chain(b.iter()));
        assert_eq!(merged.total(), whole.total());
        assert_eq!(merged.null_count(), whole.null_count());
        assert_eq!(merged.sorted_counts(), whole.sorted_counts());
    }

    #[test]
    fn accumulate_matches_compute() {
        let vals = [Value::text("x"), Value::Null, Value::text("X")];
        let mut acc = ColumnStats::default();
        for v in &vals {
            acc.accumulate(v);
        }
        let whole = ColumnStats::compute(vals.iter());
        assert_eq!(acc.sorted_counts(), whole.sorted_counts());
        assert_eq!(acc.total(), whole.total());
        assert_eq!(acc.null_count(), whole.null_count());
    }

    #[test]
    fn empty_column() {
        let s = ColumnStats::compute(std::iter::empty());
        assert_eq!(s.total(), 0);
        assert_eq!(s.mode(), None);
        assert_eq!(s.frequency(&Value::text("x")), 0.0);
    }
}
