//! Error type for table-store operations.

use std::error::Error;
use std::fmt;

/// Errors produced by table-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A referenced attribute does not exist in the schema.
    UnknownAttribute(String),
    /// A referenced row index is out of bounds.
    RowOutOfBounds {
        /// The offending index.
        index: usize,
        /// The number of rows in the table.
        len: usize,
    },
    /// A row had the wrong number of values for the schema.
    ArityMismatch {
        /// Number of values supplied.
        got: usize,
        /// Number of attributes in the schema.
        expected: usize,
    },
    /// A table name was not found in the data lake.
    UnknownTable(String),
    /// A schema declared the same attribute name twice.
    DuplicateAttribute(String),
    /// CSV input could not be parsed.
    Csv(String),
    /// A spill segment could not be written, read, or decoded (I/O errors
    /// are carried as text so the error stays `Clone + PartialEq`).
    Segment(String),
    /// A mutation was attempted on a table whose chunks live in a spill
    /// segment; spilled tables are read-only.
    SpilledReadOnly,
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            TableError::RowOutOfBounds { index, len } => {
                write!(
                    f,
                    "row index {index} out of bounds for table with {len} rows"
                )
            }
            TableError::ArityMismatch { got, expected } => {
                write!(
                    f,
                    "row has {got} values but schema has {expected} attributes"
                )
            }
            TableError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            TableError::DuplicateAttribute(a) => {
                write!(f, "attribute `{a}` declared more than once")
            }
            TableError::Csv(msg) => write!(f, "csv parse error: {msg}"),
            TableError::Segment(msg) => write!(f, "segment error: {msg}"),
            TableError::SpilledReadOnly => {
                write!(f, "table is spilled to disk and read-only")
            }
        }
    }
}

impl Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            TableError::UnknownAttribute("tz".into()).to_string(),
            "unknown attribute `tz`"
        );
        assert_eq!(
            TableError::ArityMismatch {
                got: 2,
                expected: 3
            }
            .to_string(),
            "row has 2 values but schema has 3 attributes"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<TableError>();
    }
}
