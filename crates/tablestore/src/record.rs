//! Records: single tuples aligned with a schema.

use crate::{Schema, TableError, Value};

/// One tuple of a table, stored by position.
///
/// A `Record` does not own its schema; pair it with the table's [`Schema`]
/// for name-based access. This keeps rows compact while letting detached
/// records (samples, retrieved context) flow through the pipeline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    /// Creates a record from values.
    pub fn new(values: Vec<Value>) -> Self {
        Record { values }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The values by position.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access to the values by position.
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }

    /// Consumes the record, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Value at `idx`, if in range.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Value of attribute `name` under `schema`.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::UnknownAttribute`] when the schema lacks `name`,
    /// and [`TableError::ArityMismatch`] when the record is shorter than the
    /// schema position.
    pub fn field<'a>(&'a self, schema: &Schema, name: &str) -> Result<&'a Value, TableError> {
        let idx = schema.require(name)?;
        self.values.get(idx).ok_or(TableError::ArityMismatch {
            got: self.values.len(),
            expected: schema.len(),
        })
    }

    /// Sets the value of attribute `name` under `schema`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Record::field`].
    pub fn set_field(
        &mut self,
        schema: &Schema,
        name: &str,
        value: Value,
    ) -> Result<(), TableError> {
        let idx = schema.require(name)?;
        if idx >= self.values.len() {
            return Err(TableError::ArityMismatch {
                got: self.values.len(),
                expected: schema.len(),
            });
        }
        self.values[idx] = value;
        Ok(())
    }

    /// Projects the record onto a subset of attributes, in the given order.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::UnknownAttribute`] for unknown names.
    pub fn project(&self, schema: &Schema, attrs: &[&str]) -> Result<Record, TableError> {
        let mut vals = Vec::with_capacity(attrs.len());
        for a in attrs {
            vals.push(self.field(schema, a)?.clone());
        }
        Ok(Record::new(vals))
    }

    /// Concatenation of all non-null fields as text, used for embeddings.
    pub fn text_blob(&self) -> String {
        let mut out = String::new();
        for v in &self.values {
            if !v.is_null() {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&v.as_text());
            }
        }
        out
    }
}

impl FromIterator<Value> for Record {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Record::new(iter.into_iter().collect())
    }
}

impl From<Vec<Value>> for Record {
    fn from(values: Vec<Value>) -> Self {
        Record::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_names(["city", "country", "timezone"]).unwrap()
    }

    fn rec() -> Record {
        Record::new(vec![
            Value::text("Florence"),
            Value::text("Italy"),
            Value::text("Central European Time"),
        ])
    }

    #[test]
    fn field_access() {
        let s = schema();
        let r = rec();
        assert_eq!(r.field(&s, "country").unwrap(), &Value::text("Italy"));
        assert!(r.field(&s, "population").is_err());
    }

    #[test]
    fn set_field_updates() {
        let s = schema();
        let mut r = rec();
        r.set_field(&s, "timezone", Value::Null).unwrap();
        assert!(r.field(&s, "timezone").unwrap().is_null());
    }

    #[test]
    fn project_subset_order() {
        let s = schema();
        let p = rec().project(&s, &["timezone", "city"]).unwrap();
        assert_eq!(p.values()[0], Value::text("Central European Time"));
        assert_eq!(p.values()[1], Value::text("Florence"));
    }

    #[test]
    fn project_unknown_attr() {
        let s = schema();
        assert!(rec().project(&s, &["nope"]).is_err());
    }

    #[test]
    fn short_record_arity_error() {
        let s = schema();
        let r = Record::new(vec![Value::text("x")]);
        assert!(matches!(
            r.field(&s, "timezone"),
            Err(TableError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn text_blob_skips_nulls() {
        let r = Record::new(vec![Value::text("a"), Value::Null, Value::Int(3)]);
        assert_eq!(r.text_blob(), "a 3");
    }

    #[test]
    fn from_iterator() {
        let r: Record = vec![Value::Int(1), Value::Int(2)].into_iter().collect();
        assert_eq!(r.len(), 2);
    }
}
