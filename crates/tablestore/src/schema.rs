//! Schemas: ordered attribute lists.

use crate::TableError;

/// The declared type of a column.
///
/// Data-lake columns are rarely strictly typed; the declared type is a hint
/// used by statistics and generators, not an enforced constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataType {
    /// Free text (the default for messy lake data).
    #[default]
    Text,
    /// Integer.
    Int,
    /// Floating point.
    Float,
    /// Boolean.
    Bool,
}

/// One attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Column {
    name: String,
    dtype: DataType,
}

impl Column {
    /// Creates a text column.
    pub fn new(name: impl Into<String>) -> Self {
        Column {
            name: name.into(),
            dtype: DataType::Text,
        }
    }

    /// Creates a column with an explicit type.
    pub fn typed(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
        }
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }
}

/// An ordered, duplicate-free list of attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema from columns.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::DuplicateAttribute`] if two columns share a name.
    pub fn new(columns: Vec<Column>) -> Result<Self, TableError> {
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name().to_string()) {
                return Err(TableError::DuplicateAttribute(c.name().to_string()));
            }
        }
        Ok(Schema { columns })
    }

    /// Builds a schema of text columns from names.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::DuplicateAttribute`] on duplicate names.
    pub fn from_names<I, S>(names: I) -> Result<Self, TableError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Schema::new(names.into_iter().map(|n| Column::new(n.into())).collect())
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Attribute names in declaration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|c| c.name())
    }

    /// Index of the attribute called `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name() == name)
    }

    /// True if the schema contains an attribute called `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Index of `name`, or an [`TableError::UnknownAttribute`] error.
    ///
    /// # Errors
    ///
    /// Returns an error when the attribute is absent.
    pub fn require(&self, name: &str) -> Result<usize, TableError> {
        self.index_of(name)
            .ok_or_else(|| TableError::UnknownAttribute(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_names_and_lookup() {
        let s = Schema::from_names(["city", "country", "timezone"]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("country"), Some(1));
        assert!(s.contains("timezone"));
        assert!(!s.contains("population"));
    }

    #[test]
    fn duplicate_rejected() {
        let err = Schema::from_names(["a", "b", "a"]).unwrap_err();
        assert_eq!(err, TableError::DuplicateAttribute("a".into()));
    }

    #[test]
    fn require_errors() {
        let s = Schema::from_names(["x"]).unwrap();
        assert_eq!(s.require("x").unwrap(), 0);
        assert!(matches!(
            s.require("y"),
            Err(TableError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn typed_columns() {
        let s = Schema::new(vec![
            Column::typed("age", DataType::Int),
            Column::new("name"),
        ])
        .unwrap();
        assert_eq!(s.columns()[0].dtype(), DataType::Int);
        assert_eq!(s.columns()[1].dtype(), DataType::Text);
    }

    #[test]
    fn empty_schema() {
        let s = Schema::default();
        assert!(s.is_empty());
        assert_eq!(s.names().count(), 0);
    }
}
