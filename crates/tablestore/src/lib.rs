//! In-memory relational table store: the data-lake substrate of the UniDM
//! reproduction.
//!
//! The paper assumes a data lake `D = {D1, ..., Dl}` of relational tables
//! with heterogeneous schemas and *no* declared join relations. This crate
//! implements that substrate:
//!
//! * [`Value`] — a dynamically typed cell value (null, text, int, float, bool).
//! * [`Schema`] / [`Column`] — ordered attribute lists.
//! * [`Record`] — one tuple, aligned with a schema.
//! * [`Table`] — named schema + rows, with builders, projection, sampling
//!   and per-column statistics.
//! * [`DataLake`] — a named collection of tables.
//! * [`csv`] — a dependency-free CSV round-trip for fixtures and debugging.
//!
//! # Examples
//!
//! ```
//! use unidm_tablestore::{Table, Value};
//!
//! let mut t = Table::builder("cities")
//!     .column("city")
//!     .column("country")
//!     .build();
//! t.push_row(vec![Value::text("Florence"), Value::text("Italy")]).unwrap();
//! assert_eq!(t.row_count(), 1);
//! assert_eq!(t.cell(0, "country").unwrap().to_string(), "Italy");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
mod error;
mod lake;
mod record;
mod schema;
mod stats;
mod table;
mod value;

pub use error::TableError;
pub use lake::DataLake;
pub use record::Record;
pub use schema::{Column, DataType, Schema};
pub use stats::ColumnStats;
pub use table::{Table, TableBuilder};
pub use value::Value;
