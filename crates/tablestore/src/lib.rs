//! In-memory relational table store: the data-lake substrate of the UniDM
//! reproduction.
//!
//! The paper assumes a data lake `D = {D1, ..., Dl}` of relational tables
//! with heterogeneous schemas and *no* declared join relations. This crate
//! implements that substrate:
//!
//! * [`Value`] — a dynamically typed cell value (null, text, int, float, bool).
//! * [`Schema`] / [`Column`] — ordered attribute lists.
//! * [`Record`] — one tuple, aligned with a schema.
//! * [`Table`] — named schema + rows over chunked columnar storage
//!   ([`Chunk`] / [`ColumnChunk`]): dictionary-encoded text, packed ints,
//!   per-chunk statistics computed at ingest, `Arc`-shared immutable
//!   chunks, with builders, projection, sampling and per-column statistics.
//! * [`SegmentWriter`] / [`Pager`] — a spill-to-disk segment format and a
//!   budget-bounded LRU pager so lakes larger than RAM page chunks in and
//!   out behind the same `Table` API ([`Table::spill_to`],
//!   [`Table::open_segment`]).
//! * [`DataLake`] — a named collection of tables.
//! * [`csv`] — a dependency-free CSV round-trip for fixtures and debugging,
//!   including streaming chunk-by-chunk ingest ([`csv::from_csv_path`],
//!   [`csv::csv_to_segment`]).
//!
//! # Examples
//!
//! ```
//! use unidm_tablestore::{Table, Value};
//!
//! let mut t = Table::builder("cities")
//!     .column("city")
//!     .column("country")
//!     .build();
//! t.push_row(vec![Value::text("Florence"), Value::text("Italy")]).unwrap();
//! assert_eq!(t.row_count(), 1);
//! assert_eq!(t.cell(0, "country").unwrap().to_string(), "Italy");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chunk;
pub mod csv;
mod error;
mod lake;
mod record;
mod schema;
mod segment;
mod stats;
mod table;
mod value;

pub use chunk::{Chunk, ColumnChunk, NULL_CODE};
pub use error::TableError;
pub use lake::DataLake;
pub use record::Record;
pub use schema::{Column, DataType, Schema};
pub use segment::{Pager, SegmentReader, SegmentWriter, DEFAULT_PAGE_BUDGET};
pub use stats::ColumnStats;
pub use table::{ColumnIter, RowIter, Table, TableBuilder, DEFAULT_CHUNK_ROWS};
pub use value::Value;
