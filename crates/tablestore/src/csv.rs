//! Dependency-free CSV serialisation for tables.
//!
//! Supports quoting with `"` and embedded commas/newlines — enough for
//! fixtures, debugging dumps and round-trip tests. Not a general CSV parser.
//!
//! Parsing is incremental: the state machine consumes input line-by-line
//! (quote state carries across reads), so [`from_csv_path`] ingests a file
//! chunk-by-chunk without ever holding the whole text or row set in memory,
//! and [`csv_to_segment`] streams rows straight into a spill segment —
//! peak memory is one chunk regardless of file size.

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use crate::{Schema, SegmentWriter, Table, TableError, Value, DEFAULT_CHUNK_ROWS};

/// Serialises a table to CSV with a header row (decoding chunk-by-chunk).
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table.schema().names().map(escape).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in table.iter_rows() {
        let cells: Vec<String> = row.values().iter().map(|v| escape(&v.as_text())).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Parses CSV text (with a header row) into a table named `name`.
///
/// Values are parsed with [`Value::parse`], so numerics become typed values
/// and empty cells become nulls.
///
/// # Errors
///
/// Returns [`TableError::Csv`] for malformed input (unterminated quotes or
/// ragged rows) and [`TableError::DuplicateAttribute`] for repeated headers.
pub fn from_csv(name: &str, text: &str) -> Result<Table, TableError> {
    let mut ingest = TableIngest::new(name, DEFAULT_CHUNK_ROWS);
    let mut parser = CsvParser::default();
    parser.feed(text, &mut |cells| ingest.accept(cells))?;
    parser.finish(&mut |cells| ingest.accept(cells))?;
    ingest.finish()
}

/// Streams a CSV file (with a header row) into an in-memory table, reading
/// and sealing chunk-by-chunk — the file text is never held whole.
///
/// # Errors
///
/// Returns [`TableError::Csv`] for I/O failures or malformed input and
/// [`TableError::DuplicateAttribute`] for repeated headers.
pub fn from_csv_path(name: &str, path: impl AsRef<Path>) -> Result<Table, TableError> {
    let file = File::open(path).map_err(|e| TableError::Csv(format!("open csv: {e}")))?;
    from_csv_reader(name, BufReader::new(file))
}

/// Streams CSV from any buffered reader into an in-memory table.
///
/// # Errors
///
/// Same conditions as [`from_csv_path`].
pub fn from_csv_reader(name: &str, reader: impl BufRead) -> Result<Table, TableError> {
    let mut ingest = TableIngest::new(name, DEFAULT_CHUNK_ROWS);
    run_parser(reader, &mut |cells| ingest.accept(cells))?;
    ingest.finish()
}

/// Streams a CSV file directly into a spill segment at `segment_path` and
/// returns the spilled, read-only table paging at most `budget` chunks.
/// Rows never accumulate in memory: each parsed row goes straight to the
/// [`SegmentWriter`], which seals and writes a chunk every `chunk_rows`
/// rows — this is the out-of-core ingest path for files larger than RAM.
///
/// # Errors
///
/// Returns [`TableError::Csv`] for I/O failures or malformed input,
/// [`TableError::DuplicateAttribute`] for repeated headers, and
/// [`TableError::Segment`] if the segment cannot be written.
pub fn csv_to_segment(
    name: &str,
    csv_path: impl AsRef<Path>,
    segment_path: impl AsRef<Path>,
    chunk_rows: usize,
    budget: usize,
) -> Result<Table, TableError> {
    let file = File::open(csv_path).map_err(|e| TableError::Csv(format!("open csv: {e}")))?;
    let mut ingest = SegmentIngest {
        name: name.to_string(),
        segment_path: segment_path.as_ref().to_path_buf(),
        chunk_rows,
        writer: None,
        data_rows: 0,
    };
    run_parser(BufReader::new(file), &mut |cells| ingest.accept(cells))?;
    match ingest.writer {
        Some(writer) => writer.finish(budget),
        None => Err(TableError::Csv("missing header row".into())),
    }
}

fn escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Drives the incremental parser over a buffered reader, line by line.
/// Quoted cells spanning lines are handled by the carried parser state.
fn run_parser(
    mut reader: impl BufRead,
    sink: &mut impl FnMut(Vec<String>) -> Result<(), TableError>,
) -> Result<(), TableError> {
    let mut parser = CsvParser::default();
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| TableError::Csv(format!("read csv: {e}")))?;
        if n == 0 {
            break;
        }
        parser.feed(&line, sink)?;
    }
    parser.finish(sink)
}

/// Incremental CSV state machine. `feed` may be called any number of times
/// with arbitrary input splits (including mid-cell and mid-quote);
/// `finish` flushes the final row and validates quote termination.
#[derive(Debug, Default)]
struct CsvParser {
    row: Vec<String>,
    cell: String,
    in_quotes: bool,
    /// Saw a `"` while quoted; the next character decides whether it was an
    /// escaped quote (`""`) or the closing quote. Carrying this across
    /// `feed` calls is what makes arbitrary input splits safe.
    pending_quote: bool,
    any: bool,
}

impl CsvParser {
    fn feed(
        &mut self,
        text: &str,
        sink: &mut impl FnMut(Vec<String>) -> Result<(), TableError>,
    ) -> Result<(), TableError> {
        for c in text.chars() {
            self.any = true;
            if self.pending_quote {
                self.pending_quote = false;
                if c == '"' {
                    self.cell.push('"');
                    continue;
                }
                self.in_quotes = false;
            }
            if self.in_quotes {
                if c == '"' {
                    self.pending_quote = true;
                } else {
                    self.cell.push(c);
                }
            } else {
                match c {
                    '"' => self.in_quotes = true,
                    ',' => self.row.push(std::mem::take(&mut self.cell)),
                    '\n' => {
                        self.row.push(std::mem::take(&mut self.cell));
                        sink(std::mem::take(&mut self.row))?;
                    }
                    '\r' => {}
                    _ => self.cell.push(c),
                }
            }
        }
        Ok(())
    }

    fn finish(
        mut self,
        sink: &mut impl FnMut(Vec<String>) -> Result<(), TableError>,
    ) -> Result<(), TableError> {
        if self.pending_quote {
            self.in_quotes = false;
        }
        if self.in_quotes {
            return Err(TableError::Csv("unterminated quote".into()));
        }
        if self.any && (!self.cell.is_empty() || !self.row.is_empty()) {
            self.row.push(self.cell);
            sink(self.row)?;
        }
        Ok(())
    }
}

/// Row sink building an in-memory table: header row becomes the schema,
/// data rows are arity-checked and pushed (sealing chunks as they fill).
struct TableIngest {
    name: String,
    chunk_rows: usize,
    table: Option<Table>,
    data_rows: usize,
}

impl TableIngest {
    fn new(name: &str, chunk_rows: usize) -> Self {
        TableIngest {
            name: name.to_string(),
            chunk_rows,
            table: None,
            data_rows: 0,
        }
    }

    fn accept(&mut self, cells: Vec<String>) -> Result<(), TableError> {
        match &mut self.table {
            None => {
                let schema = Schema::from_names(cells)?;
                self.table = Some(Table::with_chunk_rows(&self.name, schema, self.chunk_rows));
                Ok(())
            }
            Some(table) => {
                self.data_rows += 1;
                check_arity(self.data_rows, cells.len(), table.schema().len())?;
                table
                    .push_row(cells.iter().map(|c| Value::parse(c)).collect())
                    .expect("arity checked above");
                Ok(())
            }
        }
    }

    fn finish(self) -> Result<Table, TableError> {
        self.table
            .ok_or_else(|| TableError::Csv("missing header row".into()))
    }
}

/// Row sink streaming straight into a [`SegmentWriter`].
struct SegmentIngest {
    name: String,
    segment_path: std::path::PathBuf,
    chunk_rows: usize,
    writer: Option<SegmentWriter>,
    data_rows: usize,
}

impl SegmentIngest {
    fn accept(&mut self, cells: Vec<String>) -> Result<(), TableError> {
        match &mut self.writer {
            None => {
                let schema = Schema::from_names(cells)?;
                self.writer = Some(SegmentWriter::create(
                    &self.segment_path,
                    &self.name,
                    schema,
                    self.chunk_rows,
                )?);
                Ok(())
            }
            Some(writer) => {
                self.data_rows += 1;
                check_arity(self.data_rows, cells.len(), writer_width(writer))?;
                writer.push_row(cells.iter().map(|c| Value::parse(c)).collect())
            }
        }
    }
}

fn writer_width(writer: &SegmentWriter) -> usize {
    writer.schema().len()
}

fn check_arity(row: usize, got: usize, expected: usize) -> Result<(), TableError> {
    if got != expected {
        return Err(TableError::Csv(format!(
            "row {row} has {got} cells, expected {expected}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let mut t = Table::builder("t").columns(["a", "b"]).build();
        t.push_row(vec![Value::text("x"), Value::Int(1)]).unwrap();
        t.push_row(vec![Value::Null, Value::Float(2.5)]).unwrap();
        let csv = to_csv(&t);
        let back = from_csv("t", &csv).unwrap();
        assert_eq!(back.row_count(), 2);
        assert_eq!(back.cell(0, "b").unwrap(), &Value::Int(1));
        assert!(back.cell(1, "a").unwrap().is_null());
    }

    #[test]
    fn quoting_commas_and_quotes() {
        let mut t = Table::builder("t").columns(["q"]).build();
        t.push_row(vec![Value::text("a,b \"c\"")]).unwrap();
        let csv = to_csv(&t);
        let back = from_csv("t", &csv).unwrap();
        assert_eq!(back.cell(0, "q").unwrap(), &Value::text("a,b \"c\""));
    }

    #[test]
    fn embedded_newline() {
        let csv = "h\n\"line1\nline2\"\n";
        let t = from_csv("t", csv).unwrap();
        assert_eq!(t.cell(0, "h").unwrap(), &Value::text("line1\nline2"));
    }

    #[test]
    fn ragged_row_rejected() {
        let err = from_csv("t", "a,b\n1\n").unwrap_err();
        assert!(matches!(err, TableError::Csv(_)));
    }

    #[test]
    fn missing_header_rejected() {
        assert!(matches!(from_csv("t", ""), Err(TableError::Csv(_))));
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(matches!(
            from_csv("t", "a\n\"oops\n"),
            Err(TableError::Csv(_))
        ));
    }

    #[test]
    fn crlf_handled() {
        let t = from_csv("t", "a,b\r\n1,2\r\n").unwrap();
        assert_eq!(t.cell(0, "a").unwrap(), &Value::Int(1));
    }

    #[test]
    fn parser_state_survives_arbitrary_splits() {
        // Split the input at every possible byte boundary; the incremental
        // parser must produce identical rows regardless of the split.
        let text = "a,b\n\"x,\"\"y\"\"\nz\",2\r\nc,\"d\"\n";
        let whole = from_csv("t", text).unwrap();
        for split in 1..text.len() {
            if !text.is_char_boundary(split) {
                continue;
            }
            let mut ingest = TableIngest::new("t", DEFAULT_CHUNK_ROWS);
            let mut parser = CsvParser::default();
            parser
                .feed(&text[..split], &mut |c| ingest.accept(c))
                .unwrap();
            parser
                .feed(&text[split..], &mut |c| ingest.accept(c))
                .unwrap();
            parser.finish(&mut |c| ingest.accept(c)).unwrap();
            assert_eq!(ingest.finish().unwrap(), whole, "split at byte {split}");
        }
    }

    #[test]
    fn file_streaming_matches_in_memory() {
        let text = "a,b\n1,2\n\"multi\nline\",y\n3,4";
        let mut path = std::env::temp_dir();
        path.push(format!("unidm-csv-stream-{}.csv", std::process::id()));
        std::fs::write(&path, text).unwrap();
        let streamed = from_csv_path("t", &path).unwrap();
        let whole = from_csv("t", text).unwrap();
        assert_eq!(streamed, whole);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_streams_to_segment() {
        let mut csv_path = std::env::temp_dir();
        csv_path.push(format!("unidm-csv-seg-{}.csv", std::process::id()));
        let mut seg_path = std::env::temp_dir();
        seg_path.push(format!("unidm-csv-seg-{}.seg", std::process::id()));
        let mut text = String::from("id,name\n");
        for i in 0..25 {
            text.push_str(&format!("{i},user-{i}\n"));
        }
        std::fs::write(&csv_path, &text).unwrap();
        let spilled = csv_to_segment("users", &csv_path, &seg_path, 8, 2).unwrap();
        assert!(spilled.is_spilled());
        assert_eq!(spilled.row_count(), 25);
        assert_eq!(
            spilled.cell_value(24, "name").unwrap(),
            Value::text("user-24")
        );
        let whole = from_csv("users", &text).unwrap();
        assert_eq!(spilled, whole);
        std::fs::remove_file(&csv_path).ok();
        std::fs::remove_file(&seg_path).ok();
    }
}
