//! Dependency-free CSV serialisation for tables.
//!
//! Supports quoting with `"` and embedded commas/newlines — enough for
//! fixtures, debugging dumps and round-trip tests. Not a general CSV parser.

use crate::{Schema, Table, TableError, Value};

/// Serialises a table to CSV with a header row.
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table.schema().names().map(escape).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in table.rows() {
        let cells: Vec<String> = row.values().iter().map(|v| escape(&v.as_text())).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Parses CSV text (with a header row) into a table named `name`.
///
/// Values are parsed with [`Value::parse`], so numerics become typed values
/// and empty cells become nulls.
///
/// # Errors
///
/// Returns [`TableError::Csv`] for malformed input (unterminated quotes or
/// ragged rows) and [`TableError::DuplicateAttribute`] for repeated headers.
pub fn from_csv(name: &str, text: &str) -> Result<Table, TableError> {
    let rows = parse_rows(text)?;
    let mut iter = rows.into_iter();
    let header = iter
        .next()
        .ok_or_else(|| TableError::Csv("missing header row".into()))?;
    let schema = Schema::from_names(header)?;
    let mut table = Table::new(name, schema);
    for (i, row) in iter.enumerate() {
        if row.len() != table.schema().len() {
            return Err(TableError::Csv(format!(
                "row {} has {} cells, expected {}",
                i + 1,
                row.len(),
                table.schema().len()
            )));
        }
        table
            .push_row(row.iter().map(|c| Value::parse(c)).collect())
            .expect("arity checked above");
    }
    Ok(table)
}

fn escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn parse_rows(text: &str) -> Result<Vec<Vec<String>>, TableError> {
    let mut rows = Vec::new();
    let mut row = Vec::new();
    let mut cell = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cell.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => row.push(std::mem::take(&mut cell)),
                '\n' => {
                    row.push(std::mem::take(&mut cell));
                    rows.push(std::mem::take(&mut row));
                }
                '\r' => {}
                _ => cell.push(c),
            }
        }
    }
    if in_quotes {
        return Err(TableError::Csv("unterminated quote".into()));
    }
    if any && (!cell.is_empty() || !row.is_empty()) {
        row.push(cell);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let mut t = Table::builder("t").columns(["a", "b"]).build();
        t.push_row(vec![Value::text("x"), Value::Int(1)]).unwrap();
        t.push_row(vec![Value::Null, Value::Float(2.5)]).unwrap();
        let csv = to_csv(&t);
        let back = from_csv("t", &csv).unwrap();
        assert_eq!(back.row_count(), 2);
        assert_eq!(back.cell(0, "b").unwrap(), &Value::Int(1));
        assert!(back.cell(1, "a").unwrap().is_null());
    }

    #[test]
    fn quoting_commas_and_quotes() {
        let mut t = Table::builder("t").columns(["q"]).build();
        t.push_row(vec![Value::text("a,b \"c\"")]).unwrap();
        let csv = to_csv(&t);
        let back = from_csv("t", &csv).unwrap();
        assert_eq!(back.cell(0, "q").unwrap(), &Value::text("a,b \"c\""));
    }

    #[test]
    fn embedded_newline() {
        let csv = "h\n\"line1\nline2\"\n";
        let t = from_csv("t", csv).unwrap();
        assert_eq!(t.cell(0, "h").unwrap(), &Value::text("line1\nline2"));
    }

    #[test]
    fn ragged_row_rejected() {
        let err = from_csv("t", "a,b\n1\n").unwrap_err();
        assert!(matches!(err, TableError::Csv(_)));
    }

    #[test]
    fn missing_header_rejected() {
        assert!(matches!(from_csv("t", ""), Err(TableError::Csv(_))));
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(matches!(
            from_csv("t", "a\n\"oops\n"),
            Err(TableError::Csv(_))
        ));
    }

    #[test]
    fn crlf_handled() {
        let t = from_csv("t", "a,b\r\n1,2\r\n").unwrap();
        assert_eq!(t.cell(0, "a").unwrap(), &Value::Int(1));
    }
}
