//! Facts: subject–predicate–object triples with natural-language templates.

use std::fmt;

/// The relation a [`Fact`] asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Predicate {
    /// City → its country.
    CityCountry,
    /// City → its timezone.
    CityTimezone,
    /// Country → its timezone.
    CountryTimezone,
    /// City → its postal-code prefix.
    CityPostal,
    /// Street → the city it is in.
    StreetCity,
    /// Phone area code → the city it serves.
    AreaCodeCity,
    /// Restaurant → the city it is in.
    RestaurantCity,
    /// Restaurant → its cuisine type.
    RestaurantCuisine,
    /// Product → its manufacturer.
    ProductManufacturer,
    /// Product → its category.
    ProductCategory,
    /// Brand token → the manufacturer it identifies.
    BrandManufacturer,
    /// Song → its artist.
    SongArtist,
    /// Artist → their genre.
    ArtistGenre,
    /// Beer → its brewery.
    BeerBrewery,
    /// Beer → its style.
    BeerStyle,
    /// Hospital → its county.
    HospitalCounty,
    /// Hospital → its city.
    HospitalCity,
    /// Known-valid token of a domain (object = domain name).
    ValidToken,
    /// Country → its ISO3 abbreviation.
    CountryIso,
    /// Country → its continent.
    CountryContinent,
    /// NBA player → their college.
    PlayerCollege,
    /// NBA player → their height.
    PlayerHeight,
    /// NBA player → their position.
    PlayerPosition,
    /// Education level → typical years of schooling (census).
    EducationYears,
}

impl Predicate {
    /// Renders a fact of this predicate as fluent natural language.
    ///
    /// These templates are the "scientific articles" of the synthetic world:
    /// the phrasing the simulated LLM saw during pretraining, and the target
    /// phrasing of UniDM's context-parsing step.
    pub fn render(&self, subject: &str, object: &str) -> String {
        match self {
            Predicate::CityCountry => format!("{subject} is a city of {object}"),
            Predicate::CityTimezone => {
                format!("{subject} is in the {object} timezone")
            }
            Predicate::CountryTimezone => {
                format!("the country {subject} is in the {object} timezone")
            }
            Predicate::CityPostal => {
                format!("postal codes in {subject} start with {object}")
            }
            Predicate::StreetCity => format!("{subject} is a street in {object}"),
            Predicate::AreaCodeCity => {
                format!("the {subject} area code serves {object}")
            }
            Predicate::RestaurantCity => {
                format!("{subject} is located in the city of {object}")
            }
            Predicate::RestaurantCuisine => {
                format!("{subject} serves {object} food")
            }
            Predicate::ProductManufacturer => {
                format!("{subject} is manufactured by {object}")
            }
            Predicate::ProductCategory => {
                format!("{subject} belongs to the {object} category")
            }
            Predicate::BrandManufacturer => {
                format!("{subject} is a brand of {object}")
            }
            Predicate::SongArtist => format!("{subject} is a song by {object}"),
            Predicate::ArtistGenre => format!("{subject} plays {object} music"),
            Predicate::BeerBrewery => format!("{subject} is brewed by {object}"),
            Predicate::BeerStyle => format!("{subject} is a {object}"),
            Predicate::HospitalCounty => {
                format!("{subject} is in {object} county")
            }
            Predicate::HospitalCity => {
                format!("{subject} is located in {object}")
            }
            Predicate::ValidToken => format!("{subject} is a valid {object}"),
            Predicate::CountryIso => {
                format!("{subject} is abbreviated as {object}")
            }
            Predicate::CountryContinent => {
                format!("{subject} is located in {object}")
            }
            Predicate::PlayerCollege => {
                format!("{subject} played college basketball at {object}")
            }
            Predicate::PlayerHeight => format!("{subject} is {object} tall"),
            Predicate::PlayerPosition => {
                format!("{subject} plays the {object} position")
            }
            Predicate::EducationYears => {
                format!("{subject} corresponds to {object} years of education")
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One subject–predicate–object triple of world knowledge.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    /// Subject entity, canonically cased.
    pub subject: String,
    /// The asserted relation.
    pub predicate: Predicate,
    /// Object entity.
    pub object: String,
}

impl Fact {
    /// Creates a fact.
    pub fn new(
        subject: impl Into<String>,
        predicate: Predicate,
        object: impl Into<String>,
    ) -> Self {
        Fact {
            subject: subject.into(),
            predicate,
            object: object.into(),
        }
    }

    /// Natural-language rendering of the fact.
    pub fn render(&self) -> String {
        self.predicate.render(&self.subject, &self.object)
    }

    /// Canonical lookup key: lowercase subject.
    pub fn subject_key(&self) -> String {
        self.subject.to_lowercase()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_templates() {
        let f = Fact::new("Florence", Predicate::CityCountry, "Italy");
        assert_eq!(f.render(), "Florence is a city of Italy");
        let f = Fact::new("Germany", Predicate::CountryIso, "GER");
        assert_eq!(f.render(), "Germany is abbreviated as GER");
    }

    #[test]
    fn subject_key_lowercases() {
        let f = Fact::new("Beverly Dr", Predicate::StreetCity, "Beverly Hills");
        assert_eq!(f.subject_key(), "beverly dr");
    }

    #[test]
    fn predicate_display_nonempty() {
        assert_eq!(Predicate::CityCountry.to_string(), "CityCountry");
    }

    #[test]
    fn facts_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(Fact::new("a", Predicate::CityCountry, "b"));
        s.insert(Fact::new("a", Predicate::CityCountry, "b"));
        assert_eq!(s.len(), 1);
    }
}
