//! Music: artists and songs behind the iTunes-Amazon ER benchmark and the
//! paper's "Genre: Jazz; Artist: ?" prompt example.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::fact::{Fact, Predicate};
use crate::names;

/// Music genres.
pub const GENRES: &[&str] = &[
    "jazz",
    "rock",
    "folk",
    "pop",
    "classical",
    "hip hop",
    "electronic",
    "country",
    "blues",
    "reggae",
];

/// A recording artist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artist {
    /// Artist name.
    pub name: String,
    /// Genre, one of [`GENRES`].
    pub genre: String,
}

/// A song entity.
#[derive(Debug, Clone, PartialEq)]
pub struct Song {
    /// Track title.
    pub title: String,
    /// Index into [`MusicWorld::artists`].
    pub artist: usize,
    /// Album name.
    pub album: String,
    /// Track length in seconds.
    pub seconds: u32,
    /// Price in dollars.
    pub price: f64,
}

/// The music slice of the synthetic world.
#[derive(Debug, Clone, Default)]
pub struct MusicWorld {
    /// All artists.
    pub artists: Vec<Artist>,
    /// All songs.
    pub songs: Vec<Song>,
}

const TITLE_WORDS: &[&str] = &[
    "Midnight", "River", "Golden", "Broken", "Silent", "Electric", "Summer", "Winter", "Neon",
    "Velvet", "Distant", "Burning", "Paper", "Crystal", "Wild",
];
const TITLE_NOUNS: &[&str] = &[
    "Road", "Heart", "City", "Dream", "Fire", "Rain", "Sky", "Train", "Mirror", "Garden", "Ocean",
    "Shadow", "Letter", "Dance", "Echo",
];

impl MusicWorld {
    /// Generates `n_artists` artists with about `songs_per_artist` songs each.
    pub fn generate<R: Rng>(rng: &mut R, n_artists: usize, songs_per_artist: usize) -> Self {
        let mut artists = Vec::with_capacity(n_artists);
        let mut seen = std::collections::HashSet::new();
        while artists.len() < n_artists {
            let name = names::person(rng);
            if !seen.insert(name.to_lowercase()) {
                continue;
            }
            artists.push(Artist {
                name,
                genre: GENRES.choose(rng).expect("ne").to_string(),
            });
        }
        let mut songs = Vec::new();
        let mut seen_titles = std::collections::HashSet::new();
        for (ai, _artist) in artists.iter().enumerate() {
            let album = format!(
                "{} {}",
                TITLE_WORDS.choose(rng).expect("ne"),
                TITLE_NOUNS.choose(rng).expect("ne")
            );
            for _ in 0..songs_per_artist {
                let title = format!(
                    "{} {}",
                    TITLE_WORDS.choose(rng).expect("ne"),
                    TITLE_NOUNS.choose(rng).expect("ne")
                );
                let full = format!("{title} ({ai})");
                if !seen_titles.insert(full.to_lowercase()) {
                    continue;
                }
                songs.push(Song {
                    title,
                    artist: ai,
                    album: album.clone(),
                    seconds: rng.gen_range(110..420),
                    price: f64::from(rng.gen_range(69..199)) / 100.0,
                });
            }
        }
        MusicWorld { artists, songs }
    }

    /// The artist of `song`.
    pub fn artist_of(&self, song: &Song) -> &Artist {
        &self.artists[song.artist]
    }

    /// Facts: song→artist and artist→genre.
    pub fn facts(&self) -> Vec<Fact> {
        let mut out = Vec::new();
        for a in &self.artists {
            out.push(Fact::new(&a.name, Predicate::ArtistGenre, &a.genre));
        }
        for s in &self.songs {
            out.push(Fact::new(
                &s.title,
                Predicate::SongArtist,
                &self.artist_of(s).name,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> MusicWorld {
        let mut rng = StdRng::seed_from_u64(8);
        MusicWorld::generate(&mut rng, 30, 5)
    }

    #[test]
    fn sizes() {
        let w = world();
        assert_eq!(w.artists.len(), 30);
        assert!(w.songs.len() >= 30 * 4);
    }

    #[test]
    fn genres_valid() {
        let w = world();
        assert!(w.artists.iter().all(|a| GENRES.contains(&a.genre.as_str())));
    }

    #[test]
    fn songs_reference_artists() {
        let w = world();
        assert!(w.songs.iter().all(|s| s.artist < w.artists.len()));
    }

    #[test]
    fn facts_present() {
        let w = world();
        let f = w.facts();
        assert!(f.iter().any(|f| f.predicate == Predicate::ArtistGenre));
        assert!(f.iter().any(|f| f.predicate == Predicate::SongArtist));
    }
}
