//! Hospitals: the domain behind the Hospital error-detection benchmark.
//!
//! The real Hospital dataset (used by HoloClean and HoloDetect) lists US
//! providers with name, address, city, county, state, zip, phone and quality
//! measure codes. Errors are mostly typos ("mxrshxll" for "marshall"), which
//! is exactly what our error injector produces.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::fact::{Fact, Predicate};
use crate::names;

/// A hospital entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hospital {
    /// Provider name, e.g. "Marshall Medical Center".
    pub name: String,
    /// Street address.
    pub address: String,
    /// City name.
    pub city: String,
    /// County name.
    pub county: String,
    /// Two-letter state code.
    pub state: String,
    /// Zip code.
    pub zip: String,
    /// Phone number.
    pub phone: String,
    /// Quality measure code, e.g. "SCIP-CARD-2".
    pub measure_code: String,
    /// Human-readable measure name.
    pub measure_name: String,
}

/// The hospital slice of the synthetic world.
#[derive(Debug, Clone, Default)]
pub struct HospitalWorld {
    /// All hospital rows (one per provider × measure).
    pub hospitals: Vec<Hospital>,
}

const STATES: &[&str] = &["AL", "AK", "CA", "GA", "IL", "NY", "TX", "WA", "OH", "FL"];
const HOSPITAL_KINDS: &[&str] = &[
    "Medical Center",
    "Regional Hospital",
    "Community Hospital",
    "Memorial Hospital",
    "General Hospital",
];
const MEASURE_FAMILIES: &[(&str, &str)] = &[
    ("SCIP-CARD", "surgery patients on beta blocker therapy"),
    (
        "SCIP-INF",
        "surgery patients given prophylactic antibiotics",
    ),
    (
        "SCIP-VTE",
        "surgery patients with venous thromboembolism prophylaxis",
    ),
    ("AMI", "heart attack patients given aspirin at arrival"),
    ("HF", "heart failure patients given discharge instructions"),
    ("PN", "pneumonia patients given initial antibiotic timely"),
];

impl HospitalWorld {
    /// Generates `n` hospital rows spread over synthetic counties and cities.
    pub fn generate<R: Rng>(rng: &mut R, n: usize) -> Self {
        // A pool of counties/cities so values repeat (frequency statistics
        // matter for HoloClean-style detection). Each city belongs to one
        // county — the functional dependency real provider tables exhibit,
        // which makes corrupted counties repairable from same-city rows.
        let counties: Vec<String> = (0..12).map(|_| names::proper(rng)).collect();
        let cities: Vec<(String, String)> = (0..16)
            .map(|_| {
                let city = names::proper(rng);
                let county = counties.choose(rng).expect("ne").clone();
                (city, county)
            })
            .collect();
        let mut hospitals = Vec::with_capacity(n);
        for _ in 0..n {
            let (city, county) = cities.choose(rng).expect("ne").clone();
            let base = names::proper(rng);
            let kind = HOSPITAL_KINDS.choose(rng).expect("ne");
            let (fam, desc) = MEASURE_FAMILIES.choose(rng).expect("ne");
            let code = format!("{fam}-{}", rng.gen_range(1..5));
            let area = rng.gen_range(205..989);
            hospitals.push(Hospital {
                name: format!("{base} {kind}"),
                address: format!(
                    "{} u s highway {} north",
                    rng.gen_range(100..9999),
                    rng.gen_range(1..999)
                ),
                city: city.clone(),
                county,
                state: STATES.choose(rng).expect("ne").to_string(),
                zip: format!("{:05}", rng.gen_range(10000..99999)),
                phone: names::phone(rng, area),
                measure_code: code,
                measure_name: desc.to_string(),
            });
        }
        HospitalWorld { hospitals }
    }

    /// Facts: valid tokens per column domain plus hospital→city/county.
    ///
    /// The `ValidToken` facts are what lets the simulated LLM judge
    /// "sheffxeld" invalid: it never saw that token as a city.
    pub fn facts(&self) -> Vec<Fact> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for h in &self.hospitals {
            if seen.insert(("city", h.city.clone())) {
                out.push(Fact::new(&h.city, Predicate::ValidToken, "city"));
            }
            if seen.insert(("county", h.county.clone())) {
                out.push(Fact::new(&h.county, Predicate::ValidToken, "county"));
            }
            if seen.insert(("measure", h.measure_code.clone())) {
                out.push(Fact::new(
                    &h.measure_code,
                    Predicate::ValidToken,
                    "measure code",
                ));
            }
            out.push(Fact::new(&h.name, Predicate::HospitalCity, &h.city));
            out.push(Fact::new(&h.name, Predicate::HospitalCounty, &h.county));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> HospitalWorld {
        let mut rng = StdRng::seed_from_u64(17);
        HospitalWorld::generate(&mut rng, 100)
    }

    #[test]
    fn generates_requested() {
        assert_eq!(world().hospitals.len(), 100);
    }

    #[test]
    fn zips_five_digits() {
        assert!(world().hospitals.iter().all(|h| h.zip.len() == 5));
    }

    #[test]
    fn counties_repeat() {
        let w = world();
        let distinct: std::collections::HashSet<&str> =
            w.hospitals.iter().map(|h| h.county.as_str()).collect();
        assert!(distinct.len() < w.hospitals.len() / 2);
    }

    #[test]
    fn facts_mark_valid_tokens() {
        let w = world();
        let facts = w.facts();
        let city = &w.hospitals[0].city;
        assert!(facts
            .iter()
            .any(|f| f.predicate == Predicate::ValidToken && &f.subject == city));
    }

    #[test]
    fn measure_codes_formatted() {
        let w = world();
        assert!(w.hospitals.iter().all(|h| h.measure_code.contains('-')));
    }
}
