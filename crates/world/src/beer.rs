//! Beers and breweries behind the Beer ER benchmark.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::fact::{Fact, Predicate};
use crate::names;

/// Beer styles.
pub const STYLES: &[&str] = &[
    "American IPA",
    "Imperial Stout",
    "Pale Ale",
    "Pilsner",
    "Hefeweizen",
    "Porter",
    "Saison",
    "Amber Ale",
    "Brown Ale",
    "Lager",
];

/// A beer entity.
#[derive(Debug, Clone, PartialEq)]
pub struct Beer {
    /// Beer name.
    pub name: String,
    /// Brewery name.
    pub brewery: String,
    /// Style, one of [`STYLES`].
    pub style: String,
    /// Alcohol by volume, percent.
    pub abv: f64,
}

/// The beer slice of the synthetic world.
#[derive(Debug, Clone, Default)]
pub struct BeerWorld {
    /// All beers.
    pub beers: Vec<Beer>,
}

const BEER_WORDS: &[&str] = &[
    "Hoppy", "Golden", "Dark", "Old", "Double", "Wild", "Lazy", "Raging", "Crooked", "Foggy",
];
const BEER_NOUNS: &[&str] = &[
    "Trail",
    "Moon",
    "Creek",
    "Badger",
    "Anchor",
    "Harvest",
    "Summit",
    "Coyote",
    "Barrel",
    "Lighthouse",
];
const BREWERY_SUFFIX: &[&str] = &["Brewing Co.", "Brewery", "Ales", "Beer Works"];

impl BeerWorld {
    /// Generates `n_breweries` breweries with about `beers_per` beers each.
    pub fn generate<R: Rng>(rng: &mut R, n_breweries: usize, beers_per: usize) -> Self {
        let mut beers = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n_breweries {
            let brewery = format!(
                "{} {}",
                names::proper(rng),
                BREWERY_SUFFIX.choose(rng).expect("ne")
            );
            for _ in 0..beers_per {
                let name = format!(
                    "{} {}",
                    BEER_WORDS.choose(rng).expect("ne"),
                    BEER_NOUNS.choose(rng).expect("ne")
                );
                let key = format!("{brewery}|{name}");
                if !seen.insert(key.to_lowercase()) {
                    continue;
                }
                beers.push(Beer {
                    name,
                    brewery: brewery.clone(),
                    style: STYLES.choose(rng).expect("ne").to_string(),
                    abv: f64::from(rng.gen_range(38..120)) / 10.0,
                });
            }
        }
        BeerWorld { beers }
    }

    /// Facts: beer→brewery and beer→style.
    pub fn facts(&self) -> Vec<Fact> {
        let mut out = Vec::new();
        for b in &self.beers {
            out.push(Fact::new(&b.name, Predicate::BeerBrewery, &b.brewery));
            out.push(Fact::new(&b.name, Predicate::BeerStyle, &b.style));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_beers() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = BeerWorld::generate(&mut rng, 20, 4);
        assert!(w.beers.len() > 60);
        assert!(w.beers.iter().all(|b| b.abv >= 3.8 && b.abv <= 12.0));
        assert!(w.beers.iter().all(|b| STYLES.contains(&b.style.as_str())));
    }

    #[test]
    fn facts_two_per_beer() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = BeerWorld::generate(&mut rng, 5, 3);
        assert_eq!(w.facts().len(), w.beers.len() * 2);
    }
}
