//! Synthetic world knowledge for the UniDM reproduction.
//!
//! The paper evaluates UniDM on benchmark datasets (Restaurant, Buy,
//! Hospital, Adult, Magellan ER pairs, NextiaJD, SWDE NBA, ...) whose power
//! comes from *real-world regularities*: cities determine countries and
//! timezones, product names reveal manufacturers, street addresses pin down
//! neighbourhoods. Since the original datasets and the pretrained LLMs that
//! memorised those regularities are unavailable offline, this crate builds a
//! deterministic synthetic world exhibiting the same regularities.
//!
//! Two consumers share it:
//!
//! * `unidm-synthdata` renders the world into benchmark tables with ground
//!   truth (the "data lake" side), and
//! * `unidm-llm` loads a *partial, noisy* view of the world's [`Fact`]s as
//!   the simulated LLM's pretraining knowledge (the "model" side).
//!
//! Because both sides are views of one world, retrieval-augmented prompting
//! behaves like in the paper: facts missing from the model's memory can
//! still be recovered from retrieved context records.
//!
//! # Examples
//!
//! ```
//! use unidm_world::World;
//!
//! let world = World::generate(42);
//! assert!(world.geo.cities.len() > 100);
//! let facts = world.facts();
//! assert!(facts.len() > 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beer;
pub mod census;
pub mod dining;
pub mod fact;
pub mod fifa;
pub mod geo;
pub mod hospital;
pub mod music;
pub mod names;
pub mod nba;
pub mod products;
mod world;

pub use fact::{Fact, Predicate};
pub use world::World;
