//! Deterministic name generators.
//!
//! Synthetic entities need plausible names so that lexical baselines behave
//! realistically: shared prefixes inside a product family, typo-prone city
//! names, street names that repeat across cities. All generators are pure
//! functions of an [`rand::Rng`], so worlds are reproducible from a seed.

use rand::seq::SliceRandom;
use rand::Rng;

const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "kl", "l", "m", "n", "p",
    "pr", "qu", "r", "s", "sh", "st", "t", "th", "tr", "v", "w", "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "ia", "io", "ou"];
const CODAS: &[&str] = &[
    "", "n", "r", "s", "l", "m", "nd", "rt", "st", "ck", "th", "x", "ss", "ng",
];

/// Generates a pronounceable lowercase word of `syllables` syllables.
pub fn word<R: Rng>(rng: &mut R, syllables: usize) -> String {
    let mut out = String::new();
    for i in 0..syllables.max(1) {
        out.push_str(ONSETS.choose(rng).expect("non-empty"));
        out.push_str(VOWELS.choose(rng).expect("non-empty"));
        // Codas only at the last syllable keep words pronounceable.
        if i + 1 == syllables {
            out.push_str(CODAS.choose(rng).expect("non-empty"));
        }
    }
    out
}

/// Generates a capitalised proper noun of 2–3 syllables.
pub fn proper<R: Rng>(rng: &mut R) -> String {
    let syl = rng.gen_range(2..=3);
    capitalize(&word(rng, syl))
}

/// Capitalises the first letter of each whitespace-separated word.
pub fn capitalize(s: &str) -> String {
    s.split_whitespace()
        .map(|w| {
            let mut cs = w.chars();
            match cs.next() {
                Some(c) => c.to_uppercase().collect::<String>() + cs.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "Robert",
    "Patricia",
    "John",
    "Jennifer",
    "Michael",
    "Linda",
    "David",
    "Elizabeth",
    "William",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Sarah",
    "Kevin",
    "Karen",
    "Marcus",
    "Elena",
    "Dirk",
    "Magda",
    "Yao",
    "Lena",
    "Omar",
    "Nina",
    "Pavel",
    "Ingrid",
];

const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Anderson",
    "Taylor",
    "Thomas",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Walker",
    "Hall",
    "Young",
    "Novak",
    "Petrov",
    "Larsen",
    "Okafor",
    "Tanaka",
    "Costa",
    "Weber",
    "Rossi",
    "Dubois",
    "Kim",
];

/// Generates a person name ("First Last").
pub fn person<R: Rng>(rng: &mut R) -> String {
    format!(
        "{} {}",
        FIRST_NAMES.choose(rng).expect("non-empty"),
        LAST_NAMES.choose(rng).expect("non-empty")
    )
}

const STREET_KINDS: &[&str] = &["St.", "Ave.", "Blvd.", "Dr.", "Rd.", "Ln.", "Way"];

/// Generates a street name like "3109 Piedmont Rd.".
pub fn street<R: Rng>(rng: &mut R) -> String {
    let number = rng.gen_range(1..9999);
    let name = proper(rng);
    let kind = STREET_KINDS.choose(rng).expect("non-empty");
    format!("{number} {name} {kind}")
}

/// The street's base name without the house number ("Piedmont Rd.").
pub fn street_base(street: &str) -> String {
    street
        .split_whitespace()
        .skip(1)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Generates a US-style phone number with the given area code.
pub fn phone<R: Rng>(rng: &mut R, area: u16) -> String {
    format!(
        "{area}/{:03}-{:04}",
        rng.gen_range(200..999),
        rng.gen_range(0..9999)
    )
}

/// Characters used as typo substitutions (varied, so identical corruptions
/// of the same source value stay rare).
const TYPO_CHARS: &[char] = &['x', 'q', 'z', 'k', 'v', 'j'];

/// Injects a single-character typo into `s` (substitution mid-word).
///
/// Returns the original string unchanged when it has no alphabetic character.
pub fn typo<R: Rng>(rng: &mut R, s: &str) -> String {
    let positions: Vec<usize> = s
        .char_indices()
        .filter(|(_, c)| c.is_alphabetic())
        .map(|(i, _)| i)
        .collect();
    if positions.is_empty() {
        return s.to_string();
    }
    let pos = *positions[positions.len() / 3..]
        .first()
        .unwrap_or(&positions[0]);
    let pos = if positions.len() > 2 {
        positions[rng.gen_range(1..positions.len() - 1)]
    } else {
        pos
    };
    let mut out = String::with_capacity(s.len());
    let replacement = loop {
        let c = *TYPO_CHARS.choose(rng).expect("non-empty");
        if s[pos..]
            .chars()
            .next()
            .is_some_and(|orig| !orig.eq_ignore_ascii_case(&c))
        {
            break c;
        }
    };
    for (i, c) in s.char_indices() {
        if i == pos {
            out.push(replacement);
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn word_deterministic() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        assert_eq!(word(&mut a, 2), word(&mut b, 2));
    }

    #[test]
    fn word_nonempty() {
        let mut rng = StdRng::seed_from_u64(1);
        for syl in 1..4 {
            assert!(!word(&mut rng, syl).is_empty());
        }
    }

    #[test]
    fn proper_capitalised() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = proper(&mut rng);
        assert!(p.chars().next().unwrap().is_uppercase());
    }

    #[test]
    fn person_two_words() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(person(&mut rng).split_whitespace().count(), 2);
    }

    #[test]
    fn street_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = street(&mut rng);
        let first = s.split_whitespace().next().unwrap();
        assert!(first.parse::<u32>().is_ok());
        assert!(street_base(&s).split_whitespace().count() >= 2);
    }

    #[test]
    fn phone_format() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = phone(&mut rng, 310);
        assert!(p.starts_with("310/"));
        assert_eq!(p.len(), "310/123-4567".len());
    }

    #[test]
    fn typo_changes_one_char() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = typo(&mut rng, "marshall");
        assert_eq!(t.len(), "marshall".len());
        assert_ne!(t, "marshall");
        let diff = t
            .chars()
            .zip("marshall".chars())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diff, 1);
    }

    #[test]
    fn typo_handles_empty_and_numeric() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(typo(&mut rng, ""), "");
        assert_eq!(typo(&mut rng, "12345"), "12345");
    }

    #[test]
    fn capitalize_multiword() {
        assert_eq!(capitalize("los angeles"), "Los Angeles");
    }
}
