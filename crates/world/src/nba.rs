//! NBA players: the domain behind the SWDE information-extraction benchmark
//! (appendix E) and its Wikipedia-style player pages.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::fact::{Fact, Predicate};
use crate::names;

/// Basketball positions.
pub const POSITIONS: &[&str] = &[
    "Point guard",
    "Shooting guard",
    "Small forward",
    "Power forward",
    "Center",
    "Small forward / Power forward",
    "Power forward / Center",
];

/// Colleges.
pub const COLLEGES: &[&str] = &[
    "Texas",
    "Michigan State",
    "Duke",
    "Kentucky",
    "Kansas",
    "North Carolina",
    "UCLA",
    "Gonzaga",
    "Arizona",
    "Villanova",
    "Syracuse",
    "Georgetown",
];

/// An NBA player entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Player {
    /// Player name.
    pub name: String,
    /// Height like "6 ft 10 in".
    pub height: String,
    /// Position, one of [`POSITIONS`].
    pub position: String,
    /// College, one of [`COLLEGES`] or "NA" for international players.
    pub college: String,
    /// Current team city + nickname.
    pub team: String,
}

/// The NBA slice of the synthetic world.
#[derive(Debug, Clone, Default)]
pub struct NbaWorld {
    /// All players.
    pub players: Vec<Player>,
}

const TEAMS: &[&str] = &[
    "Phoenix Suns",
    "Boston Celtics",
    "Dallas Mavericks",
    "Denver Nuggets",
    "Miami Heat",
    "Milwaukee Bucks",
    "Golden State Warriors",
    "New York Knicks",
];

impl NbaWorld {
    /// Generates `n` players (10% international, college = "NA").
    pub fn generate<R: Rng>(rng: &mut R, n: usize) -> Self {
        let mut players = Vec::with_capacity(n);
        let mut seen = std::collections::HashSet::new();
        while players.len() < n {
            let name = names::person(rng);
            if !seen.insert(name.to_lowercase()) {
                continue;
            }
            let feet = rng.gen_range(5..8);
            let inches = rng.gen_range(0..12);
            let college = if rng.gen_bool(0.1) {
                "NA".to_string()
            } else {
                COLLEGES.choose(rng).expect("ne").to_string()
            };
            players.push(Player {
                name,
                height: format!("{feet} ft {inches} in"),
                position: POSITIONS.choose(rng).expect("ne").to_string(),
                college,
                team: TEAMS.choose(rng).expect("ne").to_string(),
            });
        }
        NbaWorld { players }
    }

    /// Facts: player→college/height/position, plus the position and college
    /// vocabularies (every basketball-literate model knows the positions).
    pub fn facts(&self) -> Vec<Fact> {
        let mut out = Vec::new();
        for pos in POSITIONS {
            out.push(Fact::new(*pos, Predicate::ValidToken, "position"));
        }
        for col in COLLEGES {
            out.push(Fact::new(*col, Predicate::ValidToken, "college"));
        }
        for p in &self.players {
            out.push(Fact::new(&p.name, Predicate::PlayerCollege, &p.college));
            out.push(Fact::new(&p.name, Predicate::PlayerHeight, &p.height));
            out.push(Fact::new(&p.name, Predicate::PlayerPosition, &p.position));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_unique_players() {
        let mut rng = StdRng::seed_from_u64(6);
        let w = NbaWorld::generate(&mut rng, 80);
        assert_eq!(w.players.len(), 80);
        let set: std::collections::HashSet<&str> =
            w.players.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(set.len(), 80);
    }

    #[test]
    fn heights_formatted() {
        let mut rng = StdRng::seed_from_u64(6);
        let w = NbaWorld::generate(&mut rng, 20);
        assert!(w.players.iter().all(|p| p.height.contains("ft")));
    }

    #[test]
    fn facts_three_per_player_plus_vocab() {
        let mut rng = StdRng::seed_from_u64(6);
        let w = NbaWorld::generate(&mut rng, 10);
        assert_eq!(w.facts().len(), 30 + POSITIONS.len() + COLLEGES.len());
    }
}
