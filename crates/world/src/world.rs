//! The composed synthetic world.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::beer::BeerWorld;
use crate::census;
use crate::dining::DiningWorld;
use crate::fact::Fact;
use crate::fifa::FifaWorld;
use crate::geo::GeoWorld;
use crate::hospital::HospitalWorld;
use crate::music::MusicWorld;
use crate::nba::NbaWorld;
use crate::products::ProductWorld;

/// The full synthetic world, deterministically derived from one seed.
#[derive(Debug, Clone)]
pub struct World {
    /// Geography (countries, cities, streets, area codes).
    pub geo: GeoWorld,
    /// Restaurants placed on the geography.
    pub dining: DiningWorld,
    /// Manufacturers and products.
    pub products: ProductWorld,
    /// Artists and songs.
    pub music: MusicWorld,
    /// Beers and breweries.
    pub beer: BeerWorld,
    /// Hospitals and quality measures.
    pub hospital: HospitalWorld,
    /// FIFA rankings over the geography's countries.
    pub fifa: FifaWorld,
    /// NBA players.
    pub nba: NbaWorld,
}

impl World {
    /// Generates the default-size world from `seed`.
    ///
    /// Sizes are chosen so that each benchmark has a few hundred rows —
    /// comparable to the original datasets' evaluation splits — while keeping
    /// a full experiment suite fast enough to run in CI.
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let geo = GeoWorld::generate(&mut rng, 150);
        let dining = DiningWorld::generate(&mut rng, &geo, 12, 600);
        let products = ProductWorld::generate(&mut rng, 40, 10);
        let music = MusicWorld::generate(&mut rng, 50, 6);
        let beer = BeerWorld::generate(&mut rng, 30, 6);
        let hospital = HospitalWorld::generate(&mut rng, 250);
        let fifa = FifaWorld::generate(&mut rng, &geo);
        let nba = NbaWorld::generate(&mut rng, 120);
        World {
            geo,
            dining,
            products,
            music,
            beer,
            hospital,
            fifa,
            nba,
        }
    }

    /// Every fact the world asserts, across all domains.
    ///
    /// This is the "training corpus" of the simulated LLM: `unidm-llm`
    /// samples a coverage-limited subset as the model's pretraining memory.
    pub fn facts(&self) -> Vec<Fact> {
        let mut out = self.geo.facts();
        out.extend(self.dining.facts(&self.geo));
        out.extend(self.products.facts());
        out.extend(self.music.facts());
        out.extend(self.beer.facts());
        out.extend(self.hospital.facts());
        out.extend(census::facts());
        out.extend(self.nba.facts());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Predicate;

    #[test]
    fn generate_is_deterministic() {
        let a = World::generate(99);
        let b = World::generate(99);
        assert_eq!(a.geo.cities.len(), b.geo.cities.len());
        assert_eq!(a.dining.restaurants[7].name, b.dining.restaurants[7].name);
        assert_eq!(a.products.products[11].name, b.products.products[11].name);
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(1);
        let b = World::generate(2);
        let same = a
            .dining
            .restaurants
            .iter()
            .zip(&b.dining.restaurants)
            .filter(|(x, y)| x.name == y.name)
            .count();
        assert!(same < a.dining.restaurants.len() / 2);
    }

    #[test]
    fn facts_span_domains() {
        let w = World::generate(5);
        let facts = w.facts();
        assert!(facts.len() > 2000, "got {}", facts.len());
        let preds: std::collections::HashSet<Predicate> =
            facts.iter().map(|f| f.predicate).collect();
        assert!(preds.contains(&Predicate::CityTimezone));
        assert!(preds.contains(&Predicate::ProductManufacturer));
        assert!(preds.contains(&Predicate::RestaurantCity));
        assert!(preds.contains(&Predicate::ValidToken));
        assert!(preds.contains(&Predicate::PlayerCollege));
    }
}
