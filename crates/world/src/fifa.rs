//! FIFA rankings: the two-table join-discovery example of appendix D
//! (`fifa_ranking.country_abrv` vs `countries_and_continents.ISO`).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::geo::GeoWorld;

/// One row of the FIFA ranking table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankingEntry {
    /// Rank, 1-based.
    pub rank: u32,
    /// Full country name (matches a [`GeoWorld`] country).
    pub country_full: String,
    /// Country abbreviation (the ISO3 code).
    pub country_abrv: String,
    /// Rank change since last period.
    pub rank_change: i32,
}

/// The FIFA slice of the synthetic world.
#[derive(Debug, Clone, Default)]
pub struct FifaWorld {
    /// Ranking entries ordered by rank.
    pub ranking: Vec<RankingEntry>,
}

impl FifaWorld {
    /// Ranks a shuffled subset of the geography's countries.
    pub fn generate<R: Rng>(rng: &mut R, geo: &GeoWorld) -> Self {
        let mut order: Vec<usize> = (0..geo.countries.len()).collect();
        order.shuffle(rng);
        let ranking = order
            .into_iter()
            .enumerate()
            .map(|(i, ci)| {
                let c = &geo.countries[ci];
                RankingEntry {
                    rank: (i + 1) as u32,
                    country_full: c.name.clone(),
                    country_abrv: c.iso3.clone(),
                    rank_change: rng.gen_range(-9..10),
                }
            })
            .collect();
        FifaWorld { ranking }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranks_all_countries_once() {
        let mut rng = StdRng::seed_from_u64(13);
        let geo = GeoWorld::generate(&mut rng, 10);
        let fifa = FifaWorld::generate(&mut rng, &geo);
        assert_eq!(fifa.ranking.len(), geo.countries.len());
        let names: std::collections::HashSet<&str> = fifa
            .ranking
            .iter()
            .map(|r| r.country_full.as_str())
            .collect();
        assert_eq!(names.len(), geo.countries.len());
        for (i, r) in fifa.ranking.iter().enumerate() {
            assert_eq!(r.rank as usize, i + 1);
        }
    }

    #[test]
    fn abbreviations_match_geo() {
        let mut rng = StdRng::seed_from_u64(13);
        let geo = GeoWorld::generate(&mut rng, 0);
        let fifa = FifaWorld::generate(&mut rng, &geo);
        for r in &fifa.ranking {
            let c = geo
                .countries
                .iter()
                .find(|c| c.name == r.country_full)
                .unwrap();
            assert_eq!(c.iso3, r.country_abrv);
        }
    }
}
