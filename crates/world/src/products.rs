//! Products: the domain behind Buy imputation and the product ER benchmarks
//! (Amazon-Google, Walmart-Amazon).
//!
//! Product names embed their brand token ("Punch! Home Design ..." is made
//! by Punch! Software), which is the regularity both the Buy imputation task
//! and a pretrained model's product knowledge rely on.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::fact::{Fact, Predicate};
use crate::names;

/// Product categories.
pub const CATEGORIES: &[&str] = &[
    "software",
    "camera",
    "laptop",
    "printer",
    "router",
    "monitor",
    "tablet",
    "headphones",
    "keyboard",
    "speaker",
];

/// A manufacturer with its identifying brand token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manufacturer {
    /// Full company name, e.g. "Kelvar Software".
    pub name: String,
    /// The short brand token embedded in product names, e.g. "Kelvar".
    pub brand: String,
}

/// A product entity.
#[derive(Debug, Clone, PartialEq)]
pub struct Product {
    /// Canonical product name, starting with the brand token.
    pub name: String,
    /// Index into [`ProductWorld::manufacturers`].
    pub manufacturer: usize,
    /// Category, one of [`CATEGORIES`].
    pub category: String,
    /// List price in dollars.
    pub price: f64,
    /// Model code like "KX-450".
    pub model_code: String,
}

/// The product slice of the synthetic world.
#[derive(Debug, Clone, Default)]
pub struct ProductWorld {
    /// All manufacturers.
    pub manufacturers: Vec<Manufacturer>,
    /// All products.
    pub products: Vec<Product>,
}

const COMPANY_SUFFIX: &[&str] = &["Software", "Electronics", "Systems", "Technologies", "Labs"];
const LINE_WORDS: &[&str] = &[
    "Studio", "Pro", "Design", "Office", "Vision", "Stream", "Power", "Ultra",
];

impl ProductWorld {
    /// Generates `n_manufacturers` manufacturers with roughly
    /// `products_per_brand` products each.
    pub fn generate<R: Rng>(
        rng: &mut R,
        n_manufacturers: usize,
        products_per_brand: usize,
    ) -> Self {
        let mut manufacturers = Vec::with_capacity(n_manufacturers);
        let mut seen_brands = std::collections::HashSet::new();
        while manufacturers.len() < n_manufacturers {
            let brand = names::proper(rng);
            if !seen_brands.insert(brand.to_lowercase()) {
                continue;
            }
            let suffix = COMPANY_SUFFIX.choose(rng).expect("ne");
            manufacturers.push(Manufacturer {
                name: format!("{brand} {suffix}"),
                brand,
            });
        }

        let mut products = Vec::new();
        let mut seen_products = std::collections::HashSet::new();
        for (mi, m) in manufacturers.iter().enumerate() {
            for _ in 0..products_per_brand {
                let line = format!(
                    "{} {}",
                    LINE_WORDS.choose(rng).expect("ne"),
                    LINE_WORDS.choose(rng).expect("ne")
                );
                let model_code = format!(
                    "{}{}-{}",
                    m.brand.chars().next().expect("brand non-empty"),
                    char::from(b'A' + rng.gen_range(0..26u8)),
                    rng.gen_range(100..9999)
                );
                let name = format!("{} {} {}", m.brand, line, model_code);
                if !seen_products.insert(name.to_lowercase()) {
                    continue;
                }
                products.push(Product {
                    name,
                    manufacturer: mi,
                    category: CATEGORIES.choose(rng).expect("ne").to_string(),
                    price: f64::from(rng.gen_range(999..99999)) / 100.0,
                    model_code,
                });
            }
        }
        // Subsidiary brands: ~6% of products are sold under one brand but
        // manufactured by a different (parent) company — the wrinkle that
        // keeps title-matching imputers from being perfect on Buy.
        for product in &mut products {
            if rng.gen_bool(0.06) {
                product.manufacturer = rng.gen_range(0..manufacturers.len());
            }
        }
        ProductWorld {
            manufacturers,
            products,
        }
    }

    /// The manufacturer of `product`.
    pub fn manufacturer_of(&self, product: &Product) -> &Manufacturer {
        &self.manufacturers[product.manufacturer]
    }

    /// Facts: product→manufacturer, product→category, brand→manufacturer.
    pub fn facts(&self) -> Vec<Fact> {
        let mut out = Vec::new();
        for m in &self.manufacturers {
            out.push(Fact::new(&m.brand, Predicate::BrandManufacturer, &m.name));
        }
        for p in &self.products {
            let m = self.manufacturer_of(p);
            out.push(Fact::new(&p.name, Predicate::ProductManufacturer, &m.name));
            out.push(Fact::new(&p.name, Predicate::ProductCategory, &p.category));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> ProductWorld {
        let mut rng = StdRng::seed_from_u64(33);
        ProductWorld::generate(&mut rng, 25, 8)
    }

    #[test]
    fn sizes() {
        let w = world();
        assert_eq!(w.manufacturers.len(), 25);
        assert!(w.products.len() > 25 * 6, "near 8 products per brand");
    }

    #[test]
    fn product_names_embed_brand_mostly() {
        // ~6% of products are subsidiary brands whose manufacturer differs
        // from the title brand; everything else starts with its maker's
        // brand token.
        let w = world();
        let mismatched = w
            .products
            .iter()
            .filter(|p| !p.name.starts_with(w.manufacturer_of(p).brand.as_str()))
            .count();
        let rate = mismatched as f64 / w.products.len() as f64;
        assert!(rate < 0.15, "subsidiaries stay rare: {rate}");
    }

    #[test]
    fn prices_positive() {
        let w = world();
        assert!(w.products.iter().all(|p| p.price > 0.0));
    }

    #[test]
    fn facts_include_brand_links() {
        let w = world();
        let facts = w.facts();
        assert!(facts
            .iter()
            .any(|f| f.predicate == Predicate::BrandManufacturer));
        let per_product = facts
            .iter()
            .filter(|f| f.predicate == Predicate::ProductManufacturer)
            .count();
        assert_eq!(per_product, w.products.len());
    }

    #[test]
    fn deterministic() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let wa = ProductWorld::generate(&mut a, 5, 3);
        let wb = ProductWorld::generate(&mut b, 5, 3);
        assert_eq!(wa.products[0].name, wb.products[0].name);
    }
}
