//! Geography: countries, timezones, cities, streets, area codes.
//!
//! This is the backbone domain — the paper's running example (imputing
//! Copenhagen's timezone from its country) lives here. A curated core of
//! real cities keeps the paper's worked examples meaningful; a larger
//! generated tail gives experiments statistical weight.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::fact::{Fact, Predicate};
use crate::names;

/// A country with its dominant timezone and ISO-3166-alpha-3-style code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Country {
    /// Full English name.
    pub name: String,
    /// Dominant timezone name.
    pub timezone: String,
    /// Three-letter abbreviation.
    pub iso3: String,
    /// Continent name.
    pub continent: String,
}

/// A city with the attributes the benchmark tables use.
#[derive(Debug, Clone, PartialEq)]
pub struct City {
    /// City name.
    pub name: String,
    /// Index into [`GeoWorld::countries`].
    pub country: usize,
    /// Postal-code prefix (string to keep leading zeros).
    pub postal_prefix: String,
    /// Population.
    pub population: u64,
    /// Street names (with house-number ranges baked into instances).
    pub streets: Vec<String>,
    /// Telephone area code.
    pub area_code: u16,
}

/// The geographic slice of the synthetic world.
#[derive(Debug, Clone, Default)]
pub struct GeoWorld {
    /// All countries.
    pub countries: Vec<Country>,
    /// All cities.
    pub cities: Vec<City>,
}

const CURATED_COUNTRIES: &[(&str, &str, &str, &str)] = &[
    ("Denmark", "Central European Time", "DNK", "Europe"),
    ("Italy", "Central European Time", "ITA", "Europe"),
    ("Spain", "Central European Time", "ESP", "Europe"),
    ("Belgium", "Central European Time", "BEL", "Europe"),
    ("Germany", "Central European Time", "GER", "Europe"),
    ("France", "Central European Time", "FRA", "Europe"),
    ("Sweden", "Central European Time", "SWE", "Europe"),
    ("Greece", "Eastern European Time", "GRE", "Europe"),
    ("Finland", "Eastern European Time", "FIN", "Europe"),
    ("United Kingdom", "Greenwich Mean Time", "GBR", "Europe"),
    ("Ireland", "Greenwich Mean Time", "IRL", "Europe"),
    ("Portugal", "Western European Time", "PRT", "Europe"),
    ("Russia", "Moscow Standard Time", "RUS", "Europe"),
    (
        "United States",
        "Eastern Standard Time",
        "USA",
        "North America",
    ),
    ("Canada", "Eastern Standard Time", "CAN", "North America"),
    ("Mexico", "Central Standard Time", "MEX", "North America"),
    ("Brazil", "Brasilia Time", "BRA", "South America"),
    ("Argentina", "Argentina Time", "ARG", "South America"),
    ("Uruguay", "Uruguay Time", "URY", "South America"),
    ("China", "China Standard Time", "CHN", "Asia"),
    ("Japan", "Japan Standard Time", "JPN", "Asia"),
    ("India", "India Standard Time", "IND", "Asia"),
    ("South Korea", "Korea Standard Time", "KOR", "Asia"),
    ("Australia", "Australian Eastern Time", "AUS", "Oceania"),
    ("New Zealand", "New Zealand Time", "NZL", "Oceania"),
    ("Egypt", "Eastern European Time", "EGY", "Africa"),
    ("Nigeria", "West Africa Time", "NGA", "Africa"),
    ("Zambia", "Central Africa Time", "ZMB", "Africa"),
    ("Albania", "Central European Time", "ALB", "Europe"),
    ("Slovenia", "Central European Time", "SVN", "Europe"),
];

/// Curated cities: (name, country, postal prefix). US cities carry the
/// restaurant benchmark; European ones carry the imputation examples.
const CURATED_CITIES: &[(&str, &str, &str)] = &[
    ("Copenhagen", "Denmark", "10"),
    ("Florence", "Italy", "50"),
    ("Rome", "Italy", "00"),
    ("Alicante", "Spain", "03"),
    ("Madrid", "Spain", "28"),
    ("Antwerp", "Belgium", "20"),
    ("Athens", "Greece", "10"),
    ("Helsinki", "Finland", "00"),
    ("London", "United Kingdom", "EC"),
    ("Berlin", "Germany", "10"),
    ("Paris", "France", "75"),
    ("Stockholm", "Sweden", "11"),
    ("New York", "United States", "10"),
    ("Los Angeles", "United States", "90"),
    ("Beverly Hills", "United States", "90"),
    ("San Francisco", "United States", "94"),
    ("Atlanta", "United States", "30"),
    ("Chicago", "United States", "60"),
    ("Boston", "United States", "02"),
    ("Seattle", "United States", "98"),
    ("Toronto", "Canada", "M5"),
    ("Tokyo", "Japan", "10"),
    ("Shanghai", "China", "20"),
    ("Sydney", "Australia", "20"),
    ("Mumbai", "India", "40"),
];

impl GeoWorld {
    /// Generates the geography: curated core plus `extra_cities` synthetic
    /// cities distributed over the curated countries.
    pub fn generate<R: Rng>(rng: &mut R, extra_cities: usize) -> Self {
        let countries: Vec<Country> = CURATED_COUNTRIES
            .iter()
            .map(|&(name, tz, iso, cont)| Country {
                name: name.to_string(),
                timezone: tz.to_string(),
                iso3: iso.to_string(),
                continent: cont.to_string(),
            })
            .collect();

        let mut cities = Vec::new();
        let mut used_area_codes = std::collections::HashSet::new();
        let mut next_area = |rng: &mut R| -> u16 {
            loop {
                let code = rng.gen_range(201..989);
                if used_area_codes.insert(code) {
                    return code;
                }
            }
        };

        for &(name, country_name, postal) in CURATED_CITIES {
            let country = countries
                .iter()
                .position(|c| c.name == country_name)
                .expect("curated city references curated country");
            cities.push(City {
                name: name.to_string(),
                country,
                postal_prefix: postal.to_string(),
                population: rng.gen_range(80_000..9_000_000),
                streets: gen_streets(rng),
                area_code: next_area(rng),
            });
        }

        let mut seen_names: std::collections::HashSet<String> =
            cities.iter().map(|c| c.name.to_lowercase()).collect();
        while cities.len() < CURATED_CITIES.len() + extra_cities {
            let name = names::proper(rng);
            if !seen_names.insert(name.to_lowercase()) {
                continue;
            }
            let country = rng.gen_range(0..countries.len());
            cities.push(City {
                name,
                country,
                postal_prefix: format!("{:02}", rng.gen_range(0..99)),
                population: rng.gen_range(20_000..3_000_000),
                streets: gen_streets(rng),
                area_code: next_area(rng),
            });
        }

        GeoWorld { countries, cities }
    }

    /// The country of `city`.
    pub fn country_of(&self, city: &City) -> &Country {
        &self.countries[city.country]
    }

    /// Looks a city up by name (case-insensitive).
    pub fn city(&self, name: &str) -> Option<&City> {
        let key = name.to_lowercase();
        self.cities.iter().find(|c| c.name.to_lowercase() == key)
    }

    /// A random city index.
    pub fn random_city<R: Rng>(&self, rng: &mut R) -> usize {
        rng.gen_range(0..self.cities.len())
    }

    /// All facts this domain contributes to the world knowledge.
    pub fn facts(&self) -> Vec<Fact> {
        let mut out = Vec::new();
        for country in &self.countries {
            out.push(Fact::new(
                &country.name,
                Predicate::CountryTimezone,
                &country.timezone,
            ));
            out.push(Fact::new(
                &country.name,
                Predicate::CountryIso,
                &country.iso3,
            ));
            out.push(Fact::new(
                &country.name,
                Predicate::CountryContinent,
                &country.continent,
            ));
            out.push(Fact::new(&country.name, Predicate::ValidToken, "country"));
        }
        for city in &self.cities {
            let country = self.country_of(city);
            out.push(Fact::new(&city.name, Predicate::CityCountry, &country.name));
            out.push(Fact::new(
                &city.name,
                Predicate::CityTimezone,
                &country.timezone,
            ));
            out.push(Fact::new(
                &city.name,
                Predicate::CityPostal,
                &city.postal_prefix,
            ));
            out.push(Fact::new(&city.name, Predicate::ValidToken, "city"));
            out.push(Fact::new(
                city.area_code.to_string(),
                Predicate::AreaCodeCity,
                &city.name,
            ));
            for street in &city.streets {
                out.push(Fact::new(street, Predicate::StreetCity, &city.name));
            }
        }
        out
    }
}

fn gen_streets<R: Rng>(rng: &mut R) -> Vec<String> {
    let n = rng.gen_range(18..28);
    let mut streets = Vec::with_capacity(n);
    for _ in 0..n {
        streets.push(names::street_base(&names::street(rng)));
    }
    streets.dedup();
    streets
}

/// Picks a street address in `city`: "(number) (street base)".
pub fn address_in<R: Rng>(rng: &mut R, city: &City) -> String {
    let base = city
        .streets
        .choose(rng)
        .cloned()
        .unwrap_or_else(|| "Main St.".to_string());
    format!("{} {}", rng.gen_range(1..9999), base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> GeoWorld {
        let mut rng = StdRng::seed_from_u64(11);
        GeoWorld::generate(&mut rng, 100)
    }

    #[test]
    fn curated_cities_present() {
        let g = world();
        let copenhagen = g.city("copenhagen").expect("curated");
        assert_eq!(g.country_of(copenhagen).name, "Denmark");
        assert_eq!(g.country_of(copenhagen).timezone, "Central European Time");
    }

    #[test]
    fn deterministic_generation() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let ga = GeoWorld::generate(&mut a, 50);
        let gb = GeoWorld::generate(&mut b, 50);
        assert_eq!(ga.cities.len(), gb.cities.len());
        assert_eq!(ga.cities[30].name, gb.cities[30].name);
    }

    #[test]
    fn size_as_requested() {
        let g = world();
        assert_eq!(g.cities.len(), CURATED_CITIES.len() + 100);
    }

    #[test]
    fn unique_city_names_and_area_codes() {
        let g = world();
        let names: std::collections::HashSet<String> =
            g.cities.iter().map(|c| c.name.to_lowercase()).collect();
        assert_eq!(names.len(), g.cities.len());
        let codes: std::collections::HashSet<u16> = g.cities.iter().map(|c| c.area_code).collect();
        assert_eq!(codes.len(), g.cities.len());
    }

    #[test]
    fn facts_cover_cities_and_streets() {
        let g = world();
        let facts = g.facts();
        assert!(facts
            .iter()
            .any(|f| f.subject == "Copenhagen" && f.predicate == Predicate::CityTimezone));
        assert!(facts.iter().any(|f| f.predicate == Predicate::StreetCity));
        let iso = facts
            .iter()
            .find(|f| f.subject == "Germany" && f.predicate == Predicate::CountryIso)
            .unwrap();
        assert_eq!(iso.object, "GER");
    }

    #[test]
    fn address_in_city_uses_streets() {
        let g = world();
        let mut rng = StdRng::seed_from_u64(3);
        let city = &g.cities[0];
        let addr = address_in(&mut rng, city);
        let base = names::street_base(&addr);
        assert!(city.streets.contains(&base));
    }

    #[test]
    fn every_city_has_streets() {
        let g = world();
        assert!(g.cities.iter().all(|c| !c.streets.is_empty()));
    }
}
