//! Restaurants: the domain behind the Restaurant imputation benchmark.
//!
//! Restaurants live on real streets of real cities, and their phone numbers
//! use the city's area code — exactly the regularities the paper's case
//! study exploits ("Ruth's Chris Steak House ... 224 S. Beverly Dr." is in
//! Beverly Hills because nearby records on the same street say so).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::fact::{Fact, Predicate};
use crate::geo::GeoWorld;
use crate::names;

/// Cuisine types used by the restaurant benchmark.
pub const CUISINES: &[&str] = &[
    "american",
    "italian",
    "french",
    "seafood",
    "steakhouses",
    "japanese",
    "mexican",
    "thai",
    "indian",
    "mediterranean",
    "chinese",
    "bbq",
];

const NAME_SUFFIXES: &[&str] = &[
    "Grill",
    "Bistro",
    "Cafe",
    "Kitchen",
    "House",
    "Tavern",
    "Diner",
    "Trattoria",
    "Brasserie",
    "Place",
];

/// A restaurant entity.
#[derive(Debug, Clone, PartialEq)]
pub struct Restaurant {
    /// Restaurant name.
    pub name: String,
    /// Street address ("224 S. Beverly Dr.") using one of the city's streets.
    pub address: String,
    /// Index of the city in the [`GeoWorld`].
    pub city: usize,
    /// Phone number using the city's area code.
    pub phone: String,
    /// Cuisine type, one of [`CUISINES`].
    pub cuisine: String,
}

/// The dining slice of the synthetic world.
#[derive(Debug, Clone, Default)]
pub struct DiningWorld {
    /// All restaurants.
    pub restaurants: Vec<Restaurant>,
}

impl DiningWorld {
    /// Generates `n` restaurants placed on streets of the given geography,
    /// concentrated in `n_cities` cities.
    ///
    /// Restaurants cluster the way the real Restaurant benchmark does: a
    /// handful of metro areas, several venues per street, so instance-wise
    /// retrieval can find informative neighbours (same street or area code ⇒
    /// same city).
    pub fn generate<R: Rng>(rng: &mut R, geo: &GeoWorld, n_cities: usize, n: usize) -> Self {
        assert!(!geo.cities.is_empty(), "geography must have cities");
        let city_pool: Vec<usize> = {
            let mut idxs: Vec<usize> = (0..geo.cities.len()).collect();
            idxs.shuffle(rng);
            idxs.truncate(n_cities.max(1).min(geo.cities.len()));
            idxs
        };
        let mut restaurants: Vec<Restaurant> = Vec::with_capacity(n);
        let mut seen = std::collections::HashSet::new();
        while restaurants.len() < n {
            let city_idx = city_pool[rng.gen_range(0..city_pool.len())];
            let city = &geo.cities[city_idx];
            let street = city
                .streets
                .choose(rng)
                .cloned()
                .unwrap_or_else(|| "Main St.".to_string());
            // Usually one, occasionally two venues per chosen street: real
            // city tables rarely contain same-street duplicates, so model
            // knowledge, not neighbour lookup, has to carry the task.
            let burst = rng.gen_range(1..=2usize);
            for _ in 0..burst {
                if restaurants.len() >= n {
                    break;
                }
                let name = gen_name(rng);
                if !seen.insert(name.to_lowercase()) {
                    continue;
                }
                let number = rng.gen_range(1..9999);
                restaurants.push(Restaurant {
                    name,
                    address: format!("{number} {street}"),
                    city: city_idx,
                    phone: names::phone(rng, city.area_code),
                    cuisine: CUISINES.choose(rng).expect("non-empty").to_string(),
                });
            }
        }
        DiningWorld { restaurants }
    }

    /// Facts this domain contributes: restaurant→city and restaurant→cuisine.
    ///
    /// Restaurant knowledge is "long tail" for a language model; the
    /// simulated LLM keeps it with lower coverage than geography facts.
    pub fn facts(&self, geo: &GeoWorld) -> Vec<Fact> {
        let mut out = Vec::new();
        for r in &self.restaurants {
            let city = &geo.cities[r.city];
            out.push(Fact::new(&r.name, Predicate::RestaurantCity, &city.name));
            out.push(Fact::new(&r.name, Predicate::RestaurantCuisine, &r.cuisine));
        }
        out
    }
}

fn gen_name<R: Rng>(rng: &mut R) -> String {
    match rng.gen_range(0..3) {
        0 => format!(
            "{}'s {}",
            names::proper(rng),
            NAME_SUFFIXES.choose(rng).expect("ne")
        ),
        1 => format!(
            "{} {}",
            names::proper(rng),
            NAME_SUFFIXES.choose(rng).expect("ne")
        ),
        _ => format!(
            "The {} {}",
            names::proper(rng),
            NAME_SUFFIXES.choose(rng).expect("ne")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (GeoWorld, DiningWorld) {
        let mut rng = StdRng::seed_from_u64(21);
        let geo = GeoWorld::generate(&mut rng, 40);
        let dining = DiningWorld::generate(&mut rng, &geo, 8, 120);
        (geo, dining)
    }

    #[test]
    fn generates_requested_count() {
        let (_, d) = setup();
        assert_eq!(d.restaurants.len(), 120);
    }

    #[test]
    fn phones_match_city_area_code() {
        let (g, d) = setup();
        for r in &d.restaurants {
            let code = g.cities[r.city].area_code.to_string();
            assert!(r.phone.starts_with(&code), "{} vs {}", r.phone, code);
        }
    }

    #[test]
    fn addresses_use_city_streets() {
        let (g, d) = setup();
        for r in &d.restaurants {
            let base = names::street_base(&r.address);
            assert!(g.cities[r.city].streets.contains(&base));
        }
    }

    #[test]
    fn some_streets_shared() {
        let (_, d) = setup();
        let mut by_street = std::collections::HashMap::new();
        for r in &d.restaurants {
            *by_street
                .entry(names::street_base(&r.address))
                .or_insert(0usize) += 1;
        }
        assert!(
            by_street.values().any(|&c| c >= 2),
            "clustered streets expected"
        );
    }

    #[test]
    fn names_unique() {
        let (_, d) = setup();
        let set: std::collections::HashSet<String> = d
            .restaurants
            .iter()
            .map(|r| r.name.to_lowercase())
            .collect();
        assert_eq!(set.len(), d.restaurants.len());
    }

    #[test]
    fn facts_emitted() {
        let (g, d) = setup();
        let facts = d.facts(&g);
        assert_eq!(facts.len(), d.restaurants.len() * 2);
    }

    #[test]
    fn cuisines_valid() {
        let (_, d) = setup();
        assert!(d
            .restaurants
            .iter()
            .all(|r| CUISINES.contains(&r.cuisine.as_str())));
    }
}
