//! Census domains: the categorical vocabulary of the Adult benchmark.
//!
//! The Adult (census income) dataset is used by the paper for error
//! detection. Its power is that every categorical column has a small closed
//! domain, so out-of-domain values are detectable both statistically
//! (HoloClean/HoloDetect) and semantically (the LLM knows "Bachelors" is an
//! education level and "Bxchelors" is not).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::fact::{Fact, Predicate};

/// Work classes.
pub const WORKCLASS: &[&str] = &[
    "Private",
    "Self-emp-not-inc",
    "Self-emp-inc",
    "Federal-gov",
    "Local-gov",
    "State-gov",
    "Without-pay",
];

/// Education levels with years of schooling.
pub const EDUCATION: &[(&str, u8)] = &[
    ("Bachelors", 13),
    ("HS-grad", 9),
    ("11th", 7),
    ("Masters", 14),
    ("9th", 5),
    ("Some-college", 10),
    ("Assoc-acdm", 12),
    ("Assoc-voc", 11),
    ("Doctorate", 16),
    ("Prof-school", 15),
    ("5th-6th", 3),
    ("10th", 6),
    ("7th-8th", 4),
    ("12th", 8),
];

/// Marital statuses.
pub const MARITAL: &[&str] = &[
    "Married-civ-spouse",
    "Divorced",
    "Never-married",
    "Separated",
    "Widowed",
    "Married-spouse-absent",
];

/// Occupations.
pub const OCCUPATION: &[&str] = &[
    "Tech-support",
    "Craft-repair",
    "Other-service",
    "Sales",
    "Exec-managerial",
    "Prof-specialty",
    "Handlers-cleaners",
    "Machine-op-inspct",
    "Adm-clerical",
    "Farming-fishing",
    "Transport-moving",
    "Protective-serv",
];

/// Relationship categories.
pub const RELATIONSHIP: &[&str] = &[
    "Wife",
    "Own-child",
    "Husband",
    "Not-in-family",
    "Other-relative",
    "Unmarried",
];

/// Race categories (mirroring the original dataset's vocabulary).
pub const RACE: &[&str] = &[
    "White",
    "Asian-Pac-Islander",
    "Amer-Indian-Eskimo",
    "Other",
    "Black",
];

/// Sex categories.
pub const SEX: &[&str] = &["Male", "Female"];

/// Income brackets.
pub const INCOME: &[&str] = &["<=50K", ">50K"];

/// One synthetic census respondent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Person {
    /// Age in years.
    pub age: u8,
    /// Work class.
    pub workclass: String,
    /// Education level.
    pub education: String,
    /// Marital status.
    pub marital_status: String,
    /// Occupation.
    pub occupation: String,
    /// Relationship.
    pub relationship: String,
    /// Race.
    pub race: String,
    /// Sex.
    pub sex: String,
    /// Hours worked per week.
    pub hours_per_week: u8,
    /// Income bracket.
    pub income: String,
}

/// Samples one coherent census respondent.
pub fn sample_person<R: Rng>(rng: &mut R) -> Person {
    let (education, edu_years) = *EDUCATION.choose(rng).expect("ne");
    let age = rng.gen_range(17..90);
    // Income correlates with education and hours — gives the statistical
    // detectors something to model.
    let hours = rng.gen_range(20..80);
    let income_score = u32::from(edu_years) * 3 + u32::from(hours) + rng.gen_range(0..40);
    let income = if income_score > 95 {
        INCOME[1]
    } else {
        INCOME[0]
    };
    Person {
        age,
        workclass: WORKCLASS.choose(rng).expect("ne").to_string(),
        education: education.to_string(),
        marital_status: MARITAL.choose(rng).expect("ne").to_string(),
        occupation: OCCUPATION.choose(rng).expect("ne").to_string(),
        relationship: RELATIONSHIP.choose(rng).expect("ne").to_string(),
        race: RACE.choose(rng).expect("ne").to_string(),
        sex: SEX.choose(rng).expect("ne").to_string(),
        hours_per_week: hours,
        income: income.to_string(),
    }
}

/// Facts: every domain token is a `ValidToken` of its column; education
/// levels additionally carry their years of schooling.
pub fn facts() -> Vec<Fact> {
    let mut out = Vec::new();
    let domains: &[(&str, &[&str])] = &[
        ("workclass", WORKCLASS),
        ("marital status", MARITAL),
        ("occupation", OCCUPATION),
        ("relationship", RELATIONSHIP),
        ("race", RACE),
        ("sex", SEX),
        ("income", INCOME),
    ];
    for (domain, tokens) in domains {
        for t in *tokens {
            out.push(Fact::new(*t, Predicate::ValidToken, *domain));
        }
    }
    for (edu, years) in EDUCATION {
        out.push(Fact::new(*edu, Predicate::ValidToken, "education"));
        out.push(Fact::new(
            *edu,
            Predicate::EducationYears,
            years.to_string(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_in_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let p = sample_person(&mut rng);
            assert!(WORKCLASS.contains(&p.workclass.as_str()));
            assert!(EDUCATION.iter().any(|(e, _)| *e == p.education));
            assert!((17..90).contains(&p.age));
            assert!(INCOME.contains(&p.income.as_str()));
        }
    }

    #[test]
    fn income_correlates_with_education() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut high_edu_high_income = 0;
        let mut low_edu_high_income = 0;
        let mut high_n = 0;
        let mut low_n = 0;
        for _ in 0..2000 {
            let p = sample_person(&mut rng);
            let years = EDUCATION.iter().find(|(e, _)| *e == p.education).unwrap().1;
            if years >= 14 {
                high_n += 1;
                if p.income == ">50K" {
                    high_edu_high_income += 1;
                }
            } else if years <= 6 {
                low_n += 1;
                if p.income == ">50K" {
                    low_edu_high_income += 1;
                }
            }
        }
        let high_rate = f64::from(high_edu_high_income) / f64::from(high_n.max(1));
        let low_rate = f64::from(low_edu_high_income) / f64::from(low_n.max(1));
        assert!(high_rate > low_rate);
    }

    #[test]
    fn facts_cover_all_domains() {
        let f = facts();
        assert!(f.iter().any(|f| f.subject == "Bachelors"));
        assert!(f
            .iter()
            .any(|f| f.subject == "Exec-managerial" && f.object == "occupation"));
        assert!(f.iter().any(|f| f.predicate == Predicate::EducationYears));
    }
}
