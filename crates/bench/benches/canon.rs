//! Microbenchmarks of the canonicalizer hot path: the one-pass
//! borrow-and-hash canonicalization against a reimplementation of the old
//! two-pass scheme (normalize into a fresh `String`, then hash the
//! structured stem/splice/suffix framing separately), and the raw
//! `hash64` cost.
//!
//! ```text
//! cargo bench -p unidm-bench --bench canon
//! ```

use criterion::{criterion_group, criterion_main, Criterion};

use unidm::{CanonLevel, CanonicalPrompt, PromptKey};
use unidm_llm::protocol::{render_pcq, render_prm, Claim, TaskKind};

/// The old two-pass canonicalization, kept here as the baseline the
/// one-pass path is measured against: pass one builds a normalized
/// `String` unconditionally, pass two re-walks the text to hash it.
mod two_pass {
    /// Unconditional copy-normalization (the pre-optimization fallback:
    /// every call allocated, even for already-normal text).
    pub fn normalize_whitespace(prompt: &str) -> String {
        let mut out = String::with_capacity(prompt.len());
        for line in prompt.lines() {
            let mut pending_space = false;
            let start = out.len();
            for ch in line.chars() {
                if ch == ' ' || ch == '\t' {
                    pending_space = out.len() > start;
                    continue;
                }
                if pending_space {
                    out.push(' ');
                    pending_space = false;
                }
                out.push(ch);
            }
            out.push('\n');
        }
        while out.ends_with('\n') {
            out.pop();
        }
        let trimmed_start = out.trim_start_matches('\n').len();
        out.split_off(out.len() - trimmed_start)
    }

    /// The old structured hash: FNV-1a over stem, a separator, the splice
    /// offset, a separator, then the suffix — a second full walk over the
    /// text after normalization.
    pub fn structured_hash(stem: &str, splice: usize, suffix: &str) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(stem.as_bytes());
        eat(&[0xff]);
        eat(&(splice as u64).to_le_bytes());
        eat(&[0xff]);
        eat(suffix.as_bytes());
        h
    }
}

fn workload() -> Vec<String> {
    let candidates = vec!["country".to_string(), "population".to_string()];
    vec![
        // A canonical p_rm (the hot shape: spliced suffix + generalized
        // query means the borrowed scanner does the most work here).
        render_prm(TaskKind::Imputation, "*, timezone", &candidates),
        // A large p_cq with the full demonstration block.
        render_pcq(&Claim {
            task: TaskKind::Imputation,
            context: "Florence belongs to the country Italy.".into(),
            query: "city: Copenhagen; country: ?".into(),
        }),
        // An unstructured target prompt.
        "Copenhagen belongs to the country __.".to_string(),
    ]
}

fn bench_canon(c: &mut Criterion) {
    let prompts = workload();

    let mut group = c.benchmark_group("canonicalize");
    group.sample_size(50);
    group.bench_function("one_pass_borrowed", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &prompts {
                let canonical = CanonicalPrompt::canonicalize(p, CanonLevel::TableStem);
                acc ^= canonical.hash64();
                assert!(
                    canonical.is_borrowed(),
                    "workload must stay on the fast path"
                );
            }
            acc
        })
    });
    group.bench_function("two_pass_owned", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &prompts {
                // Old shape: allocate the normalized text, split it (a
                // second allocation pair for stem + suffix in the real old
                // code — approximated by the key build), then hash in a
                // separate walk.
                let norm = two_pass::normalize_whitespace(p);
                let key = PromptKey::canonicalize(&norm, CanonLevel::TableStem);
                acc ^= two_pass::structured_hash(key.stem(), key.suffix().len(), key.suffix());
            }
            acc
        })
    });
    group.finish();

    let mut group = c.benchmark_group("hash64");
    group.sample_size(50);
    let keys: Vec<PromptKey> = prompts
        .iter()
        .map(|p| PromptKey::canonicalize(p, CanonLevel::TableStem))
        .collect();
    group.bench_function("precomputed", |b| {
        b.iter(|| keys.iter().map(PromptKey::hash64).fold(0u64, |a, h| a ^ h))
    });
    group.bench_function("recomputed_two_pass", |b| {
        b.iter(|| {
            keys.iter()
                .map(|k| two_pass::structured_hash(k.stem(), k.suffix().len(), k.suffix()))
                .fold(0u64, |a, h| a ^ h)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_canon);
criterion_main!(benches);
