//! Criterion benchmarks of the substrate operations: embeddings, string
//! distances, program induction (LLM skill vs TDE search), and knowledge
//! base construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use unidm_baselines::tde;
use unidm_llm::{skills::induce, KnowledgeBase};
use unidm_text::{distance, Embedder};
use unidm_world::World;

fn bench_substrates(c: &mut Criterion) {
    let world = World::generate(42);

    let mut group = c.benchmark_group("text");
    let embedder = Embedder::default();
    group.bench_function("embed_sentence", |b| {
        b.iter(|| black_box(embedder.embed("Ruth's Chris Steak House, 224 S. Beverly Dr.")))
    });
    group.bench_function("levenshtein", |b| {
        b.iter(|| {
            black_box(distance::levenshtein(
                "holoclean baseline",
                "holodetect baseline",
            ))
        })
    });
    group.bench_function("jaro_winkler", |b| {
        b.iter(|| {
            black_box(distance::jaro_winkler(
                "punch home design",
                "punch software design",
            ))
        })
    });
    group.finish();

    let mut synth = c.benchmark_group("synthesis");
    let examples = vec![
        ("20210315".to_string(), "Mar 15 2021".to_string()),
        ("19990405".to_string(), "Apr 5 1999".to_string()),
    ];
    let kb = KnowledgeBase::from_world(&world, 1.0, 1);
    synth.bench_function("llm_induce_date", |b| {
        b.iter(|| black_box(induce::induce(&examples, &kb)))
    });
    synth.bench_function("tde_synthesize_date", |b| {
        b.iter(|| black_box(tde::synthesize(&examples)))
    });
    synth.finish();

    let mut kb_group = c.benchmark_group("knowledge_base");
    kb_group.sample_size(20);
    kb_group.bench_function("build_from_world", |b| {
        b.iter(|| black_box(KnowledgeBase::from_world(&world, 0.88, 42)))
    });
    kb_group.bench_function("lookup", |b| {
        b.iter(|| black_box(kb.lookup("Copenhagen", unidm_world::Predicate::CityCountry)))
    });
    kb_group.finish();

    let mut world_group = c.benchmark_group("world");
    world_group.sample_size(10);
    world_group.bench_function("generate", |b| b.iter(|| black_box(World::generate(7))));
    world_group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
