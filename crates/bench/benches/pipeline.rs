//! Criterion benchmarks of the UniDM pipeline stages.
//!
//! These measure the framework's own costs (prompt rendering, retrieval
//! scoring, parsing, end-to-end task latency against the simulated model) —
//! the dimension the paper's Table 7 quantifies in tokens, here in
//! wall-clock time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use unidm::{PipelineConfig, Task, UniDm};
use unidm_llm::{LlmProfile, MockLlm};
use unidm_synthdata::imputation;
use unidm_tablestore::DataLake;
use unidm_world::World;

fn bench_pipeline(c: &mut Criterion) {
    let world = World::generate(42);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
    let ds = imputation::restaurant(&world, 42, 50);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();

    let mut group = c.benchmark_group("pipeline");
    group.bench_function("imputation_full", |b| {
        let runner = UniDm::new(&llm, PipelineConfig::paper_default());
        let t = &ds.targets[0];
        let task = Task::imputation("restaurants", t.row, "city", "name");
        b.iter(|| black_box(runner.run(&lake, &task).unwrap().answer))
    });
    group.bench_function("imputation_no_retrieval", |b| {
        let runner = UniDm::new(&llm, PipelineConfig::random_context());
        let t = &ds.targets[0];
        let task = Task::imputation("restaurants", t.row, "city", "name");
        b.iter(|| black_box(runner.run(&lake, &task).unwrap().answer))
    });
    group.bench_function("transformation", |b| {
        let runner = UniDm::new(&llm, PipelineConfig::paper_default());
        let task = Task::Transformation {
            examples: vec![
                ("20000101".into(), "2000-01-01".into()),
                ("19991231".into(), "1999-12-31".into()),
            ],
            input: "20210315".into(),
        };
        let empty = DataLake::new();
        b.iter(|| black_box(runner.run(&empty, &task).unwrap().answer))
    });
    group.finish();

    let mut sweep = c.benchmark_group("retrieval_sweep");
    for sample_size in [10usize, 50, 100] {
        sweep.bench_function(format!("sample_{sample_size}"), |b| {
            let config = PipelineConfig {
                sample_size,
                ..PipelineConfig::paper_default()
            };
            let runner = UniDm::new(&llm, config);
            let t = &ds.targets[1];
            let task = Task::imputation("restaurants", t.row, "city", "name");
            b.iter(|| black_box(runner.run(&lake, &task).unwrap().answer))
        });
    }
    sweep.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
