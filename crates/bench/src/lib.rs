//! Benchmark harness for the UniDM reproduction.
//!
//! One binary per paper table/figure — `table1` through `table11` plus
//! `fig5` — each printing the regenerated rows:
//!
//! ```text
//! cargo run -p unidm-bench --release --bin table1            # paper scale
//! cargo run -p unidm-bench --release --bin table1 -- --quick # smoke scale
//! ```
//!
//! `all_tables` runs everything in sequence. The Criterion benches
//! (`pipeline`, `substrates`) measure wall-clock costs of the pipeline
//! stages and substrate operations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use unidm_eval::{CacheConfig, ExperimentConfig};

/// Parses the common CLI of the bench binaries:
///
/// * `--quick` selects the smoke configuration;
/// * `--seed N` overrides the seed;
/// * `--cache` routes driver traffic through a canonicalizing sharded
///   prompt cache (in-memory);
/// * `--cache-dir DIR` additionally persists per-scenario snapshots under
///   `DIR`, so repeating the same bench invocation starts warm.
pub fn config_from_args() -> ExperimentConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut config = if args.iter().any(|a| a == "--quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::paper()
    };
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        if let Some(seed) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            config.seed = seed;
        }
    }
    if args.iter().any(|a| a == "--cache") {
        config.cache = CacheConfig::enabled();
    }
    if let Some(pos) = args.iter().position(|a| a == "--cache-dir") {
        match args.get(pos + 1) {
            Some(dir) if !dir.starts_with("--") => {
                config.cache = CacheConfig::enabled().with_snapshot_dir(dir);
            }
            _ => eprintln!(
                "warning: --cache-dir requires a directory argument; \
                 snapshot persistence disabled"
            ),
        }
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_paper_scale() {
        // Without --quick in the test binary args, the parser should fall
        // back to the paper configuration (args may contain test flags).
        let c = config_from_args();
        assert!(c.queries >= ExperimentConfig::quick().queries);
    }
}
