//! Benchmark harness for the UniDM reproduction.
//!
//! One binary per paper table/figure — `table1` through `table11` plus
//! `fig5` — each printing the regenerated rows:
//!
//! ```text
//! cargo run -p unidm-bench --release --bin table1            # paper scale
//! cargo run -p unidm-bench --release --bin table1 -- --quick # smoke scale
//! ```
//!
//! `all_tables` runs everything in sequence. The Criterion benches
//! (`pipeline`, `substrates`, `canon`) measure wall-clock costs of the
//! pipeline stages, substrate operations, and the canonicalizer hot path.
//!
//! The crate also hosts the perf-baseline instrumentation the `throughput`
//! binary uses to emit `BENCH_9.json`: a counting global allocator
//! ([`alloc_counter`]), an endpoint-call counter ([`CallCounter`]), and a
//! dependency-free JSON writer ([`JsonObject`]).

// `deny` rather than `forbid`: the counting global allocator must
// implement `GlobalAlloc`, which is an unsafe trait; that one module opts
// in explicitly and nothing else may.
#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use unidm_eval::{BackendConfig, CacheConfig, ExperimentConfig, RoutePlan};
use unidm_llm::{Completion, FaultPlan, LanguageModel, LlmError, Usage};

pub mod alloc_counter;

/// Route every allocation of the bench binaries through the counting
/// allocator, so perf regimes can assert exact allocation counts (the
/// overhead is two relaxed atomic increments per allocation).
#[global_allocator]
static GLOBAL_ALLOCATOR: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

/// A pass-through model wrapper that counts how many `complete` calls
/// reach the wrapped endpoint — the ground truth for "model calls" in the
/// perf baseline (usage counters measure tokens, not calls).
pub struct CallCounter<'a> {
    inner: &'a dyn LanguageModel,
    calls: AtomicU64,
}

impl<'a> CallCounter<'a> {
    /// Wraps `inner` with a fresh call counter.
    pub fn new(inner: &'a dyn LanguageModel) -> Self {
        CallCounter {
            inner,
            calls: AtomicU64::new(0),
        }
    }

    /// Completions forwarded to the wrapped endpoint so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Resets the call counter to zero.
    pub fn reset_calls(&self) {
        self.calls.store(0, Ordering::Relaxed);
    }
}

impl LanguageModel for CallCounter<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, prompt: &str) -> Result<Arc<Completion>, LlmError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.complete(prompt)
    }

    fn usage(&self) -> Usage {
        self.inner.usage()
    }

    fn reset_usage(&self) {
        self.inner.reset_usage();
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }
}

/// A minimal JSON object writer (the workspace has no serde): fields are
/// appended in call order, strings are escaped, nested objects and arrays
/// are spliced in raw.
#[derive(Debug)]
pub struct JsonObject {
    out: String,
    first: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            out: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push('"');
        self.out.push_str(&json_escape(name));
        self.out.push_str("\":");
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(mut self, name: &str, value: u64) -> Self {
        self.key(name);
        self.out.push_str(&value.to_string());
        self
    }

    /// Adds a float field (6 decimal places — microsecond resolution on
    /// values measured in seconds).
    pub fn field_f64(mut self, name: &str, value: f64) -> Self {
        self.key(name);
        self.out.push_str(&format!("{value:.6}"));
        self
    }

    /// Adds a string field (escaped).
    pub fn field_str(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        self.out.push('"');
        self.out.push_str(&json_escape(value));
        self.out.push('"');
        self
    }

    /// Adds a pre-rendered JSON value (object or array) verbatim.
    pub fn field_raw(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        self.out.push_str(value);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders a JSON array from pre-rendered element values.
pub fn json_array(elements: &[String]) -> String {
    format!("[{}]", elements.join(","))
}

/// Escapes a string for a JSON literal.
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses the common CLI of the bench binaries:
///
/// * `--quick` selects the smoke configuration;
/// * `--seed N` overrides the seed;
/// * `--cache` routes driver traffic through a canonicalizing sharded
///   prompt cache (in-memory);
/// * `--cache-dir DIR` additionally persists per-scenario snapshots under
///   `DIR`, so repeating the same bench invocation starts warm;
/// * `--faults [none|light|moderate|heavy]` routes driver traffic through
///   the resilient backend over a seeded fault injector (`moderate` when
///   the level is omitted);
/// * `--fault-seed N` seeds the fault schedule independently of the world
///   seed;
/// * `--rate-limit N` adds a client-side token bucket of `N` attempts per
///   second (burst `N/10`, at least 1) to the backend;
/// * `--route [N]` routes backend traffic through an `N`-replica
///   `RoutedBackend` fleet (3 when `N` is omitted) — each replica behind
///   its own breaker and, under `--faults`, its own fault schedule.
pub fn config_from_args() -> ExperimentConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut config = if args.iter().any(|a| a == "--quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::paper()
    };
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        if let Some(seed) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            config.seed = seed;
        }
    }
    if args.iter().any(|a| a == "--cache") {
        config.cache = CacheConfig::enabled();
    }
    if let Some(pos) = args.iter().position(|a| a == "--cache-dir") {
        match args.get(pos + 1) {
            Some(dir) if !dir.starts_with("--") => {
                config.cache = CacheConfig::enabled().with_snapshot_dir(dir);
            }
            _ => eprintln!(
                "warning: --cache-dir requires a directory argument; \
                 snapshot persistence disabled"
            ),
        }
    }
    let fault_seed = args
        .iter()
        .position(|a| a == "--fault-seed")
        .and_then(|pos| args.get(pos + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(config.seed);
    if let Some(pos) = args.iter().position(|a| a == "--faults") {
        let plan = args
            .get(pos + 1)
            .filter(|level| !level.starts_with("--"))
            .map(|level| {
                FaultPlan::named(level, fault_seed).unwrap_or_else(|| {
                    eprintln!("warning: unknown fault level {level:?}; using moderate");
                    FaultPlan::moderate(fault_seed)
                })
            })
            .unwrap_or_else(|| FaultPlan::moderate(fault_seed));
        config.backend = BackendConfig::resilient(fault_seed).with_faults(plan);
    }
    if let Some(pos) = args.iter().position(|a| a == "--rate-limit") {
        match args.get(pos + 1).and_then(|s| s.parse::<u64>().ok()) {
            Some(per_sec) if per_sec > 0 => {
                if !config.backend.enabled {
                    config.backend = BackendConfig::resilient(fault_seed);
                }
                config.backend = config
                    .backend
                    .with_rate_limit(per_sec, (per_sec / 10).max(1));
            }
            _ => eprintln!(
                "warning: --rate-limit requires a positive attempts/sec argument; \
                 rate limiting disabled"
            ),
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "--route") {
        let replicas = args
            .get(pos + 1)
            .filter(|v| !v.starts_with("--"))
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(3);
        if !config.backend.enabled {
            config.backend = BackendConfig::resilient(fault_seed);
        }
        config.backend = config.backend.with_route(RoutePlan::replicas(replicas));
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_paper_scale() {
        // Without --quick in the test binary args, the parser should fall
        // back to the paper configuration (args may contain test flags).
        let c = config_from_args();
        assert!(c.queries >= ExperimentConfig::quick().queries);
    }
}
