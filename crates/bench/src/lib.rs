//! Benchmark harness for the UniDM reproduction.
//!
//! One binary per paper table/figure — `table1` through `table11` plus
//! `fig5` — each printing the regenerated rows:
//!
//! ```text
//! cargo run -p unidm-bench --release --bin table1            # paper scale
//! cargo run -p unidm-bench --release --bin table1 -- --quick # smoke scale
//! ```
//!
//! `all_tables` runs everything in sequence. The Criterion benches
//! (`pipeline`, `substrates`) measure wall-clock costs of the pipeline
//! stages and substrate operations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use unidm_eval::{BackendConfig, CacheConfig, ExperimentConfig};
use unidm_llm::FaultPlan;

/// Parses the common CLI of the bench binaries:
///
/// * `--quick` selects the smoke configuration;
/// * `--seed N` overrides the seed;
/// * `--cache` routes driver traffic through a canonicalizing sharded
///   prompt cache (in-memory);
/// * `--cache-dir DIR` additionally persists per-scenario snapshots under
///   `DIR`, so repeating the same bench invocation starts warm;
/// * `--faults [none|light|moderate|heavy]` routes driver traffic through
///   the resilient backend over a seeded fault injector (`moderate` when
///   the level is omitted);
/// * `--fault-seed N` seeds the fault schedule independently of the world
///   seed;
/// * `--rate-limit N` adds a client-side token bucket of `N` attempts per
///   second (burst `N/10`, at least 1) to the backend.
pub fn config_from_args() -> ExperimentConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut config = if args.iter().any(|a| a == "--quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::paper()
    };
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        if let Some(seed) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            config.seed = seed;
        }
    }
    if args.iter().any(|a| a == "--cache") {
        config.cache = CacheConfig::enabled();
    }
    if let Some(pos) = args.iter().position(|a| a == "--cache-dir") {
        match args.get(pos + 1) {
            Some(dir) if !dir.starts_with("--") => {
                config.cache = CacheConfig::enabled().with_snapshot_dir(dir);
            }
            _ => eprintln!(
                "warning: --cache-dir requires a directory argument; \
                 snapshot persistence disabled"
            ),
        }
    }
    let fault_seed = args
        .iter()
        .position(|a| a == "--fault-seed")
        .and_then(|pos| args.get(pos + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(config.seed);
    if let Some(pos) = args.iter().position(|a| a == "--faults") {
        let plan = args
            .get(pos + 1)
            .filter(|level| !level.starts_with("--"))
            .map(|level| {
                FaultPlan::named(level, fault_seed).unwrap_or_else(|| {
                    eprintln!("warning: unknown fault level {level:?}; using moderate");
                    FaultPlan::moderate(fault_seed)
                })
            })
            .unwrap_or_else(|| FaultPlan::moderate(fault_seed));
        config.backend = BackendConfig::resilient(fault_seed).with_faults(plan);
    }
    if let Some(pos) = args.iter().position(|a| a == "--rate-limit") {
        match args.get(pos + 1).and_then(|s| s.parse::<u64>().ok()) {
            Some(per_sec) if per_sec > 0 => {
                if !config.backend.enabled {
                    config.backend = BackendConfig::resilient(fault_seed);
                }
                config.backend = config
                    .backend
                    .with_rate_limit(per_sec, (per_sec / 10).max(1));
            }
            _ => eprintln!(
                "warning: --rate-limit requires a positive attempts/sec argument; \
                 rate limiting disabled"
            ),
        }
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_paper_scale() {
        // Without --quick in the test binary args, the parser should fall
        // back to the paper configuration (args may contain test flags).
        let c = config_from_args();
        assert!(c.queries >= ExperimentConfig::quick().queries);
    }
}
