//! Regenerates the paper's Table 11.

fn main() {
    let config = unidm_bench::config_from_args();
    println!("{}", unidm_eval::extraction::table11(config));
}
