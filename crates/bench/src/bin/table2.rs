//! Regenerates the paper's Table 2.

fn main() {
    let config = unidm_bench::config_from_args();
    println!("{}", unidm_eval::transformation::table2(config));
}
