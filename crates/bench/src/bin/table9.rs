//! Regenerates the paper's Table 9.

fn main() {
    let config = unidm_bench::config_from_args();
    println!("{}", unidm_eval::ablation::table9(config));
}
