//! Regenerates the paper's Table 4.

fn main() {
    let config = unidm_bench::config_from_args();
    println!("{}", unidm_eval::matching::table4(config));
}
