//! Throughput of the batch execution engine: serial vs. batched vs.
//! batched+cached on an imputation workload.
//!
//! Reports tasks/sec, total model tokens, and cache statistics per regime,
//! and cross-checks that all three regimes produce identical answers.
//!
//! ```text
//! cargo run -p unidm-bench --release --bin throughput            # paper scale
//! cargo run -p unidm-bench --release --bin throughput -- --quick # smoke scale
//! ```

use std::time::Instant;

use unidm::{BatchRunner, PipelineConfig, PromptCache, Task};
use unidm_bench::config_from_args;
use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
use unidm_synthdata::imputation;
use unidm_tablestore::DataLake;
use unidm_world::World;

struct Regime {
    name: &'static str,
    answers: Vec<String>,
    elapsed_secs: f64,
    model_tokens: usize,
    cache_line: Option<String>,
}

fn main() {
    let config = config_from_args();
    let n_tasks = config.queries.max(50);
    let world = World::generate(config.seed);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), config.seed);
    let ds = imputation::restaurant(&world, config.seed, n_tasks);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let tasks: Vec<Task> = ds
        .targets
        .iter()
        .map(|t| {
            Task::imputation(
                ds.table.name(),
                t.row,
                ds.target_attr.clone(),
                ds.key_attr.clone(),
            )
        })
        .collect();
    let pipeline = PipelineConfig::paper_default().with_seed(config.seed);
    let workers = BatchRunner::new(&llm, pipeline).workers();

    println!(
        "Batch throughput: {} imputation tasks (Restaurant), {} workers, model {}.",
        tasks.len(),
        workers,
        llm.name(),
    );

    let run = |name: &'static str, cached: bool, workers: usize| -> Regime {
        llm.reset_usage();
        let cache = PromptCache::unbounded(&llm);
        let model: &dyn LanguageModel = if cached { &cache } else { &llm };
        let runner = BatchRunner::new(model, pipeline).with_workers(workers);
        let start = Instant::now();
        let answers = runner.answers(&lake, &tasks);
        let elapsed_secs = start.elapsed().as_secs_f64();
        Regime {
            name,
            answers,
            elapsed_secs,
            model_tokens: llm.usage().total(),
            cache_line: cached.then(|| {
                let s = cache.stats();
                format!(
                    "{} hits / {} misses ({:.0}% hit rate), {} tokens saved",
                    s.hits,
                    s.misses,
                    s.hit_rate() * 100.0,
                    s.tokens_saved,
                )
            }),
        }
    };

    let regimes = [
        run("serial", false, 1),
        run("batched", false, workers),
        run("batched+cached", true, workers),
    ];

    println!(
        "{:<16}{:>12}{:>14}{:>16}{:>10}",
        "Regime", "Time (s)", "Tasks/sec", "Model tokens", "Speedup"
    );
    println!("{}", "-".repeat(68));
    let baseline = regimes[0].elapsed_secs;
    for r in &regimes {
        println!(
            "{:<16}{:>12.3}{:>14.1}{:>16}{:>9.2}x",
            r.name,
            r.elapsed_secs,
            r.answers.len() as f64 / r.elapsed_secs.max(1e-9),
            r.model_tokens,
            baseline / r.elapsed_secs.max(1e-9),
        );
        if let Some(line) = &r.cache_line {
            println!("{:<16}cache: {line}", "");
        }
    }

    for r in &regimes[1..] {
        assert_eq!(
            r.answers, regimes[0].answers,
            "{} diverged from the serial answers",
            r.name
        );
    }
    let cached = regimes.last().expect("three regimes");
    assert!(
        cached.model_tokens < regimes[0].model_tokens,
        "cached regime should consume fewer model tokens ({} vs {})",
        cached.model_tokens,
        regimes[0].model_tokens,
    );
    println!(
        "\nAll regimes returned identical answers; cache reduced model tokens by {}.",
        regimes[0].model_tokens - cached.model_tokens
    );
}
