//! Throughput of the batch execution engine: serial vs. batched vs.
//! cold-cache vs. warm-cache on an imputation workload.
//!
//! The cached regimes run a sharded [`PromptCache`] at
//! [`CanonLevel::TableStem`]; the warm regime restores the cold run's
//! snapshot into a fresh cache first, the way a repeated eval run starts.
//! Reports tasks/sec, model tokens, per-shard hit rates for both cached
//! regimes, and the cold → warm tokens-saved delta; cross-checks that
//! serial and batched answers are identical and that the two cached
//! regimes agree with each other bit-for-bit.
//!
//! With `--faults` (and optionally `--rate-limit`) a fifth regime runs the
//! same cached workload through the resilient backend over a seeded fault
//! injector, reporting retries, breaker trips and goodput on the virtual
//! clock — and cross-checking that the faulty answers are bit-identical to
//! the fault-free serial run.
//!
//! ```text
//! cargo run -p unidm-bench --release --bin throughput            # paper scale
//! cargo run -p unidm-bench --release --bin throughput -- --quick # smoke scale
//! cargo run -p unidm-bench --release --bin throughput -- --cache-dir .unidm-cache
//! #   ^ persists the snapshot, so the *next* invocation's cold regime is warm too
//! cargo run -p unidm-bench --release --bin throughput -- --faults heavy --rate-limit 200
//! ```

use std::time::Instant;

use unidm::{BatchRunner, CanonLevel, PipelineConfig, PromptCache, Task};
use unidm_bench::config_from_args;
use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
use unidm_synthdata::imputation;
use unidm_tablestore::DataLake;
use unidm_world::World;

struct Regime {
    name: &'static str,
    answers: Vec<String>,
    elapsed_secs: f64,
    model_tokens: usize,
    stats: Option<unidm::CacheStats>,
    shard_stats: Vec<unidm::CacheStats>,
}

fn print_shards(shards: &[unidm::CacheStats]) {
    for (i, s) in shards.iter().enumerate() {
        if s.hits + s.misses == 0 {
            continue;
        }
        println!(
            "{:<16}shard {i}: {} hits / {} misses ({:.0}% hit rate), {} tokens saved",
            "",
            s.hits,
            s.misses,
            s.hit_rate() * 100.0,
            s.tokens_saved,
        );
    }
}

fn main() {
    let config = config_from_args();
    let n_tasks = config.queries.max(50);
    let world = World::generate(config.seed);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), config.seed);
    let ds = imputation::restaurant(&world, config.seed, n_tasks);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let tasks: Vec<Task> = ds
        .targets
        .iter()
        .map(|t| {
            Task::imputation(
                ds.table.name(),
                t.row,
                ds.target_attr.clone(),
                ds.key_attr.clone(),
            )
        })
        .collect();
    let pipeline = PipelineConfig::paper_default().with_seed(config.seed);
    let workers = BatchRunner::new(&llm, pipeline).workers();
    let snapshot_path = config.cache.snapshot_dir.as_ref().map(|dir| {
        let _ = std::fs::create_dir_all(dir);
        dir.join(format!("throughput-seed{}.promptcache", config.seed))
    });

    println!(
        "Batch throughput: {} imputation tasks (Restaurant), {} workers, model {}, \
         cache level {}.",
        tasks.len(),
        workers,
        llm.name(),
        CanonLevel::TableStem,
    );

    let run = |name: &'static str, cache: Option<&PromptCache<'_>>, workers: usize| -> Regime {
        llm.reset_usage();
        let model: &dyn LanguageModel = match cache {
            Some(cache) => cache,
            None => &llm,
        };
        let runner = BatchRunner::new(model, pipeline).with_workers(workers);
        let start = Instant::now();
        let answers = runner.answers(&lake, &tasks);
        let elapsed_secs = start.elapsed().as_secs_f64();
        Regime {
            name,
            answers,
            elapsed_secs,
            model_tokens: llm.usage().total(),
            stats: cache.map(PromptCache::stats),
            shard_stats: cache.map(PromptCache::shard_stats).unwrap_or_default(),
        }
    };

    let serial = run("serial", None, 1);
    let batched = run("batched", None, workers);

    // Cold cache: canonicalized, sharded, starting empty (or from a prior
    // invocation's snapshot when --cache-dir is given).
    let cold_cache = PromptCache::unbounded(&llm).with_canonicalization(CanonLevel::TableStem);
    if let Some(path) = &snapshot_path {
        if path.exists() {
            match cold_cache.load_from(path) {
                Ok(n) => println!("(loaded {n} entries from {})", path.display()),
                Err(e) => println!("(cold start: {e})"),
            }
        }
    }
    let cold = run("cold cache", Some(&cold_cache), workers);

    // Warm cache: a fresh cache restored from the cold run's snapshot —
    // the state a repeated eval run starts from.
    let snapshot = cold_cache.snapshot();
    let warm_cache = PromptCache::unbounded(&llm).with_canonicalization(CanonLevel::TableStem);
    warm_cache
        .restore(&snapshot)
        .expect("snapshot written by this process must restore");
    let warm = run("warm cache", Some(&warm_cache), workers);
    if let Some(path) = &snapshot_path {
        match warm_cache.save_to(path) {
            Ok(()) => println!("(saved snapshot to {})", path.display()),
            Err(e) => println!("(snapshot not saved: {e})"),
        }
    }

    let regimes = [serial, batched, cold, warm];
    println!(
        "{:<16}{:>12}{:>14}{:>16}{:>10}",
        "Regime", "Time (s)", "Tasks/sec", "Model tokens", "Speedup"
    );
    println!("{}", "-".repeat(68));
    let baseline = regimes[0].elapsed_secs;
    for r in &regimes {
        println!(
            "{:<16}{:>12.3}{:>14.1}{:>16}{:>9.2}x",
            r.name,
            r.elapsed_secs,
            r.answers.len() as f64 / r.elapsed_secs.max(1e-9),
            r.model_tokens,
            baseline / r.elapsed_secs.max(1e-9),
        );
        print_shards(&r.shard_stats);
    }

    let [serial, batched, cold, warm] = &regimes;
    let (cold_stats, warm_stats) = (
        cold.stats.expect("cold regime is cached"),
        warm.stats.expect("warm regime is cached"),
    );
    println!(
        "\nCold run:  {:>5.1}% hit rate, {} tokens saved, {} model tokens",
        cold_stats.hit_rate() * 100.0,
        cold_stats.tokens_saved,
        cold.model_tokens,
    );
    println!(
        "Warm run:  {:>5.1}% hit rate, {} tokens saved, {} model tokens",
        warm_stats.hit_rate() * 100.0,
        warm_stats.tokens_saved,
        warm.model_tokens,
    );
    println!(
        "Cold → warm: +{} tokens saved, -{} model tokens",
        warm_stats
            .tokens_saved
            .saturating_sub(cold_stats.tokens_saved),
        cold.model_tokens.saturating_sub(warm.model_tokens),
    );

    if config.backend.enabled {
        // Faulty regime: the cached workload again, but every miss now
        // crosses the resilient backend (limiter → retry → breaker) and a
        // seeded fault injector. Answers must not move.
        let backend = config.backend.wrap(&llm);
        let faulty_cache =
            PromptCache::unbounded(backend.model()).with_canonicalization(CanonLevel::TableStem);
        let faulty = run("faulty", Some(&faulty_cache), workers);
        let stats = backend.stats().expect("backend enabled");
        let virtual_secs = backend.elapsed_us() as f64 / 1e6;
        println!(
            "\nFaulty backend regime ({} plan, rate limit {}):",
            config
                .backend
                .faults
                .map(|_| "seeded fault")
                .unwrap_or("fault-free"),
            config
                .backend
                .rate
                .map(|r| format!("{}/s burst {}", r.tokens_per_sec, r.burst))
                .unwrap_or_else(|| "none".into()),
        );
        println!(
            "  {} calls, {} attempts, {} retries, {} breaker trips ({} fast-fails)",
            stats.calls,
            stats.attempts,
            stats.retries,
            stats.breaker_trips,
            stats.breaker_fast_fails,
        );
        println!(
            "  {} timeouts / {} rate-limited / {} transient errors absorbed; \
             {} throttle waits ({:.3}s virtual)",
            stats.timeouts,
            stats.rate_limited,
            stats.transients,
            stats.throttle_waits,
            stats.throttle_wait_us as f64 / 1e6,
        );
        println!(
            "  goodput: {:.1} tasks/virtual-sec over {:.3} virtual secs; \
             attempt efficiency {:.0}%",
            faulty.answers.len() as f64 / virtual_secs.max(1e-9),
            virtual_secs,
            100.0 * stats.calls as f64 / stats.attempts.max(1) as f64,
        );
        assert_eq!(
            faulty.answers, serial.answers,
            "faults and throttling must never change answers"
        );
        assert_eq!(stats.failures, 0, "every faulty call must complete");
        println!("  faulty answers identical to the fault-free serial run.");
    }

    assert_eq!(
        batched.answers, serial.answers,
        "batched diverged from the serial answers"
    );
    assert_eq!(
        warm.answers, cold.answers,
        "warm cache diverged from the cold cache"
    );
    assert!(
        cold.model_tokens < serial.model_tokens,
        "cold cache should consume fewer model tokens ({} vs {})",
        cold.model_tokens,
        serial.model_tokens,
    );
    assert!(
        warm.model_tokens <= cold.model_tokens,
        "warm cache should consume no more model tokens ({} vs {})",
        warm.model_tokens,
        cold.model_tokens,
    );
    // >= rather than >: with --cache-dir, a repeat invocation's "cold"
    // regime loads the persisted snapshot and both regimes hit 100%.
    assert!(
        warm_stats.hit_rate() >= cold_stats.hit_rate(),
        "warm hit rate should not trail cold: {:.2} vs {:.2}",
        warm_stats.hit_rate(),
        cold_stats.hit_rate(),
    );
    println!(
        "\nSerial and batched answers identical; cold and warm cached answers identical; \
         cache reduced model tokens by {} (cold) and {} (warm).",
        serial.model_tokens - cold.model_tokens,
        serial.model_tokens - warm.model_tokens,
    );
}
