//! Throughput of the batch execution engine — and the machine-readable
//! perf baseline (`BENCH_10.json`) every future PR has to beat.
//!
//! Regimes:
//!
//! * **serial / batched / cold cache / warm cache** — the classic ladder:
//!   one worker, the work-stealing pool, the pool over a cold sharded
//!   [`PromptCache`] at [`CanonLevel::TableStem`], and the pool over a
//!   fresh cache restored from the cold run's snapshot.
//! * **cold store / warm store** — the tiered store: the same workload
//!   with a [`CacheStore`] disk tier beneath the cache. The cold run
//!   populates a fresh `UDMCACHE1` file (every unique key admitted); the
//!   warm run reopens it under a *fresh* tier 0 — a cold process image —
//!   and must answer entirely from disk: **zero** model calls. A
//!   scan-resistance pass then streams 10^5 distinct one-touch keys at a
//!   capacity-bounded store and asserts the TinyLFU filter rejects every
//!   one, keeping the hot set's hit rate at 100%; a churn pass displaces
//!   entries and verifies compaction reclaims every dead frame.
//! * **canon v2** — the workload's recorded `p_dp`/`p_ri` prompts plus a
//!   deterministically reordered variant of each, completed at
//!   [`CanonLevel::TableStem`] and [`CanonLevel::Semantic`]: the v2 fold
//!   must turn every reordered variant into a hit, strictly beating the
//!   TableStem hit rate on the same stream.
//! * **sync / pipelined / pipelined hedged heavy-tail** — the same
//!   workload against an endpoint where 3% of attempts take 2s of virtual
//!   time. The synchronous path blocks through the resilient backend one
//!   call at a time; the pipelined path runs continuous batch admission
//!   through the event-driven [`Dispatcher`]; the hedged path additionally
//!   arms a P90 hedge timer per request. Answers must stay bit-identical,
//!   endpoint calls must equal unique canonical keys (hedge duplicates
//!   accounted separately and exactly), and both virtual-time makespan and
//!   P99 must beat the synchronous path.
//! * **duplicate-heavy** — the same workload with every task repeated
//!   `DUP_FACTOR` times, interleaved. Run serially (planner off) to count
//!   the unique canonical keys, in parallel at 1 and 8 cache shards
//!   (planner off — duplicate prompts hit the single-flight table), and
//!   with the dedup planner on (duplicates never reach the cache). The
//!   binary *asserts* that total endpoint calls equal the number of unique
//!   canonical keys and that every regime's answers are bit-identical to
//!   serial — exact equalities, not thresholds, because the whole stack is
//!   deterministic.
//! * **warm-path allocation budget** — re-looks up the canonical texts of
//!   the duplicate-heavy workload against a warm cache under a counting
//!   allocator and asserts **zero** heap allocations.
//!
//! * **routed heavy-tail fleet** — the cached workload against a
//!   [`RoutedBackend`] fleet (a pinned 3-replica configuration, so the
//!   fleet-beats-every-single guarantee below is a deterministic property
//!   of the committed benchmark — `--route N` instead wraps the *standard*
//!   regimes above in a routed fleet) where every replica carries its own
//!   fault injector (heavy tail plus
//!   timeouts/429s/5xxs), breaker and adaptive AIMD token bucket. Run at
//!   two fault seeds and {1, 8} workers against a single-endpoint
//!   reference with the identical per-endpoint capacity: answers must be
//!   bit-identical to the fault-free serial run in every combination, and
//!   the fleet's virtual-time makespan must strictly beat **every**
//!   single-endpoint run (goodput under faults above any single
//!   endpoint).
//! * **cascade** — the same prompt stream through a small→large
//!   [`CascadeBackend`] (GPT-J-6B escalating to GPT-3-175B below a
//!   confidence gate) versus a large-model-only run: strictly fewer
//!   large-tier tokens and strictly lower billed cost per answer.
//!
//! With `--faults` (and optionally `--rate-limit`) a faulty regime runs
//! the cached workload through the resilient backend over a seeded fault
//! injector, reporting retries, breaker trips and goodput on the virtual
//! clock — and cross-checking that the faulty answers are bit-identical to
//! the fault-free serial run.
//!
//! * **scale (out-of-core)** — a `--scale-rows` synthetic lake
//!   ([`ScaleSpec`], 10^5 in CI smoke, 10^6 by default) spilled to a disk
//!   segment and streamed through [`BatchRunner::run_streaming`] under the
//!   counting allocator. The binary first proves streaming ==
//!   materialized at small scale (full [`unidm::RunOutput`] equality plus
//!   exact dedup counters, with duplicates spanning partitions), then
//!   asserts the large run's peak live allocation stays under a fixed
//!   budget that is independent of the row count — a materialized lake at
//!   10^6 rows would not fit it. `--scale-only` runs just this regime.
//!
//! ```text
//! cargo run -p unidm-bench --release --bin throughput            # paper scale
//! cargo run -p unidm-bench --release --bin throughput -- --quick # smoke scale
//! cargo run -p unidm-bench --release --bin throughput -- --bench-json out/BENCH_10.json
//! cargo run -p unidm-bench --release --bin throughput -- --faults heavy --rate-limit 200
//! cargo run -p unidm-bench --release --bin throughput -- --route 4 # fleet behind the standard regimes
//! cargo run -p unidm-bench --release --bin throughput -- --scale-only --scale-rows 100000
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use unidm::{
    AimdPolicy, BackendConfig, BatchRunner, CacheStore, CanonLevel, CascadeBackend, CascadePolicy,
    Dispatcher, HedgePolicy, PipelineConfig, PromptCache, RoutePlan, RoutedBackend, StoreConfig,
    Task,
};
use unidm_bench::alloc_counter::{self, AllocationDelta};
use unidm_bench::{config_from_args, CallCounter, JsonObject};
use unidm_llm::{Clock, Completion, FaultPlan, LanguageModel, LlmProfile, MockLlm, Usage};
use unidm_synthdata::imputation;
use unidm_synthdata::scale::{ScaleSpec, TABLE_NAME as SCALE_TABLE};
use unidm_tablestore::DataLake;
use unidm_world::World;

/// How many times each task repeats in the duplicate-heavy regime.
const DUP_FACTOR: usize = 4;

/// Imputation tasks dispatched by the out-of-core `scale` regime, spread
/// evenly over the whole row range so the pager pages across the segment.
const SCALE_TASKS: usize = 96;
/// Rows per sealed chunk of the scale table.
const SCALE_CHUNK_ROWS: usize = 1024;
/// Chunks the pager may keep resident while streaming.
const SCALE_PAGE_BUDGET: usize = 8;
/// Tasks per streaming partition.
const SCALE_PARTITION_TASKS: usize = 32;
/// Peak live-byte budget for the whole out-of-core section — segment
/// generation included. The bound is a fixed constant: it does not scale
/// with `--scale-rows`, which is the point. A 10^6-row lake held in
/// memory in chunked columnar form alone exceeds it, so staying under
/// proves the streaming run never materializes the lake.
const SCALE_PEAK_BUDGET_BYTES: u64 = 32 * 1024 * 1024;

struct Regime {
    name: &'static str,
    answers: Vec<String>,
    elapsed_secs: f64,
    model_tokens: usize,
    model_calls: u64,
    stats: Option<unidm::CacheStats>,
    shard_stats: Vec<unidm::CacheStats>,
}

impl Regime {
    fn to_json(&self) -> String {
        let mut obj = JsonObject::new()
            .field_str("name", self.name)
            .field_f64("wall_s", self.elapsed_secs)
            .field_f64(
                "tasks_per_s",
                self.answers.len() as f64 / self.elapsed_secs.max(1e-9),
            )
            .field_u64("model_tokens", self.model_tokens as u64)
            .field_u64("model_calls", self.model_calls);
        if let Some(stats) = self.stats {
            obj = obj
                .field_u64("cache_hits", stats.hits as u64)
                .field_u64("cache_misses", stats.misses as u64)
                .field_u64("cache_coalesced", stats.coalesced as u64)
                .field_u64("tokens_saved", stats.tokens_saved as u64);
        }
        obj.finish()
    }
}

fn print_shards(shards: &[unidm::CacheStats]) {
    for (i, s) in shards.iter().enumerate() {
        if s.lookups() == 0 {
            continue;
        }
        println!(
            "{:<16}shard {i}: {} hits / {} coalesced / {} misses ({:.0}% hit rate), \
             {} tokens saved",
            "",
            s.hits,
            s.coalesced,
            s.misses,
            s.hit_rate() * 100.0,
            s.tokens_saved,
        );
    }
}

fn bench_json_path() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--bench-json")
        .and_then(|pos| args.get(pos + 1))
        .filter(|path| !path.starts_with("--"))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_10.json"))
}

/// Parses `--scale-only` and `--scale-rows N` (default 10^6, or 10^5
/// under `--quick`).
fn scale_args() -> (bool, usize) {
    let args: Vec<String> = std::env::args().collect();
    let only = args.iter().any(|a| a == "--scale-only");
    let default_rows = if args.iter().any(|a| a == "--quick") {
        100_000
    } else {
        1_000_000
    };
    let rows = args
        .iter()
        .position(|a| a == "--scale-rows")
        .and_then(|pos| args.get(pos + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_rows);
    (only, rows)
}

/// The out-of-core `scale` regime: prove streaming == materialized at
/// small scale, then stream `rows` rows from a disk segment under the
/// counting allocator and assert the peak is bounded and row-count
/// independent. Returns the regime's JSON section.
fn run_scale(llm: &CallCounter<'_>, seed: u64, rows: usize) -> String {
    let pipeline = PipelineConfig {
        // The paper-default 50-record sample is tuned for hundred-row
        // eval tables; against a 10^6-row lake it would dominate run
        // time without changing what the regime measures.
        sample_size: 8,
        ..PipelineConfig::paper_default().with_seed(seed)
    };
    let task_for = |row: usize| Task::imputation(SCALE_TABLE, row, "city", "name");

    // ── Streaming == materialized (small scale) ─────────────────────────
    // Full RunOutput equality (answers, per-run usage, trace prompts) and
    // exact dedup counters, with duplicate tasks spanning partition
    // boundaries so the cross-partition memo is exercised.
    let small = ScaleSpec::new(4_000, seed).with_chunk_rows(256);
    let small_lake: DataLake = [small.users_table()].into_iter().collect();
    let mut small_tasks: Vec<Task> = small.target_rows().take(60).map(task_for).collect();
    let dups: Vec<Task> = small_tasks.iter().step_by(7).cloned().collect();
    small_tasks.extend(dups);
    let runner = BatchRunner::new(llm, pipeline)
        .with_workers(1)
        .with_dedup(true)
        .with_partition_tasks(16);
    let report = runner.run_report(&small_lake, &small_tasks);
    let mut streamed = Vec::with_capacity(small_tasks.len());
    let stream_report =
        runner.run_streaming(&small_lake, small_tasks.iter().cloned(), |i, result| {
            assert_eq!(i, streamed.len(), "sink must see results in task order");
            streamed.push(result);
        });
    assert_eq!(
        streamed, report.results,
        "streamed outputs must be identical to the materialized run"
    );
    assert_eq!(stream_report.tasks, small_tasks.len());
    assert_eq!(stream_report.unique_tasks, report.unique_tasks);
    assert_eq!(stream_report.coalesced_tasks, report.coalesced_tasks);

    // ── Out-of-core streaming under the allocation meter ────────────────
    let spec = ScaleSpec::new(rows, seed).with_chunk_rows(SCALE_CHUNK_ROWS);
    let stride = (rows / 10 / SCALE_TASKS).max(1);
    let mut seg_path = std::env::temp_dir();
    seg_path.push(format!("unidm-scale-{}-{rows}.seg", std::process::id()));
    llm.reset_calls();
    llm.reset_usage();

    let baseline = alloc_counter::reset_peak_to_live();
    let spilled = spec
        .users_segment(&seg_path, SCALE_PAGE_BUDGET)
        .expect("scale segment written");
    let lake: DataLake = [spilled].into_iter().collect();
    let tasks = spec
        .target_rows()
        .step_by(stride)
        .take(SCALE_TASKS)
        .map(task_for);
    let runner = BatchRunner::new(llm, pipeline)
        .with_workers(1)
        // Dedup off: the cross-partition memo grows with unique tasks,
        // and strict row-count independence is the property under test.
        .with_dedup(false)
        .with_partition_tasks(SCALE_PARTITION_TASKS);
    let start = Instant::now();
    let (mut answers, mut errors) = (0u64, 0u64);
    let mut answer_fnv = 0xcbf2_9ce4_8422_2325u64;
    let scale_report = runner.run_streaming(&lake, tasks, |_, result| match result {
        Ok(output) => {
            answers += 1;
            for byte in output.answer.bytes() {
                answer_fnv ^= u64::from(byte);
                answer_fnv = answer_fnv.wrapping_mul(0x100_0000_01b3);
            }
        }
        Err(_) => errors += 1,
    });
    let elapsed_secs = start.elapsed().as_secs_f64();
    let peak = alloc_counter::peak_live_bytes().saturating_sub(baseline);
    let resident = lake
        .table(SCALE_TABLE)
        .expect("scale table in lake")
        .resident_chunks();
    std::fs::remove_file(&seg_path).ok();

    assert_eq!(scale_report.tasks, SCALE_TASKS, "task stream ran dry early");
    assert_eq!(
        scale_report.partitions,
        SCALE_TASKS.div_ceil(SCALE_PARTITION_TASKS)
    );
    assert!(
        resident <= SCALE_PAGE_BUDGET,
        "pager exceeded its budget: {resident} chunks resident"
    );
    assert!(
        peak < SCALE_PEAK_BUDGET_BYTES,
        "out-of-core peak {peak} bytes exceeds the {SCALE_PEAK_BUDGET_BYTES}-byte \
         budget at {rows} rows — streaming is holding row-count-proportional state"
    );

    println!(
        "\nScale regime (out-of-core): {rows} rows spilled to disk, {} chunks of \
         {SCALE_CHUNK_ROWS} rows, pager budget {SCALE_PAGE_BUDGET};",
        rows.div_ceil(SCALE_CHUNK_ROWS),
    );
    println!(
        "  {} tasks in {} partitions of {SCALE_PARTITION_TASKS}: {answers} answers, \
         {errors} errors, {} model calls in {elapsed_secs:.3}s ({:.1} tasks/s)",
        scale_report.tasks,
        scale_report.partitions,
        llm.calls(),
        scale_report.tasks as f64 / elapsed_secs.max(1e-9),
    );
    println!(
        "  peak live allocation {:.2} MiB (budget {} MiB, row-count independent); \
         streaming == materialized verified at 4000 rows ({} tasks, {} coalesced).",
        peak as f64 / (1024.0 * 1024.0),
        SCALE_PEAK_BUDGET_BYTES / (1024 * 1024),
        stream_report.tasks,
        stream_report.coalesced_tasks,
    );

    JsonObject::new()
        .field_u64("rows", rows as u64)
        .field_u64("chunk_rows", SCALE_CHUNK_ROWS as u64)
        .field_u64("page_budget", SCALE_PAGE_BUDGET as u64)
        .field_u64("partition_tasks", SCALE_PARTITION_TASKS as u64)
        .field_u64("tasks", scale_report.tasks as u64)
        .field_u64("partitions", scale_report.partitions as u64)
        .field_u64("unique_tasks", scale_report.unique_tasks as u64)
        .field_u64("coalesced_tasks", scale_report.coalesced_tasks as u64)
        .field_u64("answers", answers)
        .field_u64("errors", errors)
        .field_u64("model_calls", llm.calls())
        .field_u64("answer_fnv", answer_fnv)
        .field_u64("peak_live_bytes", peak)
        .field_u64("peak_budget_bytes", SCALE_PEAK_BUDGET_BYTES)
        .field_f64("wall_s", elapsed_secs)
        .finish()
}

fn main() {
    let config = config_from_args();
    let n_tasks = config.queries.max(50);
    let world = World::generate(config.seed);
    let mock = MockLlm::new(&world, LlmProfile::gpt3_175b(), config.seed);
    // Every regime talks to the endpoint through a call counter: "model
    // calls" in the baseline means completions that actually reached the
    // model, the quantity coalescing exists to minimize.
    let llm = CallCounter::new(&mock);
    let (scale_only, scale_rows) = scale_args();
    if scale_only {
        run_scale(&llm, config.seed, scale_rows);
        return;
    }
    let ds = imputation::restaurant(&world, config.seed, n_tasks);
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let tasks: Vec<Task> = ds
        .targets
        .iter()
        .map(|t| {
            Task::imputation(
                ds.table.name(),
                t.row,
                ds.target_attr.clone(),
                ds.key_attr.clone(),
            )
        })
        .collect();
    let pipeline = PipelineConfig::paper_default().with_seed(config.seed);
    let workers = BatchRunner::new(&llm, pipeline).workers();
    let snapshot_path = config.cache.snapshot_dir.as_ref().map(|dir| {
        let _ = std::fs::create_dir_all(dir);
        dir.join(format!("throughput-seed{}.promptcache", config.seed))
    });

    println!(
        "Batch throughput: {} imputation tasks (Restaurant), {} workers, model {}, \
         cache level {}.",
        tasks.len(),
        workers,
        llm.name(),
        CanonLevel::TableStem,
    );

    let run = |name: &'static str,
               cache: Option<&PromptCache<'_>>,
               task_list: &[Task],
               workers: usize,
               dedup: bool|
     -> (Regime, unidm::BatchReport) {
        llm.reset_usage();
        llm.reset_calls();
        let model: &dyn LanguageModel = match cache {
            Some(cache) => cache,
            None => &llm,
        };
        let runner = BatchRunner::new(model, pipeline)
            .with_workers(workers)
            .with_dedup(dedup);
        let start = Instant::now();
        let report = runner.run_report(&lake, task_list);
        let elapsed_secs = start.elapsed().as_secs_f64();
        let answers = report
            .results
            .iter()
            .map(|r| r.as_ref().map(|o| o.answer.clone()).unwrap_or_default())
            .collect();
        (
            Regime {
                name,
                answers,
                elapsed_secs,
                model_tokens: llm.usage().total(),
                model_calls: llm.calls(),
                stats: cache.map(PromptCache::stats),
                shard_stats: cache.map(PromptCache::shard_stats).unwrap_or_default(),
            },
            report,
        )
    };

    let (serial, _) = run("serial", None, &tasks, 1, false);
    let (batched, _) = run("batched", None, &tasks, workers, false);

    // Cold cache: canonicalized, sharded, starting empty (or from a prior
    // invocation's snapshot when --cache-dir is given).
    let cold_cache = PromptCache::unbounded(&llm).with_canonicalization(CanonLevel::TableStem);
    if let Some(path) = &snapshot_path {
        if path.exists() {
            match cold_cache.load_from(path) {
                Ok(n) => println!("(loaded {n} entries from {})", path.display()),
                Err(e) => println!("(cold start: {e})"),
            }
        }
    }
    let (cold, _) = run("cold cache", Some(&cold_cache), &tasks, workers, false);

    // Warm cache: a fresh cache restored from the cold run's snapshot —
    // the state a repeated eval run starts from.
    let snapshot = cold_cache.snapshot();
    let warm_cache = PromptCache::unbounded(&llm).with_canonicalization(CanonLevel::TableStem);
    warm_cache
        .restore(&snapshot)
        .expect("snapshot written by this process must restore");
    let (warm, _) = run("warm cache", Some(&warm_cache), &tasks, workers, false);
    if let Some(path) = &snapshot_path {
        match warm_cache.save_to(path) {
            Ok(()) => println!("(saved snapshot to {})", path.display()),
            Err(e) => println!("(snapshot not saved: {e})"),
        }
    }

    // ── Duplicate-heavy regimes ─────────────────────────────────────────
    // The same tasks, each repeated DUP_FACTOR times, interleaved — the
    // shape a service sees when many users ask the same questions.
    let dup_tasks: Vec<Task> = (0..tasks.len() * DUP_FACTOR)
        .map(|i| tasks[i % tasks.len()].clone())
        .collect();

    // Serial reference with the planner off: every duplicate runs, so the
    // cache's miss count *is* the number of unique canonical keys.
    let dup_serial_cache =
        PromptCache::unbounded(&llm).with_canonicalization(CanonLevel::TableStem);
    let (dup_serial, _) = run("dup serial", Some(&dup_serial_cache), &dup_tasks, 1, false);
    let unique_keys = dup_serial_cache.stats().misses;
    assert_eq!(
        dup_serial.model_calls, unique_keys as u64,
        "serial: every endpoint call is a unique-key miss"
    );
    assert_eq!(
        dup_serial_cache.stats().coalesced,
        0,
        "a serial run can never coalesce"
    );

    // Parallel with the planner off, at 1 and 8 shards: duplicate prompts
    // race into the cache and the single-flight table must fold them —
    // exactly one endpoint call per unique canonical key, bit-identical
    // answers, under both shard layouts.
    let mut dup_parallel_regimes = Vec::new();
    for shards in [1usize, 8] {
        let cache = PromptCache::unbounded(&llm)
            .with_shards(shards)
            .with_canonicalization(CanonLevel::TableStem);
        let name: &'static str = if shards == 1 {
            "dup 8w 1shard"
        } else {
            "dup 8w 8shard"
        };
        let (regime, _) = run(name, Some(&cache), &dup_tasks, 8, false);
        let stats = cache.stats();
        assert_eq!(
            regime.answers, dup_serial.answers,
            "{name}: parallel answers must be bit-identical to serial"
        );
        assert_eq!(
            stats.misses, unique_keys,
            "{name}: misses must equal unique canonical keys exactly"
        );
        assert_eq!(
            regime.model_calls, unique_keys as u64,
            "{name}: total endpoint calls must equal unique canonical keys"
        );
        assert_eq!(
            stats.lookups(),
            dup_serial_cache.stats().lookups(),
            "{name}: lookup totals are schedule-independent"
        );
        dup_parallel_regimes.push(regime);
    }

    // The dedup planner: duplicates never even reach the cache — the
    // planner runs each unique task once and copies outputs.
    let planner_cache = PromptCache::unbounded(&llm).with_canonicalization(CanonLevel::TableStem);
    let (dup_planner, planner_report) =
        run("dup planner", Some(&planner_cache), &dup_tasks, 8, true);
    assert_eq!(
        dup_planner.answers, dup_serial.answers,
        "planner-copied outputs must be bit-identical to serial"
    );
    assert_eq!(planner_report.unique_tasks, tasks.len());
    assert_eq!(
        planner_report.coalesced_tasks,
        dup_tasks.len() - tasks.len()
    );
    assert_eq!(
        dup_planner.model_calls, unique_keys as u64,
        "planner: one endpoint call per unique canonical key"
    );

    // ── Warm-path allocation budget ─────────────────────────────────────
    // Re-look up every canonical text of the duplicate-heavy workload
    // against the warm cache: each is already canonical, so the whole
    // lookup — canonicalize, hash, shard probe, recency refresh, Arc bump
    // — must perform zero heap allocations.
    let canonical_texts = dup_serial_cache.canonical_prompts();
    let before = dup_serial_cache.stats();
    let section = AllocationDelta::start();
    for text in &canonical_texts {
        let _ = dup_serial_cache.complete(text);
    }
    let warm_allocs = section.allocations();
    let warm_bytes = section.bytes();
    let after = dup_serial_cache.stats();
    assert_eq!(
        after.hits - before.hits,
        canonical_texts.len(),
        "every canonical text must hit the warm cache"
    );
    assert_eq!(
        warm_allocs, 0,
        "warm-path lookups must perform zero heap allocations ({warm_bytes} bytes)"
    );

    // ── Tiered store regimes ────────────────────────────────────────────
    // The same workload with a CacheStore disk tier beneath the cache.
    // Cold: a fresh UDMCACHE1 file — every unique key misses both tiers,
    // reaches the model exactly once, and is admitted to disk. Warm: the
    // file reopened under a *fresh* tier 0 (a cold process image) — the
    // whole workload must replay from disk with zero model calls.
    let store_dir = std::env::temp_dir().join(format!("unidm-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    std::fs::create_dir_all(&store_dir).expect("store scratch dir");
    let store_file = store_dir.join("throughput.udmstore");

    let cold_store =
        CacheStore::open(&store_file, llm.name(), StoreConfig::default()).expect("fresh store");
    let store_cold_cache = PromptCache::unbounded(&llm)
        .with_canonicalization(CanonLevel::TableStem)
        .with_store(cold_store.clone());
    let (store_cold, _) = run(
        "cold store",
        Some(&store_cold_cache),
        &tasks,
        workers,
        false,
    );
    assert_eq!(
        store_cold.answers, serial.answers,
        "the disk tier must never change answers"
    );
    let store_cold_stats = cold_store.stats();
    assert_eq!(store_cold_stats.hits, 0, "a fresh store has nothing to hit");
    assert_eq!(
        store_cold_stats.misses as u64, store_cold.model_calls,
        "cold store: every disk miss becomes exactly one model call"
    );
    assert_eq!(
        store_cold_stats.admitted, store_cold_stats.misses,
        "below capacity every completion is admitted"
    );
    assert_eq!(store_cold_stats.rejected, 0);

    drop(store_cold_cache);
    drop(cold_store);
    let warm_store =
        CacheStore::open(&store_file, llm.name(), StoreConfig::default()).expect("store reopens");
    let store_warm_cache = PromptCache::unbounded(&llm)
        .with_canonicalization(CanonLevel::TableStem)
        .with_store(warm_store.clone());
    let (store_warm, _) = run(
        "warm store",
        Some(&store_warm_cache),
        &tasks,
        workers,
        false,
    );
    assert_eq!(store_warm.answers, serial.answers);
    assert_eq!(
        store_warm.model_calls, 0,
        "warm replay from the disk tier must use zero model calls"
    );
    let store_warm_stats = warm_store.stats();
    assert_eq!(
        store_warm_stats.hits, store_cold_stats.misses,
        "every unique canonical key replays from disk"
    );

    // Zero-allocation warm hits with the store attached: tier-0 hits
    // never touch the disk tier, so the counting-allocator budget is
    // unchanged by the store field.
    let store_canonical = store_warm_cache.canonical_prompts();
    let section = AllocationDelta::start();
    for text in &store_canonical {
        let _ = store_warm_cache.complete(text);
    }
    let store_warm_allocs = section.allocations();
    assert_eq!(
        store_warm_allocs, 0,
        "warm hits over a store-backed cache must stay allocation-free"
    );

    // Scan resistance: a capacity-bounded store holding a twice-touched
    // hot set, then one pass of 10^5 distinct one-touch keys — the
    // table-scan shape. TinyLFU must reject every scan key (estimate < 3
    // at capacity), so the hot set survives at a 100% hit rate.
    const HOT_SET: usize = 64;
    const SCAN_KEYS: usize = 100_000;
    let scan_store = CacheStore::open(
        store_dir.join("scan.udmstore"),
        llm.name(),
        StoreConfig::default().with_max_entries(HOT_SET),
    )
    .expect("scan store");
    for i in 0..HOT_SET {
        let completion = Arc::new(Completion {
            text: format!("hot value {i}"),
            usage: Usage::default(),
        });
        assert!(
            scan_store.offer(&format!("hot key {i:03}"), &completion),
            "hot set admits below capacity"
        );
    }
    for i in 0..HOT_SET {
        // Second sighting: the hot keys now clear the admission estimate.
        assert!(scan_store.get(&format!("hot key {i:03}")).is_some());
    }
    let scan_filler = Arc::new(Completion {
        text: "scan value".into(),
        usage: Usage::default(),
    });
    let mut scan_admitted = 0usize;
    for k in 0..SCAN_KEYS {
        if scan_store.offer(&format!("scan key {k:06}"), &scan_filler) {
            scan_admitted += 1;
        }
    }
    assert_eq!(
        scan_admitted, 0,
        "one-touch scan keys must not displace the hot set"
    );
    let mut hot_hits = 0usize;
    for i in 0..HOT_SET {
        if scan_store.get(&format!("hot key {i:03}")).is_some() {
            hot_hits += 1;
        }
    }
    assert_eq!(
        hot_hits, HOT_SET,
        "hot-set hit rate must stay at 100% after the scan"
    );
    let scan_stats = scan_store.stats();
    assert_eq!(scan_stats.rejected, SCAN_KEYS);
    assert_eq!(scan_stats.evicted, 0);

    // Churn + compaction: at capacity, candidates that earn admission
    // displace the FIFO-oldest resident, leaving dead frames the
    // append-only file cannot reuse — compaction must reclaim every one.
    const CHURN_CAP: usize = 8;
    let churn_store = CacheStore::open(
        store_dir.join("churn.udmstore"),
        llm.name(),
        StoreConfig::default().with_max_entries(CHURN_CAP),
    )
    .expect("churn store");
    for i in 0..CHURN_CAP {
        churn_store.offer(&format!("resident {i}"), &scan_filler);
    }
    for i in 0..CHURN_CAP {
        // Four sightings: doorkeeper, two sketch bumps, then estimate 3
        // ⇒ admit (each rejected offer still teaches the filter).
        let key = format!("challenger {i}");
        for _ in 0..4 {
            churn_store.offer(&key, &scan_filler);
        }
    }
    let dead_before = churn_store.dead_frames();
    assert_eq!(
        dead_before, CHURN_CAP,
        "every admitted challenger leaves one displaced frame behind"
    );
    let reclaimed = churn_store.compact().expect("compaction succeeds");
    assert_eq!(reclaimed, dead_before);
    assert_eq!(churn_store.dead_frames(), 0);
    let churn_stats = churn_store.stats();

    println!(
        "\nTiered store: cold run admitted {} keys ({} model calls); warm replay hit \
         {} from disk with 0 model calls; {} warm lookups × 0 allocations.",
        store_cold_stats.admitted,
        store_cold.model_calls,
        store_warm_stats.hits,
        store_canonical.len(),
    );
    println!(
        "  scan resistance: {SCAN_KEYS} one-touch keys rejected ({} admitted), hot-set \
         hit rate {}/{HOT_SET}; churn: compaction reclaimed {reclaimed}/{dead_before} \
         dead frames.",
        scan_admitted, hot_hits,
    );
    let _ = std::fs::remove_dir_all(&store_dir);

    // ── Canon v2: Semantic folds reordered p_dp / p_ri duplicates ───────
    // Take the workload's recorded p_dp and p_ri canonical prompts and
    // build a deterministically reordered variant of each (record lines
    // reversed; instance lists reversed and renumbered). TableStem keys
    // every variant separately; the Semantic fold must map each variant
    // onto its original — a strictly higher hit rate on the same stream.
    let reorder = |text: &str| -> Option<String> {
        if let Some(pos) = text.find("logical order: [") {
            // p_dp: reverse the record lines inside the bracketed block.
            let splice = pos + "logical order: [".len();
            if !text.ends_with(']') || splice >= text.len() - 1 {
                return None;
            }
            let body = &text[splice..text.len() - 1];
            let mut lines: Vec<&str> = body.split('\n').collect();
            lines.reverse();
            let reordered = lines.join("\n");
            if reordered == body {
                return None;
            }
            return Some(format!("{}{}]", &text[..splice], reordered));
        }
        if text.contains("Score the relevance") {
            // p_ri: reverse the numbered instance list and renumber.
            let (header, rest) = text.split_once('\n')?;
            let mut bodies: Vec<&str> = Vec::new();
            for (i, line) in rest.split('\n').enumerate() {
                let (number, body) = line.split_once(". ")?;
                if number.parse::<usize>().ok()? != i + 1 {
                    return None;
                }
                bodies.push(body);
            }
            bodies.reverse();
            let mut out = String::from(header);
            for (i, body) in bodies.iter().enumerate() {
                out.push('\n');
                out.push_str(&(i + 1).to_string());
                out.push_str(". ");
                out.push_str(body);
            }
            if out == text {
                return None;
            }
            return Some(out);
        }
        None
    };
    let foldable: Vec<(&String, String)> = canonical_texts
        .iter()
        .filter_map(|t| reorder(t).map(|v| (t, v)))
        .collect();
    assert!(
        !foldable.is_empty(),
        "the workload must contain reorderable p_dp/p_ri prompts"
    );
    let mut canon_stats = Vec::new();
    for level in [CanonLevel::TableStem, CanonLevel::Semantic] {
        let cache = PromptCache::unbounded(&llm).with_canonicalization(level);
        for (original, _) in &foldable {
            let _ = cache.complete(original);
        }
        for (_, variant) in &foldable {
            let _ = cache.complete(variant);
        }
        canon_stats.push(cache.stats());
    }
    let (stem_stats2, semantic_stats2) = (canon_stats[0], canon_stats[1]);
    assert!(
        semantic_stats2.hits >= foldable.len(),
        "Semantic must fold every reordered variant onto its original"
    );
    assert!(
        semantic_stats2.hits > stem_stats2.hits && semantic_stats2.misses < stem_stats2.misses,
        "canon v2 must strictly beat TableStem on the reordered stream: \
         {semantic_stats2:?} vs {stem_stats2:?}"
    );
    println!(
        "Canon v2: {} reorderable p_dp/p_ri prompts; TableStem {} hits / {} misses, \
         Semantic {} hits / {} misses on originals + reordered variants.",
        foldable.len(),
        stem_stats2.hits,
        stem_stats2.misses,
        semantic_stats2.hits,
        semantic_stats2.misses,
    );

    let mut regimes = vec![serial, batched, cold, warm, dup_serial];
    regimes.extend(dup_parallel_regimes);
    regimes.push(dup_planner);
    regimes.push(store_cold);
    regimes.push(store_warm);
    println!(
        "{:<16}{:>12}{:>14}{:>16}{:>13}{:>10}",
        "Regime", "Time (s)", "Tasks/sec", "Model tokens", "Model calls", "Speedup"
    );
    println!("{}", "-".repeat(81));
    let baseline = regimes[0].elapsed_secs;
    for r in &regimes {
        println!(
            "{:<16}{:>12.3}{:>14.1}{:>16}{:>13}{:>9.2}x",
            r.name,
            r.elapsed_secs,
            r.answers.len() as f64 / r.elapsed_secs.max(1e-9),
            r.model_tokens,
            r.model_calls,
            baseline / r.elapsed_secs.max(1e-9),
        );
        print_shards(&r.shard_stats);
    }

    let (cold_stats, warm_stats) = (
        regimes[2].stats.expect("cold regime is cached"),
        regimes[3].stats.expect("warm regime is cached"),
    );
    println!(
        "\nCold run:  {:>5.1}% hit rate, {} tokens saved, {} model tokens",
        cold_stats.hit_rate() * 100.0,
        cold_stats.tokens_saved,
        regimes[2].model_tokens,
    );
    println!(
        "Warm run:  {:>5.1}% hit rate, {} tokens saved, {} model tokens",
        warm_stats.hit_rate() * 100.0,
        warm_stats.tokens_saved,
        regimes[3].model_tokens,
    );
    println!(
        "Cold → warm: +{} tokens saved, -{} model tokens",
        warm_stats
            .tokens_saved
            .saturating_sub(cold_stats.tokens_saved),
        regimes[2]
            .model_tokens
            .saturating_sub(regimes[3].model_tokens),
    );
    println!(
        "Duplicate-heavy ({} tasks, {} unique): {} unique canonical keys, exactly {} \
         endpoint calls in every regime; planner coalesced {} tasks with {} steals; \
         warm-path lookups: {} × 0 allocations.",
        dup_tasks.len(),
        tasks.len(),
        unique_keys,
        unique_keys,
        planner_report.coalesced_tasks,
        planner_report.steals,
        canonical_texts.len(),
    );

    let mut faulty_json: Option<String> = None;
    if config.backend.enabled {
        // Faulty regime: the cached workload again, but every miss now
        // crosses the resilient backend (limiter → retry → breaker) and a
        // seeded fault injector. Answers must not move.
        let backend = config.backend.wrap(&llm);
        let faulty_cache =
            PromptCache::unbounded(backend.model()).with_canonicalization(CanonLevel::TableStem);
        let (faulty, _) = run("faulty", Some(&faulty_cache), &tasks, workers, false);
        let stats = backend.stats().expect("backend enabled");
        let virtual_us = backend.elapsed_us();
        let virtual_secs = virtual_us as f64 / 1e6;
        println!(
            "\nFaulty backend regime ({} plan, rate limit {}):",
            config
                .backend
                .faults
                .map(|_| "seeded fault")
                .unwrap_or("fault-free"),
            config
                .backend
                .rate
                .map(|r| format!("{}/s burst {}", r.tokens_per_sec, r.burst))
                .unwrap_or_else(|| "none".into()),
        );
        println!(
            "  {} calls, {} attempts, {} retries, {} breaker trips ({} fast-fails)",
            stats.calls,
            stats.attempts,
            stats.retries,
            stats.breaker_trips,
            stats.breaker_fast_fails,
        );
        println!(
            "  {} timeouts / {} rate-limited / {} transient errors absorbed; \
             {} throttle waits ({:.3}s virtual)",
            stats.timeouts,
            stats.rate_limited,
            stats.transients,
            stats.throttle_waits,
            stats.throttle_wait_us as f64 / 1e6,
        );
        println!(
            "  goodput: {:.1} tasks/virtual-sec over {:.3} virtual secs; \
             attempt efficiency {:.0}%",
            faulty.answers.len() as f64 / virtual_secs.max(1e-9),
            virtual_secs,
            100.0 * stats.calls as f64 / stats.attempts.max(1) as f64,
        );
        assert_eq!(
            faulty.answers, regimes[0].answers,
            "faults and throttling must never change answers"
        );
        assert_eq!(stats.failures, 0, "every faulty call must complete");
        println!("  faulty answers identical to the fault-free serial run.");
        faulty_json = Some(
            JsonObject::new()
                .field_u64("virtual_us", virtual_us)
                .field_u64("calls", stats.calls)
                .field_u64("attempts", stats.attempts)
                .field_u64("retries", stats.retries)
                .field_u64("breaker_trips", stats.breaker_trips)
                .finish(),
        );
        regimes.push(faulty);
    }

    // ── Pipelined dispatcher regimes (heavy tail) ───────────────────────
    // The same workload against an endpoint whose attempts carry a 3% /
    // 2-virtual-second latency tail, three ways: blocking one call at a
    // time, pipelined through the event-driven dispatcher, and pipelined
    // with P90 hedge timers. The fault schedule is deterministic, so every
    // relation below is an exact assertion, not a threshold.
    let heavy = FaultPlan::heavy_tail(config.seed);
    let hedge_policy = HedgePolicy::at_quantile(900);
    // Deterministic estimator warmup: `min_samples` distinct prompts
    // complete serially before the measured batch, so even its first wave
    // of dispatches can arm hedge timers.
    let warmup = hedge_policy.min_samples;
    let pipe_slots = tasks.len().clamp(2, 64);

    // Synchronous: every miss blocks through the resilient backend —
    // virtual elapsed time is the *sum* of attempt latencies.
    let sync_backend = BackendConfig::resilient(config.seed)
        .without_breaker()
        .with_faults(heavy)
        .wrap(&llm);
    let sync_cache =
        PromptCache::unbounded(sync_backend.model()).with_canonicalization(CanonLevel::TableStem);
    let (sync_regime, _) = run("sync heavy-tail", Some(&sync_cache), &tasks, 1, false);
    let sync_stats = sync_backend.stats().expect("backend attached");
    let sync_makespan = sync_backend.elapsed_us();
    let sync_p99 = sync_stats.request_latency.quantile_us(990);
    let tail_unique = sync_cache.stats().misses as u64;
    assert_eq!(
        sync_regime.answers, regimes[0].answers,
        "heavy-tail latency must never change answers"
    );
    assert_eq!(
        sync_regime.model_calls, tail_unique,
        "sync: one endpoint call per unique canonical key"
    );

    let run_dispatched = |name: &'static str, hedge: Option<HedgePolicy>| {
        let mut backend_config = BackendConfig::resilient(config.seed)
            .without_breaker()
            .with_faults(heavy)
            .with_pipelined();
        if let Some(policy) = hedge {
            backend_config = backend_config.with_hedge(policy);
        }
        let dispatcher = Dispatcher::new(&llm, backend_config);
        for i in 0..warmup {
            dispatcher
                .complete(&format!("latency estimator warmup {i}"))
                .expect("warmup prompt completes");
        }
        llm.reset_usage();
        llm.reset_calls();
        // Cache-level single-flight must be off above a pipelined
        // dispatcher: registered workers never block outside the reactor,
        // which coalesces duplicate prompts itself.
        let cache = PromptCache::unbounded(&dispatcher)
            .with_canonicalization(CanonLevel::TableStem)
            .with_single_flight(false);
        let runner = BatchRunner::new(&cache, pipeline)
            .with_workers(pipe_slots)
            .with_pipeline(&dispatcher);
        let start = Instant::now();
        let report = runner.run_report(&lake, &tasks);
        let elapsed_secs = start.elapsed().as_secs_f64();
        let answers: Vec<String> = report
            .results
            .iter()
            .map(|r| r.as_ref().map(|o| o.answer.clone()).unwrap_or_default())
            .collect();
        let stats = dispatcher.stats();
        let fault_attempts = dispatcher.fault_stats().expect("faults attached").attempts;
        let makespan = dispatcher.clock().now_micros();
        (
            Regime {
                name,
                answers,
                elapsed_secs,
                model_tokens: llm.usage().total(),
                model_calls: llm.calls(),
                // Without cache-level single-flight, the hit/miss split
                // counts timing-dependent co-leaders — the exact,
                // schedule-independent accounting lives in the dispatcher
                // stats, so the cache split is omitted from the baseline.
                stats: None,
                shard_stats: Vec::new(),
            },
            stats,
            fault_attempts,
            makespan,
        )
    };

    let (pipe_regime, pipe_stats, pipe_fault_attempts, pipe_makespan) =
        run_dispatched("pipelined heavy-tail", None);
    let pipe_p99 = pipe_stats.request_latency.quantile_us(990);
    assert_eq!(
        pipe_regime.answers, sync_regime.answers,
        "pipelined answers must be bit-identical to the synchronous path"
    );
    assert_eq!(pipe_stats.hedges_issued, 0, "no hedge policy, no hedges");
    assert_eq!(
        pipe_stats.attempts,
        tail_unique + warmup,
        "pipelined: one endpoint dispatch per unique canonical key (plus warmup)"
    );
    assert_eq!(
        pipe_fault_attempts, pipe_stats.attempts,
        "every dispatched copy reaches the fault injector exactly once"
    );
    assert_eq!(pipe_stats.failures, 0);
    assert!(
        pipe_makespan < sync_makespan,
        "pipelined makespan {pipe_makespan}us must beat synchronous {sync_makespan}us"
    );

    let (hedged_regime, hedged_stats, hedged_fault_attempts, hedged_makespan) =
        run_dispatched("pipelined hedged", Some(hedge_policy));
    let hedged_p99 = hedged_stats.request_latency.quantile_us(990);
    assert_eq!(
        hedged_regime.answers, sync_regime.answers,
        "hedged answers must be bit-identical to the synchronous path"
    );
    assert!(
        hedged_stats.hedges_issued > 0,
        "a 3% tail over {tail_unique} unique keys must arm hedges"
    );
    assert_eq!(
        hedged_stats.attempts - hedged_stats.hedges_issued,
        tail_unique + warmup,
        "hedged: hedge duplicates are accounted separately from primaries"
    );
    assert_eq!(
        hedged_fault_attempts, hedged_stats.attempts,
        "every primary and every hedge copy reaches the injector exactly once"
    );
    assert_eq!(
        hedged_stats.hedges_cancelled, hedged_stats.hedges_issued,
        "heavy-tail injects no errors, so every hedge pair has exactly one loser"
    );
    assert_eq!(hedged_stats.failures, 0);
    assert!(
        hedged_makespan < sync_makespan,
        "hedged makespan {hedged_makespan}us must beat synchronous {sync_makespan}us"
    );
    assert!(
        hedged_p99 < sync_p99,
        "hedged virtual-time P99 {hedged_p99}us must beat synchronous {sync_p99}us"
    );

    println!(
        "\nHeavy-tail regimes ({} unique keys + {} warmup, {} pipeline slots):",
        tail_unique, warmup, pipe_slots
    );
    println!(
        "  sync:             makespan {:>10.3}s  P99 {:>9.3}s",
        sync_makespan as f64 / 1e6,
        sync_p99 as f64 / 1e6,
    );
    println!(
        "  pipelined:        makespan {:>10.3}s  P99 {:>9.3}s",
        pipe_makespan as f64 / 1e6,
        pipe_p99 as f64 / 1e6,
    );
    println!(
        "  pipelined hedged: makespan {:>10.3}s  P99 {:>9.3}s  \
         ({} hedges issued, {} won, {} cancelled, {} suppressed)",
        hedged_makespan as f64 / 1e6,
        hedged_p99 as f64 / 1e6,
        hedged_stats.hedges_issued,
        hedged_stats.hedges_won,
        hedged_stats.hedges_cancelled,
        hedged_stats.hedges_suppressed,
    );
    println!(
        "  answers bit-identical across all three; endpoint calls == unique \
         canonical keys, hedge duplicates accounted separately."
    );
    let pipelined_json = JsonObject::new()
        .field_u64("unique_canonical_keys", tail_unique)
        .field_u64("warmup_prompts", warmup)
        .field_u64("pipeline_slots", pipe_slots as u64)
        .field_raw(
            "sync",
            &JsonObject::new()
                .field_u64("makespan_us", sync_makespan)
                .field_u64("p99_us", sync_p99)
                .field_u64("endpoint_calls", tail_unique)
                .finish(),
        )
        .field_raw(
            "pipelined",
            &JsonObject::new()
                .field_u64("makespan_us", pipe_makespan)
                .field_u64("p99_us", pipe_p99)
                .field_u64("endpoint_calls", pipe_stats.attempts)
                .finish(),
        )
        .field_raw(
            "hedged",
            &JsonObject::new()
                .field_u64("makespan_us", hedged_makespan)
                .field_u64("p99_us", hedged_p99)
                .field_u64("endpoint_calls", hedged_stats.attempts)
                .field_u64("hedges_issued", hedged_stats.hedges_issued)
                .field_u64("hedges_won", hedged_stats.hedges_won)
                .field_u64("hedges_cancelled", hedged_stats.hedges_cancelled)
                .field_u64("hedges_suppressed", hedged_stats.hedges_suppressed)
                .finish(),
        )
        .finish();
    regimes.push(sync_regime);
    regimes.push(pipe_regime);
    regimes.push(hedged_regime);

    // ── Routed fleet vs any single endpoint (heavy tail + faults) ───────
    // Every replica carries its own fault schedule (endpoint-aware slot
    // keying), breaker, and adaptive AIMD token bucket seeded at
    // 5 attempts/sec — a throttle-bound regime, so aggregate fleet
    // capacity (not scheduling luck) decides the virtual-time makespan.
    // The single-endpoint reference runs the identical per-endpoint
    // configuration with one replica, at both fault seeds; the fleet must
    // strictly beat every one of them. The fleet size is pinned (the
    // `--route` flag wraps the standard regimes instead) so that strict
    // guarantee is a property of the committed configuration, not of
    // whatever replica count a flag happens to pass.
    let replicas: u32 = 3;
    let routed_aimd = AimdPolicy::per_sec(5);
    let fleet_plan = RoutePlan::replicas(replicas).with_aimd(routed_aimd);
    let single_plan = RoutePlan::replicas(1).with_aimd(routed_aimd);
    let routed_faults = |seed: u64| FaultPlan {
        timeout_permille: 40,
        rate_limit_permille: 80,
        transient_permille: 60,
        max_consecutive_faults: 4,
        ..FaultPlan::heavy_tail(seed)
    };
    let run_routed = |plan: RoutePlan, seed: u64, workers: usize| {
        let router = RoutedBackend::from_plan(
            &llm,
            BackendConfig::resilient(seed)
                .with_faults(routed_faults(seed))
                .with_route(plan),
        );
        let cache = PromptCache::unbounded(&router).with_canonicalization(CanonLevel::TableStem);
        let answers = BatchRunner::new(&cache, pipeline)
            .with_workers(workers)
            .answers(&lake, &tasks);
        let makespan = router.clock().now_micros();
        (answers, router.stats(), makespan)
    };
    let rate_limited = |stats: &unidm::RouterStats| -> u64 {
        stats.endpoints.iter().map(|e| e.rate_limited).sum()
    };

    let route_seeds = [config.seed, config.seed.wrapping_mul(31).wrapping_add(1000)];
    let mut singles = Vec::new();
    for seed in route_seeds {
        let (answers, stats, makespan) = run_routed(single_plan, seed, 1);
        assert_eq!(
            answers, regimes[0].answers,
            "single-endpoint answers must match the fault-free serial run (seed {seed})"
        );
        assert_eq!(stats.failures, 0, "single endpoint: every call completes");
        singles.push((seed, stats, makespan));
    }
    let best_single_makespan = singles
        .iter()
        .map(|(_, _, m)| *m)
        .min()
        .expect("two single-endpoint runs");

    let mut fleets = Vec::new();
    for seed in route_seeds {
        // Byte-identical at both worker counts; the serial run is the
        // measured one (its virtual schedule is fully deterministic).
        let (parallel_answers, parallel_stats, _) = run_routed(fleet_plan, seed, 8);
        assert_eq!(
            parallel_answers, regimes[0].answers,
            "routed answers must survive 8 workers (seed {seed})"
        );
        assert_eq!(parallel_stats.failures, 0);
        let (answers, stats, makespan) = run_routed(fleet_plan, seed, 1);
        assert_eq!(
            answers, regimes[0].answers,
            "routed answers must match the fault-free serial run (seed {seed})"
        );
        assert_eq!(stats.failures, 0, "routed fleet: every call completes");
        assert!(
            stats.endpoints.iter().all(|e| e.calls > 0),
            "equal weights must spread traffic over all {replicas} replicas: {stats:?}"
        );
        let aimd_decreases: u64 = stats.endpoints.iter().map(|e| e.aimd_decreases).sum();
        assert!(
            rate_limited(&stats) > 0 && aimd_decreases > 0,
            "the 429 schedule must actually drive AIMD adaptation: {stats:?}"
        );
        assert!(
            makespan < best_single_makespan,
            "fleet makespan {makespan}us (seed {seed}) must beat every single \
             endpoint (best single {best_single_makespan}us)"
        );
        fleets.push((seed, stats, makespan));
    }

    let goodput_per_vs =
        |answers: u64, makespan: u64| answers as f64 / (makespan as f64 / 1e6).max(1e-9);
    println!(
        "\nRouted fleet regime ({replicas} replicas, AIMD from 5/s per endpoint, \
         heavy tail + timeouts/429s/5xxs):"
    );
    for (seed, stats, makespan) in &singles {
        println!(
            "  single seed {seed:>6}: makespan {:>9.3}s  goodput {:>6.2} answers/vs  \
             ({} attempts, {} rate-limited)",
            *makespan as f64 / 1e6,
            goodput_per_vs(stats.answers, *makespan),
            stats.attempts(),
            rate_limited(stats),
        );
    }
    for (seed, stats, makespan) in &fleets {
        println!(
            "  fleet  seed {seed:>6}: makespan {:>9.3}s  goodput {:>6.2} answers/vs  \
             ({} attempts, {} rate-limited, {} breaker trips, calls {:?})",
            *makespan as f64 / 1e6,
            goodput_per_vs(stats.answers, *makespan),
            stats.attempts(),
            rate_limited(stats),
            stats.breaker_trips(),
            stats.endpoints.iter().map(|e| e.calls).collect::<Vec<_>>(),
        );
    }
    println!(
        "  answers bit-identical to the fault-free serial run across both seeds and \
         both worker counts; fleet goodput beats every single endpoint."
    );
    let routed_entry = |seed: u64, stats: &unidm::RouterStats, makespan: u64| {
        let endpoint_calls: Vec<String> = stats
            .endpoints
            .iter()
            .map(|e| e.calls.to_string())
            .collect();
        JsonObject::new()
            .field_u64("fault_seed", seed)
            .field_u64("makespan_us", makespan)
            .field_u64("answers", stats.answers)
            .field_f64(
                "goodput_answers_per_vs",
                goodput_per_vs(stats.answers, makespan),
            )
            .field_u64("attempts", stats.attempts())
            .field_u64("rate_limited", rate_limited(stats))
            .field_u64("breaker_trips", stats.breaker_trips())
            .field_u64("tokens_per_answer_milli", stats.tokens_per_answer_milli())
            .field_raw("endpoint_calls", &unidm_bench::json_array(&endpoint_calls))
            .finish()
    };
    let singles_json: Vec<String> = singles
        .iter()
        .map(|(seed, stats, makespan)| routed_entry(*seed, stats, *makespan))
        .collect();
    let fleets_json: Vec<String> = fleets
        .iter()
        .map(|(seed, stats, makespan)| routed_entry(*seed, stats, *makespan))
        .collect();
    let routed_json = JsonObject::new()
        .field_u64("replicas", replicas as u64)
        .field_u64("aimd_initial_per_sec", routed_aimd.initial_per_sec)
        .field_raw("single_endpoint", &unidm_bench::json_array(&singles_json))
        .field_raw("fleet", &unidm_bench::json_array(&fleets_json))
        .finish();

    // ── Cascade: small→large escalation vs large-only ───────────────────
    // The eval workload's unique prompt stream (recorded from a serial
    // large-only run — the pipeline's prompts are answer-dependent, so
    // the stream must be fixed before the models can be compared) through
    // a GPT-J-6B → GPT-3-175B cascade: prompts whose cheap answer clears
    // a 600‰ confidence gate are served by the small model; the rest
    // escalate. The cascade must consume strictly fewer large-tier tokens
    // and strictly less billed cost per answer than the large-model-only
    // reference.
    let cheap = MockLlm::new(&world, LlmProfile::gptj_6b(), config.seed);
    let large_tier = MockLlm::new(&world, LlmProfile::gpt3_175b(), config.seed);
    let large_only = MockLlm::new(&world, LlmProfile::gpt3_175b(), config.seed);
    let large_cost = LlmProfile::gpt3_175b().cost_micro_per_token();

    let large_cache =
        PromptCache::unbounded(&large_only).with_canonicalization(CanonLevel::TableStem);
    let large_answers = BatchRunner::new(&large_cache, pipeline)
        .with_workers(1)
        .answers(&lake, &tasks);
    assert_eq!(
        large_answers, regimes[0].answers,
        "the large-only reference is the serial regime's model"
    );
    let eval_prompts = large_cache.canonical_prompts();
    let large_only_tokens = large_only.usage().total() as u64;
    let large_only_billed = large_only_tokens * large_cost;

    let cascade_backend = CascadeBackend::new(&cheap, &large_tier)
        .with_policy(CascadePolicy { gate_permille: 600 })
        .with_costs_of(&LlmProfile::gptj_6b(), &LlmProfile::gpt3_175b());
    for prompt in &eval_prompts {
        cascade_backend
            .complete(prompt)
            .expect("every eval prompt completes through the cascade");
    }
    let cascade_stats = cascade_backend.stats();
    assert_eq!(cascade_stats.answers, eval_prompts.len() as u64);
    assert!(
        cascade_stats.escalations > 0 && cascade_stats.escalations < cascade_stats.calls,
        "the gate must escalate some prompts and clear others: {cascade_stats:?}"
    );
    assert!(
        cascade_stats.endpoints[1].tokens() < large_only_tokens,
        "cascade large-tier tokens {} must be strictly below large-only {}",
        cascade_stats.endpoints[1].tokens(),
        large_only_tokens,
    );
    assert!(
        cascade_stats.billed_micro() < large_only_billed,
        "cascade billed cost {} must be strictly below large-only {}",
        cascade_stats.billed_micro(),
        large_only_billed,
    );
    let large_only_per_answer = large_only_billed / cascade_stats.answers;
    assert!(
        cascade_stats.billed_per_answer_micro() < large_only_per_answer,
        "cascade must be cheaper per answer: {} vs {}",
        cascade_stats.billed_per_answer_micro(),
        large_only_per_answer,
    );
    println!(
        "\nCascade regime ({} → {}, gate 600‰): {} prompts, {} escalated \
         ({} unparseable, {} low-confidence);",
        cheap.name(),
        large_tier.name(),
        cascade_stats.calls,
        cascade_stats.escalations,
        cascade_stats.unparseable,
        cascade_stats.low_confidence,
    );
    println!(
        "  large-tier tokens {} vs large-only {}; billed/answer {}µ vs {}µ \
         (tokens/answer {} milli).",
        cascade_stats.endpoints[1].tokens(),
        large_only_tokens,
        cascade_stats.billed_per_answer_micro(),
        large_only_per_answer,
        cascade_stats.tokens_per_answer_milli(),
    );
    let cascade_json = JsonObject::new()
        .field_str("cheap_model", cheap.name())
        .field_str("large_model", large_tier.name())
        .field_u64("gate_permille", 600)
        .field_u64("prompts", cascade_stats.calls)
        .field_u64("escalations", cascade_stats.escalations)
        .field_u64("unparseable", cascade_stats.unparseable)
        .field_u64("low_confidence", cascade_stats.low_confidence)
        .field_u64("large_tier_tokens", cascade_stats.endpoints[1].tokens())
        .field_u64("large_only_tokens", large_only_tokens)
        .field_u64("cascade_billed_micro", cascade_stats.billed_micro())
        .field_u64("large_only_billed_micro", large_only_billed)
        .field_u64(
            "billed_per_answer_micro",
            cascade_stats.billed_per_answer_micro(),
        )
        .field_u64("large_only_billed_per_answer_micro", large_only_per_answer)
        .field_u64(
            "tokens_per_answer_milli",
            cascade_stats.tokens_per_answer_milli(),
        )
        .finish();

    assert_eq!(
        regimes[1].answers, regimes[0].answers,
        "batched diverged from the serial answers"
    );
    assert_eq!(
        regimes[3].answers, regimes[2].answers,
        "warm cache diverged from the cold cache"
    );
    assert!(
        regimes[2].model_tokens < regimes[0].model_tokens,
        "cold cache should consume fewer model tokens ({} vs {})",
        regimes[2].model_tokens,
        regimes[0].model_tokens,
    );
    assert!(
        regimes[3].model_tokens <= regimes[2].model_tokens,
        "warm cache should consume no more model tokens ({} vs {})",
        regimes[3].model_tokens,
        regimes[2].model_tokens,
    );
    // >= rather than >: with --cache-dir, a repeat invocation's "cold"
    // regime loads the persisted snapshot and both regimes hit 100%.
    assert!(
        warm_stats.hit_rate() >= cold_stats.hit_rate(),
        "warm hit rate should not trail cold: {:.2} vs {:.2}",
        warm_stats.hit_rate(),
        cold_stats.hit_rate(),
    );
    println!(
        "\nSerial and batched answers identical; cold and warm cached answers identical; \
         cache reduced model tokens by {} (cold) and {} (warm).",
        regimes[0].model_tokens - regimes[2].model_tokens,
        regimes[0].model_tokens - regimes[3].model_tokens,
    );

    // ── Out-of-core scale regime ────────────────────────────────────────
    let scale_json = run_scale(&llm, config.seed, scale_rows);

    // ── BENCH_10.json: the machine-readable baseline ────────────────────
    let store_section = |s: &unidm::StoreStats| {
        JsonObject::new()
            .field_u64("hits", s.hits as u64)
            .field_u64("misses", s.misses as u64)
            .field_u64("admitted", s.admitted as u64)
            .field_u64("rejected", s.rejected as u64)
            .field_u64("evicted", s.evicted as u64)
            .field_u64("expired", s.expired as u64)
            .field_u64("compactions", s.compactions as u64)
            .field_u64("compacted_frames", s.compacted_frames as u64)
            .finish()
    };
    let store_json = JsonObject::new()
        .field_raw("cold", &store_section(&store_cold_stats))
        .field_raw("warm", &store_section(&store_warm_stats))
        .field_u64("warm_model_calls", 0)
        .field_raw(
            "warm_lookups",
            &JsonObject::new()
                .field_u64("lookups", store_canonical.len() as u64)
                .field_u64("allocations", store_warm_allocs)
                .finish(),
        )
        .field_raw(
            "scan",
            &JsonObject::new()
                .field_u64("hot_set", HOT_SET as u64)
                .field_u64("scan_keys", SCAN_KEYS as u64)
                .field_u64("scan_admitted", scan_admitted as u64)
                .field_u64("hot_hits", hot_hits as u64)
                .field_u64("hot_hit_rate_permille", (hot_hits * 1000 / HOT_SET) as u64)
                .field_u64("rejected", scan_stats.rejected as u64)
                .field_u64("evicted", scan_stats.evicted as u64)
                .finish(),
        )
        .field_raw(
            "compaction",
            &JsonObject::new()
                .field_u64("capacity", CHURN_CAP as u64)
                .field_u64("dead_before", dead_before as u64)
                .field_u64("reclaimed", reclaimed as u64)
                .field_u64("compactions", churn_stats.compactions as u64)
                .field_u64("compacted_frames", churn_stats.compacted_frames as u64)
                .finish(),
        )
        .finish();
    let canon_level_json = |s: &unidm::CacheStats| {
        JsonObject::new()
            .field_u64("hits", s.hits as u64)
            .field_u64("misses", s.misses as u64)
            .finish()
    };
    let canon_json = JsonObject::new()
        .field_u64("foldable_prompts", foldable.len() as u64)
        .field_raw("tablestem", &canon_level_json(&stem_stats2))
        .field_raw("semantic", &canon_level_json(&semantic_stats2))
        .finish();
    let regime_json: Vec<String> = regimes.iter().map(Regime::to_json).collect();
    let mut doc = JsonObject::new()
        .field_u64("pr", 10)
        .field_str("bench", "throughput")
        .field_str("model", llm.name())
        .field_u64("seed", config.seed)
        .field_u64("tasks", tasks.len() as u64)
        .field_u64("workers", workers as u64)
        .field_raw("regimes", &unidm_bench::json_array(&regime_json))
        .field_raw(
            "duplicate_heavy",
            &JsonObject::new()
                .field_u64("tasks", dup_tasks.len() as u64)
                .field_u64("unique_tasks", tasks.len() as u64)
                .field_u64("dup_factor", DUP_FACTOR as u64)
                .field_u64("unique_canonical_keys", unique_keys as u64)
                .field_u64("endpoint_calls", unique_keys as u64)
                .field_u64(
                    "planner_coalesced_tasks",
                    planner_report.coalesced_tasks as u64,
                )
                .field_u64("planner_steals", planner_report.steals as u64)
                .finish(),
        )
        .field_raw(
            "warm_lookups",
            &JsonObject::new()
                .field_u64("lookups", canonical_texts.len() as u64)
                .field_u64("allocations", warm_allocs)
                .field_u64("bytes", warm_bytes)
                .finish(),
        )
        .field_raw("pipelined_heavy_tail", &pipelined_json)
        .field_raw("routed", &routed_json)
        .field_raw("cascade", &cascade_json)
        .field_raw("scale", &scale_json)
        .field_raw("store", &store_json)
        .field_raw("canon_v2", &canon_json);
    if let Some(faulty) = faulty_json {
        doc = doc.field_raw("faulty", &faulty);
    }
    let path = bench_json_path();
    match std::fs::write(&path, doc.finish() + "\n") {
        Ok(()) => println!("(wrote perf baseline to {})", path.display()),
        Err(e) => println!("(perf baseline not written: {e})"),
    }
}
