//! Regenerates the paper's Figure 5 (join-discovery threshold sweep).

fn main() {
    let config = unidm_bench::config_from_args();
    println!("{}", unidm_eval::joins::fig5(config));
}
