//! Open-loop serving bench — the standing `serving` perf regime of the
//! committed baseline (`BENCH_10.json`).
//!
//! Where the `throughput` bench is closed-loop (push a batch as fast as
//! it goes, report makespan), this binary drives the resilient backend
//! with `unidm::serve`: a seeded open-loop load generator injecting a
//! ten-tenant mix of the paper scenarios' recorded canonical prompt
//! streams on Poisson, bursty and diurnal arrival processes, under
//! moderate injected faults. It reports per-tenant p50/p99/p999
//! end-to-end latency, SLO attainment and goodput — all in virtual time,
//! all bit-identical at a fixed seed.
//!
//! Determinism is asserted, not hoped for: every run executes the
//! simulation three times against identically constructed fresh stacks —
//! at 1 replay worker, at 8, and once more at 8 — and requires the full
//! reports (traces included) to compare equal before anything is
//! written.
//!
//! ```text
//! cargo run -p unidm-bench --release --bin serving -- \
//!     [--quick] [--seed N] [--fault-seed N] [--bench-json PATH] [--store PATH]
//! ```
//!
//! `--store PATH` routes every tenant's traffic through a
//! [`unidm::PromptCache`] backed by the shared `UDMCACHE1` disk tier at
//! `PATH` (created on first use), beneath the resilient backend. The
//! cache sits below the fault injector, so simulated latency, SLO
//! accounting and the pinned counters are untouched — the flag only
//! persists the mix's completions into the tiered store (and replays
//! them on later runs), which is why it is opt-in rather than default.
//!
//! When `PATH` already holds a bench baseline (the `throughput` binary's
//! output), the `serving` section is spliced into it, replacing any
//! previous `serving` section; otherwise a minimal standalone document
//! is written. `scripts/diff_bench.py` pins the section's exact counters
//! (requests, errors, replay mismatches, SLO attainment) between
//! consecutive committed baselines.

use std::path::PathBuf;

use unidm::serve::{ArrivalProcess, ServeConfig, ServeReport, ServeSim, TenantSpec};
use unidm::{BackendConfig, CacheStore, CanonLevel, PromptCache, StoreConfig};
use unidm_bench::{json_array, JsonObject};
use unidm_eval::streams::{record_streams, PromptStream};
use unidm_llm::{FaultPlan, LanguageModel, LlmProfile, MockLlm};
use unidm_world::World;

/// Concurrent service slots of the simulated deployment — provisioned
/// so the paper-scale mix runs near 50% utilization: queueing and fault
/// tails are visible in the p99/p999 without drowning every tenant in
/// saturation (a saturated regime has no sensitivity left for the diff
/// gate to detect regressions with).
const SERVERS: u32 = 16;

/// Per-tenant SLOs cycle through tight / standard / relaxed, µs.
const SLOS_US: [u64; 3] = [300_000, 1_000_000, 5_000_000];

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|pos| args.get(pos + 1))
        .filter(|v| !v.starts_with("--"))
        .cloned()
}

/// The ten-tenant serving mix: one tenant per recorded scenario stream,
/// with arrival process, rate and SLO assigned deterministically by
/// stream position so the workload is a pure function of the seed.
fn build_sim(
    seed: u64,
    workers: usize,
    streams: &[PromptStream],
    requests_per_tenant: u32,
) -> ServeSim {
    let mut sim = ServeSim::new(
        ServeConfig::new(seed)
            .with_servers(SERVERS)
            .with_workers(workers),
    );
    for (i, stream) in streams.iter().enumerate() {
        let arrival = match i % 3 {
            0 => ArrivalProcess::Poisson,
            1 => ArrivalProcess::Bursty {
                burst: 4 + i as u32,
            },
            _ => ArrivalProcess::Diurnal {
                period_us: 60_000_000,
            },
        };
        sim = sim.tenant(
            TenantSpec::new(stream.scenario, stream.prompts.clone())
                .with_arrival(arrival)
                .with_rate_milli_per_s(400 + i as u64 * 150)
                .with_requests(requests_per_tenant)
                .with_slo_us(SLOS_US[i % SLOS_US.len()]),
        );
    }
    sim
}

fn serving_json(report: &ServeReport, seed: u64, fault_seed: u64) -> String {
    let tenant_json: Vec<String> = report
        .tenants
        .iter()
        .map(|t| {
            JsonObject::new()
                .field_str("name", &t.name)
                .field_u64("requests", t.requests)
                .field_u64("ok", t.ok)
                .field_u64("errors", t.errors)
                .field_u64("slo_us", t.slo_us)
                .field_u64("slo_met", t.slo_met)
                .field_u64("attainment_permille", t.attainment_permille)
                .field_u64("goodput_per_ks", t.goodput_per_ks)
                .field_u64("min_us", t.latency.min_us())
                .field_u64("p50_us", t.latency.quantile_us(500))
                .field_u64("p99_us", t.latency.quantile_us(990))
                .field_u64("p999_us", t.latency.quantile_us(999))
                .field_u64("max_us", t.latency.quantile_us(1000))
                .finish()
        })
        .collect();
    JsonObject::new()
        .field_u64("seed", seed)
        .field_u64("fault_seed", fault_seed)
        .field_u64("servers", u64::from(SERVERS))
        .field_u64("requests", report.requests)
        .field_u64("errors", report.errors)
        .field_u64("slo_met", report.slo_met)
        .field_u64("attainment_permille", report.attainment_permille())
        .field_u64("goodput_per_ks", report.goodput_per_ks())
        .field_u64("replay_mismatches", report.replay_mismatches)
        .field_u64("makespan_us", report.makespan_us)
        .field_u64("trace_fnv", report.trace_fnv())
        .field_raw("tenants", &json_array(&tenant_json))
        .finish()
}

/// Splices `"serving": {...}` into an existing single-object baseline
/// document (replacing a previous serving section), or wraps it in a
/// minimal standalone document when no baseline exists at `path`.
fn write_section(path: &PathBuf, seed: u64, section: &str) {
    const MARKER: &str = ",\"serving\":";
    let doc = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            // Strip exactly the document's closing brace — a blanket
            // trim would eat the nested sections' closers too.
            let base = trimmed.strip_suffix('}').unwrap_or(trimmed);
            let base = match base.find(MARKER) {
                Some(pos) => &base[..pos],
                None => base,
            };
            format!("{base}{MARKER}{section}}}")
        }
        Err(_) => JsonObject::new()
            .field_u64("pr", 10)
            .field_str("bench", "serving")
            .field_u64("seed", seed)
            .field_raw("serving", section)
            .finish(),
    };
    match std::fs::write(path, doc + "\n") {
        Ok(()) => println!("(wrote serving section to {})", path.display()),
        Err(e) => println!("(serving section not written: {e})"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let fault_seed: u64 = arg_value(&args, "--fault-seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let path = arg_value(&args, "--bench-json")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_10.json"));
    let store_path = arg_value(&args, "--store").map(PathBuf::from);
    let (stream_queries, requests_per_tenant) = if quick { (3, 30) } else { (6, 150) };

    println!("recording the ten scenarios' canonical prompt streams (seed {seed})...");
    let streams = record_streams(seed, stream_queries);
    for stream in &streams {
        println!(
            "  {:<22} {:>4} canonical prompts",
            stream.scenario,
            stream.prompts.len()
        );
    }

    let run = |workers: usize| -> ServeReport {
        let world = World::generate(seed);
        let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), seed);
        let backend = BackendConfig::resilient(seed).with_faults(FaultPlan::moderate(fault_seed));
        let sim = build_sim(seed, workers, &streams, requests_per_tenant);
        match &store_path {
            Some(store_file) => {
                if let Some(parent) = store_file.parent() {
                    let _ = std::fs::create_dir_all(parent);
                }
                let store = CacheStore::open(store_file, llm.name(), StoreConfig::default())
                    .expect("serving store opens");
                let cache = PromptCache::unbounded(&llm)
                    .with_canonicalization(CanonLevel::TableStem)
                    .with_store(store);
                sim.run(&backend.wrap(&cache))
            }
            None => sim.run(&backend.wrap(&llm)),
        }
    };

    println!(
        "\nopen-loop run: {} tenants x {requests_per_tenant} requests, {SERVERS} servers, \
         moderate faults (seed {fault_seed})",
        streams.len()
    );
    let serial = run(1);
    let parallel = run(8);
    let rerun = run(8);
    assert_eq!(
        serial, parallel,
        "replay worker count must not change the open-loop report"
    );
    assert_eq!(
        parallel, rerun,
        "rerun at the same seed must reproduce the report"
    );
    assert_eq!(serial.trace_fnv(), parallel.trace_fnv());
    assert_eq!(
        serial.replay_mismatches, 0,
        "the resilient stack is prompt-deterministic"
    );
    println!(
        "determinism: 1-worker == 8-worker == rerun (trace fnv {:#018x})",
        serial.trace_fnv()
    );
    if let Some(store_file) = &store_path {
        match CacheStore::open(
            store_file,
            &LlmProfile::gpt3_175b().name,
            StoreConfig::default(),
        ) {
            Ok(store) => println!(
                "tiered store: {} completions persisted at {}",
                store.len(),
                store_file.display()
            ),
            Err(e) => println!("tiered store not readable after the runs: {e}"),
        }
    }

    println!(
        "\n{:<22} {:>5} {:>4} {:>9} {:>9} {:>9} {:>6} {:>8}",
        "tenant", "reqs", "err", "p50_ms", "p99_ms", "p999_ms", "slo%", "good/ks"
    );
    for t in &serial.tenants {
        println!(
            "{:<22} {:>5} {:>4} {:>9.1} {:>9.1} {:>9.1} {:>6.1} {:>8}",
            t.name,
            t.requests,
            t.errors,
            t.latency.quantile_us(500) as f64 / 1_000.0,
            t.latency.quantile_us(990) as f64 / 1_000.0,
            t.latency.quantile_us(999) as f64 / 1_000.0,
            t.attainment_permille as f64 / 10.0,
            t.goodput_per_ks,
        );
    }
    println!(
        "\ntotal: {} requests, {} errors, {} within SLO ({:.1}%), makespan {:.1} virtual s, \
         goodput {} answers/ks",
        serial.requests,
        serial.errors,
        serial.slo_met,
        serial.attainment_permille() as f64 / 10.0,
        serial.makespan_us as f64 / 1_000_000.0,
        serial.goodput_per_ks(),
    );

    write_section(&path, seed, &serving_json(&serial, seed, fault_seed));
}
