//! Regenerates every table and figure in sequence.

fn main() {
    let config = unidm_bench::config_from_args();
    println!("{}", unidm_eval::imputation::table1(config.clone()));
    println!("{}", unidm_eval::transformation::table2(config.clone()));
    println!("{}", unidm_eval::errors::table3(config.clone()));
    println!("{}", unidm_eval::matching::table4(config.clone()));
    println!("{}", unidm_eval::finetune::table5(config.clone()));
    println!("{}", unidm_eval::zoo::table6(config.clone()));
    println!("{}", unidm_eval::tokens::table7(config.clone()));
    println!("{}", unidm_eval::ablation::table8(config.clone()));
    println!("{}", unidm_eval::ablation::table9(config.clone()));
    println!("{}", unidm_eval::ablation::table10(config.clone()));
    println!("{}", unidm_eval::extraction::table11(config.clone()));
    println!("{}", unidm_eval::joins::fig5(config));
}
