//! Regenerates the paper's Table 8.

fn main() {
    let config = unidm_bench::config_from_args();
    println!("{}", unidm_eval::ablation::table8(config));
}
