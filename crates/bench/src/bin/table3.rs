//! Regenerates the paper's Table 3.

fn main() {
    let config = unidm_bench::config_from_args();
    println!("{}", unidm_eval::errors::table3(config));
}
