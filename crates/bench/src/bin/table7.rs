//! Regenerates the paper's Table 7.

fn main() {
    let config = unidm_bench::config_from_args();
    println!("{}", unidm_eval::tokens::table7(config));
}
