//! Regenerates the paper's Table 6.

fn main() {
    let config = unidm_bench::config_from_args();
    println!("{}", unidm_eval::zoo::table6(config));
}
