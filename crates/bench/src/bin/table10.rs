//! Regenerates the paper's Table 10.

fn main() {
    let config = unidm_bench::config_from_args();
    println!("{}", unidm_eval::ablation::table10(config));
}
