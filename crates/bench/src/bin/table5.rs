//! Regenerates the paper's Table 5.

fn main() {
    let config = unidm_bench::config_from_args();
    println!("{}", unidm_eval::finetune::table5(config));
}
