//! Regenerates the paper's Table 1.

fn main() {
    let config = unidm_bench::config_from_args();
    println!("{}", unidm_eval::imputation::table1(config));
}
