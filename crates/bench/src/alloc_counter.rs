//! A counting global allocator: the ground truth behind the "hot path
//! allocation budget" assertions in the perf baseline.
//!
//! Every allocation and reallocation made by a bench binary bumps two
//! relaxed atomics before delegating to the system allocator. The perf
//! regimes snapshot the counters around a measured section
//! ([`AllocationDelta`]) and assert *exact* counts — in particular that a
//! warm prompt-cache lookup of an already-canonical prompt performs zero
//! heap allocations.
//!
//! The counters are process-global and monotonic; concurrent allocations
//! from other threads during a measured section show up in the delta, so
//! exact-zero assertions must run on a quiescent process (the bench
//! binaries measure single-threaded sections).

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static DEALLOCATED: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// Bumps the live-bytes high-water mark after an allocation of `size` bytes.
fn note_alloc(size: u64) {
    BYTES.fetch_add(size, Ordering::Relaxed);
    let live = BYTES
        .load(Ordering::Relaxed)
        .saturating_sub(DEALLOCATED.load(Ordering::Relaxed));
    PEAK.fetch_max(live, Ordering::Relaxed);
}

/// A [`GlobalAlloc`] that counts allocations and allocated bytes, then
/// delegates to [`System`].
pub struct CountingAllocator;

// SAFETY: every method delegates directly to `System` with the caller's
// layout; the only additional work is relaxed atomic counter updates,
// which allocate nothing and cannot unwind.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        note_alloc(layout.size() as u64);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        note_alloc(layout.size() as u64);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow/shrink is one allocator round-trip: count it like a
        // fresh allocation of the new size plus a free of the old block.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        DEALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        note_alloc(new_size as u64);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total allocations made by this process so far.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested from the allocator by this process so far.
pub fn bytes_allocated() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// Bytes currently live (allocated minus deallocated). Approximate under
/// concurrency (two relaxed loads), exact on a quiescent process.
pub fn live_bytes() -> u64 {
    BYTES
        .load(Ordering::Relaxed)
        .saturating_sub(DEALLOCATED.load(Ordering::Relaxed))
}

/// High-water mark of [`live_bytes`] since process start (or the last
/// [`reset_peak_to_live`]).
pub fn peak_live_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live-byte count, so a
/// subsequent [`peak_live_bytes`] reading reflects only the section after
/// this call. Returns the live-byte baseline it reset to.
///
/// The out-of-core `scale` regime uses this to assert that streaming a
/// lake many times larger than memory never holds more than a bounded
/// number of chunks resident: peak minus baseline is the section's true
/// memory footprint, independent of whatever the process allocated before.
pub fn reset_peak_to_live() -> u64 {
    let live = live_bytes();
    PEAK.store(live, Ordering::Relaxed);
    live
}

/// A snapshot of the allocation counters, for measuring a section.
///
/// ```
/// use unidm_bench::alloc_counter::AllocationDelta;
///
/// let section = AllocationDelta::start();
/// let on_stack = [0u8; 64]; // no heap traffic
/// assert_eq!(section.allocations(), 0, "{}", on_stack.len());
/// let boxed = Box::new(1u64);
/// assert!(section.allocations() >= 1, "{}", boxed);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AllocationDelta {
    allocations: u64,
    bytes: u64,
}

impl AllocationDelta {
    /// Snapshots the counters now.
    pub fn start() -> Self {
        AllocationDelta {
            allocations: allocation_count(),
            bytes: bytes_allocated(),
        }
    }

    /// Allocations since the snapshot.
    pub fn allocations(&self) -> u64 {
        allocation_count() - self.allocations
    }

    /// Bytes allocated since the snapshot.
    pub fn bytes(&self) -> u64 {
        bytes_allocated() - self.bytes
    }
}
