//! Table 11 — text F1 on the information-extraction task (SWDE NBA).

use unidm::{BatchRunner, PipelineConfig, Task};
use unidm_baselines::evaporate;
use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
use unidm_synthdata::{extraction, ExtractionDataset};
use unidm_tablestore::DataLake;
use unidm_world::World;

use crate::metrics::text_f1;
use crate::report::TableReport;
use crate::ExperimentConfig;

/// Mean text F1 of the UniDM pipeline over documents × attributes (runs
/// batched across the worker pool).
pub fn unidm_f1(
    llm: &dyn LanguageModel,
    ds: &ExtractionDataset,
    pipeline: PipelineConfig,
    queries: usize,
) -> f64 {
    let lake = DataLake::new();
    let mut tasks = Vec::new();
    let mut truths: Vec<&String> = Vec::new();
    for (doc, truth) in ds.docs.iter().zip(&ds.truth).take(queries) {
        for attr in &ds.attrs {
            tasks.push(Task::Extraction {
                document: doc.text.clone(),
                attr: attr.clone(),
            });
            truths.push(&truth[attr]);
        }
    }
    let answers = BatchRunner::new(llm, pipeline).answers(&lake, &tasks);
    let mut sum = 0.0;
    for (answer, truth) in answers.iter().zip(&truths) {
        let answer = if answer == "unknown" {
            ""
        } else {
            answer.as_str()
        };
        sum += text_f1(answer, truth);
    }
    sum / tasks.len().max(1) as f64
}

/// Mean text F1 of an Evaporate extraction result.
fn evaporate_f1(
    preds: &[std::collections::BTreeMap<String, String>],
    ds: &ExtractionDataset,
    queries: usize,
) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (pred, truth) in preds.iter().zip(&ds.truth).take(queries) {
        for attr in &ds.attrs {
            let p = pred.get(attr).map(String::as_str).unwrap_or("");
            sum += text_f1(p, &truth[attr]);
            n += 1;
        }
    }
    sum / n.max(1) as f64
}

/// Runs Table 11: Evaporate-code, Evaporate-code+, UniDM on NBA players.
pub fn table11(config: ExperimentConfig) -> TableReport {
    let world = World::generate(config.seed);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), config.seed);
    let backend = config.backend.wrap(&llm);
    let cached = config
        .cache
        .attach(&format!("table11-seed{}", config.seed), backend.model());
    let llm = cached.model();
    let ds = extraction::nba_players(&world, config.seed);
    let q = config.queries.min(ds.len());
    let sample = &ds.docs[..10.min(ds.docs.len())];
    let mut report = TableReport::new(
        "Table 11. Text F1-score (%) on information extraction task (NBA players).",
        vec!["NBA player".into()],
    );
    let single = evaporate::extract_single(sample, &ds.docs, &ds.attrs);
    report.push(
        "Evaporate-code",
        vec![evaporate_f1(&single, &ds, q) * 100.0],
    );
    let ensemble = evaporate::extract_ensemble(sample, &ds.docs, &ds.attrs);
    report.push(
        "Evaporate-code+",
        vec![evaporate_f1(&ensemble, &ds, q) * 100.0],
    );
    report.push(
        "UniDM",
        vec![
            unidm_f1(
                llm,
                &ds,
                PipelineConfig::paper_default().with_seed(config.seed),
                q,
            ) * 100.0,
        ],
    );
    cached.finish();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table11_shape_holds() {
        let report = table11(ExperimentConfig::quick());
        let single = report.cell("Evaporate-code", "NBA player").unwrap();
        let ensemble = report.cell("Evaporate-code+", "NBA player").unwrap();
        let unidm = report.cell("UniDM", "NBA player").unwrap();
        // The paper's ordering: code < UniDM < code+.
        assert!(ensemble > single, "code+ {ensemble} vs code {single}");
        assert!(unidm > single, "unidm {unidm} vs code {single}");
        assert!(
            ensemble > unidm - 8.0,
            "code+ {ensemble} should rival unidm {unidm}"
        );
    }
}
