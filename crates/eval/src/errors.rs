//! Table 3 — F1 on the error detection task.

use unidm::{BatchRunner, PipelineConfig, Task};
use unidm_baselines::{fm, holoclean, holodetect::HoloDetect};
use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
use unidm_synthdata::{errors, ErrorDetectionDataset};
use unidm_tablestore::DataLake;
use unidm_world::World;

use crate::metrics::Confusion;
use crate::report::TableReport;
use crate::ExperimentConfig;

/// F1 of the UniDM pipeline on an error-detection dataset (runs batched
/// across the worker pool).
pub fn unidm_f1(
    llm: &dyn LanguageModel,
    ds: &ErrorDetectionDataset,
    pipeline: PipelineConfig,
    queries: usize,
) -> Confusion {
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let cells = &ds.cells[..queries.min(ds.cells.len())];
    let tasks: Vec<Task> = cells
        .iter()
        .map(|cell| Task::error_detection(ds.table.name(), cell.row, cell.attr.clone()))
        .collect();
    let answers = BatchRunner::new(llm, pipeline).answers(&lake, &tasks);
    let mut c = Confusion::default();
    for (answer, cell) in answers.iter().zip(cells) {
        let predicted = answer.trim().eq_ignore_ascii_case("yes");
        c.record(predicted, cell.is_error);
    }
    c
}

/// F1 of the FM baseline (few-shot demonstrations from the labelled seed).
pub fn fm_f1(
    llm: &dyn LanguageModel,
    ds: &ErrorDetectionDataset,
    queries: usize,
    seed: u64,
) -> Confusion {
    let runner = fm::Fm::new(llm, fm::ContextStrategy::Random, seed);
    // Few-shot demos: two errors and two clean cells from the tail (not the
    // evaluated head).
    let mut demos = Vec::new();
    for cell in ds.cells.iter().rev() {
        let value = ds
            .table
            .cell(cell.row, &cell.attr)
            .map(|v| v.to_string())
            .unwrap_or_default();
        if cell.is_error && demos.iter().filter(|(_, _, e)| *e).count() < 2 {
            demos.push((cell.attr.clone(), value, true));
        } else if !cell.is_error && demos.iter().filter(|(_, _, e)| !*e).count() < 2 {
            demos.push((cell.attr.clone(), value, false));
        }
        if demos.len() >= 4 {
            break;
        }
    }
    let mut c = Confusion::default();
    for cell in ds.cells.iter().take(queries) {
        let predicted = runner
            .detect_error(&ds.table, cell.row, &cell.attr, &demos)
            .unwrap_or(false);
        c.record(predicted, cell.is_error);
    }
    c
}

/// Runs Table 3: HoloClean, HoloDetect, FM, UniDM on Hospital and Adult.
pub fn table3(config: ExperimentConfig) -> TableReport {
    let world = World::generate(config.seed);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), config.seed);
    let backend = config.backend.wrap(&llm);
    let cached = config
        .cache
        .attach(&format!("table3-seed{}", config.seed), backend.model());
    let llm = cached.model();
    let datasets = [
        errors::hospital(&world, config.seed, 0.05),
        errors::adult(&world, config.seed, 250, 0.05),
    ];
    // Error cells are sparse (5%); evaluate enough cells to see them.
    let q = (config.queries * 10).max(400);
    let mut report = TableReport::new(
        "Table 3. F1-score (%) on error detection task with SOTA.",
        vec!["Hospital".into(), "Adult".into()],
    );
    report.push(
        "HoloClean",
        datasets
            .iter()
            .map(|ds| {
                let mut c = Confusion::default();
                for cell in ds.cells.iter().take(q) {
                    let p =
                        holoclean::detect_error(&ds.table, cell.row, &cell.attr).unwrap_or(false);
                    c.record(p, cell.is_error);
                }
                c.f1() * 100.0
            })
            .collect(),
    );
    report.push(
        "HoloDetect",
        datasets
            .iter()
            .map(|ds| {
                // Few-shot seed: a stratified mix — labelled cells are
                // ordered errors-first, so take some of each end.
                let seed: Vec<_> = ds
                    .cells
                    .iter()
                    .take(30)
                    .chain(ds.cells.iter().rev().take(70))
                    .map(|c| (c.row, c.attr.clone(), c.is_error))
                    .collect();
                let model = HoloDetect::fit(&ds.table, &ds.attrs, &seed).expect("fit");
                let mut c = Confusion::default();
                for cell in ds.cells.iter().take(q) {
                    let p = model
                        .detect(&ds.table, cell.row, &cell.attr)
                        .unwrap_or(false);
                    c.record(p, cell.is_error);
                }
                c.f1() * 100.0
            })
            .collect(),
    );
    report.push(
        "FM",
        datasets
            .iter()
            .map(|ds| fm_f1(llm, ds, q, config.seed).f1() * 100.0)
            .collect(),
    );
    report.push(
        "UniDM",
        datasets
            .iter()
            .map(|ds| {
                unidm_f1(
                    llm,
                    ds,
                    PipelineConfig::paper_default().with_seed(config.seed),
                    q,
                )
                .f1()
                    * 100.0
            })
            .collect(),
    );
    cached.finish();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shape_holds() {
        let report = table3(ExperimentConfig::quick());
        for ds in ["Hospital", "Adult"] {
            let unidm = report.cell("UniDM", ds).unwrap();
            let holoclean = report.cell("HoloClean", ds).unwrap();
            let holodetect = report.cell("HoloDetect", ds).unwrap();
            assert!(
                unidm > holoclean,
                "{ds}: unidm {unidm} vs holoclean {holoclean}"
            );
            assert!(
                unidm + 12.0 >= holodetect,
                "{ds}: unidm {unidm} vs holodetect {holodetect}"
            );
            assert!(unidm > 70.0, "{ds}: unidm too weak {unidm}");
        }
    }
}
