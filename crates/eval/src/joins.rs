//! Figure 5 — join discovery: precision/recall/F1 versus threshold,
//! WarpGate against UniDM.

use std::fmt;

use unidm::{BatchRunner, PipelineConfig, Task};
use unidm_baselines::warpgate;
use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
use unidm_synthdata::{joins, JoinDiscoveryDataset};
use unidm_tablestore::DataLake;
use unidm_world::World;

use crate::metrics::{sweep, Confusion};
use crate::ExperimentConfig;

/// One system's sweep curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSeries {
    /// System name.
    pub system: String,
    /// `(threshold, confusion)` points.
    pub points: Vec<(f64, Confusion)>,
}

/// The Figure 5 artifact: sweep curves for both systems.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Title.
    pub title: String,
    /// One series per system.
    pub series: Vec<SweepSeries>,
}

impl SweepReport {
    /// The series for `system`, if present.
    pub fn series(&self, system: &str) -> Option<&SweepSeries> {
        self.series.iter().find(|s| s.system == system)
    }

    /// Mean F1 across the sweep for `system`.
    pub fn mean_f1(&self, system: &str) -> Option<f64> {
        let s = self.series(system)?;
        let sum: f64 = s.points.iter().map(|(_, c)| c.f1()).sum();
        Some(sum / s.points.len().max(1) as f64)
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        writeln!(
            f,
            "{:<10}{:<12}{:>10}{:>10}{:>10}",
            "System", "Threshold", "Precision", "Recall", "F1"
        )?;
        writeln!(f, "{}", "-".repeat(52))?;
        for s in &self.series {
            for (t, c) in &s.points {
                writeln!(
                    f,
                    "{:<10}{:<12.2}{:>10.3}{:>10.3}{:>10.3}",
                    s.system,
                    t,
                    c.precision(),
                    c.recall(),
                    c.f1()
                )?;
            }
        }
        Ok(())
    }
}

/// Joinability scores of the UniDM pipeline over a dataset's pairs (runs
/// batched across the worker pool).
pub fn unidm_scores(
    llm: &dyn LanguageModel,
    ds: &JoinDiscoveryDataset,
    pipeline: PipelineConfig,
    queries: usize,
) -> Vec<(f64, bool)> {
    let lake = DataLake::new();
    let pairs = &ds.pairs[..queries.min(ds.pairs.len())];
    let tasks: Vec<Task> = pairs
        .iter()
        .map(|pair| Task::JoinDiscovery {
            left_name: pair.left_name.clone(),
            left_values: pair.left_values.clone(),
            right_name: pair.right_name.clone(),
            right_values: pair.right_values.clone(),
        })
        .collect();
    let answers = BatchRunner::new(llm, pipeline).answers(&lake, &tasks);
    answers
        .iter()
        .zip(pairs)
        .map(|(answer, pair)| (parse_joinability(answer), pair.joinable))
        .collect()
}

/// Parses "Yes (joinability: 83%)" into `0.83`.
pub fn parse_joinability(answer: &str) -> f64 {
    answer
        .split("joinability:")
        .nth(1)
        .and_then(|rest| {
            rest.trim()
                .trim_end_matches(')')
                .trim_end_matches('%')
                .trim()
                .parse::<f64>()
                .ok()
        })
        .map(|p| p / 100.0)
        .unwrap_or(0.0)
}

/// WarpGate scores over a dataset's pairs.
pub fn warpgate_scores(ds: &JoinDiscoveryDataset, queries: usize) -> Vec<(f64, bool)> {
    ds.pairs
        .iter()
        .take(queries)
        .map(|p| (warpgate::score(&p.left_values, &p.right_values), p.joinable))
        .collect()
}

/// The thresholds of Figure 5.
pub fn fig5_thresholds() -> Vec<f64> {
    (0..=12).map(|i| 0.35 + f64::from(i) * 0.05).collect()
}

/// Runs Figure 5: the P/R/F1 sweep of WarpGate vs UniDM on the NextiaJD
/// subset.
pub fn fig5(config: ExperimentConfig) -> SweepReport {
    let world = World::generate(config.seed);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), config.seed);
    let backend = config.backend.wrap(&llm);
    let cached = config
        .cache
        .attach(&format!("fig5-seed{}", config.seed), backend.model());
    let llm = cached.model();
    // The paper uses 4404 pairs; scale with the configured query budget.
    let n_pairs = (config.queries * 4).clamp(80, 4404);
    let ds = joins::nextiajd(&world, config.seed, n_pairs);
    let thresholds = fig5_thresholds();
    let wg = sweep(&warpgate_scores(&ds, n_pairs), &thresholds);
    let ud = sweep(
        &unidm_scores(
            llm,
            &ds,
            PipelineConfig::paper_default().with_seed(config.seed),
            n_pairs,
        ),
        &thresholds,
    );
    cached.finish();
    SweepReport {
        title: "Figure 5. F1-score, precision and recall on join discovery (NextiaJD subset)."
            .to_string(),
        series: vec![
            SweepSeries {
                system: "WarpGate".into(),
                points: wg,
            },
            SweepSeries {
                system: "UniDM".into(),
                points: ud,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_joinability_cases() {
        assert!((parse_joinability("Yes (joinability: 83%)") - 0.83).abs() < 1e-9);
        assert!((parse_joinability("No (joinability: 5%)") - 0.05).abs() < 1e-9);
        assert_eq!(parse_joinability("garbled"), 0.0);
    }

    #[test]
    fn fig5_unidm_dominates_sweep() {
        let report = fig5(ExperimentConfig::quick());
        let wg = report.mean_f1("WarpGate").unwrap();
        let ud = report.mean_f1("UniDM").unwrap();
        assert!(
            ud > wg,
            "UniDM mean F1 {ud:.3} should beat WarpGate {wg:.3}"
        );
        assert!(ud > 0.7, "UniDM should be strong: {ud:.3}");
    }

    #[test]
    fn fig5_report_prints_all_points() {
        let report = fig5(ExperimentConfig::quick());
        let text = report.to_string();
        assert!(text.contains("WarpGate"));
        assert!(text.contains("UniDM"));
        assert_eq!(report.series("UniDM").unwrap().points.len(), 13);
    }
}
