//! Tables 8–10 — component ablations.
//!
//! Each row toggles a subset of {instance-wise retrieval, meta-wise
//! retrieval, target prompt construction, context data parsing}, exactly as
//! the paper's checkmark tables do.

use unidm::PipelineConfig;
use unidm_llm::{LlmProfile, MockLlm};
use unidm_synthdata::{imputation, transformation};
use unidm_world::World;

use crate::imputation::unidm_accuracy;
use crate::report::TableReport;
use crate::transformation::unidm_accuracy as unidm_transform_accuracy;
use crate::ExperimentConfig;

/// One ablation row: which components are on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AblationRow {
    /// Instance-wise retrieval on.
    pub instance: bool,
    /// Meta-wise retrieval on.
    pub meta: bool,
    /// Target prompt construction on.
    pub prompt: bool,
    /// Context data parsing on.
    pub parsing: bool,
}

impl AblationRow {
    /// The paper's six imputation-ablation rows (Tables 8 and 9), in order.
    pub fn imputation_rows() -> Vec<AblationRow> {
        vec![
            AblationRow {
                instance: false,
                meta: false,
                prompt: false,
                parsing: false,
            },
            AblationRow {
                instance: true,
                meta: false,
                prompt: false,
                parsing: false,
            },
            AblationRow {
                instance: false,
                meta: true,
                prompt: false,
                parsing: false,
            },
            AblationRow {
                instance: true,
                meta: true,
                prompt: false,
                parsing: false,
            },
            AblationRow {
                instance: true,
                meta: true,
                prompt: true,
                parsing: false,
            },
            AblationRow {
                instance: true,
                meta: true,
                prompt: true,
                parsing: true,
            },
        ]
    }

    /// The paper's four transformation-ablation rows (Table 10).
    pub fn transformation_rows() -> Vec<AblationRow> {
        vec![
            AblationRow {
                instance: false,
                meta: false,
                prompt: false,
                parsing: false,
            },
            AblationRow {
                instance: false,
                meta: false,
                prompt: true,
                parsing: false,
            },
            AblationRow {
                instance: false,
                meta: false,
                prompt: false,
                parsing: true,
            },
            AblationRow {
                instance: false,
                meta: false,
                prompt: true,
                parsing: true,
            },
        ]
    }

    /// The pipeline configuration for this row.
    pub fn config(&self, seed: u64) -> PipelineConfig {
        PipelineConfig {
            instance_retrieval: self.instance,
            meta_retrieval: self.meta,
            prompt_construction: self.prompt,
            context_parsing: self.parsing,
            ..PipelineConfig::paper_default()
        }
        .with_seed(seed)
    }

    /// Checkmark label like "I+M+T+C" (empty set = "none").
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.instance {
            parts.push("I");
        }
        if self.meta {
            parts.push("M");
        }
        if self.prompt {
            parts.push("T");
        }
        if self.parsing {
            parts.push("C");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }
}

fn imputation_ablation(config: ExperimentConfig, dataset: &str, title: &str) -> TableReport {
    let world = World::generate(config.seed);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), config.seed);
    let backend = config.backend.wrap(&llm);
    let cached = config.cache.attach(
        &format!("ablation-{dataset}-seed{}", config.seed),
        backend.model(),
    );
    let llm = cached.model();
    let ds = match dataset {
        "Restaurant" => imputation::restaurant(&world, config.seed, config.queries),
        _ => imputation::buy(&world, config.seed, config.queries),
    };
    let mut report = TableReport::new(title, vec!["Acc".into()]);
    for row in AblationRow::imputation_rows() {
        let acc = unidm_accuracy(llm, &ds, row.config(config.seed), config.queries);
        report.push(row.label(), vec![acc.percent()]);
    }
    cached.finish();
    report
}

/// Runs Table 8: imputation ablation on Restaurant.
pub fn table8(config: ExperimentConfig) -> TableReport {
    imputation_ablation(
        config,
        "Restaurant",
        "Table 8. Ablation of UniDM on data imputation (Restaurant). I=instance-wise, \
         M=meta-wise, T=target prompt construction, C=context data parsing.",
    )
}

/// Runs Table 9: imputation ablation on Buy.
pub fn table9(config: ExperimentConfig) -> TableReport {
    imputation_ablation(
        config,
        "Buy",
        "Table 9. Ablation of UniDM on data imputation (Buy). I=instance-wise, M=meta-wise, \
         T=target prompt construction, C=context data parsing.",
    )
}

/// Runs Table 10: transformation ablation (target prompt construction ×
/// context data parsing) on StackOverflow and Bing-QueryLogs.
pub fn table10(config: ExperimentConfig) -> TableReport {
    let world = World::generate(config.seed);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), config.seed);
    let backend = config.backend.wrap(&llm);
    let cached = config
        .cache
        .attach(&format!("table10-seed{}", config.seed), backend.model());
    let llm = cached.model();
    let datasets = [
        transformation::stackoverflow(&world, config.seed, config.queries),
        transformation::bing_querylogs(&world, config.seed, config.queries),
    ];
    let mut report = TableReport::new(
        "Table 10. Ablation of UniDM on data transformation. T=target prompt construction, \
         C=context data parsing.",
        vec!["StackOverflow".into(), "Bing-QueryLogs".into()],
    );
    for row in AblationRow::transformation_rows() {
        let cells: Vec<f64> = datasets
            .iter()
            .map(|ds| {
                unidm_transform_accuracy(llm, ds, row.config(config.seed), config.queries).percent()
            })
            .collect();
        report.push(row.label(), cells);
    }
    cached.finish();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_paper_layout() {
        assert_eq!(AblationRow::imputation_rows().len(), 6);
        assert_eq!(AblationRow::transformation_rows().len(), 4);
        assert_eq!(
            AblationRow {
                instance: true,
                meta: true,
                prompt: true,
                parsing: true
            }
            .label(),
            "I+M+T+C"
        );
        assert_eq!(AblationRow::imputation_rows()[0].label(), "none");
    }

    #[test]
    fn table8_full_config_best() {
        let report = table8(ExperimentConfig::quick());
        let none = report.cell("none", "Acc").unwrap();
        let full = report.cell("I+M+T+C", "Acc").unwrap();
        assert!(
            full + 1e-9 >= none,
            "full pipeline should not lose to the bare one: {full} vs {none}"
        );
    }

    #[test]
    fn table10_components_help() {
        let report = table10(ExperimentConfig::quick());
        let none = report.cell("none", "StackOverflow").unwrap();
        let full = report.cell("T+C", "StackOverflow").unwrap();
        assert!(full + 5.0 >= none, "T+C {full} vs none {none}");
    }
}
