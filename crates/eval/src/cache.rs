//! Opt-in prompt caching for the experiment runners.
//!
//! Every table driver builds its model, then calls
//! [`CacheConfig::attach`] with a scenario name. When caching is enabled
//! the driver's LLM traffic flows through a sharded, canonicalizing
//! [`PromptCache`]; when a snapshot directory is configured the cache is
//! warm-started from (and persisted back to) a per-scenario snapshot
//! file, so repeating an eval run answers its repeated prompts before any
//! model call.
//!
//! Snapshots are keyed by scenario name — which embeds the table, the
//! model, and the seed — and additionally carry the model name inside the
//! file, so a snapshot taken over one model is never served to another
//! (see [`unidm::SnapshotError::ModelMismatch`]).
//!
//! # Tiered store
//!
//! [`CacheConfig::with_store_path`] attaches the merged disk tier
//! ([`unidm::CacheStore`]) beneath every scenario's in-memory cache: one
//! versioned, append-only `UDMCACHE1` file shared by all ten drivers of a
//! model, with TinyLFU admission control, compaction and max-age
//! eviction. When both a store and a snapshot directory are configured,
//! any legacy per-scenario `.promptcache` v1 snapshot is imported into
//! the store on attach (one-shot, idempotent — existing store entries
//! win), so warm-start behavior carries over byte-for-byte. The v1
//! per-scenario snapshots are deprecated in favor of the store.
//!
//! Caching is off by default: the paper tables are regenerated with exact
//! memoization semantics unless the caller opts in (the bench binaries
//! expose this as `--cache` / `--cache-dir` / `--store`).

use std::path::PathBuf;

use unidm::{CacheStats, CacheStore, CanonLevel, PromptCache, StoreConfig, StoreStats};
use unidm_llm::LanguageModel;

/// Prompt-cache settings shared by every experiment driver.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheConfig {
    /// Whether drivers route their model traffic through a [`PromptCache`].
    pub enabled: bool,
    /// Canonicalization level of the attached caches.
    pub level: CanonLevel,
    /// Shard count (0 selects the cache's default).
    pub shards: usize,
    /// Total completion capacity (0 means unbounded).
    pub capacity: usize,
    /// Disable cache-level single-flight coalescing
    /// ([`PromptCache::with_single_flight`]). Required when the model
    /// beneath the cache is a pipelined `unidm::Dispatcher`: registered
    /// workers must never block in a cache slot the dispatcher cannot
    /// see, and the dispatcher coalesces duplicate prompts itself.
    pub no_single_flight: bool,
    /// Directory for per-scenario snapshot files; `None` keeps caches
    /// in-memory only. Deprecated in favor of [`CacheConfig::store_path`]
    /// (legacy snapshots still load, and are migrated into the store when
    /// both are configured).
    pub snapshot_dir: Option<PathBuf>,
    /// Path of the shared `UDMCACHE1` disk-tier file; `None` disables the
    /// disk tier.
    pub store_path: Option<PathBuf>,
    /// Disk-tier entry capacity (0 means unbounded). At capacity the
    /// TinyLFU filter gates admission, so one-touch scan keys cannot
    /// displace the hot set.
    pub store_capacity: usize,
    /// Maximum generations (opens) a disk-tier entry survives untouched
    /// (0 means no age limit).
    pub store_max_age: u64,
}

impl CacheConfig {
    /// Caching enabled at [`CanonLevel::TableStem`] — the level that folds
    /// per-row retrieval prompts and lifts imputation hit rates an order
    /// of magnitude — with default sharding and no persistence.
    pub fn enabled() -> Self {
        CacheConfig {
            enabled: true,
            level: CanonLevel::TableStem,
            ..CacheConfig::default()
        }
    }

    /// Adds cross-run persistence: snapshots are loaded from and saved to
    /// `dir` (created on first use), one file per scenario.
    pub fn with_snapshot_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.snapshot_dir = Some(dir.into());
        self
    }

    /// Attaches the shared disk tier at `path` (created on first use,
    /// parent directories included). All scenarios of a model share this
    /// one file; a store written for one model is never served to another
    /// ([`unidm::StoreError::ModelMismatch`]).
    pub fn with_store_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.store_path = Some(path.into());
        self
    }

    fn store_config(&self) -> StoreConfig {
        let mut config = StoreConfig::default();
        if self.store_capacity > 0 {
            config = config.with_max_entries(self.store_capacity);
        }
        if self.store_max_age > 0 {
            config = config.with_max_age(self.store_max_age);
        }
        config
    }

    /// Wraps `llm` according to this configuration.
    ///
    /// `scenario` names the workload (e.g. `"table1-seed42"`) and becomes
    /// the snapshot file name; if a snapshot for it exists it is restored
    /// before the first lookup. Load failures (missing file, mismatched
    /// model, stale format) fall back to a cold cache — a warm start is an
    /// optimization, never a correctness requirement.
    pub fn attach<'a>(&self, scenario: &str, llm: &'a dyn LanguageModel) -> AttachedCache<'a> {
        if !self.enabled {
            return AttachedCache {
                fallback: llm,
                cache: None,
                snapshot_path: None,
                loaded: 0,
                migrated: 0,
            };
        }
        let mut cache = if self.capacity == 0 {
            PromptCache::unbounded(llm)
        } else {
            PromptCache::new(llm, self.capacity)
        };
        if self.shards > 0 {
            cache = cache.with_shards(self.shards);
        }
        if self.no_single_flight {
            cache = cache.with_single_flight(false);
        }
        let mut cache = cache.with_canonicalization(self.level);
        let snapshot_path = self.snapshot_dir.as_ref().map(|dir| {
            let _ = std::fs::create_dir_all(dir);
            dir.join(format!("{scenario}.promptcache"))
        });
        let mut loaded = 0;
        if let Some(path) = &snapshot_path {
            if path.exists() {
                match cache.load_from(path) {
                    Ok(n) => loaded = n,
                    Err(e) => eprintln!("warning: cold-starting {scenario}: {e}"),
                }
            }
        }
        let mut migrated = 0;
        if let Some(path) = &self.store_path {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            match CacheStore::open(path, llm.name(), self.store_config()) {
                Ok(store) => {
                    // One-shot migration: fold any legacy v1 snapshot into
                    // the shared store. Idempotent — existing store
                    // entries win, so re-attaching re-imports nothing.
                    if let Some(snapshot) = snapshot_path.as_ref().filter(|p| p.exists()) {
                        match std::fs::read_to_string(snapshot)
                            .map_err(unidm::StoreError::from)
                            .and_then(|text| store.import_v1(&text))
                        {
                            Ok(n) => migrated = n,
                            Err(e) => {
                                eprintln!("warning: not migrating {scenario} snapshot: {e}")
                            }
                        }
                    }
                    cache = cache.with_store(store);
                }
                Err(e) => eprintln!(
                    "warning: disk tier disabled for {scenario} ({}): {e}",
                    path.display()
                ),
            }
        }
        AttachedCache {
            fallback: llm,
            cache: Some(cache),
            snapshot_path,
            loaded,
            migrated,
        }
    }
}

/// A model reference optionally wrapped in a configured [`PromptCache`]
/// (see [`CacheConfig::attach`]).
pub struct AttachedCache<'a> {
    fallback: &'a dyn LanguageModel,
    cache: Option<PromptCache<'a>>,
    snapshot_path: Option<PathBuf>,
    /// Entries restored from the scenario snapshot (0 on a cold start).
    pub loaded: usize,
    /// Legacy v1 snapshot entries imported into the disk tier on attach
    /// (0 when no store or no snapshot is configured, or when the store
    /// already held every entry).
    pub migrated: usize,
}

impl<'a> AttachedCache<'a> {
    /// The model the driver should talk to: the cache when enabled, the
    /// bare model otherwise.
    pub fn model(&self) -> &dyn LanguageModel {
        match &self.cache {
            Some(cache) => cache,
            None => self.fallback,
        }
    }

    /// Aggregated cache statistics, when caching is enabled.
    pub fn stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(PromptCache::stats)
    }

    /// Disk-tier statistics, when a store is attached.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.cache.as_ref().and_then(PromptCache::store_stats)
    }

    /// Persists the cache to its scenario snapshot file, if both caching
    /// and a snapshot directory are configured. Failures are reported on
    /// stderr and otherwise ignored — eval results never depend on the
    /// snapshot being written.
    pub fn finish(&self) {
        if let (Some(cache), Some(path)) = (&self.cache, &self.snapshot_path) {
            if let Err(e) = cache.save_to(path) {
                eprintln!(
                    "warning: could not persist prompt cache to {}: {e}",
                    path.display()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_llm::{LlmProfile, MockLlm};
    use unidm_world::World;

    fn llm() -> MockLlm {
        MockLlm::new(&World::generate(7), LlmProfile::gpt3_175b(), 7)
    }

    #[test]
    fn disabled_config_passes_the_model_through() {
        let model = llm();
        let attached = CacheConfig::default().attach("t", &model);
        assert!(attached.stats().is_none());
        attached.model().complete("hello").unwrap();
        assert!(model.usage().total() > 0);
        attached.finish();
    }

    #[test]
    fn enabled_config_caches_and_persists_per_scenario() {
        let dir = std::env::temp_dir().join(format!("unidm-cache-test-{}", std::process::id()));
        let config = CacheConfig::enabled().with_snapshot_dir(&dir);

        let model = llm();
        let cold = config.attach("scenario-a", &model);
        assert_eq!(cold.loaded, 0, "first run starts cold");
        cold.model().complete("a repeated prompt").unwrap();
        cold.model().complete("a repeated prompt").unwrap();
        assert_eq!(cold.stats().unwrap().hits, 1);
        cold.finish();

        let fresh = llm();
        let warm = config.attach("scenario-a", &fresh);
        assert!(warm.loaded > 0, "second run restores the snapshot");
        warm.model().complete("a repeated prompt").unwrap();
        assert_eq!(
            fresh.usage().total(),
            0,
            "warm run answers before any model call"
        );
        assert_eq!(warm.stats().unwrap().hits, 1);

        // A different scenario does not see scenario-a's snapshot.
        let other = config.attach("scenario-b", &fresh);
        assert_eq!(other.loaded, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_path_shares_completions_across_scenarios_and_migrates_v1() {
        let dir = std::env::temp_dir().join(format!("unidm-cache-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Run one scenario with the legacy snapshot flow only.
        let legacy = CacheConfig::enabled().with_snapshot_dir(&dir);
        let model = llm();
        let first = legacy.attach("scenario-a", &model);
        first.model().complete("a migrated prompt").unwrap();
        first.finish();

        // Attach with a store: the v1 snapshot is imported one-shot.
        let config = legacy.clone().with_store_path(dir.join("merged.udmstore"));
        let second = config.attach("scenario-a", &model);
        assert_eq!(second.migrated, 1, "v1 snapshot migrates into the store");
        let third = config.attach("scenario-a", &model);
        assert_eq!(third.migrated, 0, "migration is idempotent");

        // A different scenario (no snapshot of its own, fresh tier 0)
        // reads the shared store and never calls the model.
        let fresh = llm();
        let other = CacheConfig::enabled()
            .with_store_path(dir.join("merged.udmstore"))
            .attach("scenario-b", &fresh);
        assert_eq!(other.loaded, 0);
        other.model().complete("a migrated prompt").unwrap();
        assert_eq!(
            fresh.usage().total(),
            0,
            "shared store answers across scenarios with zero model calls"
        );
        assert_eq!(other.store_stats().unwrap().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_model_snapshot_falls_back_to_cold() {
        let dir = std::env::temp_dir().join(format!("unidm-cache-mm-{}", std::process::id()));
        let config = CacheConfig::enabled().with_snapshot_dir(&dir);
        let gpt3 = llm();
        let first = config.attach("shared", &gpt3);
        first.model().complete("alpha").unwrap();
        first.finish();

        let gpt4 = MockLlm::new(&World::generate(7), LlmProfile::gpt4_turbo(), 7);
        let second = config.attach("shared", &gpt4);
        assert_eq!(second.loaded, 0, "wrong-model snapshot must not load");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
