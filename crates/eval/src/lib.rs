//! Experiment runners regenerating every table and figure of the UniDM
//! paper, plus the metrics they report.
//!
//! Each `table*` / `fig*` function returns a [`report::TableReport`] whose
//! rows mirror the paper's rows; the `unidm-bench` binaries print them.
//! Runners are deterministic functions of an [`ExperimentConfig`].
//!
//! | Function | Paper object |
//! |---|---|
//! | [`imputation::table1`] | Table 1 — imputation accuracy |
//! | [`transformation::table2`] | Table 2 — transformation accuracy |
//! | [`errors::table3`] | Table 3 — error-detection F1 |
//! | [`matching::table4`] | Table 4 — entity-resolution F1 |
//! | [`finetune::table5`] | Table 5 — fine-tuning F1 |
//! | [`zoo::table6`] | Table 6 — imputation across LLM variants |
//! | [`tokens::table7`] | Table 7 — token consumption per query |
//! | [`ablation::table8`] / [`ablation::table9`] / [`ablation::table10`] | Tables 8–10 — component ablations |
//! | [`extraction::table11`] | Table 11 — information-extraction F1 |
//! | [`joins::fig5`] | Figure 5 — join-discovery sweep |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod errors;
pub mod extraction;
pub mod finetune;
pub mod imputation;
pub mod joins;
pub mod matching;
pub mod metrics;
pub mod report;
pub mod tokens;
pub mod transformation;
pub mod zoo;

/// Shared configuration of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// World seed (datasets and the model's knowledge derive from it).
    pub seed: u64,
    /// Number of evaluation queries per dataset (tables cap at the dataset
    /// size). The paper-scale default is 100+; CI uses less.
    pub queries: usize,
}

impl ExperimentConfig {
    /// Paper-scale run: a few hundred queries per cell.
    pub fn paper() -> Self {
        ExperimentConfig {
            seed: 42,
            queries: 150,
        }
    }

    /// Quick run for tests and smoke checks.
    pub fn quick() -> Self {
        ExperimentConfig {
            seed: 42,
            queries: 30,
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_differ_in_scale() {
        assert!(ExperimentConfig::paper().queries > ExperimentConfig::quick().queries);
    }
}
