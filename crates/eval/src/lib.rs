//! Experiment runners regenerating every table and figure of the UniDM
//! paper, plus the metrics they report.
//!
//! Each `table*` / `fig*` function returns a [`report::TableReport`] whose
//! rows mirror the paper's rows; the `unidm-bench` binaries print them.
//! Runners are deterministic functions of an [`ExperimentConfig`].
//!
//! Drivers route their LLM traffic through the batch engine's prompt
//! cache when [`ExperimentConfig::cache`] opts in (see [`CacheConfig`]):
//! with a snapshot directory configured, a repeated run of the same
//! table/seed/model scenario starts warm and serves its repeated prompts
//! without touching the model.
//!
//! [`ExperimentConfig::backend`] additionally threads every driver's
//! model through the resilient backend substrate
//! (`unidm::backend`) — rate limiting, retry, circuit breaking, and
//! optionally a seeded fault injector — *under* the cache, so cache hits
//! never consume rate-limit budget and a faulty run reproduces the
//! fault-free tables bit-for-bit.
//!
//! | Function | Paper object |
//! |---|---|
//! | [`imputation::table1`] | Table 1 — imputation accuracy |
//! | [`transformation::table2`] | Table 2 — transformation accuracy |
//! | [`errors::table3`] | Table 3 — error-detection F1 |
//! | [`matching::table4`] | Table 4 — entity-resolution F1 |
//! | [`finetune::table5`] | Table 5 — fine-tuning F1 |
//! | [`zoo::table6`] | Table 6 — imputation across LLM variants |
//! | [`tokens::table7`] | Table 7 — token consumption per query |
//! | [`ablation::table8`] / [`ablation::table9`] / [`ablation::table10`] | Tables 8–10 — component ablations |
//! | [`extraction::table11`] | Table 11 — information-extraction F1 |
//! | [`joins::fig5`] | Figure 5 — join-discovery sweep |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod cache;
pub mod errors;
pub mod extraction;
pub mod finetune;
pub mod imputation;
pub mod joins;
pub mod matching;
pub mod metrics;
pub mod report;
pub mod streams;
pub mod tokens;
pub mod transformation;
pub mod zoo;

pub use cache::{AttachedCache, CacheConfig};
pub use unidm::backend::BackendConfig;
pub use unidm::dispatch::HedgePolicy;
pub use unidm::route::{AimdPolicy, RoutePlan};

/// Shared configuration of an experiment run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// World seed (datasets and the model's knowledge derive from it).
    pub seed: u64,
    /// Number of evaluation queries per dataset (tables cap at the dataset
    /// size). The paper-scale default is 100+; CI uses less.
    pub queries: usize,
    /// Prompt-cache settings (disabled by default — enable for warm
    /// repeated runs).
    pub cache: CacheConfig,
    /// Resilient-backend settings (disabled by default). When enabled,
    /// every driver threads its model through
    /// [`unidm::backend::BackendConfig::wrap`] *under* the prompt cache,
    /// so cache hits bypass rate limiting and fault injection entirely.
    pub backend: BackendConfig,
}

impl ExperimentConfig {
    /// Paper-scale run: a few hundred queries per cell.
    pub fn paper() -> Self {
        ExperimentConfig {
            seed: 42,
            queries: 150,
            cache: CacheConfig::default(),
            backend: BackendConfig::default(),
        }
    }

    /// Quick run for tests and smoke checks.
    pub fn quick() -> Self {
        ExperimentConfig {
            seed: 42,
            queries: 30,
            cache: CacheConfig::default(),
            backend: BackendConfig::default(),
        }
    }

    /// Replaces the cache settings (builder-style).
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Replaces the backend settings (builder-style).
    pub fn with_backend(mut self, backend: BackendConfig) -> Self {
        self.backend = backend;
        self
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_differ_in_scale() {
        assert!(ExperimentConfig::paper().queries > ExperimentConfig::quick().queries);
    }
}
