//! Table 2 — accuracy on the data transformation task.

use unidm::{BatchRunner, PipelineConfig, Task};
use unidm_baselines::{fm, tde};
use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
use unidm_synthdata::{transformation, TransformationDataset};
use unidm_tablestore::DataLake;
use unidm_world::World;

use crate::metrics::Accuracy;
use crate::report::TableReport;
use crate::ExperimentConfig;

/// Exact-match accuracy of the UniDM pipeline on a transformation dataset
/// (runs batched across the worker pool).
pub fn unidm_accuracy(
    llm: &dyn LanguageModel,
    ds: &TransformationDataset,
    pipeline: PipelineConfig,
    queries: usize,
) -> Accuracy {
    let lake = DataLake::new();
    let cases = &ds.cases[..queries.min(ds.cases.len())];
    let tasks: Vec<Task> = cases
        .iter()
        .map(|case| Task::Transformation {
            examples: case.examples.clone(),
            input: case.input.clone(),
        })
        .collect();
    let answers = BatchRunner::new(llm, pipeline).answers(&lake, &tasks);
    let mut acc = Accuracy::default();
    for (answer, case) in answers.iter().zip(cases) {
        acc.record(*answer == case.truth);
    }
    acc
}

/// Exact-match accuracy of the FM baseline.
pub fn fm_accuracy(
    llm: &dyn LanguageModel,
    ds: &TransformationDataset,
    queries: usize,
    seed: u64,
) -> Accuracy {
    let runner = fm::Fm::new(llm, fm::ContextStrategy::Random, seed);
    let mut acc = Accuracy::default();
    for case in ds.cases.iter().take(queries) {
        let answer = runner
            .transform(&case.examples, &case.input)
            .unwrap_or_default();
        acc.record(answer == case.truth);
    }
    acc
}

/// Exact-match accuracy of TDE.
pub fn tde_accuracy(ds: &TransformationDataset, queries: usize) -> Accuracy {
    let mut acc = Accuracy::default();
    for case in ds.cases.iter().take(queries) {
        acc.record(tde::transform(&case.examples, &case.input) == case.truth);
    }
    acc
}

/// Runs Table 2: TDE, FM, UniDM on StackOverflow and Bing-QueryLogs.
pub fn table2(config: ExperimentConfig) -> TableReport {
    let world = World::generate(config.seed);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), config.seed);
    let backend = config.backend.wrap(&llm);
    let cached = config
        .cache
        .attach(&format!("table2-seed{}", config.seed), backend.model());
    let llm = cached.model();
    let datasets = [
        transformation::stackoverflow(&world, config.seed, config.queries),
        transformation::bing_querylogs(&world, config.seed, config.queries),
    ];
    let mut report = TableReport::new(
        "Table 2. Accuracy (%) on data transformation task with SOTA.",
        vec!["StackOverflow".into(), "Bing-QueryLogs".into()],
    );
    let q = config.queries;
    report.push(
        "TDE",
        datasets
            .iter()
            .map(|ds| tde_accuracy(ds, q).percent())
            .collect(),
    );
    report.push(
        "FM",
        datasets
            .iter()
            .map(|ds| fm_accuracy(llm, ds, q, config.seed).percent())
            .collect(),
    );
    report.push(
        "UniDM",
        datasets
            .iter()
            .map(|ds| {
                unidm_accuracy(
                    llm,
                    ds,
                    PipelineConfig::paper_default().with_seed(config.seed),
                    q,
                )
                .percent()
            })
            .collect(),
    );
    cached.finish();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_holds() {
        let report = table2(ExperimentConfig::quick());
        let tde_so = report.cell("TDE", "StackOverflow").unwrap();
        let tde_bing = report.cell("TDE", "Bing-QueryLogs").unwrap();
        let unidm_so = report.cell("UniDM", "StackOverflow").unwrap();
        let unidm_bing = report.cell("UniDM", "Bing-QueryLogs").unwrap();
        // TDE collapses on the semantic-heavy dataset; UniDM stays ahead of
        // TDE on both.
        assert!(tde_so > tde_bing, "TDE SO {tde_so} vs Bing {tde_bing}");
        assert!(unidm_so > tde_so, "UniDM {unidm_so} vs TDE {tde_so}");
        assert!(
            unidm_bing > tde_bing,
            "UniDM {unidm_bing} vs TDE {tde_bing}"
        );
    }
}
