//! Canonical prompt streams of the ten paper scenarios, recorded for the
//! open-loop serving simulator.
//!
//! `unidm::serve` injects a multi-tenant mix of *real* pipeline traffic,
//! not synthetic strings: each of the ten eval drivers is replayed here
//! against a [`PromptCache`] in recording mode
//! ([`CanonLevel::TableStem`]), and the cache's sorted canonical keys
//! become that scenario's prompt stream. Recording through the cache
//! means a stream holds each canonical prompt once — exactly the working
//! set a serving deployment of that scenario would hammer — and sorting
//! makes the stream a deterministic function of `(seed, queries)` alone,
//! independent of worker scheduling during recording.

use unidm::{BatchRunner, CanonLevel, PipelineConfig, PromptCache, Task};
use unidm_llm::{LlmProfile, MockLlm};
use unidm_synthdata::{errors, extraction, imputation, joins, matching, transformation};
use unidm_tablestore::DataLake;
use unidm_world::World;

use crate::matching::to_serialized;

/// One scenario's recorded canonical prompt stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromptStream {
    /// Which paper scenario produced the stream (e.g. `"table1-imputation"`).
    pub scenario: &'static str,
    /// The canonical prompt texts, sorted (deduplicated by recording).
    pub prompts: Vec<String>,
}

/// Replays `tasks` through a recording cache and returns the canonical
/// prompts the run produced.
fn record(seed: u64, lake: &DataLake, tasks: &[Task]) -> Vec<String> {
    let world = World::generate(seed);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), seed);
    let cache = PromptCache::unbounded(&llm).with_canonicalization(CanonLevel::TableStem);
    let pipeline = PipelineConfig::paper_default().with_seed(seed);
    BatchRunner::new(&cache, pipeline).answers(lake, tasks);
    cache.canonical_prompts()
}

/// Records the ten scenarios' canonical prompt streams at `seed`, each
/// driver replayed over (up to) `queries` of its evaluation items.
///
/// The result is deterministic in `(seed, queries)` and is the prompt
/// pool the serving bench's tenant mix draws from; streams of related
/// scenarios overlap (Tables 1, 6 and 7 all impute), which is exactly
/// what makes a shared prompt cache earn its keep under multi-tenant
/// load.
pub fn record_streams(seed: u64, queries: usize) -> Vec<PromptStream> {
    let world = World::generate(seed);
    let queries = queries.max(1);
    let mut streams = Vec::with_capacity(10);

    // Table 1 — imputation (Restaurant).
    {
        let ds = imputation::restaurant(&world, seed, queries);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let tasks: Vec<Task> = ds.targets[..queries.min(ds.targets.len())]
            .iter()
            .map(|t| {
                Task::imputation(
                    ds.table.name(),
                    t.row,
                    ds.target_attr.clone(),
                    ds.key_attr.clone(),
                )
            })
            .collect();
        streams.push(PromptStream {
            scenario: "table1-imputation",
            prompts: record(seed, &lake, &tasks),
        });
    }

    // Table 2 — transformation (StackOverflow).
    {
        let ds = transformation::stackoverflow(&world, seed, queries);
        let tasks: Vec<Task> = ds.cases[..queries.min(ds.cases.len())]
            .iter()
            .map(|case| Task::Transformation {
                examples: case.examples.clone(),
                input: case.input.clone(),
            })
            .collect();
        streams.push(PromptStream {
            scenario: "table2-transformation",
            prompts: record(seed, &DataLake::new(), &tasks),
        });
    }

    // Table 3 — error detection (Hospital).
    {
        let ds = errors::hospital(&world, seed, 0.05);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let tasks: Vec<Task> = ds.cells[..queries.min(ds.cells.len())]
            .iter()
            .map(|cell| Task::error_detection(ds.table.name(), cell.row, cell.attr.clone()))
            .collect();
        streams.push(PromptStream {
            scenario: "table3-errors",
            prompts: record(seed, &lake, &tasks),
        });
    }

    // Tables 4 and 5 — entity resolution (Beer; Walmart-Amazon). Table 5
    // serves the same task shape through fine-tuned variants, so its
    // stream is the Walmart-Amazon pairs the fine-tune driver queries.
    for (scenario, ds) in [
        ("table4-matching", matching::beer(&world, seed)),
        ("table5-finetune", matching::walmart_amazon(&world, seed)),
    ] {
        let pool: Vec<_> = ds
            .train
            .iter()
            .take(40)
            .map(|p| {
                (
                    to_serialized(&ds.schema, &p.a),
                    to_serialized(&ds.schema, &p.b),
                    p.is_match,
                )
            })
            .collect();
        let tasks: Vec<Task> = ds.pairs[..queries.min(ds.pairs.len())]
            .iter()
            .map(|pair| Task::EntityResolution {
                a: to_serialized(&ds.schema, &pair.a),
                b: to_serialized(&ds.schema, &pair.b),
                pool: pool.clone(),
            })
            .collect();
        streams.push(PromptStream {
            scenario,
            prompts: record(seed, &DataLake::new(), &tasks),
        });
    }

    // Table 6 — the model zoo imputes Buy across LLM variants; the
    // prompt stream is the same for every variant.
    {
        let ds = imputation::buy(&world, seed, queries);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let tasks: Vec<Task> = ds.targets[..queries.min(ds.targets.len())]
            .iter()
            .map(|t| {
                Task::imputation(
                    ds.table.name(),
                    t.row,
                    ds.target_attr.clone(),
                    ds.key_attr.clone(),
                )
            })
            .collect();
        streams.push(PromptStream {
            scenario: "table6-zoo",
            prompts: record(seed, &lake, &tasks),
        });
    }

    // Table 7 — token accounting replays Restaurant imputation with a
    // different seed offset so its stream overlaps-but-differs from
    // Table 1 (the overlap is what a shared cache exploits).
    {
        let ds = imputation::restaurant(&world, seed.wrapping_add(1), queries);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let tasks: Vec<Task> = ds.targets[..queries.min(ds.targets.len())]
            .iter()
            .map(|t| {
                Task::imputation(
                    ds.table.name(),
                    t.row,
                    ds.target_attr.clone(),
                    ds.key_attr.clone(),
                )
            })
            .collect();
        streams.push(PromptStream {
            scenario: "table7-tokens",
            prompts: record(seed, &lake, &tasks),
        });
    }

    // Tables 8–10 — ablations sweep transformation (Bing QueryLogs).
    {
        let ds = transformation::bing_querylogs(&world, seed, queries);
        let tasks: Vec<Task> = ds.cases[..queries.min(ds.cases.len())]
            .iter()
            .map(|case| Task::Transformation {
                examples: case.examples.clone(),
                input: case.input.clone(),
            })
            .collect();
        streams.push(PromptStream {
            scenario: "table8-10-ablation",
            prompts: record(seed, &DataLake::new(), &tasks),
        });
    }

    // Table 11 — information extraction (NBA players).
    {
        let ds = extraction::nba_players(&world, seed);
        let mut tasks = Vec::new();
        for doc in ds.docs.iter().take(queries) {
            for attr in &ds.attrs {
                tasks.push(Task::Extraction {
                    document: doc.text.clone(),
                    attr: attr.clone(),
                });
            }
        }
        streams.push(PromptStream {
            scenario: "table11-extraction",
            prompts: record(seed, &DataLake::new(), &tasks),
        });
    }

    // Figure 5 — join discovery (NextiaJD).
    {
        let ds = joins::nextiajd(&world, seed, queries);
        let tasks: Vec<Task> = ds.pairs[..queries.min(ds.pairs.len())]
            .iter()
            .map(|pair| Task::JoinDiscovery {
                left_name: pair.left_name.clone(),
                left_values: pair.left_values.clone(),
                right_name: pair.right_name.clone(),
                right_values: pair.right_values.clone(),
            })
            .collect();
        streams.push(PromptStream {
            scenario: "fig5-joins",
            prompts: record(seed, &DataLake::new(), &tasks),
        });
    }

    streams
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_scenarios_record_deterministic_nonempty_streams() {
        let a = record_streams(42, 4);
        let b = record_streams(42, 4);
        assert_eq!(a, b, "recording must be deterministic at a fixed seed");
        assert_eq!(a.len(), 10, "one stream per paper scenario");
        for stream in &a {
            assert!(
                !stream.prompts.is_empty(),
                "{} recorded no prompts",
                stream.scenario
            );
            let mut sorted = stream.prompts.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(
                sorted, stream.prompts,
                "{} stream must be sorted and deduplicated",
                stream.scenario
            );
        }
    }
}
