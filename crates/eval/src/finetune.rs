//! Table 5 — fine-tuning experiments on Walmart-Amazon.
//!
//! Fine-tuning produces a *different model* at every training budget, and
//! a prompt → completion memo is only valid for the exact model that
//! produced it — so this driver attaches one cache **per variant**, with
//! the variant's model name embedded in the scenario (the same pattern
//! the Table 6 model zoo uses). Snapshots stay model-guarded (see
//! [`unidm::SnapshotError::ModelMismatch`]), and because `fine_tune`
//! renames its output, a tuned variant can never be served the base
//! model's completions.

use unidm::PipelineConfig;
use unidm_baselines::fm;
use unidm_llm::finetune::fine_tune;
use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
use unidm_synthdata::matching;
use unidm_world::World;

use crate::matching::{fm_f1, unidm_f1};
use crate::report::TableReport;
use crate::ExperimentConfig;

/// The paper's fine-tuning budget: the Walmart-Amazon training split of
/// 6144 tuples for 30 epochs.
pub const PAPER_EXAMPLES: usize = 6144;
/// Paper epochs.
pub const PAPER_EPOCHS: usize = 30;

/// Runs Table 5: zero-shot and fine-tuned GPT-J-6B / LLaMA2-7B against
/// GPT-3-175B, for FM and UniDM, on Walmart-Amazon.
///
/// The paper reports no FM number for LLaMA2-7B (NA); those cells hold
/// `f64::NAN`.
pub fn table5(config: ExperimentConfig) -> TableReport {
    let world = World::generate(config.seed);
    let ds = matching::walmart_amazon(&world, config.seed);
    let q = config.queries.max(60);
    let mut report = TableReport::new(
        "Table 5. Fine-tuning: F1-score (%) on entity resolution (Walmart-Amazon).",
        vec!["FM".into(), "UniDM".into()],
    );

    // Every variant runs behind the full backend + cache stack when the
    // config enables them. Caching is per-variant: the scenario name
    // embeds the variant's model name, so each model gets its own memo
    // (and its own model-guarded snapshot) — sharing one cache across
    // variants would serve one model's completions to another.
    let eval_pair = |llm: &MockLlm| -> (f64, f64) {
        let backend = config.backend.wrap(llm);
        let cached = config.cache.attach(
            &format!("table5-{}-seed{}", llm.name(), config.seed),
            backend.model(),
        );
        let llm = cached.model();
        let fm_score = fm_f1(llm, &ds, fm::ContextStrategy::Manual, q, config.seed).f1() * 100.0;
        let unidm_score = unidm_f1(
            llm,
            &ds,
            PipelineConfig::paper_default().with_seed(config.seed),
            q,
        )
        .f1()
            * 100.0;
        cached.finish();
        (fm_score, unidm_score)
    };

    let gptj = MockLlm::new(&world, LlmProfile::gptj_6b(), config.seed);
    let (f, u) = eval_pair(&gptj);
    report.push("GPT-J-6B", vec![f, u]);

    let (gptj_ft, _) = fine_tune(&gptj, PAPER_EXAMPLES, PAPER_EPOCHS);
    let (f, u) = eval_pair(&gptj_ft);
    report.push("GPT-J-6B (fine-tune)", vec![f, u]);

    let llama = MockLlm::new(&world, LlmProfile::llama2_7b(), config.seed);
    let (_, u) = eval_pair(&llama);
    report.push("LLaMA2-7B", vec![f64::NAN, u]);

    let (llama_ft, _) = fine_tune(&llama, PAPER_EXAMPLES, PAPER_EPOCHS);
    let (_, u) = eval_pair(&llama_ft);
    report.push("LLaMA2-7B (fine-tune)", vec![f64::NAN, u]);

    let gpt3 = MockLlm::new(&world, LlmProfile::gpt3_175b(), config.seed);
    let (f, u) = eval_pair(&gpt3);
    report.push("GPT-3-175B", vec![f, u]);

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_shape_holds() {
        let report = table5(ExperimentConfig::quick());
        let raw = report.cell("GPT-J-6B", "UniDM").unwrap();
        let tuned = report.cell("GPT-J-6B (fine-tune)", "UniDM").unwrap();
        let gpt3 = report.cell("GPT-3-175B", "UniDM").unwrap();
        let llama_tuned = report.cell("LLaMA2-7B (fine-tune)", "UniDM").unwrap();
        // Fine-tuning lifts the small models dramatically, approaching the
        // 175B model — the paper's central Table 5 claim.
        assert!(
            tuned > raw + 15.0,
            "fine-tune should lift GPT-J: {raw} -> {tuned}"
        );
        assert!(
            llama_tuned + 25.0 > gpt3,
            "tuned 7B approaches 175B: {llama_tuned} vs {gpt3}"
        );
        assert!(
            report.cell("LLaMA2-7B", "FM").unwrap().is_nan(),
            "paper reports NA"
        );
    }

    #[test]
    fn table5_cached_run_matches_uncached() {
        use crate::CacheConfig;
        // The per-variant cache path must not change any cell: each
        // variant's memo is keyed to its own model, so answers are
        // bit-identical with caching on.
        let plain = table5(ExperimentConfig::quick());
        let cached = table5(ExperimentConfig::quick().with_cache(CacheConfig::enabled()));
        for row in [
            "GPT-J-6B",
            "GPT-J-6B (fine-tune)",
            "LLaMA2-7B (fine-tune)",
            "GPT-3-175B",
        ] {
            let a = plain.cell(row, "UniDM").unwrap();
            let b = cached.cell(row, "UniDM").unwrap();
            assert_eq!(a, b, "cached {row} diverged: {a} vs {b}");
        }
    }
}
