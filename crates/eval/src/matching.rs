//! Table 4 — F1 on the entity resolution task.

use unidm::{BatchRunner, PipelineConfig, Task};
use unidm_baselines::{ditto::Ditto, fm, magellan::Magellan};
use unidm_llm::protocol::SerializedRecord;
use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
use unidm_synthdata::{matching, MatchingDataset};
use unidm_tablestore::{DataLake, Record, Schema};
use unidm_world::World;

use crate::metrics::Confusion;
use crate::report::TableReport;
use crate::ExperimentConfig;

/// Converts a record to the serialized form prompts use.
pub fn to_serialized(schema: &Schema, record: &Record) -> SerializedRecord {
    SerializedRecord::new(
        schema
            .names()
            .zip(record.values())
            .filter(|(_, v)| !v.is_null())
            .map(|(a, v)| (a.to_string(), v.to_string()))
            .collect(),
    )
}

/// F1 of the UniDM pipeline on an ER dataset (runs batched across the
/// worker pool).
pub fn unidm_f1(
    llm: &dyn LanguageModel,
    ds: &MatchingDataset,
    pipeline: PipelineConfig,
    queries: usize,
) -> Confusion {
    let lake = DataLake::new();
    // Demonstration pool: a slice of the labelled training pairs.
    let pool: Vec<(SerializedRecord, SerializedRecord, bool)> = ds
        .train
        .iter()
        .take(40)
        .map(|p| {
            (
                to_serialized(&ds.schema, &p.a),
                to_serialized(&ds.schema, &p.b),
                p.is_match,
            )
        })
        .collect();
    let pairs = &ds.pairs[..queries.min(ds.pairs.len())];
    let tasks: Vec<Task> = pairs
        .iter()
        .map(|pair| Task::EntityResolution {
            a: to_serialized(&ds.schema, &pair.a),
            b: to_serialized(&ds.schema, &pair.b),
            pool: pool.clone(),
        })
        .collect();
    let answers = BatchRunner::new(llm, pipeline).answers(&lake, &tasks);
    let mut c = Confusion::default();
    for (answer, pair) in answers.iter().zip(pairs) {
        c.record(answer.trim().eq_ignore_ascii_case("yes"), pair.is_match);
    }
    c
}

/// F1 of the FM baseline on an ER dataset.
pub fn fm_f1(
    llm: &dyn LanguageModel,
    ds: &MatchingDataset,
    strategy: fm::ContextStrategy,
    queries: usize,
    seed: u64,
) -> Confusion {
    let runner = fm::Fm::new(llm, strategy, seed);
    let pool: Vec<(SerializedRecord, SerializedRecord, bool)> = ds
        .train
        .iter()
        .take(40)
        .map(|p| {
            (
                to_serialized(&ds.schema, &p.a),
                to_serialized(&ds.schema, &p.b),
                p.is_match,
            )
        })
        .collect();
    let mut c = Confusion::default();
    for pair in ds.pairs.iter().take(queries) {
        let predicted = runner
            .resolve(
                &to_serialized(&ds.schema, &pair.a),
                &to_serialized(&ds.schema, &pair.b),
                &pool,
            )
            .unwrap_or(false);
        c.record(predicted, pair.is_match);
    }
    c
}

/// Runs Table 4: Magellan, Ditto, FM (random/manual), UniDM on the four
/// Magellan-benchmark datasets.
pub fn table4(config: ExperimentConfig) -> TableReport {
    let world = World::generate(config.seed);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), config.seed);
    let backend = config.backend.wrap(&llm);
    let cached = config
        .cache
        .attach(&format!("table4-seed{}", config.seed), backend.model());
    let llm = cached.model();
    let datasets = [
        matching::beer(&world, config.seed),
        matching::amazon_google(&world, config.seed),
        matching::itunes_amazon(&world, config.seed),
        matching::walmart_amazon(&world, config.seed),
    ];
    let mut report = TableReport::new(
        "Table 4. F1-score (%) on entity resolution task with SOTA.",
        vec![
            "Beer".into(),
            "Amazon-Google".into(),
            "iTunes-Amazon".into(),
            "Walmart-Amazon".into(),
        ],
    );
    let q = config.queries.max(60);
    report.push(
        "Magellan",
        datasets
            .iter()
            .map(|ds| {
                let model = Magellan::train(&ds.train);
                let mut c = Confusion::default();
                for p in ds.pairs.iter().take(q) {
                    c.record(model.matches(&p.a, &p.b), p.is_match);
                }
                c.f1() * 100.0
            })
            .collect(),
    );
    report.push(
        "Ditto",
        datasets
            .iter()
            .map(|ds| {
                let model = Ditto::train(&ds.train);
                let mut c = Confusion::default();
                for p in ds.pairs.iter().take(q) {
                    c.record(model.matches(&p.a, &p.b), p.is_match);
                }
                c.f1() * 100.0
            })
            .collect(),
    );
    report.push(
        "FM (random)",
        datasets
            .iter()
            .map(|ds| fm_f1(llm, ds, fm::ContextStrategy::Random, q, config.seed).f1() * 100.0)
            .collect(),
    );
    report.push(
        "FM (manual)",
        datasets
            .iter()
            .map(|ds| fm_f1(llm, ds, fm::ContextStrategy::Manual, q, config.seed).f1() * 100.0)
            .collect(),
    );
    report.push(
        "UniDM",
        datasets
            .iter()
            .map(|ds| {
                unidm_f1(
                    llm,
                    ds,
                    PipelineConfig::paper_default().with_seed(config.seed),
                    q,
                )
                .f1()
                    * 100.0
            })
            .collect(),
    );
    cached.finish();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_shape_holds() {
        let report = table4(ExperimentConfig::quick());
        // Beer is easy for everyone; Amazon-Google is the hardest for the
        // zero-shot LLM methods; Ditto stays strong via training.
        let unidm_beer = report.cell("UniDM", "Beer").unwrap();
        let unidm_ag = report.cell("UniDM", "Amazon-Google").unwrap();
        let ditto_ag = report.cell("Ditto", "Amazon-Google").unwrap();
        assert!(unidm_beer > unidm_ag, "beer {unidm_beer} vs a-g {unidm_ag}");
        assert!(
            ditto_ag + 5.0 > unidm_ag,
            "ditto {ditto_ag} should rival/beat unidm {unidm_ag} on A-G"
        );
        assert!(
            unidm_beer > 80.0,
            "beer should be near-solved: {unidm_beer}"
        );
    }
}
