//! Table 1 — accuracy on the data imputation task.

use unidm::{BatchRunner, PipelineConfig, Task};
use unidm_baselines::{cmi::Cmi, fm, holoclean, imp::Imp};
use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
use unidm_synthdata::{imputation, ImputationDataset};
use unidm_tablestore::DataLake;
use unidm_world::World;

use crate::metrics::{answers_match, Accuracy};
use crate::report::TableReport;
use crate::ExperimentConfig;

/// Accuracy of the UniDM pipeline on an imputation dataset (runs batched
/// across the worker pool).
pub fn unidm_accuracy(
    llm: &dyn LanguageModel,
    ds: &ImputationDataset,
    pipeline: PipelineConfig,
    queries: usize,
) -> Accuracy {
    let lake: DataLake = [ds.table.clone()].into_iter().collect();
    let targets = &ds.targets[..queries.min(ds.targets.len())];
    let tasks: Vec<Task> = targets
        .iter()
        .map(|t| {
            Task::imputation(
                ds.table.name(),
                t.row,
                ds.target_attr.clone(),
                ds.key_attr.clone(),
            )
        })
        .collect();
    let answers = BatchRunner::new(llm, pipeline).answers(&lake, &tasks);
    let mut acc = Accuracy::default();
    for (answer, t) in answers.iter().zip(targets) {
        acc.record(answers_match(answer, &t.truth.to_string()));
    }
    acc
}

/// Accuracy of the FM baseline on an imputation dataset.
pub fn fm_accuracy(
    llm: &dyn LanguageModel,
    ds: &ImputationDataset,
    strategy: fm::ContextStrategy,
    queries: usize,
    seed: u64,
) -> Accuracy {
    let runner = fm::Fm::new(llm, strategy, seed);
    let mut acc = Accuracy::default();
    for t in ds.targets.iter().take(queries) {
        let answer = runner
            .impute(&ds.table, t.row, &ds.target_attr)
            .unwrap_or_default();
        acc.record(answers_match(&answer, &t.truth.to_string()));
    }
    acc
}

/// Accuracy of a `fn(row) -> String` imputer on a dataset.
fn classic_accuracy(
    ds: &ImputationDataset,
    queries: usize,
    mut impute: impl FnMut(usize) -> String,
) -> Accuracy {
    let mut acc = Accuracy::default();
    for t in ds.targets.iter().take(queries) {
        acc.record(answers_match(&impute(t.row), &t.truth.to_string()));
    }
    acc
}

/// Runs Table 1: HoloClean, CMI, IMP, FM (random/manual), UniDM
/// (random/full) on Restaurant and Buy.
pub fn table1(config: ExperimentConfig) -> TableReport {
    let world = World::generate(config.seed);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), config.seed);
    let backend = config.backend.wrap(&llm);
    let cached = config
        .cache
        .attach(&format!("table1-seed{}", config.seed), backend.model());
    let llm = cached.model();
    let datasets = [
        imputation::restaurant(&world, config.seed, config.queries),
        imputation::buy(&world, config.seed, config.queries),
    ];
    let mut report = TableReport::new(
        "Table 1. Accuracy (%) on data imputation task with SOTA.",
        vec!["Restaurant".into(), "Buy".into()],
    );
    let q = config.queries;

    let row = |name: &str,
               f: &mut dyn FnMut(&ImputationDataset) -> Accuracy,
               report: &mut TableReport| {
        let cells: Vec<f64> = datasets.iter().map(|ds| f(ds).percent()).collect();
        report.push(name, cells);
    };

    row(
        "HoloClean",
        &mut |ds| {
            classic_accuracy(ds, q, |r| {
                holoclean::impute(&ds.table, r, &ds.target_attr).unwrap_or_default()
            })
        },
        &mut report,
    );
    row(
        "CMI",
        &mut |ds| {
            let model =
                Cmi::fit(&ds.table, &ds.target_attr, None, config.seed).expect("valid dataset");
            classic_accuracy(ds, q, |r| {
                model
                    .impute(&ds.table, r, &ds.target_attr)
                    .unwrap_or_default()
            })
        },
        &mut report,
    );
    row(
        "IMP",
        &mut |ds| {
            let model = Imp::fit(&ds.table, &ds.target_attr, 9).expect("valid dataset");
            classic_accuracy(ds, q, |r| model.impute(r).unwrap_or_default())
        },
        &mut report,
    );
    row(
        "FM (random)",
        &mut |ds| fm_accuracy(llm, ds, fm::ContextStrategy::Random, q, config.seed),
        &mut report,
    );
    row(
        "FM (manual)",
        &mut |ds| fm_accuracy(llm, ds, fm::ContextStrategy::Manual, q, config.seed),
        &mut report,
    );
    row(
        "UniDM (random)",
        &mut |ds| {
            unidm_accuracy(
                llm,
                ds,
                PipelineConfig::random_context().with_seed(config.seed),
                q,
            )
        },
        &mut report,
    );
    row(
        "UniDM",
        &mut |ds| {
            unidm_accuracy(
                llm,
                ds,
                PipelineConfig::paper_default().with_seed(config.seed),
                q,
            )
        },
        &mut report,
    );
    cached.finish();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheConfig;

    #[test]
    fn table1_with_cache_warm_starts_and_reproduces_itself() {
        let dir = std::env::temp_dir().join(format!("unidm-table1-cache-{}", std::process::id()));
        let config =
            ExperimentConfig::quick().with_cache(CacheConfig::enabled().with_snapshot_dir(&dir));

        let cold = table1(config.clone());
        let warm = table1(config);
        for ds in ["Restaurant", "Buy"] {
            for row in ["UniDM", "UniDM (random)", "FM (random)", "FM (manual)"] {
                assert_eq!(
                    cold.cell(row, ds),
                    warm.cell(row, ds),
                    "{row}/{ds}: a warm-started rerun must reproduce the cold run"
                );
            }
            let unidm = cold.cell("UniDM", ds).unwrap();
            let holoclean = cold.cell("HoloClean", ds).unwrap();
            assert!(
                unidm > holoclean,
                "{ds}: cached UniDM must stay ahead of HoloClean: {unidm} vs {holoclean}"
            );
        }
        assert!(
            dir.join(format!("table1-seed{}.promptcache", 42)).exists(),
            "snapshot persisted per scenario"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn table1_under_routed_backend_reproduces_plain_cells() {
        // A replica fleet with per-endpoint breakers and fault injection
        // must leave every LLM-backed cell byte-identical: routing spreads
        // traffic but never changes answers.
        use unidm::route::RoutePlan;
        use unidm_llm::FaultPlan;

        use crate::BackendConfig;

        let plain = table1(ExperimentConfig::quick());
        let routed_config = ExperimentConfig::quick().with_backend(
            BackendConfig::resilient(42)
                .with_faults(FaultPlan::moderate(42))
                .with_route(RoutePlan::replicas(3)),
        );
        let routed = table1(routed_config);
        for ds in ["Restaurant", "Buy"] {
            for row in ["UniDM", "UniDM (random)", "FM (random)", "FM (manual)"] {
                assert_eq!(
                    plain.cell(row, ds),
                    routed.cell(row, ds),
                    "{row}/{ds}: routed fleet must reproduce the direct run"
                );
            }
        }
    }

    #[test]
    fn table1_shape_holds() {
        let report = table1(ExperimentConfig::quick());
        // Paper orderings that must survive: UniDM tops the chart, the
        // statistical baseline trails everything, FM(manual) ≥ FM(random).
        for ds in ["Restaurant", "Buy"] {
            let unidm = report.cell("UniDM", ds).unwrap();
            let holoclean = report.cell("HoloClean", ds).unwrap();
            let fm_rand = report.cell("FM (random)", ds).unwrap();
            let fm_man = report.cell("FM (manual)", ds).unwrap();
            assert!(
                unidm > holoclean,
                "{ds}: unidm {unidm} vs holoclean {holoclean}"
            );
            assert!(
                unidm + 1e-9 >= fm_rand,
                "{ds}: unidm {unidm} vs fm-random {fm_rand}"
            );
            assert!(
                fm_man + 10.0 >= fm_rand,
                "{ds}: manual {fm_man} vs random {fm_rand}"
            );
        }
    }
}
