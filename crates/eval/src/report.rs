//! Table reports: the textual artifacts the bench binaries print.

use std::fmt;

/// A rendered experiment table in the paper's layout.
#[derive(Debug, Clone, PartialEq)]
pub struct TableReport {
    /// Title ("Table 1. Accuracy on data imputation task with SOTA.").
    pub title: String,
    /// Column headers, first being the method column.
    pub columns: Vec<String>,
    /// Rows: method name + one cell per data column.
    pub rows: Vec<Row>,
}

/// One row of a report.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Method name.
    pub method: String,
    /// Cell values, typically percentages.
    pub cells: Vec<f64>,
}

impl TableReport {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        TableReport {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, method: impl Into<String>, cells: Vec<f64>) {
        self.rows.push(Row {
            method: method.into(),
            cells,
        });
    }

    /// The cell for (method, column), if present.
    pub fn cell(&self, method: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        let row = self.rows.iter().find(|r| r.method == method)?;
        row.cells.get(col).copied()
    }

    /// The row for `method`, if present.
    pub fn row(&self, method: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.method == method)
    }
}

impl fmt::Display for TableReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let method_width = self
            .rows
            .iter()
            .map(|r| r.method.len())
            .chain(std::iter::once("Method".len()))
            .max()
            .unwrap_or(8)
            + 2;
        let col_width = self
            .columns
            .iter()
            .map(|c| c.len())
            .max()
            .unwrap_or(8)
            .max(8)
            + 2;
        write!(f, "{:<method_width$}", "Method")?;
        for c in &self.columns {
            write!(f, "{c:>col_width$}")?;
        }
        writeln!(f)?;
        let total = method_width + col_width * self.columns.len();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write!(f, "{:<method_width$}", row.method)?;
            for cell in &row.cells {
                write!(f, "{cell:>col_width$.1}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> TableReport {
        let mut r = TableReport::new("Table X", vec!["Restaurant".to_string(), "Buy".to_string()]);
        r.push("HoloClean", vec![33.1, 16.2]);
        r.push("UniDM", vec![93.0, 98.5]);
        r
    }

    #[test]
    fn cell_lookup() {
        let r = report();
        assert_eq!(r.cell("UniDM", "Buy"), Some(98.5));
        assert_eq!(r.cell("UniDM", "Nope"), None);
        assert_eq!(r.cell("Nope", "Buy"), None);
    }

    #[test]
    fn display_contains_all() {
        let text = report().to_string();
        assert!(text.contains("Table X"));
        assert!(text.contains("HoloClean"));
        assert!(text.contains("93.0"));
        assert!(text.contains("Restaurant"));
    }

    #[test]
    fn row_lookup() {
        let r = report();
        assert_eq!(r.row("HoloClean").unwrap().cells, vec![33.1, 16.2]);
    }
}
