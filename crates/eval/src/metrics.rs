//! Evaluation metrics: accuracy, precision/recall/F1, threshold sweeps and
//! text F1.

/// Binary confusion counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl Confusion {
    /// Records one (prediction, label) outcome.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Precision in `[0, 1]` (1 when nothing was predicted positive).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall in `[0, 1]` (1 when there are no positives).
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 in `[0, 1]`.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }
}

/// Running accuracy counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Accuracy {
    correct: usize,
    total: usize,
}

impl Accuracy {
    /// Records one outcome.
    pub fn record(&mut self, correct: bool) {
        self.total += 1;
        if correct {
            self.correct += 1;
        }
    }

    /// The accuracy in `[0, 1]`; 0 for an empty counter.
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Number of recorded outcomes.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Accuracy as a percentage.
    pub fn percent(&self) -> f64 {
        self.value() * 100.0
    }
}

/// Evaluates scored predictions at one threshold.
pub fn at_threshold(scored: &[(f64, bool)], threshold: f64) -> Confusion {
    let mut c = Confusion::default();
    for &(score, label) in scored {
        c.record(score >= threshold, label);
    }
    c
}

/// Sweeps thresholds over scored predictions (Figure 5).
pub fn sweep(scored: &[(f64, bool)], thresholds: &[f64]) -> Vec<(f64, Confusion)> {
    thresholds
        .iter()
        .map(|&t| (t, at_threshold(scored, t)))
        .collect()
}

/// Token-level text F1 between a prediction and a reference (SQuAD-style,
/// used by the extraction benchmark).
pub fn text_f1(prediction: &str, truth: &str) -> f64 {
    let p = unidm_text::words(prediction);
    let t = unidm_text::words(truth);
    if p.is_empty() || t.is_empty() {
        return f64::from(u8::from(p == t));
    }
    let mut t_remaining = t.clone();
    let mut common = 0usize;
    for w in &p {
        if let Some(pos) = t_remaining.iter().position(|x| x == w) {
            t_remaining.swap_remove(pos);
            common += 1;
        }
    }
    if common == 0 {
        return 0.0;
    }
    let precision = common as f64 / p.len() as f64;
    let recall = common as f64 / t.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Compares an answer against ground truth with canonical normalization.
pub fn answers_match(answer: &str, truth: &str) -> bool {
    unidm_text::normalize::answer_key(answer) == unidm_text::normalize::answer_key(truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_metrics() {
        let mut c = Confusion::default();
        for _ in 0..8 {
            c.record(true, true);
        }
        c.record(true, false);
        c.record(false, true);
        assert!((c.precision() - 8.0 / 9.0).abs() < 1e-12);
        assert!((c.recall() - 8.0 / 9.0).abs() < 1e-12);
        assert!((c.f1() - 8.0 / 9.0).abs() < 1e-12);
        assert_eq!(c.total(), 10);
    }

    #[test]
    fn confusion_degenerate_cases() {
        let c = Confusion::default();
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
        let mut all_wrong = Confusion::default();
        all_wrong.record(true, false);
        all_wrong.record(false, true);
        assert_eq!(all_wrong.f1(), 0.0);
    }

    #[test]
    fn accuracy_counter() {
        let mut a = Accuracy::default();
        a.record(true);
        a.record(true);
        a.record(false);
        assert!((a.value() - 2.0 / 3.0).abs() < 1e-12);
        assert!((a.percent() - 66.666).abs() < 0.01);
        assert_eq!(Accuracy::default().value(), 0.0);
    }

    #[test]
    fn sweep_monotone_recall() {
        let scored = vec![(0.9, true), (0.7, true), (0.4, false), (0.2, true)];
        let pts = sweep(&scored, &[0.1, 0.5, 0.95]);
        let recalls: Vec<f64> = pts.iter().map(|(_, c)| c.recall()).collect();
        assert!(recalls[0] >= recalls[1]);
        assert!(recalls[1] >= recalls[2]);
    }

    #[test]
    fn text_f1_cases() {
        assert!((text_f1("Kevin Durant", "Kevin Durant") - 1.0).abs() < 1e-12);
        assert!((text_f1("Kevin", "Kevin Durant") - (2.0 / 3.0)).abs() < 1e-12);
        assert_eq!(text_f1("LeBron James", "Kevin Durant"), 0.0);
        assert_eq!(text_f1("", ""), 1.0);
        assert_eq!(text_f1("x", ""), 0.0);
        // Duplicate tokens are not double counted.
        assert!(text_f1("a a a", "a b") < 1.0);
    }

    #[test]
    fn answers_match_normalizes() {
        assert!(answers_match("Beverly Hills.", "beverly hills"));
        assert!(!answers_match("Los Angeles", "Beverly Hills"));
    }
}
