//! Table 6 — UniDM imputation accuracy across base LLM variants.

use unidm::PipelineConfig;
use unidm_llm::{LlmProfile, MockLlm};
use unidm_synthdata::imputation;
use unidm_world::World;

use crate::imputation::unidm_accuracy;
use crate::report::TableReport;
use crate::ExperimentConfig;

/// Runs Table 6: UniDM on Restaurant and Buy over the model zoo.
pub fn table6(config: ExperimentConfig) -> TableReport {
    let world = World::generate(config.seed);
    let datasets = [
        imputation::restaurant(&world, config.seed, config.queries),
        imputation::buy(&world, config.seed, config.queries),
    ];
    let mut report = TableReport::new(
        "Table 6. UniDM accuracy (%) on data imputation with LLM variants.",
        vec!["Restaurant".into(), "Buy".into()],
    );
    for profile in LlmProfile::zoo() {
        let llm = MockLlm::new(&world, profile.clone(), config.seed);
        let backend = config.backend.wrap(&llm);
        let cached = config.cache.attach(
            &format!("table6-{}-seed{}", profile.name, config.seed),
            backend.model(),
        );
        let llm = cached.model();
        let cells: Vec<f64> = datasets
            .iter()
            .map(|ds| {
                unidm_accuracy(
                    llm,
                    ds,
                    PipelineConfig::paper_default().with_seed(config.seed),
                    config.queries,
                )
                .percent()
            })
            .collect();
        cached.finish();
        report.push(profile.name, cells);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_shape_holds() {
        let report = table6(ExperimentConfig::quick());
        let gpt4 = report.cell("GPT-4-Turbo", "Restaurant").unwrap();
        let gpt3 = report.cell("GPT-3-175B", "Restaurant").unwrap();
        let l7 = report.cell("LLaMA2-7B", "Restaurant").unwrap();
        // The paper's ordering: GPT-4 ≥ GPT-3 ≥ 7B models, but even 7B
        // models stay respectable under UniDM.
        assert!(gpt4 + 8.0 >= gpt3, "gpt4 {gpt4} vs gpt3 {gpt3}");
        assert!(gpt3 + 8.0 >= l7, "gpt3 {gpt3} vs llama7 {l7}");
        assert!(l7 > 50.0, "7B should remain usable: {l7}");
    }
}
