//! Table 7 — per-query token consumption.

use unidm::{BatchRunner, PipelineConfig, Task};
use unidm_baselines::fm;
use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
use unidm_synthdata::{imputation, ImputationDataset};
use unidm_world::World;

use crate::report::TableReport;
use crate::ExperimentConfig;

/// Mean tokens per query for the UniDM pipeline.
///
/// Per-run cost comes from each run's own [`unidm::RunOutput`] meter, so
/// the figure is exact even though the batch executes in parallel against
/// the shared model.
pub fn unidm_tokens(
    llm: &dyn LanguageModel,
    ds: &ImputationDataset,
    pipeline: PipelineConfig,
    queries: usize,
) -> f64 {
    let lake: unidm_tablestore::DataLake = [ds.table.clone()].into_iter().collect();
    let tasks: Vec<Task> = ds
        .targets
        .iter()
        .take(queries)
        .map(|t| {
            Task::imputation(
                ds.table.name(),
                t.row,
                ds.target_attr.clone(),
                ds.key_attr.clone(),
            )
        })
        .collect();
    let outputs = BatchRunner::new(llm, pipeline).run(&lake, &tasks);
    let mut total = 0usize;
    let mut n = 0usize;
    for out in outputs.into_iter().flatten() {
        total += out.usage.total();
        n += 1;
    }
    total as f64 / n.max(1) as f64
}

/// Mean tokens per query for the FM baseline.
pub fn fm_tokens(
    llm: &dyn LanguageModel,
    ds: &ImputationDataset,
    queries: usize,
    seed: u64,
) -> f64 {
    let runner = fm::Fm::new(llm, fm::ContextStrategy::Manual, seed);
    let mut total = 0usize;
    let mut n = 0usize;
    for t in ds.targets.iter().take(queries) {
        let before = llm.usage().total();
        if runner.impute(&ds.table, t.row, &ds.target_attr).is_ok() {
            total += llm.usage().total() - before;
            n += 1;
        }
    }
    total as f64 / n.max(1) as f64
}

/// Runs Table 7: token consumption of FM, UniDM without retrieval, and full
/// UniDM on Restaurant and Buy.
pub fn table7(config: ExperimentConfig) -> TableReport {
    let world = World::generate(config.seed);
    let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), config.seed);
    let backend = config.backend.wrap(&llm);
    let cached = config
        .cache
        .attach(&format!("table7-seed{}", config.seed), backend.model());
    let llm = cached.model();
    let q = config.queries.min(40);
    let datasets = [
        imputation::restaurant(&world, config.seed, q),
        imputation::buy(&world, config.seed, q),
    ];
    let mut report = TableReport::new(
        "Table 7. Token consumption (per-query) comparison with FM.",
        vec!["Restaurant".into(), "Buy".into()],
    );
    report.push(
        "FM",
        datasets
            .iter()
            .map(|ds| fm_tokens(llm, ds, q, config.seed))
            .collect(),
    );
    report.push(
        "UniDM (w/o retrieval)",
        datasets
            .iter()
            .map(|ds| {
                unidm_tokens(
                    llm,
                    ds,
                    PipelineConfig::random_context().with_seed(config.seed),
                    q,
                )
            })
            .collect(),
    );
    report.push(
        "UniDM",
        datasets
            .iter()
            .map(|ds| {
                unidm_tokens(
                    llm,
                    ds,
                    PipelineConfig::paper_default().with_seed(config.seed),
                    q,
                )
            })
            .collect(),
    );
    cached.finish();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_shape_holds() {
        let report = table7(ExperimentConfig::quick());
        for ds in ["Restaurant", "Buy"] {
            let fm = report.cell("FM", ds).unwrap();
            let no_retrieval = report.cell("UniDM (w/o retrieval)", ds).unwrap();
            let full = report.cell("UniDM", ds).unwrap();
            // The paper's ordering: FM ≪ UniDM w/o retrieval ≪ UniDM, with
            // the full pipeline an order of magnitude above FM.
            assert!(
                fm < no_retrieval,
                "{ds}: fm {fm} vs w/o retrieval {no_retrieval}"
            );
            assert!(no_retrieval < full, "{ds}: {no_retrieval} vs full {full}");
            assert!(full > fm * 5.0, "{ds}: full {full} should dwarf fm {fm}");
        }
    }
}
