//! Error-detection benchmarks: Hospital and Adult.
//!
//! Following the paper (and the HoloClean/HoloDetect line of work), errors
//! amount to 5% of cells and ground truth is available for every cell.
//! Injected error kinds mirror the real benchmarks: character typos
//! ("mxrshxll"), out-of-domain category values, and numeric outliers.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use unidm_tablestore::{Table, Value};
use unidm_world::{census, names, World};

/// Ground truth for one labelled cell.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledCell {
    /// Row index.
    pub row: usize,
    /// Attribute name.
    pub attr: String,
    /// Whether the cell currently holds an injected error.
    pub is_error: bool,
    /// The clean value (equal to the current value when `is_error == false`).
    pub clean: Value,
}

/// An error-detection benchmark: a dirtied table plus per-cell labels.
#[derive(Debug, Clone)]
pub struct ErrorDetectionDataset {
    /// The dirtied table.
    pub table: Table,
    /// Labels for every evaluated cell.
    pub cells: Vec<LabeledCell>,
    /// Attributes under evaluation.
    pub attrs: Vec<String>,
}

impl ErrorDetectionDataset {
    /// Number of labelled cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no cells are labelled.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Fraction of labelled cells that are errors.
    pub fn error_rate(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().filter(|c| c.is_error).count() as f64 / self.cells.len() as f64
    }
}

/// Builds the Hospital benchmark with `error_rate` (paper: 0.05) typos.
pub fn hospital(world: &World, seed: u64, error_rate: f64) -> ErrorDetectionDataset {
    let mut t = Table::builder("hospital")
        .columns([
            "name",
            "address",
            "city",
            "county",
            "state",
            "zip",
            "phone",
            "measure_code",
        ])
        .build();
    for h in &world.hospital.hospitals {
        t.push_row(vec![
            Value::text(&h.name),
            Value::text(&h.address),
            Value::text(&h.city),
            Value::text(&h.county),
            Value::text(&h.state),
            Value::text(&h.zip),
            Value::text(&h.phone),
            Value::text(&h.measure_code),
        ])
        .expect("schema matches");
    }
    let attrs = ["city", "county", "measure_code", "address"];
    inject_typos(t, &attrs, seed, error_rate)
}

/// Builds the Adult benchmark with `n_rows` respondents and `error_rate`
/// errors (typos in categories, plus occasional numeric outliers in `age`).
pub fn adult(world: &World, seed: u64, n_rows: usize, error_rate: f64) -> ErrorDetectionDataset {
    let _ = world; // census domains are global, but keep the uniform signature
    let mut rng = StdRng::seed_from_u64(seed ^ 0xADu64);
    let mut t = Table::builder("adult")
        .columns([
            "age",
            "workclass",
            "education",
            "marital_status",
            "occupation",
            "sex",
            "hours_per_week",
            "income",
        ])
        .build();
    for _ in 0..n_rows {
        let p = census::sample_person(&mut rng);
        t.push_row(vec![
            Value::Int(i64::from(p.age)),
            Value::text(&p.workclass),
            Value::text(&p.education),
            Value::text(&p.marital_status),
            Value::text(&p.occupation),
            Value::text(&p.sex),
            Value::Int(i64::from(p.hours_per_week)),
            Value::text(&p.income),
        ])
        .expect("schema matches");
    }
    let attrs = ["age", "workclass", "education", "occupation", "sex"];
    inject_typos(t, &attrs, seed, error_rate)
}

fn inject_typos(
    mut table: Table,
    attrs: &[&str],
    seed: u64,
    error_rate: f64,
) -> ErrorDetectionDataset {
    assert!((0.0..1.0).contains(&error_rate), "rate must be in [0,1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cells = Vec::new();
    let mut all: Vec<(usize, &str)> = Vec::new();
    for row in 0..table.row_count() {
        for attr in attrs {
            all.push((row, attr));
        }
    }
    all.shuffle(&mut rng);
    let n_errors = ((all.len() as f64) * error_rate).round() as usize;
    for (i, (row, attr)) in all.into_iter().enumerate() {
        let clean = table.cell(row, attr).expect("in range").clone();
        let is_error = i < n_errors && !clean.is_null();
        if is_error {
            let dirty = corrupt(&mut rng, &clean);
            table.set_cell(row, attr, dirty).expect("in range");
        }
        cells.push(LabeledCell {
            row,
            attr: attr.to_string(),
            is_error,
            clean,
        });
    }
    let attrs = attrs.iter().map(|s| s.to_string()).collect();
    ErrorDetectionDataset {
        table,
        cells,
        attrs,
    }
}

fn corrupt<R: Rng>(rng: &mut R, clean: &Value) -> Value {
    match clean {
        Value::Int(i) => {
            // Numeric outlier: push far outside the plausible range.
            Value::Int(i * 10 + i64::from(rng.gen_range(1..9u8)))
        }
        v => {
            let s = v.to_string();
            let typoed = names::typo(rng, &s);
            if typoed == s {
                Value::text(format!("{s}x"))
            } else {
                Value::text(typoed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(7)
    }

    #[test]
    fn hospital_error_rate_close() {
        let ds = hospital(&world(), 3, 0.05);
        assert!(
            (ds.error_rate() - 0.05).abs() < 0.01,
            "rate {}",
            ds.error_rate()
        );
    }

    #[test]
    fn errors_differ_from_clean() {
        let ds = hospital(&world(), 3, 0.05);
        for c in &ds.cells {
            let current = ds.table.cell(c.row, &c.attr).unwrap();
            if c.is_error {
                assert_ne!(current, &c.clean);
            } else {
                assert_eq!(current, &c.clean);
            }
        }
    }

    #[test]
    fn adult_rows_and_labels() {
        let ds = adult(&world(), 3, 200, 0.05);
        assert_eq!(ds.table.row_count(), 200);
        assert_eq!(ds.cells.len(), 200 * 5);
    }

    #[test]
    fn adult_numeric_outliers_large() {
        let ds = adult(&world(), 3, 400, 0.05);
        for c in &ds.cells {
            if c.is_error && c.attr == "age" {
                let v = ds.table.cell(c.row, "age").unwrap().as_f64().unwrap();
                assert!(v > 90.0, "outlier age {v}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let w = world();
        let a = hospital(&w, 9, 0.05);
        let b = hospital(&w, 9, 0.05);
        assert_eq!(a.cells, b.cells);
    }

    #[test]
    #[should_panic(expected = "rate must be")]
    fn bad_rate_panics() {
        let _ = hospital(&world(), 3, 1.5);
    }
}
