//! Join-discovery benchmark in the NextiaJD style (appendix D, Figure 5).
//!
//! Candidate pairs of columns from different tables are labelled joinable
//! ("Good"/"High" quality: high containment with comparable cardinality) or
//! not. Besides plain containment pairs, the generator emits:
//!
//! * *formatting-noise positives* — same domain but case/whitespace mangled,
//!   which depress embedding-based scores (WarpGate) more than LLM
//!   instance reasoning;
//! * *look-alike negatives* — different domains with the same surface format
//!   (two person-name columns), which inflate embedding similarity.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use unidm_world::{names, World};

/// One candidate column pair.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinCandidate {
    /// Qualified left column name ("fifa_ranking.country_abrv").
    pub left_name: String,
    /// Sampled values of the left column.
    pub left_values: Vec<String>,
    /// Qualified right column name.
    pub right_name: String,
    /// Sampled values of the right column.
    pub right_values: Vec<String>,
    /// Ground truth: is this pair joinable at Good/High quality?
    pub joinable: bool,
}

/// A join-discovery benchmark.
#[derive(Debug, Clone)]
pub struct JoinDiscoveryDataset {
    /// All candidate pairs.
    pub pairs: Vec<JoinCandidate>,
}

impl JoinDiscoveryDataset {
    /// Number of candidate pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if there are no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of joinable pairs.
    pub fn positives(&self) -> usize {
        self.pairs.iter().filter(|p| p.joinable).count()
    }
}

/// Builds `n_pairs` candidate pairs (≈ half positive, half negative).
///
/// The paper uses a NextiaJD subset with 4404 pairs (2239 positive / 2164
/// negative); pass `n_pairs = 4404` to match, or fewer for quick runs.
pub fn nextiajd(world: &World, seed: u64, n_pairs: usize) -> JoinDiscoveryDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let pools = value_pools(world);
    let mut pairs = Vec::with_capacity(n_pairs);
    for i in 0..n_pairs {
        let positive = i % 2 == 0;
        let pair = if positive {
            gen_positive(&mut rng, &pools)
        } else {
            gen_negative(&mut rng, &pools)
        };
        pairs.push(pair);
    }
    pairs.shuffle(&mut rng);
    JoinDiscoveryDataset { pairs }
}

/// A named pool of domain values to cut columns from.
struct Pool {
    name: &'static str,
    values: Vec<String>,
}

fn value_pools(world: &World) -> Vec<Pool> {
    vec![
        Pool {
            name: "country_full",
            values: world.geo.countries.iter().map(|c| c.name.clone()).collect(),
        },
        Pool {
            name: "ISO",
            values: world.geo.countries.iter().map(|c| c.iso3.clone()).collect(),
        },
        Pool {
            name: "city",
            values: world.geo.cities.iter().map(|c| c.name.clone()).collect(),
        },
        Pool {
            name: "timezone",
            values: world
                .geo
                .countries
                .iter()
                .map(|c| c.timezone.clone())
                .collect(),
        },
        Pool {
            name: "restaurant",
            values: world
                .dining
                .restaurants
                .iter()
                .map(|r| r.name.clone())
                .collect(),
        },
        Pool {
            name: "product",
            values: world
                .products
                .products
                .iter()
                .map(|p| p.name.clone())
                .collect(),
        },
        Pool {
            name: "brand",
            values: world
                .products
                .manufacturers
                .iter()
                .map(|m| m.brand.clone())
                .collect(),
        },
        Pool {
            name: "artist",
            values: world.music.artists.iter().map(|a| a.name.clone()).collect(),
        },
        Pool {
            name: "player",
            values: world.nba.players.iter().map(|p| p.name.clone()).collect(),
        },
        Pool {
            name: "county",
            values: world
                .hospital
                .hospitals
                .iter()
                .map(|h| h.county.clone())
                .collect(),
        },
    ]
}

fn sample_values<R: Rng>(rng: &mut R, pool: &[String], k: usize) -> Vec<String> {
    let mut vals: Vec<String> = pool.to_vec();
    vals.shuffle(rng);
    vals.truncate(k.min(vals.len()));
    vals
}

fn mangle<R: Rng>(rng: &mut R, values: &[String]) -> Vec<String> {
    values
        .iter()
        .map(|v| match rng.gen_range(0..3) {
            0 => v.to_uppercase(),
            1 => v.to_lowercase(),
            _ => format!(" {v}"),
        })
        .collect()
}

fn gen_positive<R: Rng>(rng: &mut R, pools: &[Pool]) -> JoinCandidate {
    let pool = &pools[rng.gen_range(0..pools.len())];
    let k = rng.gen_range(8..20);
    let left = sample_values(rng, &pool.values, k);
    // High containment: right side re-samples from the same domain with
    // most of the left values present.
    let mut right = left.clone();
    right.shuffle(rng);
    let keep = (right.len() as f64 * rng.gen_range(0.8..1.0)) as usize;
    right.truncate(keep.max(1));
    right.extend(sample_values(rng, &pool.values, 3));
    let formatting_noise = rng.gen_bool(0.35);
    let right = if formatting_noise {
        mangle(rng, &right)
    } else {
        right
    };
    JoinCandidate {
        left_name: format!("{}_a.{}", pool.name, pool.name),
        left_values: left,
        right_name: format!("{}_b.{}", pool.name, pool.name),
        right_values: right,
        joinable: true,
    }
}

fn gen_negative<R: Rng>(rng: &mut R, pools: &[Pool]) -> JoinCandidate {
    // Look-alike negatives: two disjoint halves of a generated name domain,
    // or two different pools.
    if rng.gen_bool(0.4) {
        // Same surface format (person-like names), disjoint values.
        let left: Vec<String> = (0..12).map(|_| names::person(rng)).collect();
        let right: Vec<String> = (0..12).map(|_| names::person(rng)).collect();
        JoinCandidate {
            left_name: "customers.name".to_string(),
            left_values: left,
            right_name: "employees.name".to_string(),
            right_values: right,
            joinable: false,
        }
    } else {
        let i = rng.gen_range(0..pools.len());
        let j = loop {
            let j = rng.gen_range(0..pools.len());
            if j != i {
                break j;
            }
        };
        let k = rng.gen_range(8..20);
        JoinCandidate {
            left_name: format!("{}_t.{}", pools[i].name, pools[i].name),
            left_values: sample_values(rng, &pools[i].values, k),
            right_name: format!("{}_t.{}", pools[j].name, pools[j].name),
            right_values: sample_values(rng, &pools[j].values, k),
            joinable: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_labels() {
        let w = World::generate(7);
        let ds = nextiajd(&w, 3, 400);
        assert_eq!(ds.len(), 400);
        let pos = ds.positives();
        assert!((180..=220).contains(&pos), "positives {pos}");
    }

    #[test]
    fn positive_pairs_overlap() {
        let w = World::generate(7);
        let ds = nextiajd(&w, 3, 100);
        for p in ds.pairs.iter().filter(|p| p.joinable) {
            let left: std::collections::HashSet<String> = p
                .left_values
                .iter()
                .map(|v| v.trim().to_lowercase())
                .collect();
            let inter = p
                .right_values
                .iter()
                .filter(|v| left.contains(&v.trim().to_lowercase()))
                .count();
            assert!(inter > 0, "{} vs {}", p.left_name, p.right_name);
        }
    }

    #[test]
    fn negative_lookalikes_exist() {
        let w = World::generate(7);
        let ds = nextiajd(&w, 3, 200);
        let lookalikes = ds
            .pairs
            .iter()
            .filter(|p| !p.joinable && p.left_name == "customers.name")
            .count();
        assert!(lookalikes > 10);
    }

    #[test]
    fn deterministic() {
        let w = World::generate(7);
        let a = nextiajd(&w, 9, 50);
        let b = nextiajd(&w, 9, 50);
        assert_eq!(a.pairs, b.pairs);
    }
}
