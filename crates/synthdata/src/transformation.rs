//! Data-transformation benchmarks following the TDE setup: StackOverflow and
//! Bing-QueryLogs.
//!
//! Each case gives a few input→output examples plus one query input; the
//! system must produce the transformed query. Tasks split into three kinds:
//!
//! * [`TransformKind::Syntactic`] — pure string surgery (substring, reorder,
//!   pad, case). Search-based engines like TDE excel here.
//! * [`TransformKind::Dictionary`] — require a fixed lookup table (month
//!   names, roman numerals). TDE ships such tables; LLMs know them.
//! * [`TransformKind::Semantic`] — require world knowledge (country → ISO
//!   code, city → country). Only knowledge-backed systems can do these,
//!   which is why TDE collapses on Bing-QueryLogs (32% in the paper).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use unidm_world::{names, World};

/// What capability a transformation task exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformKind {
    /// Pure string manipulation.
    Syntactic,
    /// Needs a closed lookup table (months, romans).
    Dictionary,
    /// Needs open world knowledge.
    Semantic,
}

/// One transformation case: examples, a query input, and ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformationCase {
    /// Human-readable task name.
    pub task: String,
    /// Demonstration pairs (input, output).
    pub examples: Vec<(String, String)>,
    /// The query input to transform.
    pub input: String,
    /// Ground-truth output.
    pub truth: String,
    /// The capability the task exercises.
    pub kind: TransformKind,
}

/// A transformation benchmark.
#[derive(Debug, Clone)]
pub struct TransformationDataset {
    /// Dataset name.
    pub name: String,
    /// All cases.
    pub cases: Vec<TransformationCase>,
}

impl TransformationDataset {
    /// Number of cases.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// True if there are no cases.
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }
}

/// English month names, indexed by month-1.
pub const MONTHS: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

/// The concrete transformation tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Task {
    IsoDateToUs,
    CompactDateToIso,
    PhoneParen,
    NameLastFirst,
    NameInitial,
    EmailDomain,
    Upper,
    TitleCase,
    ExtractYear,
    JoinDash,
    MonthNumToName,
    CompactDateToPretty,
    RomanToNumber,
    CountryToIso,
    IsoToCountry,
    CityToCountry,
    CountryToContinent,
    CityToTimezone,
    KmToM,
}

impl Task {
    fn kind(self) -> TransformKind {
        use Task::*;
        match self {
            IsoDateToUs | CompactDateToIso | PhoneParen | NameLastFirst | NameInitial
            | EmailDomain | Upper | TitleCase | ExtractYear | JoinDash => TransformKind::Syntactic,
            MonthNumToName | CompactDateToPretty | RomanToNumber => TransformKind::Dictionary,
            CountryToIso | IsoToCountry | CityToCountry | CountryToContinent | CityToTimezone
            | KmToM => TransformKind::Semantic,
        }
    }

    fn name(self) -> &'static str {
        use Task::*;
        match self {
            IsoDateToUs => "iso-date-to-us",
            CompactDateToIso => "compact-date-to-iso",
            PhoneParen => "phone-parenthesise",
            NameLastFirst => "name-last-first",
            NameInitial => "name-initial",
            EmailDomain => "email-domain",
            Upper => "uppercase",
            TitleCase => "title-case",
            ExtractYear => "extract-year",
            JoinDash => "join-with-dash",
            MonthNumToName => "month-number-to-name",
            CompactDateToPretty => "compact-date-to-pretty",
            RomanToNumber => "roman-to-number",
            CountryToIso => "country-to-iso",
            IsoToCountry => "iso-to-country",
            CityToCountry => "city-to-country",
            CountryToContinent => "country-to-continent",
            CityToTimezone => "city-to-timezone",
            KmToM => "km-to-m",
        }
    }

    fn gen_input<R: Rng>(self, rng: &mut R, world: &World) -> String {
        use Task::*;
        match self {
            IsoDateToUs | ExtractYear => {
                format!(
                    "{}-{:02}-{:02}",
                    rng.gen_range(1980..2024),
                    rng.gen_range(1..13),
                    rng.gen_range(1..29)
                )
            }
            CompactDateToIso | CompactDateToPretty => {
                format!(
                    "{}{:02}{:02}",
                    rng.gen_range(1980..2024),
                    rng.gen_range(1..13),
                    rng.gen_range(1..29)
                )
            }
            PhoneParen => {
                let area = rng.gen_range(201..989);
                names::phone(rng, area)
            }
            NameLastFirst | NameInitial | TitleCase => names::person(rng),
            EmailDomain => {
                format!("{}@{}.com", names::word(rng, 2), names::word(rng, 2))
            }
            Upper => names::word(rng, 3),
            JoinDash => format!(
                "{} {} {}",
                rng.gen_range(100..999),
                rng.gen_range(100..999),
                rng.gen_range(1000..9999)
            ),
            MonthNumToName => format!("{:02}", rng.gen_range(1..13)),
            RomanToNumber => {
                const ROMANS: [&str; 10] =
                    ["I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X"];
                ROMANS[rng.gen_range(0..10)].to_string()
            }
            CountryToIso | CountryToContinent => world.geo.countries
                [rng.gen_range(0..world.geo.countries.len())]
            .name
            .clone(),
            IsoToCountry => world.geo.countries[rng.gen_range(0..world.geo.countries.len())]
                .iso3
                .clone(),
            CityToCountry | CityToTimezone => world.geo.cities
                [rng.gen_range(0..world.geo.cities.len())]
            .name
            .clone(),
            KmToM => format!("{} km", rng.gen_range(1..500)),
        }
    }

    fn apply(self, input: &str, world: &World) -> Option<String> {
        use Task::*;
        match self {
            IsoDateToUs => {
                let p: Vec<&str> = input.split('-').collect();
                (p.len() == 3).then(|| format!("{}/{}/{}", p[1], p[2], p[0]))
            }
            CompactDateToIso => (input.len() == 8)
                .then(|| format!("{}-{}-{}", &input[0..4], &input[4..6], &input[6..8])),
            PhoneParen => {
                let p: Vec<&str> = input.split('/').collect();
                (p.len() == 2).then(|| format!("({}) {}", p[0], p[1]))
            }
            NameLastFirst => {
                let w: Vec<&str> = input.split_whitespace().collect();
                (w.len() == 2).then(|| format!("{}, {}", w[1], w[0]))
            }
            NameInitial => {
                let w: Vec<&str> = input.split_whitespace().collect();
                (w.len() == 2).then(|| format!("{}. {}", &w[0][0..1], w[1]))
            }
            EmailDomain => input.split('@').nth(1).map(|s| s.to_string()),
            Upper => Some(input.to_uppercase()),
            TitleCase => Some(names::capitalize(&input.to_lowercase())),
            ExtractYear => input.split('-').next().map(|s| s.to_string()),
            JoinDash => Some(input.split_whitespace().collect::<Vec<_>>().join("-")),
            MonthNumToName => {
                let m: usize = input.parse().ok()?;
                (1..=12).contains(&m).then(|| MONTHS[m - 1].to_string())
            }
            CompactDateToPretty => {
                if input.len() != 8 {
                    return None;
                }
                let m: usize = input[4..6].parse().ok()?;
                if !(1..=12).contains(&m) {
                    return None;
                }
                let day: usize = input[6..8].parse().ok()?;
                Some(format!("{} {} {}", &MONTHS[m - 1][0..3], day, &input[0..4]))
            }
            RomanToNumber => {
                const ROMANS: [&str; 10] =
                    ["I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X"];
                ROMANS
                    .iter()
                    .position(|r| *r == input)
                    .map(|i| (i + 1).to_string())
            }
            CountryToIso => world
                .geo
                .countries
                .iter()
                .find(|c| c.name == input)
                .map(|c| c.iso3.clone()),
            IsoToCountry => world
                .geo
                .countries
                .iter()
                .find(|c| c.iso3 == input)
                .map(|c| c.name.clone()),
            CityToCountry => world
                .geo
                .city(input)
                .map(|c| world.geo.country_of(c).name.clone()),
            CountryToContinent => world
                .geo
                .countries
                .iter()
                .find(|c| c.name == input)
                .map(|c| c.continent.clone()),
            CityToTimezone => world
                .geo
                .city(input)
                .map(|c| world.geo.country_of(c).timezone.clone()),
            KmToM => {
                let n: i64 = input.split_whitespace().next()?.parse().ok()?;
                Some(format!("{} m", n * 1000))
            }
        }
    }
}

const SYNTACTIC: &[Task] = &[
    Task::IsoDateToUs,
    Task::CompactDateToIso,
    Task::PhoneParen,
    Task::NameLastFirst,
    Task::NameInitial,
    Task::EmailDomain,
    Task::Upper,
    Task::TitleCase,
    Task::ExtractYear,
    Task::JoinDash,
];
const DICTIONARY: &[Task] = &[
    Task::MonthNumToName,
    Task::CompactDateToPretty,
    Task::RomanToNumber,
];
const SEMANTIC: &[Task] = &[
    Task::CountryToIso,
    Task::IsoToCountry,
    Task::CityToCountry,
    Task::CountryToContinent,
    Task::CityToTimezone,
    Task::KmToM,
];

/// Builds the StackOverflow benchmark: mostly syntactic transformations
/// (the real benchmark is scraped from programming Q&A).
pub fn stackoverflow(world: &World, seed: u64, n_cases: usize) -> TransformationDataset {
    build(
        world,
        seed,
        n_cases,
        "StackOverflow",
        &[(SYNTACTIC, 70), (DICTIONARY, 20), (SEMANTIC, 10)],
    )
}

/// Builds the Bing-QueryLogs benchmark: dominated by semantic
/// transformations from search-log rewrites.
pub fn bing_querylogs(world: &World, seed: u64, n_cases: usize) -> TransformationDataset {
    build(
        world,
        seed,
        n_cases,
        "Bing-QueryLogs",
        &[(SYNTACTIC, 25), (DICTIONARY, 15), (SEMANTIC, 60)],
    )
}

fn build(
    world: &World,
    seed: u64,
    n_cases: usize,
    name: &str,
    mix: &[(&[Task], u32)],
) -> TransformationDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let total_weight: u32 = mix.iter().map(|(_, w)| w).sum();
    let mut cases = Vec::with_capacity(n_cases);
    while cases.len() < n_cases {
        let mut roll = rng.gen_range(0..total_weight);
        let pool = mix
            .iter()
            .find(|(_, w)| {
                if roll < *w {
                    true
                } else {
                    roll -= w;
                    false
                }
            })
            .map(|(p, _)| *p)
            .expect("weights cover roll");
        let task = *pool.choose(&mut rng).expect("non-empty pool");
        let mut examples = Vec::new();
        let n_examples = rng.gen_range(2..4);
        let mut ok = true;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n_examples {
            let inp = task.gen_input(&mut rng, world);
            match task.apply(&inp, world) {
                Some(out) if seen.insert(inp.clone()) => examples.push((inp, out)),
                Some(_) => {}
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok || examples.len() < 2 {
            continue;
        }
        let input = loop {
            let cand = task.gen_input(&mut rng, world);
            if seen.insert(cand.clone()) {
                break cand;
            }
        };
        let Some(truth) = task.apply(&input, world) else {
            continue;
        };
        cases.push(TransformationCase {
            task: task.name().to_string(),
            examples,
            input,
            truth,
            kind: task.kind(),
        });
    }
    TransformationDataset {
        name: name.to_string(),
        cases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(7)
    }

    #[test]
    fn stackoverflow_mostly_syntactic() {
        let ds = stackoverflow(&world(), 3, 200);
        let syn = ds
            .cases
            .iter()
            .filter(|c| c.kind == TransformKind::Syntactic)
            .count();
        assert!(syn > 100, "syntactic share {syn}/200");
    }

    #[test]
    fn bing_mostly_semantic() {
        let ds = bing_querylogs(&world(), 3, 200);
        let sem = ds
            .cases
            .iter()
            .filter(|c| c.kind == TransformKind::Semantic)
            .count();
        assert!(sem > 90, "semantic share {sem}/200");
    }

    #[test]
    fn examples_consistent_with_truth() {
        let w = world();
        let ds = stackoverflow(&w, 5, 100);
        for c in &ds.cases {
            assert!(c.examples.len() >= 2);
            assert!(!c.truth.is_empty());
            assert!(!c.examples.iter().any(|(i, _)| i == &c.input));
        }
    }

    #[test]
    fn task_applications_known_values() {
        let w = world();
        assert_eq!(
            Task::IsoDateToUs.apply("2021-03-15", &w).unwrap(),
            "03/15/2021"
        );
        assert_eq!(
            Task::CompactDateToIso.apply("20210315", &w).unwrap(),
            "2021-03-15"
        );
        assert_eq!(
            Task::CompactDateToPretty.apply("20210315", &w).unwrap(),
            "Mar 15 2021"
        );
        assert_eq!(
            Task::PhoneParen.apply("404/262-7379", &w).unwrap(),
            "(404) 262-7379"
        );
        assert_eq!(
            Task::NameLastFirst.apply("John Smith", &w).unwrap(),
            "Smith, John"
        );
        assert_eq!(
            Task::NameInitial.apply("John Smith", &w).unwrap(),
            "J. Smith"
        );
        assert_eq!(Task::MonthNumToName.apply("03", &w).unwrap(), "March");
        assert_eq!(Task::RomanToNumber.apply("III", &w).unwrap(), "3");
        assert_eq!(Task::CountryToIso.apply("Germany", &w).unwrap(), "GER");
        assert_eq!(Task::CityToCountry.apply("Florence", &w).unwrap(), "Italy");
        assert_eq!(Task::KmToM.apply("5 km", &w).unwrap(), "5000 m");
        assert_eq!(
            Task::JoinDash.apply("415 399 0499", &w).unwrap(),
            "415-399-0499"
        );
    }

    #[test]
    fn invalid_inputs_yield_none() {
        let w = world();
        assert!(Task::MonthNumToName.apply("13", &w).is_none());
        assert!(Task::CompactDateToIso.apply("2021", &w).is_none());
        assert!(Task::CityToCountry.apply("Notacity", &w).is_none());
    }

    #[test]
    fn deterministic() {
        let w = world();
        let a = bing_querylogs(&w, 11, 50);
        let b = bing_querylogs(&w, 11, 50);
        assert_eq!(a.cases, b.cases);
    }
}
