//! Imputation benchmarks: Restaurant (impute `city`) and Buy (impute
//! `manufacturer`).
//!
//! Following the paper's protocol, values of the target attribute are
//! manually masked and the pre-mask values serve as ground truth.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use unidm_tablestore::{Table, Value};
use unidm_world::World;

/// One masked cell with its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct ImputationTarget {
    /// Row index of the masked cell.
    pub row: usize,
    /// The value that was masked out.
    pub truth: Value,
}

/// An imputation benchmark: a table with masked cells plus ground truth.
#[derive(Debug, Clone)]
pub struct ImputationDataset {
    /// The table, with target cells replaced by [`Value::Null`].
    pub table: Table,
    /// Attribute whose values were masked.
    pub target_attr: String,
    /// Attribute serving as the record's primary key in prompts.
    pub key_attr: String,
    /// The masked cells with ground truth.
    pub targets: Vec<ImputationTarget>,
}

impl ImputationDataset {
    /// Number of evaluation targets.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True if there are no targets.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

/// Builds the full Restaurant table (no masking): name, addr, city, phone, type.
pub fn restaurant_table(world: &World) -> Table {
    let mut t = Table::builder("restaurants")
        .columns(["name", "addr", "city", "phone", "type"])
        .build();
    for r in &world.dining.restaurants {
        let city = &world.geo.cities[r.city];
        t.push_row(vec![
            Value::text(&r.name),
            Value::text(&r.address),
            Value::text(&city.name),
            Value::text(&r.phone),
            Value::text(&r.cuisine),
        ])
        .expect("schema matches");
    }
    t
}

/// Builds the Restaurant imputation benchmark: masks `city` on `n_targets`
/// random rows.
pub fn restaurant(world: &World, seed: u64, n_targets: usize) -> ImputationDataset {
    let table = restaurant_table(world);
    mask(table, "city", "name", seed, n_targets)
}

/// Builds the full Buy table (no masking): name, description, price,
/// manufacturer.
pub fn buy_table(world: &World) -> Table {
    let mut t = Table::builder("buy")
        .columns(["name", "description", "price", "manufacturer"])
        .build();
    for p in &world.products.products {
        let m = world.products.manufacturer_of(p);
        let description = format!("{} {} by {}", p.category, p.model_code, m.name);
        t.push_row(vec![
            Value::text(&p.name),
            Value::text(description),
            Value::Float(p.price),
            Value::text(&m.name),
        ])
        .expect("schema matches");
    }
    t
}

/// Builds the Buy imputation benchmark: masks `manufacturer`.
///
/// The `description` column leaks the manufacturer for most rows — mirroring
/// the real Buy dataset, where imputation accuracy approaches 99% because
/// descriptions mention the maker.
pub fn buy(world: &World, seed: u64, n_targets: usize) -> ImputationDataset {
    let mut table = buy_table(world);
    // The paper's Buy task stays hard only because some descriptions are
    // terse; blank the manufacturer mention in 55% of descriptions.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB0B);
    let rows = table.row_count();
    for row in 0..rows {
        if rand::Rng::gen_bool(&mut rng, 0.55) {
            let name = table.cell(row, "name").expect("in range").to_string();
            let category = name.split_whitespace().nth(1).unwrap_or("item").to_string();
            table
                .set_cell(
                    row,
                    "description",
                    Value::text(format!("{category} series")),
                )
                .expect("in range");
        }
    }
    mask(table, "manufacturer", "name", seed, n_targets)
}

fn mask(
    mut table: Table,
    target_attr: &str,
    key_attr: &str,
    seed: u64,
    n_targets: usize,
) -> ImputationDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows: Vec<usize> = (0..table.row_count()).collect();
    rows.shuffle(&mut rng);
    rows.truncate(n_targets);
    rows.sort_unstable();
    let mut targets = Vec::with_capacity(rows.len());
    for row in rows {
        let truth = table.cell(row, target_attr).expect("in range").clone();
        table
            .set_cell(row, target_attr, Value::Null)
            .expect("in range");
        targets.push(ImputationTarget { row, truth });
    }
    ImputationDataset {
        table,
        target_attr: target_attr.to_string(),
        key_attr: key_attr.to_string(),
        targets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(7)
    }

    #[test]
    fn restaurant_masks_requested_cells() {
        let ds = restaurant(&world(), 3, 50);
        assert_eq!(ds.len(), 50);
        for t in &ds.targets {
            assert!(ds.table.cell(t.row, "city").unwrap().is_null());
            assert!(!t.truth.is_null());
        }
    }

    #[test]
    fn restaurant_truth_matches_world() {
        let w = world();
        let ds = restaurant(&w, 3, 20);
        let full = restaurant_table(&w);
        for t in &ds.targets {
            assert_eq!(full.cell(t.row, "city").unwrap(), &t.truth);
        }
    }

    #[test]
    fn buy_masks_manufacturer() {
        let ds = buy(&world(), 3, 40);
        assert_eq!(ds.target_attr, "manufacturer");
        assert_eq!(ds.len(), 40);
        for t in &ds.targets {
            assert!(ds.table.cell(t.row, "manufacturer").unwrap().is_null());
        }
    }

    #[test]
    fn buy_some_descriptions_terse() {
        let ds = buy(&world(), 3, 40);
        let terse = ds
            .table
            .iter_rows()
            .filter(|r| r.values()[1].to_string().ends_with("series"))
            .count();
        assert!(terse > 0, "masking of descriptions should happen");
        assert!(terse < ds.table.row_count(), "but not everywhere");
    }

    #[test]
    fn deterministic() {
        let w = world();
        let a = restaurant(&w, 5, 30);
        let b = restaurant(&w, 5, 30);
        assert_eq!(a.targets, b.targets);
    }

    #[test]
    fn non_target_rows_untouched() {
        let w = world();
        let ds = restaurant(&w, 5, 10);
        let full = restaurant_table(&w);
        let masked: std::collections::HashSet<usize> = ds.targets.iter().map(|t| t.row).collect();
        for row in 0..full.row_count() {
            if !masked.contains(&row) {
                assert_eq!(
                    ds.table.cell(row, "city").unwrap(),
                    full.cell(row, "city").unwrap()
                );
            }
        }
    }
}
