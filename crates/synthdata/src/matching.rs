//! Entity-resolution benchmarks in the Magellan style: Beer, Amazon-Google,
//! iTunes-Amazon and Walmart-Amazon.
//!
//! Each dataset consists of candidate record pairs from two structured
//! tables of the same schema, labelled matched / not matched. Matched pairs
//! are perturbed duplicates (abbreviations, reorderings, typos, field
//! drops); unmatched pairs include hard negatives (same brand, different
//! model). A per-dataset `domain_specificity` encodes how alien the
//! vocabulary is to a general-purpose LLM — the mechanism the paper invokes
//! to explain UniDM trailing Ditto on Amazon-Google.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use unidm_tablestore::{Record, Schema, Value};
use unidm_world::World;

/// One candidate pair of records.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityPair {
    /// Record from table A.
    pub a: Record,
    /// Record from table B.
    pub b: Record,
    /// Ground-truth label: do they denote the same real-world entity?
    pub is_match: bool,
}

/// An entity-resolution benchmark.
#[derive(Debug, Clone)]
pub struct MatchingDataset {
    /// Dataset name (e.g. "Walmart-Amazon").
    pub name: String,
    /// Shared schema of both record sides.
    pub schema: Schema,
    /// Evaluation pairs.
    pub pairs: Vec<EntityPair>,
    /// Training pairs (for Ditto / Magellan / fine-tuning).
    pub train: Vec<EntityPair>,
    /// In `[0, 1]`: how much of the vocabulary is domain-specific jargon a
    /// general LLM would not know. Drives the simulated LLM's error rate.
    pub domain_specificity: f64,
}

impl MatchingDataset {
    /// Number of evaluation pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if there are no evaluation pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Fraction of evaluation pairs labelled as matches.
    pub fn positive_rate(&self) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        self.pairs.iter().filter(|p| p.is_match).count() as f64 / self.pairs.len() as f64
    }
}

/// Perturbation intensity knobs per dataset.
#[derive(Debug, Clone, Copy)]
struct Hardness {
    /// Probability of abbreviating the leading brand/artist token.
    abbreviate: f64,
    /// Probability of dropping a non-key field to null.
    drop_field: f64,
    /// Probability of injecting a character typo into the name.
    typo: f64,
    /// Relative price/number jitter.
    jitter: f64,
    /// Probability of dropping model-code-like tokens from text fields —
    /// the "title soup" that makes Amazon-Google hard.
    drop_code: f64,
    /// Probability that a negative pair is adversarial (most-similar
    /// same-brand record) rather than a random one.
    hard_negative: f64,
    /// Per-token dropout on the title beyond its first token — the
    /// free-text rewording that makes Amazon-Google titles so noisy.
    word_dropout: f64,
}

/// Builds the Beer ER benchmark (small and easy; FM-manual reaches 100 F1).
pub fn beer(world: &World, seed: u64) -> MatchingDataset {
    let schema = Schema::from_names(["name", "brewery", "style", "abv"]).expect("unique");
    let recs: Vec<Record> = world
        .beer
        .beers
        .iter()
        .map(|b| {
            Record::new(vec![
                Value::text(&b.name),
                Value::text(&b.brewery),
                Value::text(&b.style),
                Value::Float(b.abv),
            ])
        })
        .collect();
    build(
        "Beer",
        schema,
        recs,
        seed,
        90,
        30,
        Hardness {
            abbreviate: 0.1,
            drop_field: 0.1,
            typo: 0.1,
            jitter: 0.02,
            drop_code: 0.0,
            hard_negative: 0.1,
            word_dropout: 0.0,
        },
        0.05,
    )
}

/// Builds the Amazon-Google software benchmark (hard: heavy abbreviation,
/// version soup, jargon-dense names).
pub fn amazon_google(world: &World, seed: u64) -> MatchingDataset {
    let schema = Schema::from_names(["title", "manufacturer", "price"]).expect("unique");
    let recs: Vec<Record> = world
        .products
        .products
        .iter()
        .filter(|p| p.category == "software" || p.price < 300.0)
        .map(|p| {
            let m = world.products.manufacturer_of(p);
            Record::new(vec![
                Value::text(&p.name),
                Value::text(&m.name),
                Value::Float(p.price),
            ])
        })
        .collect();
    build(
        "Amazon-Google",
        schema,
        recs,
        seed,
        200,
        120,
        Hardness {
            abbreviate: 0.55,
            drop_field: 0.35,
            typo: 0.25,
            jitter: 0.35,
            drop_code: 0.45,
            hard_negative: 0.7,
            word_dropout: 0.35,
        },
        0.55,
    )
}

/// Builds the iTunes-Amazon song benchmark (moderately easy).
pub fn itunes_amazon(world: &World, seed: u64) -> MatchingDataset {
    let schema = Schema::from_names(["song", "artist", "album", "time", "price"]).expect("unique");
    let recs: Vec<Record> = world
        .music
        .songs
        .iter()
        .map(|s| {
            let a = world.music.artist_of(s);
            Record::new(vec![
                Value::text(&s.title),
                Value::text(&a.name),
                Value::text(&s.album),
                Value::text(format!("{}:{:02}", s.seconds / 60, s.seconds % 60)),
                Value::Float(s.price),
            ])
        })
        .collect();
    build(
        "iTunes-Amazon",
        schema,
        recs,
        seed,
        150,
        60,
        Hardness {
            abbreviate: 0.15,
            drop_field: 0.15,
            typo: 0.1,
            jitter: 0.05,
            drop_code: 0.0,
            hard_negative: 0.4,
            word_dropout: 0.0,
        },
        0.1,
    )
}

/// Builds the Walmart-Amazon electronics benchmark (medium; ships the large
/// training split the paper fine-tunes on — 6144 tuples in the original).
pub fn walmart_amazon(world: &World, seed: u64) -> MatchingDataset {
    let schema = Schema::from_names(["title", "brand", "modelno", "price"]).expect("unique");
    let recs: Vec<Record> = world
        .products
        .products
        .iter()
        .map(|p| {
            let m = world.products.manufacturer_of(p);
            Record::new(vec![
                Value::text(&p.name),
                Value::text(&m.brand),
                Value::text(&p.model_code),
                Value::Float(p.price),
            ])
        })
        .collect();
    build(
        "Walmart-Amazon",
        schema,
        recs,
        seed,
        250,
        768,
        Hardness {
            abbreviate: 0.3,
            drop_field: 0.25,
            typo: 0.15,
            jitter: 0.15,
            drop_code: 0.2,
            hard_negative: 0.55,
            word_dropout: 0.1,
        },
        0.3,
    )
}

#[allow(clippy::too_many_arguments)]
fn build(
    name: &str,
    schema: Schema,
    records: Vec<Record>,
    seed: u64,
    n_eval: usize,
    n_train: usize,
    hardness: Hardness,
    domain_specificity: f64,
) -> MatchingDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = n_eval + n_train;
    let mut pairs = Vec::with_capacity(total);
    for i in 0..total {
        // Keep roughly 40% positives: candidate-pair sets in Magellan
        // benchmarks are blocked, so positives are not rare.
        let positive = i % 5 < 2;
        let idx = rng.gen_range(0..records.len());
        let a = records[idx].clone();
        let (b, is_match) = if positive {
            (perturb(&mut rng, &a, hardness), true)
        } else {
            // Hard negative: prefer the *most similar* different record
            // sharing the first token (same brand / same artist, and when
            // possible the same product line) — the adversarial candidates
            // blocking produces in the real Magellan benchmarks.
            let first = first_token(&a);
            let hard: Option<usize> = records
                .iter()
                .enumerate()
                .filter(|(j, r)| *j != idx && first_token(r) == first)
                .max_by(|(_, x), (_, y)| {
                    let sx = unidm_text::distance::jaccard(&a.text_blob(), &x.text_blob());
                    let sy = unidm_text::distance::jaccard(&a.text_blob(), &y.text_blob());
                    sx.partial_cmp(&sy).unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(j, _)| j);
            let j = match hard {
                Some(j) if rng.gen_bool(hardness.hard_negative) => j,
                _ => loop {
                    let j = rng.gen_range(0..records.len());
                    if j != idx {
                        break j;
                    }
                },
            };
            (perturb(&mut rng, &records[j], hardness), false)
        };
        pairs.push(EntityPair { a, b, is_match });
    }
    let train = pairs.split_off(n_eval);
    MatchingDataset {
        name: name.to_string(),
        schema,
        pairs,
        train,
        domain_specificity,
    }
}

fn first_token(r: &Record) -> String {
    r.values()
        .first()
        .map(|v| {
            v.to_string()
                .split_whitespace()
                .next()
                .unwrap_or("")
                .to_lowercase()
        })
        .unwrap_or_default()
}

/// Produces the "other catalogue's" version of a record.
fn perturb<R: Rng>(rng: &mut R, rec: &Record, h: Hardness) -> Record {
    let mut values: Vec<Value> = rec.values().to_vec();
    for (i, v) in values.iter_mut().enumerate() {
        match v {
            Value::Text(s) => {
                let mut out = s.clone();
                if i == 0 && rng.gen_bool(h.abbreviate) {
                    out = abbreviate(&out);
                }
                if h.drop_code > 0.0 && rng.gen_bool(h.drop_code) {
                    out = drop_model_codes(&out);
                }
                if i == 0 && h.word_dropout > 0.0 {
                    let kept: Vec<&str> = out
                        .split_whitespace()
                        .enumerate()
                        .filter(|(j, _)| *j == 0 || !rng.gen_bool(h.word_dropout))
                        .map(|(_, w)| w)
                        .collect();
                    if !kept.is_empty() {
                        out = kept.join(" ");
                    }
                }
                if rng.gen_bool(h.typo) {
                    out = unidm_world::names::typo(rng, &out);
                }
                if i > 0 && rng.gen_bool(h.drop_field) {
                    *v = Value::Null;
                    continue;
                }
                *v = Value::Text(out);
            }
            Value::Float(x) if h.jitter > 0.0 => {
                let f = 1.0 + rng.gen_range(-h.jitter..h.jitter);
                *v = Value::Float((*x * f * 100.0).round() / 100.0);
            }
            _ => {}
        }
    }
    Record::new(values)
}

/// Abbreviates the first word to its initial ("Punch Software X" → "P. Software X")
/// and shuffles word order slightly — the classic catalogue mangling.
/// Removes model-code-like tokens (alphanumeric with digits) from a text.
fn drop_model_codes(s: &str) -> String {
    let kept: Vec<&str> = s
        .split_whitespace()
        .filter(|w| {
            !(w.chars().any(|c| c.is_ascii_digit()) && w.chars().any(|c| c.is_alphabetic()))
        })
        .collect();
    if kept.is_empty() {
        s.to_string()
    } else {
        kept.join(" ")
    }
}

fn abbreviate(s: &str) -> String {
    let words: Vec<&str> = s.split_whitespace().collect();
    if words.len() < 2 {
        return s.to_string();
    }
    let mut out: Vec<String> = Vec::with_capacity(words.len());
    let first_initial = words[0]
        .chars()
        .next()
        .map(|c| format!("{c}."))
        .unwrap_or_default();
    out.push(first_initial);
    for w in &words[1..] {
        out.push((*w).to_string());
    }
    out.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(7)
    }

    #[test]
    fn all_datasets_build() {
        let w = world();
        for ds in [
            beer(&w, 1),
            amazon_google(&w, 1),
            itunes_amazon(&w, 1),
            walmart_amazon(&w, 1),
        ] {
            assert!(!ds.is_empty());
            assert!(ds.positive_rate() > 0.25 && ds.positive_rate() < 0.55);
            for p in &ds.pairs {
                assert_eq!(p.a.len(), ds.schema.len());
                assert_eq!(p.b.len(), ds.schema.len());
            }
        }
    }

    #[test]
    fn walmart_has_large_train_split() {
        let ds = walmart_amazon(&world(), 1);
        assert!(ds.train.len() >= 500);
    }

    #[test]
    fn hardness_ordering() {
        // Positive pairs in Amazon-Google should be lexically farther apart
        // than in Beer.
        let w = world();
        let avg_sim = |ds: &MatchingDataset| {
            let mut s = 0.0;
            let mut n = 0;
            for p in &ds.pairs {
                if p.is_match {
                    s += unidm_text::distance::jaccard(&p.a.text_blob(), &p.b.text_blob());
                    n += 1;
                }
            }
            s / f64::from(n.max(1))
        };
        let easy = avg_sim(&beer(&w, 2));
        let hard = avg_sim(&amazon_google(&w, 2));
        assert!(easy > hard, "beer {easy} vs amazon-google {hard}");
    }

    #[test]
    fn deterministic() {
        let w = world();
        let a = itunes_amazon(&w, 5);
        let b = itunes_amazon(&w, 5);
        assert_eq!(a.pairs.len(), b.pairs.len());
        assert_eq!(a.pairs[0], b.pairs[0]);
    }

    #[test]
    fn abbreviate_shapes() {
        assert_eq!(abbreviate("Punch Software Suite"), "P. Software Suite");
        assert_eq!(abbreviate("Single"), "Single");
    }

    #[test]
    fn negatives_include_same_brand() {
        let ds = walmart_amazon(&world(), 3);
        let hard_negs = ds
            .pairs
            .iter()
            .filter(|p| {
                !p.is_match
                    && first_token(&p.a) == first_token(&p.b)
                    && !first_token(&p.a).is_empty()
            })
            .count();
        assert!(hard_negs > 0, "hard negatives expected");
    }
}
