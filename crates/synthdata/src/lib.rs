//! Benchmark dataset generators for the UniDM reproduction.
//!
//! Every dataset the paper evaluates on is regenerated here from the
//! synthetic [`unidm_world::World`], with ground truth known by
//! construction:
//!
//! | Paper dataset | Module | Task |
//! |---|---|---|
//! | Restaurant, Buy | [`imputation`] | data imputation |
//! | StackOverflow, Bing-QueryLogs (TDE) | [`transformation`] | data transformation |
//! | Hospital, Adult | [`errors`] | error detection |
//! | Beer, Amazon-Google, iTunes-Amazon, Walmart-Amazon (Magellan) | [`matching`] | entity resolution |
//! | WikiTableQuestions (Fig. 3) | [`tableqa`] | table question answering |
//! | NextiaJD (Fig. 5) | [`joins`] | join discovery |
//! | SWDE NBA players (Table 11) | [`extraction`] | information extraction |
//!
//! Generators are deterministic functions of `(world, seed)`; the same seed
//! reproduces the same benchmark bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod errors;
pub mod extraction;
pub mod imputation;
pub mod joins;
pub mod matching;
pub mod scale;
pub mod tableqa;
pub mod transformation;

pub use errors::ErrorDetectionDataset;
pub use extraction::ExtractionDataset;
pub use imputation::ImputationDataset;
pub use joins::JoinDiscoveryDataset;
pub use matching::MatchingDataset;
pub use scale::ScaleSpec;
pub use tableqa::TableQaDataset;
pub use transformation::TransformationDataset;
