//! Information extraction (appendix E, Table 11): SWDE-style NBA player
//! pages.
//!
//! Each document is a semi-structured HTML-ish page about one player. Three
//! page templates model the real benchmark's heterogeneity:
//!
//! * `Infobox` — regular `<tr><th>field</th><td>value</td></tr>` rows, easy
//!   for rule-synthesis systems (Evaporate) and for parsing alike;
//! * `Prose` — values embedded in running text, where synthesized extraction
//!   rules break but language understanding works;
//! * `Messy` — inconsistent markup and reordered fields, hard for everyone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

use unidm_world::World;

/// One semi-structured document.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// Raw page text (HTML-ish).
    pub text: String,
    /// Which template produced it.
    pub template: Template,
}

/// Page template kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Template {
    /// Regular infobox rows.
    Infobox,
    /// Values inside running prose.
    Prose,
    /// Inconsistent, reordered markup.
    Messy,
}

/// A closed-schema extraction benchmark.
#[derive(Debug, Clone)]
pub struct ExtractionDataset {
    /// Documents, one per player.
    pub docs: Vec<Document>,
    /// The attributes to populate.
    pub attrs: Vec<String>,
    /// Ground truth per document: attribute → value.
    pub truth: Vec<BTreeMap<String, String>>,
}

impl ExtractionDataset {
    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True if there are no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

/// Builds the NBA-player extraction benchmark over all world players.
pub fn nba_players(world: &World, seed: u64) -> ExtractionDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let attrs: Vec<String> = ["player", "height", "position", "college"]
        .map(String::from)
        .to_vec();
    let mut docs = Vec::new();
    let mut truth = Vec::new();
    for p in &world.nba.players {
        let template = match rng.gen_range(0..10) {
            0..=4 => Template::Infobox,
            5..=7 => Template::Prose,
            _ => Template::Messy,
        };
        let text = render(&mut rng, template, p);
        docs.push(Document { text, template });
        let mut t = BTreeMap::new();
        t.insert("player".to_string(), p.name.clone());
        t.insert("height".to_string(), p.height.clone());
        t.insert("position".to_string(), p.position.clone());
        t.insert("college".to_string(), p.college.clone());
        truth.push(t);
    }
    ExtractionDataset { docs, attrs, truth }
}

fn render<R: Rng>(rng: &mut R, template: Template, p: &unidm_world::nba::Player) -> String {
    match template {
        Template::Infobox => format!(
            "<html><h1>{name}</h1><table class=\"infobox\">\n\
             <tr><th>Height</th><td>{height}</td></tr>\n\
             <tr><th>Position</th><td>{position}</td></tr>\n\
             <tr><th>College</th><td>{college}</td></tr>\n\
             </table><p>{name} currently plays for the {team}.</p></html>",
            name = p.name,
            height = p.height,
            position = p.position,
            college = p.college,
            team = p.team,
        ),
        Template::Prose => format!(
            "<html><h2>{name}</h2><p>{name} is an American professional basketball \
             player for the {team} of the NBA. Standing {height} tall, he plays the \
             {position} position. He played college basketball at {college} before \
             entering the draft.</p></html>",
            name = p.name,
            team = p.team,
            height = p.height,
            position = p.position,
            college = p.college,
        ),
        Template::Messy => {
            // Random field order, mixed tags, stray whitespace.
            let mut fields = [
                format!("<span>college = {}</span>", p.college),
                format!("<li>pos: {}</li>", p.position),
                format!("<div>ht&nbsp;{}</div>", p.height),
            ];
            let swap = rng.gen_range(0..fields.len());
            fields.swap(0, swap);
            format!(
                "<html><title>{name} | stats</title>{fields}<footer>{team}</footer></html>",
                name = p.name,
                fields = fields.join("  "),
                team = p.team,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_one_doc_per_player() {
        let w = World::generate(7);
        let ds = nba_players(&w, 3);
        assert_eq!(ds.len(), w.nba.players.len());
        assert_eq!(ds.truth.len(), ds.docs.len());
    }

    #[test]
    fn truth_values_appear_in_docs() {
        let w = World::generate(7);
        let ds = nba_players(&w, 3);
        for (doc, truth) in ds.docs.iter().zip(&ds.truth) {
            assert!(doc.text.contains(&truth["player"]));
            assert!(doc.text.contains(&truth["height"]));
        }
    }

    #[test]
    fn templates_mixed() {
        let w = World::generate(7);
        let ds = nba_players(&w, 3);
        let kinds: std::collections::HashSet<Template> =
            ds.docs.iter().map(|d| d.template).collect();
        assert_eq!(kinds.len(), 3, "all templates present");
    }

    #[test]
    fn infobox_regular_shape() {
        let w = World::generate(7);
        let ds = nba_players(&w, 3);
        for d in ds.docs.iter().filter(|d| d.template == Template::Infobox) {
            assert!(d.text.contains("<tr><th>Height</th>"));
        }
    }
}
