//! Scale-parameterized synthetic lake generator for out-of-core benchmarks.
//!
//! The evaluation datasets ([`crate::imputation`] etc.) are sized like the
//! paper's benchmarks — hundreds to thousands of rows. This module
//! generates a *users* table at whatever scale the out-of-core machinery
//! needs (10^4 rows in CI smoke runs, 10^7 locally), fully determined by
//! `(rows, seed)`:
//!
//! * each row is a pure function of its index, so [`ScaleSpec::users_table`]
//!   (in-memory, chunked) and [`ScaleSpec::users_segment`] (streamed
//!   straight to a spill segment, peak memory one chunk) produce identical
//!   logical rows at any scale;
//! * low-cardinality columns (`city`, `country`, `plan`) exercise
//!   dictionary encoding, `user_id`/`age` exercise integer packing, and
//!   `name` is high-cardinality text;
//! * every tenth-ish row ([`ScaleSpec::is_city_missing`]) has a null
//!   `city`, giving the streaming benchmark a deterministic imputation
//!   workload via [`ScaleSpec::target_rows`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use unidm_tablestore::{Schema, SegmentWriter, Table, TableError, Value};
use unidm_world::names;

/// The generated table's name.
pub const TABLE_NAME: &str = "users_scale";

/// (city, country) pool: small enough to dictionary-encode tightly, large
/// enough that imputation is not trivial.
const CITIES: &[(&str, &str)] = &[
    ("Florence", "Italy"),
    ("Milan", "Italy"),
    ("Alicante", "Spain"),
    ("Seville", "Spain"),
    ("Antwerp", "Belgium"),
    ("Ghent", "Belgium"),
    ("Copenhagen", "Denmark"),
    ("Aarhus", "Denmark"),
    ("Porto", "Portugal"),
    ("Lisbon", "Portugal"),
    ("Graz", "Austria"),
    ("Vienna", "Austria"),
];

const PLANS: &[&str] = &["free", "pro", "team", "enterprise"];

/// Parameters of a synthetic scale lake: row count, seed, and the
/// chunk partition size of the generated table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleSpec {
    /// Number of rows to generate.
    pub rows: usize,
    /// Seed all row content derives from.
    pub seed: u64,
    /// Rows per sealed chunk of the generated table.
    pub chunk_rows: usize,
}

impl ScaleSpec {
    /// A spec with the default chunk size (1024 rows per chunk).
    pub fn new(rows: usize, seed: u64) -> Self {
        ScaleSpec {
            rows,
            seed,
            chunk_rows: 1024,
        }
    }

    /// Overrides the chunk partition size.
    pub fn with_chunk_rows(mut self, chunk_rows: usize) -> Self {
        self.chunk_rows = chunk_rows.max(1);
        self
    }

    /// The generated table's schema:
    /// `user_id, name, city, country, plan, age`.
    pub fn schema() -> Schema {
        Schema::from_names(["user_id", "name", "city", "country", "plan", "age"])
            .expect("static names are distinct")
    }

    /// True if row `i` is generated with a null `city` (an imputation
    /// target). Deterministic in `(seed, i)`.
    pub fn is_city_missing(&self, i: usize) -> bool {
        self.row_rng(i).gen_range(0..10usize) == 7
    }

    /// Generates row `i` — a pure function of `(seed, i)`, so any two
    /// materializations (in-memory, spilled, partial) agree cell-for-cell.
    pub fn row(&self, i: usize) -> Vec<Value> {
        let mut rng = self.row_rng(i);
        let missing = rng.gen_range(0..10usize) == 7;
        let (city, country) = CITIES[rng.gen_range(0..CITIES.len())];
        let name = names::person(&mut rng);
        let plan = PLANS[rng.gen_range(0..PLANS.len())];
        let age = rng.gen_range(18..=79i64);
        vec![
            Value::Int(i as i64),
            Value::text(name),
            if missing {
                Value::Null
            } else {
                Value::text(city)
            },
            Value::text(country),
            Value::text(plan),
            Value::Int(age),
        ]
    }

    fn row_rng(&self, i: usize) -> StdRng {
        // Golden-ratio mix decorrelates adjacent row seeds under SplitMix.
        StdRng::seed_from_u64(self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Builds the table in memory (chunked columnar, stats at ingest).
    /// Fine up to ~10^6 rows; beyond that, prefer
    /// [`ScaleSpec::users_segment`].
    pub fn users_table(&self) -> Table {
        let mut t = Table::with_chunk_rows(TABLE_NAME, Self::schema(), self.chunk_rows);
        for i in 0..self.rows {
            t.push_row(self.row(i)).expect("generated arity matches");
        }
        t
    }

    /// Streams the table straight into a spill segment at `path` and
    /// returns the read-only spilled table paging at most `budget` chunks:
    /// peak memory during generation is one chunk, independent of
    /// `self.rows`.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::Segment`] on I/O failure.
    pub fn users_segment(
        &self,
        path: impl AsRef<Path>,
        budget: usize,
    ) -> Result<Table, TableError> {
        let mut writer = SegmentWriter::create(path, TABLE_NAME, Self::schema(), self.chunk_rows)?;
        for i in 0..self.rows {
            writer.push_row(self.row(i))?;
        }
        writer.finish(budget)
    }

    /// Row indices with a missing `city`, in order — the deterministic
    /// imputation workload for streaming benchmarks. The iterator is lazy:
    /// consuming it allocates nothing per row beyond the draw.
    pub fn target_rows(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.rows).filter(move |&i| self.is_city_missing(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_deterministic() {
        let spec = ScaleSpec::new(1000, 42);
        assert_eq!(spec.row(17), spec.row(17));
        assert_eq!(spec.row(17), ScaleSpec::new(5000, 42).row(17));
        assert_ne!(spec.row(17), ScaleSpec::new(1000, 43).row(17));
    }

    #[test]
    fn table_matches_per_row_generation() {
        let spec = ScaleSpec::new(300, 7).with_chunk_rows(64);
        let t = spec.users_table();
        assert_eq!(t.row_count(), 300);
        assert_eq!(t.chunk_count(), 4);
        for i in [0, 63, 64, 299] {
            assert_eq!(t.row_at(i).unwrap().values(), spec.row(i).as_slice());
        }
    }

    #[test]
    fn segment_matches_in_memory() {
        let spec = ScaleSpec::new(500, 11).with_chunk_rows(128);
        let mut path = std::env::temp_dir();
        path.push(format!("unidm-scale-seg-{}.seg", std::process::id()));
        let spilled = spec.users_segment(&path, 2).unwrap();
        assert!(spilled.is_spilled());
        assert_eq!(spilled, spec.users_table());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn targets_have_missing_city() {
        let spec = ScaleSpec::new(2000, 3);
        let t = spec.users_table();
        let targets: Vec<usize> = spec.target_rows().collect();
        assert!(
            targets.len() > 100 && targets.len() < 400,
            "~10% of rows should be targets, got {}",
            targets.len()
        );
        for &r in targets.iter().take(20) {
            assert!(t.cell_value(r, "city").unwrap().is_null());
        }
        let non_target = (0..2000).find(|i| !spec.is_city_missing(*i)).unwrap();
        assert!(!t.cell_value(non_target, "city").unwrap().is_null());
    }
}
