//! Table question answering (appendix C): WikiTableQuestions-style medal
//! tables with aggregation questions.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use unidm_tablestore::{Table, Value};
use unidm_world::World;

/// One question over the table with its ground-truth answer.
#[derive(Debug, Clone, PartialEq)]
pub struct TableQaCase {
    /// Natural-language question.
    pub question: String,
    /// Ground-truth answer.
    pub answer: Value,
    /// The attributes a perfect retrieval would select.
    pub relevant_attrs: Vec<String>,
    /// The row indices a perfect retrieval would select.
    pub relevant_rows: Vec<usize>,
}

/// A TableQA benchmark: one table, several questions.
#[derive(Debug, Clone)]
pub struct TableQaDataset {
    /// The table questions are asked against.
    pub table: Table,
    /// The questions.
    pub questions: Vec<TableQaCase>,
}

/// Builds a medals table (as in the paper's Figure 3) over `n` nations and
/// generates `n_questions` aggregation questions.
pub fn medals(world: &World, seed: u64, n: usize, n_questions: usize) -> TableQaDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::builder("medals")
        .columns(["rank", "nation", "gold", "silver", "bronze", "total"])
        .build();
    let mut countries: Vec<&str> = world
        .geo
        .countries
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    countries.shuffle(&mut rng);
    countries.truncate(n);
    let mut rows: Vec<(String, i64, i64, i64)> = countries
        .iter()
        .map(|c| {
            let g = rng.gen_range(0..6i64);
            let s = rng.gen_range(0..6i64);
            let b = rng.gen_range(0..6i64);
            (c.to_string(), g, s, b)
        })
        .collect();
    rows.sort_by_key(|(_, g, s, b)| std::cmp::Reverse((*g, *s, *b)));
    for (i, (nation, g, s, b)) in rows.iter().enumerate() {
        t.push_row(vec![
            Value::Int((i + 1) as i64),
            Value::text(nation),
            Value::Int(*g),
            Value::Int(*s),
            Value::Int(*b),
            Value::Int(g + s + b),
        ])
        .expect("schema matches");
    }

    let mut questions = Vec::with_capacity(n_questions);
    let medal_cols = ["gold", "silver", "bronze"];
    for _ in 0..n_questions {
        let col = *medal_cols.choose(&mut rng).expect("ne");
        let i = rng.gen_range(0..rows.len());
        let j = loop {
            let j = rng.gen_range(0..rows.len());
            if j != i {
                break j;
            }
        };
        let (na, ..) = &rows[i];
        let (nb, ..) = &rows[j];
        let va = t.cell(i, col).expect("in range").as_f64().expect("int");
        let vb = t.cell(j, col).expect("in range").as_f64().expect("int");
        questions.push(TableQaCase {
            question: format!("how many {col} medals did {na} and {nb} total?"),
            answer: Value::Int((va + vb) as i64),
            relevant_attrs: vec!["nation".to_string(), col.to_string()],
            relevant_rows: vec![i, j],
        });
    }
    TableQaDataset {
        table: t,
        questions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_table_and_questions() {
        let w = World::generate(7);
        let ds = medals(&w, 3, 8, 20);
        assert_eq!(ds.table.row_count(), 8);
        assert_eq!(ds.questions.len(), 20);
    }

    #[test]
    fn answers_consistent_with_table() {
        let w = World::generate(7);
        let ds = medals(&w, 3, 8, 30);
        for q in &ds.questions {
            let col = &q.relevant_attrs[1];
            let sum: f64 = q
                .relevant_rows
                .iter()
                .map(|&r| ds.table.cell(r, col).unwrap().as_f64().unwrap())
                .sum();
            assert_eq!(q.answer.as_f64().unwrap(), sum);
        }
    }

    #[test]
    fn total_column_consistent() {
        let w = World::generate(7);
        let ds = medals(&w, 5, 10, 1);
        for row in 0..ds.table.row_count() {
            let g = ds.table.cell(row, "gold").unwrap().as_f64().unwrap();
            let s = ds.table.cell(row, "silver").unwrap().as_f64().unwrap();
            let b = ds.table.cell(row, "bronze").unwrap().as_f64().unwrap();
            let tot = ds.table.cell(row, "total").unwrap().as_f64().unwrap();
            assert_eq!(g + s + b, tot);
        }
    }

    #[test]
    fn ranks_descending_by_gold() {
        let w = World::generate(7);
        let ds = medals(&w, 5, 10, 1);
        let golds: Vec<f64> = (0..ds.table.row_count())
            .map(|r| ds.table.cell(r, "gold").unwrap().as_f64().unwrap())
            .collect();
        assert!(golds.windows(2).all(|w| w[0] >= w[1]));
    }
}
