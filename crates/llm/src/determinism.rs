//! Deterministic pseudo-randomness for the simulated model.
//!
//! Every stochastic decision ("did the model read this fact correctly?") is
//! a pure function of `(seed, context string, tag)`, so the same prompt to
//! the same model always behaves identically — a property the real systems
//! lack but reproducible experiments need.

/// A deterministic dice: hashes its inputs to uniform samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dice {
    seed: u64,
}

impl Dice {
    /// Creates a dice with a model-level seed.
    pub fn new(seed: u64) -> Self {
        Dice { seed }
    }

    /// A uniform sample in `[0, 1)` for the given decision context.
    pub fn uniform(&self, context: &str, tag: &str) -> f64 {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in context.bytes().chain([0xff]).chain(tag.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
            h ^= h >> 29;
        }
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 32;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&self, context: &str, tag: &str, p: f64) -> bool {
        self.uniform(context, tag) < p.clamp(0.0, 1.0)
    }

    /// A deterministic pick of an index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn pick(&self, context: &str, tag: &str, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty range");
        (self.uniform(context, tag) * n as f64) as usize % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let d = Dice::new(7);
        assert_eq!(d.uniform("ctx", "t"), d.uniform("ctx", "t"));
        assert_eq!(d.chance("a", "b", 0.5), d.chance("a", "b", 0.5));
    }

    #[test]
    fn different_tags_decorrelate() {
        let d = Dice::new(7);
        let a = d.uniform("ctx", "one");
        let b = d.uniform("ctx", "two");
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_in_range_and_spread() {
        let d = Dice::new(3);
        let mut sum = 0.0;
        let n = 2000;
        for i in 0..n {
            let u = d.uniform(&format!("c{i}"), "t");
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let d = Dice::new(3);
        assert!(d.chance("x", "t", 1.0));
        assert!(!d.chance("x", "t", 0.0));
        assert!(d.chance("x", "t", 2.0), "clamped to 1");
    }

    #[test]
    fn pick_in_range() {
        let d = Dice::new(3);
        for i in 0..100 {
            let p = d.pick(&format!("c{i}"), "t", 7);
            assert!(p < 7);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn pick_zero_panics() {
        Dice::new(1).pick("a", "b", 0);
    }
}
