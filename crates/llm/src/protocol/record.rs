//! Record serialization and naturalization.
//!
//! `serialize()` (paper §4.3) turns a tabular record into `attr: value`
//! pairs; context data parsing turns those pairs into fluent text. Both
//! directions live here so the pipeline (rendering) and the simulated model
//! (parsing) agree on the grammar.

/// A record serialized as ordered `attr: value` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SerializedRecord {
    /// Ordered (attribute, value) pairs; nulls are omitted at render time.
    pub pairs: Vec<(String, String)>,
}

impl SerializedRecord {
    /// Creates a serialized record from pairs.
    pub fn new(pairs: Vec<(String, String)>) -> Self {
        SerializedRecord { pairs }
    }

    /// The value of `attr`, if present and non-empty.
    pub fn get(&self, attr: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(a, _)| a.eq_ignore_ascii_case(attr))
            .map(|(_, v)| v.as_str())
            .filter(|v| !v.is_empty())
    }

    /// The subject of the record: the first non-empty value.
    pub fn subject(&self) -> Option<&str> {
        self.pairs
            .iter()
            .map(|(_, v)| v.as_str())
            .find(|v| !v.is_empty())
    }

    /// Renders as `attr: value; attr: value` (empty values skipped).
    ///
    /// The `; ` separator (rather than the paper's `, `) keeps values that
    /// contain commas unambiguous; an LLM is indifferent, a parser is not.
    pub fn render(&self) -> String {
        self.pairs
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(a, v)| format!("{a}: {v}"))
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// Parses a `attr: value; attr: value` line.
    ///
    /// Returns `None` when no pair can be extracted.
    pub fn parse(line: &str) -> Option<SerializedRecord> {
        let mut pairs = Vec::new();
        for chunk in line.split("; ") {
            let (attr, value) = chunk.split_once(':')?;
            pairs.push((attr.trim().to_string(), value.trim().to_string()));
        }
        if pairs.is_empty() {
            None
        } else {
            Some(SerializedRecord { pairs })
        }
    }
}

/// Clause templates, keyed by an attribute-name keyword. Order matters:
/// first matching keyword wins.
const CLAUSES: &[(&str, &str)] = &[
    ("after", "can be transformed to"),
    ("country", "belongs to the country"),
    ("timezone", "is in the timezone"),
    ("city", "is located in the city of"),
    ("addr", "is located at"),
    ("address", "is located at"),
    ("phone", "has phone number"),
    ("cuisine", "serves cuisine"),
    ("type", "serves cuisine"),
    ("manufacturer", "is manufactured by"),
    ("brand", "is branded"),
    ("modelno", "has model number"),
    ("model_code", "has model number"),
    ("description", "is described as"),
    ("price", "is priced at"),
    ("artist", "is performed by"),
    ("album", "appears on the album"),
    ("song", "is the song"),
    ("brewery", "is brewed by"),
    ("style", "is of style"),
    ("abv", "has alcohol content"),
    ("county", "is in the county"),
    ("state", "is in the state"),
    ("zip", "has zip code"),
    ("postal", "has postal code"),
    ("population", "has a population of"),
    ("measure_code", "reports the measure"),
    ("iso", "has the ISO code"),
    ("height", "has height"),
    ("position", "plays the position"),
    ("college", "attended the college"),
    ("gold", "won gold medals numbering"),
    ("silver", "won silver medals numbering"),
    ("bronze", "won bronze medals numbering"),
    ("total", "has a medal total of"),
    ("rank", "is ranked"),
    ("time", "has duration"),
    ("hours_per_week", "works weekly hours of"),
    ("education", "has education level"),
    ("workclass", "has work class"),
    ("occupation", "has occupation"),
    ("marital_status", "has marital status"),
    ("sex", "has sex"),
    ("income", "has income bracket"),
    ("age", "is aged"),
];

fn clause_for(attr: &str) -> Option<&'static str> {
    let key = attr.to_lowercase();
    CLAUSES
        .iter()
        .find(|(k, _)| key.contains(k))
        .map(|(_, c)| *c)
}

/// Converts a serialized record into one fluent sentence — the context data
/// parsing step's target representation.
///
/// The first non-empty value becomes the sentence subject; each remaining
/// pair becomes a clause ("Florence belongs to the country Italy and is in
/// the timezone Central European Time").
pub fn naturalize_record(rec: &SerializedRecord) -> String {
    let Some(subject) = rec.subject() else {
        return String::new();
    };
    let mut clauses = Vec::new();
    let mut subject_seen = false;
    for (attr, value) in &rec.pairs {
        if value.is_empty() {
            continue;
        }
        if !subject_seen && value == subject {
            subject_seen = true;
            continue;
        }
        let clause = clause_for(attr)
            .map(|c| format!("{c} {value}"))
            .unwrap_or_else(|| format!("has {attr} {value}"));
        clauses.push(clause);
    }
    if clauses.is_empty() {
        format!("{subject}.")
    } else {
        format!("{subject} {}.", clauses.join(" and "))
    }
}

/// Parses a sentence produced by [`naturalize_record`] back into pairs.
///
/// The subject is returned under the pseudo-attribute `"@subject"`; clause
/// attributes are recovered from their templates. Unknown clauses fall back
/// to the generic `has {attr} {value}` pattern.
pub fn parse_natural_sentence(sentence: &str) -> Option<SerializedRecord> {
    let text = sentence.trim().trim_end_matches('.');
    if text.is_empty() {
        return None;
    }
    // Find the earliest clause-template occurrence to split the subject off.
    let mut first_clause = None;
    for (_, template) in CLAUSES {
        if let Some(pos) = text.find(&format!(" {template} ")) {
            if first_clause.is_none_or(|(p, _)| pos < p) {
                first_clause = Some((pos, *template));
            }
        }
    }
    if let Some(pos) = text.find(" has ") {
        if first_clause.is_none_or(|(p, _)| pos < p) {
            first_clause = Some((pos, "has"));
        }
    }
    let Some((split, _)) = first_clause else {
        return Some(SerializedRecord::new(vec![(
            "@subject".to_string(),
            text.to_string(),
        )]));
    };
    let subject = text[..split].trim().to_string();
    let mut pairs = vec![("@subject".to_string(), subject)];
    for clause in text[split..].split(" and ") {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let mut matched = false;
        for (attr, template) in CLAUSES {
            if let Some(value) = clause.strip_prefix(template) {
                pairs.push(((*attr).to_string(), value.trim().to_string()));
                matched = true;
                break;
            }
        }
        if !matched {
            if let Some(rest) = clause.strip_prefix("has ") {
                if let Some((attr, value)) = rest.split_once(' ') {
                    pairs.push((attr.to_string(), value.trim().to_string()));
                }
            }
        }
    }
    Some(SerializedRecord::new(pairs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn city_record() -> SerializedRecord {
        SerializedRecord::new(vec![
            ("city".into(), "Florence".into()),
            ("country".into(), "Italy".into()),
            ("timezone".into(), "Central European Time".into()),
        ])
    }

    #[test]
    fn render_parse_roundtrip() {
        let r = city_record();
        let s = r.render();
        assert_eq!(
            s,
            "city: Florence; country: Italy; timezone: Central European Time"
        );
        assert_eq!(SerializedRecord::parse(&s), Some(r));
    }

    #[test]
    fn render_skips_empty() {
        let r = SerializedRecord::new(vec![("a".into(), "x".into()), ("b".into(), String::new())]);
        assert_eq!(r.render(), "a: x");
    }

    #[test]
    fn get_and_subject() {
        let r = city_record();
        assert_eq!(r.get("country"), Some("Italy"));
        assert_eq!(r.get("COUNTRY"), Some("Italy"));
        assert_eq!(r.get("nope"), None);
        assert_eq!(r.subject(), Some("Florence"));
    }

    #[test]
    fn naturalize_city() {
        let text = naturalize_record(&city_record());
        assert_eq!(
            text,
            "Florence belongs to the country Italy and is in the timezone Central European Time."
        );
    }

    #[test]
    fn naturalize_parse_roundtrip_values() {
        let r = city_record();
        let text = naturalize_record(&r);
        let back = parse_natural_sentence(&text).unwrap();
        assert_eq!(back.get("@subject"), Some("Florence"));
        assert_eq!(back.get("country"), Some("Italy"));
        assert_eq!(back.get("timezone"), Some("Central European Time"));
    }

    #[test]
    fn naturalize_restaurant_roundtrip() {
        let r = SerializedRecord::new(vec![
            ("name".into(), "Ruth's Chris Steak House".into()),
            ("addr".into(), "224 S. Beverly Dr.".into()),
            ("phone".into(), "310/859-8744".into()),
            ("type".into(), "steakhouses".into()),
        ]);
        let text = naturalize_record(&r);
        let back = parse_natural_sentence(&text).unwrap();
        assert_eq!(back.get("@subject"), Some("Ruth's Chris Steak House"));
        assert_eq!(back.get("addr"), Some("224 S. Beverly Dr."));
        assert_eq!(back.get("phone"), Some("310/859-8744"));
    }

    #[test]
    fn naturalize_generic_attr() {
        let r = SerializedRecord::new(vec![
            ("name".into(), "Widget".into()),
            ("color".into(), "blue".into()),
        ]);
        let text = naturalize_record(&r);
        assert!(text.contains("has color blue"));
        let back = parse_natural_sentence(&text).unwrap();
        assert_eq!(back.get("color"), Some("blue"));
    }

    #[test]
    fn naturalize_empty() {
        assert_eq!(naturalize_record(&SerializedRecord::default()), "");
        assert!(parse_natural_sentence("").is_none());
    }

    #[test]
    fn parse_subject_only_sentence() {
        let back = parse_natural_sentence("Copenhagen.").unwrap();
        assert_eq!(back.get("@subject"), Some("Copenhagen"));
        assert_eq!(back.pairs.len(), 1);
    }

    #[test]
    fn parse_record_line_rejects_garbage() {
        assert!(SerializedRecord::parse("no pairs here").is_none());
    }
}
