//! FM-baseline prompts (Narayan et al., "Can foundation models wrangle your
//! data?").
//!
//! FM drives the same LLM with few-shot demonstration prompts: serialized
//! records plus a short question, demonstrations chosen manually or at
//! random. These renderers produce that style; parsing lives here too so
//! the simulated model can answer them (as [`PromptForm::FewShot`]
//! requests with [`ContextKind::Serialized`] context).

use super::cloze::{AnswerPayload, AnswerRequest, ContextKind, PromptForm};
use super::record::SerializedRecord;
use super::TaskKind;

/// Renders an FM imputation prompt: demonstration blocks of
/// `record → What is the {attr}? {answer}` followed by the query record.
pub fn render_fm_imputation(
    demonstrations: &[(SerializedRecord, String)],
    record: &SerializedRecord,
    attr: &str,
) -> String {
    let mut out = String::new();
    for (rec, answer) in demonstrations {
        out.push_str(&format!(
            "{}\nWhat is the {attr}? {answer}\n\n",
            rec.render()
        ));
    }
    out.push_str(&format!("{}\nWhat is the {attr}?", record.render()));
    out
}

/// Renders an FM entity-resolution prompt.
pub fn render_fm_entity_resolution(
    demonstrations: &[(SerializedRecord, SerializedRecord, bool)],
    a: &SerializedRecord,
    b: &SerializedRecord,
) -> String {
    let mut out = String::new();
    for (da, db, label) in demonstrations {
        out.push_str(&format!(
            "Entity A: {}\nEntity B: {}\nAre Entity A and Entity B the same? {}\n\n",
            da.render(),
            db.render(),
            if *label { "Yes" } else { "No" }
        ));
    }
    out.push_str(&format!(
        "Entity A: {}\nEntity B: {}\nAre Entity A and Entity B the same?",
        a.render(),
        b.render()
    ));
    out
}

/// Renders an FM error-detection prompt.
pub fn render_fm_error_detection(
    demonstrations: &[(String, String, bool)],
    attr: &str,
    value: &str,
) -> String {
    let mut out = String::new();
    for (da, dv, is_err) in demonstrations {
        out.push_str(&format!(
            "{da}: {dv}\nIs there an error in {da}? {}\n\n",
            if *is_err { "Yes" } else { "No" }
        ));
    }
    out.push_str(&format!("{attr}: {value}\nIs there an error in {attr}?"));
    out
}

/// Renders an FM transformation prompt: `in to out` example lines plus the
/// query.
pub fn render_fm_transformation(examples: &[(String, String)], input: &str) -> String {
    let mut out = String::from("Data transformation:\n");
    for (i, o) in examples {
        out.push_str(&format!("{i} to {o}\n"));
    }
    out.push_str(&format!("{input} to ?"));
    out
}

/// Parses any FM-style prompt into an [`AnswerRequest`].
pub fn parse_fm(prompt: &str) -> Option<AnswerRequest> {
    let trimmed = prompt.trim_end();

    // Imputation: final line is "What is the {attr}?" with no answer.
    if let Some(attr) = trimmed
        .lines()
        .next_back()
        .and_then(|l| l.strip_prefix("What is the "))
        .and_then(|l| l.strip_suffix('?'))
    {
        let lines: Vec<&str> = trimmed.lines().collect();
        let record = SerializedRecord::parse(lines.get(lines.len().wrapping_sub(2))?)?;
        // Demonstration blocks pair a record line with its answer line
        // ("What is the city? new york"); fold the answer back into the
        // record so the context carries complete labelled examples.
        let mut context_lines: Vec<String> = Vec::new();
        for l in &lines[..lines.len().saturating_sub(2)] {
            if l.is_empty() {
                continue;
            }
            if let Some(rest) = l.strip_prefix("What is the ") {
                if let Some((demo_attr, answer)) = rest.split_once("? ") {
                    if let Some(prev) = context_lines.last_mut() {
                        prev.push_str(&format!("; {demo_attr}: {answer}"));
                        continue;
                    }
                }
            }
            context_lines.push(l.to_string());
        }
        let subject = record.subject().unwrap_or("").to_string();
        return Some(AnswerRequest {
            task: TaskKind::Imputation,
            form: PromptForm::FewShot,
            context_kind: if context_lines.is_empty() {
                ContextKind::Empty
            } else {
                ContextKind::Serialized
            },
            context_lines,
            payload: AnswerPayload::Imputation {
                subject,
                attr: attr.to_string(),
                record,
            },
        });
    }

    // Entity resolution: ends with the unanswered question.
    if trimmed.ends_with("Are Entity A and Entity B the same?") {
        let lines: Vec<&str> = trimmed.lines().collect();
        let n = lines.len();
        let a = lines.get(n - 3)?.strip_prefix("Entity A: ")?.to_string();
        let b = lines.get(n - 2)?.strip_prefix("Entity B: ")?.to_string();
        let context_lines: Vec<String> = lines[..n - 3]
            .iter()
            .map(|l| l.to_string())
            .filter(|l| !l.is_empty())
            .collect();
        return Some(AnswerRequest {
            task: TaskKind::EntityResolution,
            form: PromptForm::FewShot,
            context_kind: if context_lines.is_empty() {
                ContextKind::Empty
            } else {
                ContextKind::Serialized
            },
            context_lines,
            payload: AnswerPayload::EntityResolution { a, b },
        });
    }

    // Error detection: ends with "Is there an error in {attr}?".
    if let Some(attr) = trimmed
        .lines()
        .next_back()
        .and_then(|l| l.strip_prefix("Is there an error in "))
        .and_then(|l| l.strip_suffix('?'))
    {
        let lines: Vec<&str> = trimmed.lines().collect();
        let n = lines.len();
        let value = lines
            .get(n - 2)?
            .strip_prefix(&format!("{attr}: "))?
            .to_string();
        let context_lines: Vec<String> = lines[..n - 2]
            .iter()
            .map(|l| l.to_string())
            .filter(|l| !l.is_empty())
            .collect();
        return Some(AnswerRequest {
            task: TaskKind::ErrorDetection,
            form: PromptForm::FewShot,
            context_kind: if context_lines.is_empty() {
                ContextKind::Empty
            } else {
                ContextKind::Serialized
            },
            context_lines,
            payload: AnswerPayload::ErrorDetection {
                attr: attr.to_string(),
                value,
            },
        });
    }

    // Transformation: "Data transformation:" header, "X to ?" tail.
    if trimmed.starts_with("Data transformation:") && trimmed.ends_with(" to ?") {
        let mut examples = Vec::new();
        let mut input = String::new();
        for l in trimmed.lines().skip(1) {
            if let Some(i) = l.strip_suffix(" to ?") {
                input = i.to_string();
            } else if let Some((i, o)) = l.rsplit_once(" to ") {
                examples.push((i.to_string(), o.to_string()));
            }
        }
        if input.is_empty() {
            return None;
        }
        return Some(AnswerRequest {
            task: TaskKind::Transformation,
            form: PromptForm::FewShot,
            context_kind: if examples.is_empty() {
                ContextKind::Empty
            } else {
                ContextKind::Serialized
            },
            context_lines: Vec::new(),
            payload: AnswerPayload::Transformation { examples, input },
        });
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pairs: &[(&str, &str)]) -> SerializedRecord {
        SerializedRecord::new(
            pairs
                .iter()
                .map(|(a, v)| (a.to_string(), v.to_string()))
                .collect(),
        )
    }

    #[test]
    fn fm_imputation_roundtrip() {
        let demos = vec![(
            rec(&[("name", "oceana"), ("addr", "55 e. 54th st.")]),
            "new york".to_string(),
        )];
        let q = rec(&[("name", "ruth's chris"), ("addr", "224 s. beverly dr.")]);
        let p = render_fm_imputation(&demos, &q, "city");
        let req = parse_fm(&p).unwrap();
        assert_eq!(req.form, PromptForm::FewShot);
        match req.payload {
            AnswerPayload::Imputation { subject, attr, .. } => {
                assert_eq!(attr, "city");
                assert_eq!(subject, "ruth's chris");
            }
            p => panic!("wrong payload {p:?}"),
        }
        assert!(!req.context_lines.is_empty());
    }

    #[test]
    fn fm_er_roundtrip() {
        let p = render_fm_entity_resolution(
            &[(rec(&[("title", "x")]), rec(&[("title", "y")]), false)],
            &rec(&[("title", "Punch 4000")]),
            &rec(&[("title", "P. 4000")]),
        );
        let req = parse_fm(&p).unwrap();
        match req.payload {
            AnswerPayload::EntityResolution { a, b } => {
                assert!(a.contains("Punch 4000"));
                assert!(b.contains("P. 4000"));
            }
            p => panic!("wrong payload {p:?}"),
        }
    }

    #[test]
    fn fm_error_roundtrip() {
        let p = render_fm_error_detection(
            &[("county".to_string(), "mxrshxll".to_string(), true)],
            "city",
            "sheffxeld",
        );
        let req = parse_fm(&p).unwrap();
        match req.payload {
            AnswerPayload::ErrorDetection { attr, value } => {
                assert_eq!(attr, "city");
                assert_eq!(value, "sheffxeld");
            }
            p => panic!("wrong payload {p:?}"),
        }
    }

    #[test]
    fn fm_transformation_roundtrip() {
        let p = render_fm_transformation(
            &[("20210315".to_string(), "Mar 15 2021".to_string())],
            "20201103",
        );
        let req = parse_fm(&p).unwrap();
        match req.payload {
            AnswerPayload::Transformation { examples, input } => {
                assert_eq!(examples.len(), 1);
                assert_eq!(input, "20201103");
            }
            p => panic!("wrong payload {p:?}"),
        }
    }

    #[test]
    fn rejects_non_fm() {
        assert!(parse_fm("The task is to impute the missing value.").is_none());
    }
}
