//! Cloze questions (`p_as`) and their parsing into answer requests.
//!
//! The target-prompt-construction step rewrites a claim into a cloze
//! question; the model then completes the blank. This module renders the
//! canonical cloze for every task and parses any final-answer prompt —
//! cloze or the ablation's "simple concatenation" — into a structured
//! [`AnswerRequest`] the answering skill consumes.

use super::prompts::Claim;
use super::record::{naturalize_record, parse_natural_sentence, SerializedRecord};
use super::TaskKind;

/// The shape of a final-answer prompt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromptForm {
    /// A cloze question produced by target prompt construction.
    Cloze,
    /// The ablation's direct concatenation of task, context and query.
    Simple,
    /// A few-shot demonstration prompt (the FM baseline's style).
    FewShot,
}

/// How the context portion of a prompt is represented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextKind {
    /// Fluent natural-language sentences (after context data parsing).
    Natural,
    /// `attr: value; ...` pair lines (serialization only).
    Serialized,
    /// Anything else (raw tabular dumps).
    Tabular,
    /// No context at all.
    Empty,
}

/// The task-specific payload of an answer prompt.
#[derive(Debug, Clone, PartialEq)]
pub enum AnswerPayload {
    /// Fill the missing `attr` of `subject`.
    Imputation {
        /// The record's primary-key value.
        subject: String,
        /// The attribute to fill.
        attr: String,
        /// The known attributes of the target record.
        record: SerializedRecord,
    },
    /// Transform `input` following `examples`.
    Transformation {
        /// Demonstration pairs.
        examples: Vec<(String, String)>,
        /// The value to transform.
        input: String,
    },
    /// Judge whether `value` is a valid `attr`.
    ErrorDetection {
        /// The attribute name.
        attr: String,
        /// The value under judgement.
        value: String,
    },
    /// Judge whether two entity descriptions co-refer.
    EntityResolution {
        /// Description of entity A.
        a: String,
        /// Description of entity B.
        b: String,
    },
    /// Answer a question over the context.
    TableQa {
        /// The question.
        question: String,
    },
    /// Judge whether two columns are joinable.
    Join {
        /// Qualified left column name.
        left: String,
        /// Qualified right column name.
        right: String,
        /// Sampled left values.
        left_values: Vec<String>,
        /// Sampled right values.
        right_values: Vec<String>,
    },
    /// Extract `attr` from the document in the context.
    Extraction {
        /// The attribute to extract.
        attr: String,
    },
}

/// A fully parsed final-answer prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerRequest {
    /// The task being solved.
    pub task: TaskKind,
    /// The prompt's form.
    pub form: PromptForm,
    /// The context representation.
    pub context_kind: ContextKind,
    /// The context lines (without task/payload lines).
    pub context_lines: Vec<String>,
    /// The task payload.
    pub payload: AnswerPayload,
}

/// Renders the canonical cloze question for `claim`.
///
/// The claim's `query` must use the task's query encoding (see
/// `claim_query_*` helpers below); `claim.context` holds the parsed context
/// `C'`, one sentence per line.
pub fn render_cloze(claim: &Claim) -> String {
    let context = claim.context.trim();
    let mut lines: Vec<String> = Vec::new();
    match claim.task {
        TaskKind::Imputation => {
            lines.push("The task is to impute the missing value.".to_string());
            push_context(&mut lines, context);
            let (subject, attr, record) = split_imputation_query(&claim.query);
            let known = SerializedRecord::new(
                record
                    .pairs
                    .iter()
                    .filter(|(a, v)| !a.eq_ignore_ascii_case(&attr) && v != "?")
                    .cloned()
                    .collect(),
            );
            if known.pairs.len() > 1 {
                lines.push(naturalize_record(&known));
            }
            lines.push(format!("The {attr} of {subject} is __."));
        }
        TaskKind::Transformation => {
            push_context(&mut lines, context);
            let input = claim.query.trim_end_matches(": ?").trim_end_matches(":?");
            lines.push(format!("{input} can be transformed to __."));
        }
        TaskKind::ErrorDetection => {
            lines.push("The task is to detect data errors.".to_string());
            push_context(&mut lines, context);
            let (attr, value) = claim
                .query
                .trim_end_matches('?')
                .split_once(':')
                .map(|(a, v)| (a.trim().to_string(), v.trim().to_string()))
                .unwrap_or_else(|| ("value".to_string(), claim.query.clone()));
            lines.push(format!(
                "Is there an error in the {attr} value \"{value}\"? Yes or No: __."
            ));
        }
        TaskKind::EntityResolution => {
            lines.push("The task is to resolve entities.".to_string());
            push_context(&mut lines, context);
            let (a, b) = split_er_query(&claim.query);
            lines.push(format!("Entity A is {a}."));
            lines.push(format!("Entity B is {b}."));
            lines.push("Are entity A and entity B the same? Yes or No: __.".to_string());
        }
        TaskKind::TableQa => {
            lines.push("The task is to answer a question from the context.".to_string());
            push_context(&mut lines, context);
            lines.push(format!("Question: {}", claim.query));
            lines.push("The answer is __.".to_string());
        }
        TaskKind::JoinDiscovery => {
            lines.push("The task is to discover joinable columns.".to_string());
            push_context(&mut lines, context);
            lines.push("Are the two columns joinable? Yes or No: __.".to_string());
        }
        TaskKind::Extraction => {
            lines.push("The task is to extract information.".to_string());
            push_context(&mut lines, context);
            lines.push(format!("The {} is __.", claim.query));
        }
    }
    lines.join("\n")
}

/// Renders the ablation's simple target prompt: direct concatenation with no
/// cloze rewriting.
pub fn render_simple(claim: &Claim) -> String {
    format!(
        "Task: {}. Context: [{}]. Target: [{}]. Answer:",
        claim.task.description(),
        claim.context.replace('\n', " | "),
        claim.query
    )
}

fn push_context(lines: &mut Vec<String>, context: &str) {
    for l in context.lines() {
        let l = l.trim();
        if !l.is_empty() {
            lines.push(l.to_string());
        }
    }
}

/// Encodes an imputation query: the target record with `attr: ?`.
pub fn claim_query_imputation(record: &SerializedRecord, attr: &str) -> String {
    let mut pairs: Vec<(String, String)> = record
        .pairs
        .iter()
        .filter(|(a, v)| !a.eq_ignore_ascii_case(attr) && !v.is_empty())
        .cloned()
        .collect();
    pairs.push((attr.to_string(), "?".to_string()));
    SerializedRecord::new(pairs).render()
}

/// Encodes an entity-resolution query from two descriptions.
pub fn claim_query_er(a: &str, b: &str) -> String {
    format!("Entity A is [{a}]; Entity B is [{b}]; are A and B the same?")
}

fn split_imputation_query(query: &str) -> (String, String, SerializedRecord) {
    let record = SerializedRecord::parse(query).unwrap_or_default();
    let attr = record
        .pairs
        .iter()
        .find(|(_, v)| v == "?")
        .map(|(a, _)| a.clone())
        .unwrap_or_else(|| "value".to_string());
    let subject = record
        .pairs
        .iter()
        .find(|(_, v)| v != "?" && !v.is_empty())
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| query.to_string());
    (subject, attr, record)
}

fn split_er_query(query: &str) -> (String, String) {
    let a = super::bracketed_after(query, "Entity A is")
        .unwrap_or("")
        .to_string();
    let rest = query
        .split_once("Entity B is")
        .map(|(_, r)| r)
        .unwrap_or("");
    let b = super::bracketed_after(&format!("x{rest}"), "x")
        .unwrap_or("")
        .to_string();
    (a, b)
}

/// Classifies context lines into a [`ContextKind`].
pub fn classify_context(lines: &[String]) -> ContextKind {
    if lines.is_empty() {
        return ContextKind::Empty;
    }
    let mut natural = 0usize;
    let mut serialized = 0usize;
    for l in lines {
        if SerializedRecord::parse(l).is_some_and(|r| r.pairs.len() >= 2) {
            serialized += 1;
        } else if parse_natural_sentence(l).is_some_and(|r| r.pairs.len() >= 2) {
            natural += 1;
        }
    }
    if natural * 2 >= lines.len() {
        ContextKind::Natural
    } else if serialized * 2 >= lines.len() {
        ContextKind::Serialized
    } else {
        ContextKind::Tabular
    }
}

/// Extracts the two `Column "name" contains v1; v2.` lines from a set of
/// lines, returning the join payload and the remaining context lines.
fn parse_join_lines(lines: &[String]) -> Option<(AnswerPayload, Vec<String>)> {
    let mut columns: Vec<(String, Vec<String>)> = Vec::new();
    let mut context_lines = Vec::new();
    for l in lines {
        if let Some(rest) = l.trim().strip_prefix("Column \"") {
            if let Some((name, values)) = rest.split_once("\" contains ") {
                let vals = values
                    .trim_end_matches('.')
                    .split("; ")
                    .map(|v| v.trim().to_string())
                    .filter(|v| !v.is_empty())
                    .collect();
                columns.push((name.to_string(), vals));
                continue;
            }
        }
        context_lines.push(l.clone());
    }
    if columns.len() < 2 {
        return None;
    }
    let (right, right_values) = columns.pop()?;
    let (left, left_values) = columns.pop()?;
    Some((
        AnswerPayload::Join {
            left,
            right,
            left_values,
            right_values,
        },
        context_lines,
    ))
}

/// Parses any final-answer prompt (cloze or simple) into an
/// [`AnswerRequest`]. Returns `None` when the prompt is not a final-answer
/// prompt.
pub fn parse_answer_request(prompt: &str) -> Option<AnswerRequest> {
    let lines: Vec<String> = prompt.lines().map(|l| l.trim().to_string()).collect();
    let last = lines.last()?;

    // Simple form: single-line "Task: ... Answer:".
    if prompt.starts_with("Task: ") && prompt.trim_end().ends_with("Answer:") {
        return parse_simple(prompt);
    }

    if !last.contains("__") {
        return None;
    }
    let first = lines.first()?.as_str();
    let body = &lines[..lines.len() - 1];

    if first == "The task is to impute the missing value." {
        let tail = last.strip_prefix("The ")?.strip_suffix(" is __.")?;
        let (attr, subject) = tail.split_once(" of ")?;
        let (record, context_end) = match body.len() {
            0 | 1 => (SerializedRecord::default(), body.len()),
            n => {
                let candidate = parse_natural_sentence(&body[n - 1]);
                match candidate {
                    Some(rec) if rec.get("@subject") == Some(subject) => (rec, n - 1),
                    _ => (SerializedRecord::default(), n),
                }
            }
        };
        let context_lines: Vec<String> = body[1..context_end].to_vec();
        return Some(AnswerRequest {
            task: TaskKind::Imputation,
            form: PromptForm::Cloze,
            context_kind: classify_context(&context_lines),
            context_lines,
            payload: AnswerPayload::Imputation {
                subject: subject.to_string(),
                attr: attr.to_string(),
                record,
            },
        });
    }

    if last.ends_with("can be transformed to __.") {
        let mut examples = Vec::new();
        let mut natural = false;
        for l in body {
            if let Some((i, o)) = l
                .trim_end_matches('.')
                .split_once(" can be transformed to ")
            {
                examples.push((i.trim().to_string(), o.trim().to_string()));
                natural = true;
            } else if let Some(rec) = SerializedRecord::parse(l) {
                // Unparsed serialized examples: "before: X; after: Y".
                if let (Some(i), Some(o)) = (rec.get("before"), rec.get("after")) {
                    examples.push((i.to_string(), o.to_string()));
                }
            }
        }
        let input = last
            .strip_suffix(" can be transformed to __.")?
            .trim()
            .to_string();
        return Some(AnswerRequest {
            task: TaskKind::Transformation,
            form: PromptForm::Cloze,
            context_kind: if examples.is_empty() {
                ContextKind::Empty
            } else if natural {
                ContextKind::Natural
            } else {
                ContextKind::Serialized
            },
            context_lines: Vec::new(),
            payload: AnswerPayload::Transformation { examples, input },
        });
    }

    if first == "The task is to detect data errors." {
        let q = last.strip_prefix("Is there an error in the ")?;
        let (attr, rest) = q.split_once(" value \"")?;
        let value = rest.split_once('"')?.0;
        let context_lines: Vec<String> = body[1..].to_vec();
        return Some(AnswerRequest {
            task: TaskKind::ErrorDetection,
            form: PromptForm::Cloze,
            context_kind: classify_context(&context_lines),
            context_lines,
            payload: AnswerPayload::ErrorDetection {
                attr: attr.to_string(),
                value: value.to_string(),
            },
        });
    }

    if first == "The task is to resolve entities." {
        let a_line = body.iter().rev().find(|l| l.starts_with("Entity A is "))?;
        let b_line = body.iter().rev().find(|l| l.starts_with("Entity B is "))?;
        let a = a_line
            .strip_prefix("Entity A is ")?
            .trim_end_matches('.')
            .to_string();
        let b = b_line
            .strip_prefix("Entity B is ")?
            .trim_end_matches('.')
            .to_string();
        let context_lines: Vec<String> = body[1..]
            .iter()
            .filter(|l| !l.starts_with("Entity A is ") && !l.starts_with("Entity B is "))
            .cloned()
            .collect();
        return Some(AnswerRequest {
            task: TaskKind::EntityResolution,
            form: PromptForm::Cloze,
            context_kind: classify_context(&context_lines),
            context_lines,
            payload: AnswerPayload::EntityResolution { a, b },
        });
    }

    if first == "The task is to answer a question from the context." {
        let question = body
            .iter()
            .rev()
            .find_map(|l| l.strip_prefix("Question: "))?
            .to_string();
        let context_lines: Vec<String> = body[1..]
            .iter()
            .filter(|l| !l.starts_with("Question: "))
            .cloned()
            .collect();
        return Some(AnswerRequest {
            task: TaskKind::TableQa,
            form: PromptForm::Cloze,
            context_kind: classify_context(&context_lines),
            context_lines,
            payload: AnswerPayload::TableQa { question },
        });
    }

    if first == "The task is to discover joinable columns." {
        let (payload, context_lines) = parse_join_lines(&body[1..])?;
        return Some(AnswerRequest {
            task: TaskKind::JoinDiscovery,
            form: PromptForm::Cloze,
            context_kind: classify_context(&context_lines),
            context_lines,
            payload,
        });
    }

    if first == "The task is to extract information." {
        let attr = last.strip_prefix("The ")?.strip_suffix(" is __.")?;
        let context_lines: Vec<String> = body[1..].to_vec();
        return Some(AnswerRequest {
            task: TaskKind::Extraction,
            form: PromptForm::Cloze,
            context_kind: if context_lines.is_empty() {
                ContextKind::Empty
            } else {
                ContextKind::Tabular
            },
            context_lines,
            payload: AnswerPayload::Extraction {
                attr: attr.to_string(),
            },
        });
    }

    None
}

fn parse_simple(prompt: &str) -> Option<AnswerRequest> {
    let task_desc = prompt.strip_prefix("Task: ")?.split('.').next()?;
    let task = TaskKind::from_description(task_desc)?;
    let context = super::bracketed_after(prompt, "Context:")?;
    let query = super::bracketed_after(prompt, "Target:")?;
    let context_lines: Vec<String> = context
        .split(" | ")
        .map(|s| s.trim().to_string())
        .filter(|s| s.len() > 1)
        .collect();
    let payload = match task {
        TaskKind::Imputation => {
            let (subject, attr, record) = split_imputation_query(query);
            AnswerPayload::Imputation {
                subject,
                attr,
                record,
            }
        }
        TaskKind::Transformation => {
            let mut examples = Vec::new();
            for l in &context_lines {
                if let Some((i, o)) = l
                    .trim_end_matches('.')
                    .split_once(" can be transformed to ")
                {
                    examples.push((i.trim().to_string(), o.trim().to_string()));
                } else if let Some(rec) = SerializedRecord::parse(l) {
                    if let (Some(i), Some(o)) = (rec.get("before"), rec.get("after")) {
                        examples.push((i.to_string(), o.to_string()));
                    }
                }
            }
            AnswerPayload::Transformation {
                examples,
                input: query.trim_end_matches(": ?").to_string(),
            }
        }
        TaskKind::ErrorDetection => {
            let (attr, value) = query
                .trim_end_matches('?')
                .split_once(':')
                .map(|(a, v)| (a.trim().to_string(), v.trim().to_string()))
                .unwrap_or(("value".to_string(), query.to_string()));
            AnswerPayload::ErrorDetection { attr, value }
        }
        TaskKind::EntityResolution => {
            let (a, b) = split_er_query(query);
            AnswerPayload::EntityResolution { a, b }
        }
        TaskKind::TableQa => AnswerPayload::TableQa {
            question: query.to_string(),
        },
        TaskKind::JoinDiscovery => {
            let (payload, _) = parse_join_lines(&context_lines)?;
            payload
        }
        TaskKind::Extraction => AnswerPayload::Extraction {
            attr: query.to_string(),
        },
    };
    Some(AnswerRequest {
        task,
        form: PromptForm::Simple,
        context_kind: classify_context(&context_lines),
        context_lines,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imputation_claim() -> Claim {
        Claim {
            task: TaskKind::Imputation,
            context: "Florence belongs to the country Italy and is in the timezone Central \
                      European Time."
                .to_string(),
            query: claim_query_imputation(
                &SerializedRecord::new(vec![
                    ("city".into(), "Copenhagen".into()),
                    ("country".into(), "Denmark".into()),
                ]),
                "timezone",
            ),
        }
    }

    #[test]
    fn imputation_cloze_roundtrip() {
        let cloze = render_cloze(&imputation_claim());
        assert!(cloze.ends_with("The timezone of Copenhagen is __."));
        let req = parse_answer_request(&cloze).unwrap();
        assert_eq!(req.task, TaskKind::Imputation);
        assert_eq!(req.form, PromptForm::Cloze);
        assert_eq!(req.context_kind, ContextKind::Natural);
        match req.payload {
            AnswerPayload::Imputation {
                subject,
                attr,
                record,
            } => {
                assert_eq!(subject, "Copenhagen");
                assert_eq!(attr, "timezone");
                assert_eq!(record.get("country"), Some("Denmark"));
            }
            p => panic!("wrong payload {p:?}"),
        }
        assert_eq!(req.context_lines.len(), 1);
    }

    #[test]
    fn transformation_cloze_roundtrip() {
        let claim = Claim {
            task: TaskKind::Transformation,
            context: "20000101 can be transformed to 2000-01-01.\n19991231 can be transformed \
                      to 1999-12-31."
                .to_string(),
            query: "20210315: ?".to_string(),
        };
        let cloze = render_cloze(&claim);
        let req = parse_answer_request(&cloze).unwrap();
        match req.payload {
            AnswerPayload::Transformation { examples, input } => {
                assert_eq!(examples.len(), 2);
                assert_eq!(
                    examples[0],
                    ("20000101".to_string(), "2000-01-01".to_string())
                );
                assert_eq!(input, "20210315");
            }
            p => panic!("wrong payload {p:?}"),
        }
    }

    #[test]
    fn error_detection_cloze_roundtrip() {
        let claim = Claim {
            task: TaskKind::ErrorDetection,
            context: "Marshall is a valid county.".to_string(),
            query: "city: sheffxeld?".to_string(),
        };
        let cloze = render_cloze(&claim);
        let req = parse_answer_request(&cloze).unwrap();
        match req.payload {
            AnswerPayload::ErrorDetection { attr, value } => {
                assert_eq!(attr, "city");
                assert_eq!(value, "sheffxeld");
            }
            p => panic!("wrong payload {p:?}"),
        }
    }

    #[test]
    fn er_cloze_roundtrip() {
        let claim = Claim {
            task: TaskKind::EntityResolution,
            context: String::new(),
            query: claim_query_er(
                "Punch Design 4000 priced at $199.99",
                "P. Design 4000 priced at $199.99",
            ),
        };
        let cloze = render_cloze(&claim);
        let req = parse_answer_request(&cloze).unwrap();
        match req.payload {
            AnswerPayload::EntityResolution { a, b } => {
                assert!(a.contains("Punch Design 4000"));
                assert!(b.starts_with("P. Design"));
            }
            p => panic!("wrong payload {p:?}"),
        }
    }

    #[test]
    fn tableqa_cloze_roundtrip() {
        let claim = Claim {
            task: TaskKind::TableQa,
            context: "Australia won gold medals numbering 2.\nSwitzerland won gold medals \
                      numbering 0."
                .to_string(),
            query: "how many gold medals did Australia and Switzerland total?".to_string(),
        };
        let cloze = render_cloze(&claim);
        let req = parse_answer_request(&cloze).unwrap();
        match req.payload {
            AnswerPayload::TableQa { question } => {
                assert!(question.starts_with("how many gold"));
            }
            p => panic!("wrong payload {p:?}"),
        }
        assert_eq!(req.context_lines.len(), 2);
    }

    #[test]
    fn join_cloze_roundtrip() {
        let claim = Claim {
            task: TaskKind::JoinDiscovery,
            context: "Germany is abbreviated as GER.\nColumn \"fifa.country_abrv\" contains \
                      GER; ITA.\nColumn \"geo.ISO\" contains ALB; IND."
                .to_string(),
            query: "fifa.country_abrv VERSUS geo.ISO".to_string(),
        };
        let cloze = render_cloze(&claim);
        let req = parse_answer_request(&cloze).unwrap();
        match req.payload {
            AnswerPayload::Join {
                left,
                right,
                left_values,
                right_values,
            } => {
                assert_eq!(left, "fifa.country_abrv");
                assert_eq!(right, "geo.ISO");
                assert_eq!(left_values, vec!["GER", "ITA"]);
                assert_eq!(right_values, vec!["ALB", "IND"]);
            }
            p => panic!("wrong payload {p:?}"),
        }
        assert_eq!(req.context_lines.len(), 1);
    }

    #[test]
    fn extraction_cloze_roundtrip() {
        let claim = Claim {
            task: TaskKind::Extraction,
            context: "Kevin Durant is an American professional basketball player.".to_string(),
            query: "player".to_string(),
        };
        let cloze = render_cloze(&claim);
        let req = parse_answer_request(&cloze).unwrap();
        match req.payload {
            AnswerPayload::Extraction { attr } => assert_eq!(attr, "player"),
            p => panic!("wrong payload {p:?}"),
        }
    }

    #[test]
    fn simple_form_roundtrip() {
        let claim = imputation_claim();
        let simple = render_simple(&claim);
        let req = parse_answer_request(&simple).unwrap();
        assert_eq!(req.form, PromptForm::Simple);
        match req.payload {
            AnswerPayload::Imputation { subject, attr, .. } => {
                assert_eq!(subject, "Copenhagen");
                assert_eq!(attr, "timezone");
            }
            p => panic!("wrong payload {p:?}"),
        }
    }

    #[test]
    fn classify_context_kinds() {
        assert_eq!(classify_context(&[]), ContextKind::Empty);
        assert_eq!(
            classify_context(&["city: A; country: B".to_string()]),
            ContextKind::Serialized
        );
        assert_eq!(
            classify_context(&["A belongs to the country B.".to_string()]),
            ContextKind::Natural
        );
        assert_eq!(
            classify_context(&["| A | B | C |".to_string()]),
            ContextKind::Tabular
        );
    }

    #[test]
    fn non_answer_prompts_rejected() {
        assert!(parse_answer_request("What a lovely day").is_none());
        assert!(parse_answer_request("").is_none());
    }
}
