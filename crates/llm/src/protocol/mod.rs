//! The prompt protocol: every template the paper prints, as a
//! renderer/parser pair.
//!
//! The UniDM pipeline (and the FM baseline) *render* prompts; the simulated
//! model *parses* them back. Keeping both directions in one module — with
//! round-trip tests — is what lets a text-in/text-out interface stay honest:
//! the pipeline can only communicate through strings a real LLM could also
//! have received.
//!
//! | Paper object | Renderer | Parser |
//! |---|---|---|
//! | `p_rm` (meta-wise retrieval) | [`render_prm`] | [`parse_prm`] |
//! | `p_ri` (instance-wise retrieval) | [`render_pri`] | [`parse_pri`] |
//! | `p_dp` (context data parsing) | [`render_pdp`] | [`parse_pdp`] |
//! | `p_cq` (cloze-question generation) | [`render_pcq`] | [`parse_pcq`] |
//! | cloze questions / `p_as` | [`render_cloze`] | [`parse_answer_request`] |
//! | FM-style prompts | [`render_fm_imputation`] and friends | [`parse_fm`] |

mod cloze;
mod fm;
mod prompts;
mod record;

pub use cloze::{
    claim_query_er, claim_query_imputation, classify_context, parse_answer_request, render_cloze,
    render_simple, AnswerPayload, AnswerRequest, ContextKind, PromptForm,
};
pub use fm::{
    parse_fm, render_fm_entity_resolution, render_fm_error_detection, render_fm_imputation,
    render_fm_transformation,
};
pub use prompts::{
    parse_pcq, parse_pdp, parse_pri, parse_pri_response, parse_prm, render_pcq, render_pdp,
    render_pri, render_prm, Claim, PdpRequest, PriRequest, PrmRequest,
};
pub use record::{naturalize_record, parse_natural_sentence, SerializedRecord};

/// The data manipulation tasks the unified framework covers (Section 3 plus
/// the appendix extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Fill a missing attribute value.
    Imputation,
    /// Convert a value to another format by example.
    Transformation,
    /// Judge whether an attribute value is erroneous.
    ErrorDetection,
    /// Judge whether two records denote the same entity.
    EntityResolution,
    /// Answer a question over a table (appendix C).
    TableQa,
    /// Judge whether two columns are joinable (appendix D).
    JoinDiscovery,
    /// Extract an attribute from a semi-structured document (appendix E).
    Extraction,
}

impl TaskKind {
    /// Every task kind, in declaration order — the single source for
    /// exhaustive scans (description parsing, prompt-shape recognition).
    pub const ALL: [TaskKind; 7] = [
        TaskKind::Imputation,
        TaskKind::Transformation,
        TaskKind::ErrorDetection,
        TaskKind::EntityResolution,
        TaskKind::TableQa,
        TaskKind::JoinDiscovery,
        TaskKind::Extraction,
    ];

    /// The task description used inside prompts ("data imputation").
    pub fn description(&self) -> &'static str {
        match self {
            TaskKind::Imputation => "data imputation",
            TaskKind::Transformation => "data transformation",
            TaskKind::ErrorDetection => "error detection",
            TaskKind::EntityResolution => "entity resolution",
            TaskKind::TableQa => "table question answering",
            TaskKind::JoinDiscovery => "join discovery",
            TaskKind::Extraction => "information extraction",
        }
    }

    /// Parses a description back to the task kind.
    pub fn from_description(s: &str) -> Option<TaskKind> {
        let key = s.trim().to_lowercase();
        Self::ALL.into_iter().find(|t| t.description() == key)
    }
}

/// Extracts the text between the first `[` after `marker` and its matching
/// closing `]` (tolerating nested brackets in the payload).
pub(crate) fn bracketed_after<'a>(text: &'a str, marker: &str) -> Option<&'a str> {
    let start = text.find(marker)? + marker.len();
    let rest = &text[start..];
    let open = rest.find('[')?;
    let mut depth = 0usize;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[open + 1..open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_descriptions_roundtrip() {
        for t in [
            TaskKind::Imputation,
            TaskKind::Transformation,
            TaskKind::ErrorDetection,
            TaskKind::EntityResolution,
            TaskKind::TableQa,
            TaskKind::JoinDiscovery,
            TaskKind::Extraction,
        ] {
            assert_eq!(TaskKind::from_description(t.description()), Some(t));
        }
        assert_eq!(TaskKind::from_description("poetry"), None);
    }

    #[test]
    fn bracketed_extraction() {
        assert_eq!(
            bracketed_after("task is [data imputation].", "task is"),
            Some("data imputation")
        );
        assert_eq!(bracketed_after("x [a [b] c] y", "x"), Some("a [b] c"));
        assert_eq!(bracketed_after("no brackets", "no"), None);
    }
}
