//! The pipeline prompts: `p_rm`, `p_ri`, `p_dp`, `p_cq`.

use super::record::SerializedRecord;
use super::{bracketed_after, TaskKind};

/// A parsed meta-wise retrieval request (`p_rm`).
#[derive(Debug, Clone, PartialEq)]
pub struct PrmRequest {
    /// The task.
    pub task: TaskKind,
    /// The target query.
    pub query: String,
    /// The candidate attribute names.
    pub candidates: Vec<String>,
}

/// Renders `p_rm` (paper §4.2):
///
/// > The task is \[T\]. The target query is \[Q\]. The candidate attributes
/// > are \[s1, s2, ..., sn\]. Which attributes are helpful for the task and
/// > the query?
pub fn render_prm(task: TaskKind, query: &str, candidates: &[String]) -> String {
    format!(
        "The task is [{}]. The target query is [{}]. The candidate attributes are [{}]. \
         Which attributes are helpful for the task and the query?",
        task.description(),
        query,
        candidates.join(", ")
    )
}

/// Parses a `p_rm` prompt.
pub fn parse_prm(prompt: &str) -> Option<PrmRequest> {
    if !prompt.contains("Which attributes are helpful") {
        return None;
    }
    let task = TaskKind::from_description(bracketed_after(prompt, "The task is")?)?;
    let query = bracketed_after(prompt, "The target query is")?.to_string();
    let candidates = bracketed_after(prompt, "The candidate attributes are")?
        .split(", ")
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    Some(PrmRequest {
        task,
        query,
        candidates,
    })
}

/// A parsed instance-wise retrieval request (`p_ri`).
#[derive(Debug, Clone, PartialEq)]
pub struct PriRequest {
    /// The task.
    pub task: TaskKind,
    /// The target query.
    pub query: String,
    /// The candidate instances, projected on the task-relevant attributes.
    pub instances: Vec<SerializedRecord>,
}

/// Renders `p_ri` (paper §4.2): the relevance-scoring prompt over numbered
/// candidate instances.
pub fn render_pri(task: TaskKind, query: &str, instances: &[SerializedRecord]) -> String {
    let mut out = format!(
        "The task is [{}]. The target query is [{}]. Score the relevance (range from 0 to 3) \
         of the given instances based on the task and the query:",
        task.description(),
        query
    );
    for (i, inst) in instances.iter().enumerate() {
        out.push_str(&format!("\n{}. {}", i + 1, inst.render()));
    }
    out
}

/// Parses a `p_ri` prompt.
pub fn parse_pri(prompt: &str) -> Option<PriRequest> {
    if !prompt.contains("Score the relevance") {
        return None;
    }
    let task = TaskKind::from_description(bracketed_after(prompt, "The task is")?)?;
    let query = bracketed_after(prompt, "The target query is")?.to_string();
    let mut instances = Vec::new();
    for line in prompt.lines().skip(1) {
        let Some((_num, rest)) = line.split_once(". ") else {
            continue;
        };
        if let Some(rec) = SerializedRecord::parse(rest) {
            instances.push(rec);
        }
    }
    Some(PriRequest {
        task,
        query,
        instances,
    })
}

/// Parses the `p_ri` *response*: `"1:3, 2:0, ..."` → 0-based `(index, score)`.
pub fn parse_pri_response(text: &str) -> Vec<(usize, u8)> {
    let mut out = Vec::new();
    for chunk in text.split(',') {
        let Some((i, s)) = chunk.trim().split_once(':') else {
            continue;
        };
        if let (Ok(i), Ok(s)) = (i.trim().parse::<usize>(), s.trim().parse::<u8>()) {
            if i >= 1 {
                out.push((i - 1, s.min(3)));
            }
        }
    }
    out
}

/// A parsed context-data-parsing request (`p_dp`).
#[derive(Debug, Clone, PartialEq)]
pub struct PdpRequest {
    /// The serialized records to naturalize.
    pub records: Vec<SerializedRecord>,
}

/// Renders `p_dp` (paper §4.3):
///
/// > Given the data, convert the items into a textual format that
/// > encompasses all relevant information in a logical order: \[V\]
pub fn render_pdp(records: &[SerializedRecord]) -> String {
    let body = records
        .iter()
        .map(SerializedRecord::render)
        .collect::<Vec<_>>()
        .join("\n");
    format!(
        "Given the data, convert the items into a textual format that encompasses all \
         relevant information in a logical order: [{body}]"
    )
}

/// Parses a `p_dp` prompt.
pub fn parse_pdp(prompt: &str) -> Option<PdpRequest> {
    if !prompt.contains("convert the items into a textual format") {
        return None;
    }
    let body = bracketed_after(prompt, "logical order:")?;
    let records = body
        .lines()
        .filter_map(SerializedRecord::parse)
        .collect::<Vec<_>>();
    Some(PdpRequest { records })
}

/// The claim fed to the cloze-question generator: task, parsed context, and
/// target query.
#[derive(Debug, Clone, PartialEq)]
pub struct Claim {
    /// The task.
    pub task: TaskKind,
    /// Parsed context `C'` (natural text, possibly multi-line).
    pub context: String,
    /// The target query `Q`.
    pub query: String,
}

/// The in-context demonstrations of `p_cq` (paper appendix A), shared by
/// every render so the prompt cost is realistic.
const PCQ_DEMONSTRATIONS: &str = "\
Claim: The task is [data imputation]. The context is [Wenham, Marysville, and Westmont are \
cities in the United States, identified by the ISO3 code USA]. The target query is [city: New \
Cassel; iso3: USA; country: ?].
Cloze question: Wenham, Marysville, and Westmont are cities in the United States, identified \
by the ISO3 code USA. New Cassel belongs to the country __.
Claim: The task is [data transformation]. The context is [data before transformation: 20000101 \
data after transformation: 2000-01-01]. The target query is [19990415: ?].
Cloze question: 20000101 can be transformed to 2000-01-01, and 19990415 can be transformed \
to __.
Claim: The task is [error detection]. The context is [the address of 2505 u s highway 431 \
north is not an error, the county name of mxrshxll is an error]. The target query is [city: \
sheffxeld?].
Cloze question: The address 2505 u s highway 431 north has no error, whereas the county name \
mxrshxll contains an error. Is there an error in the city sheffxeld? Yes or No: __.
Claim: The task is [entity resolution]. The context is [A is the Punch! Home Design \
Architectural Series 4000 v10, priced at $199.99. B is the Punch Software 41100 Punch! Home \
Design Architectural Series 18, priced at $18.99]. The target query is [are A and B the \
same?].
Cloze question: Entity A is the Punch! Home Design Architectural Series 4000 v10 priced at \
$199.99. Entity B is the Punch Software 41100 Punch! Home Design Architectural Series 18 \
priced at $18.99. Are entity A and entity B the same? Yes or No: __.";

/// Renders `p_cq` (paper §4.4): demonstrations plus the claim to rewrite.
pub fn render_pcq(claim: &Claim) -> String {
    format!(
        "Write the claim as a cloze question.\n{demos}\nClaim: The task is [{task}]. The \
         context is [{context}]. The target query is [{query}].\nCloze question:",
        demos = PCQ_DEMONSTRATIONS,
        task = claim.task.description(),
        context = claim.context,
        query = claim.query,
    )
}

/// Parses a `p_cq` prompt back into the final claim (ignoring the
/// demonstrations, which are fixed).
pub fn parse_pcq(prompt: &str) -> Option<Claim> {
    if !prompt.starts_with("Write the claim as a cloze question.") {
        return None;
    }
    // The final claim follows the last "Claim:" marker.
    let last = prompt.rfind("Claim:")?;
    let tail = &prompt[last..];
    let task = TaskKind::from_description(bracketed_after(tail, "The task is")?)?;
    let context = bracketed_after(tail, "The context is")?.to_string();
    let query = bracketed_after(tail, "The target query is")?.to_string();
    Some(Claim {
        task,
        context,
        query,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs() -> Vec<SerializedRecord> {
        vec![
            SerializedRecord::new(vec![
                ("city".into(), "Alicante".into()),
                ("country".into(), "Spain".into()),
            ]),
            SerializedRecord::new(vec![
                ("city".into(), "Florence".into()),
                ("country".into(), "Italy".into()),
            ]),
        ]
    }

    #[test]
    fn prm_roundtrip() {
        let p = render_prm(
            TaskKind::Imputation,
            "Copenhagen, timezone",
            &["country".into(), "population".into(), "postalcode".into()],
        );
        let req = parse_prm(&p).unwrap();
        assert_eq!(req.task, TaskKind::Imputation);
        assert_eq!(req.query, "Copenhagen, timezone");
        assert_eq!(req.candidates, vec!["country", "population", "postalcode"]);
    }

    #[test]
    fn pri_roundtrip() {
        let p = render_pri(TaskKind::Imputation, "Copenhagen, timezone", &recs());
        let req = parse_pri(&p).unwrap();
        assert_eq!(req.instances.len(), 2);
        assert_eq!(req.instances[1].get("city"), Some("Florence"));
    }

    #[test]
    fn pri_response_parsing() {
        let scores = parse_pri_response("1:3, 2:0, 3:2");
        assert_eq!(scores, vec![(0, 3), (1, 0), (2, 2)]);
        assert_eq!(parse_pri_response("garbage"), vec![]);
        // Scores clamp to 3; indices below 1 are dropped.
        assert_eq!(parse_pri_response("1:9, 0:2"), vec![(0, 3)]);
    }

    #[test]
    fn pdp_roundtrip() {
        let p = render_pdp(&recs());
        let req = parse_pdp(&p).unwrap();
        assert_eq!(req.records, recs());
    }

    #[test]
    fn pcq_roundtrip() {
        let claim = Claim {
            task: TaskKind::Imputation,
            context: "Florence belongs to the country Italy.".to_string(),
            query: "city: Copenhagen; country: Denmark; timezone: ?".to_string(),
        };
        let p = render_pcq(&claim);
        assert!(p.contains("Punch! Home Design"), "demonstrations included");
        let back = parse_pcq(&p).unwrap();
        assert_eq!(back, claim);
    }

    #[test]
    fn parsers_reject_other_prompts() {
        assert!(parse_prm("hello").is_none());
        assert!(parse_pri("hello").is_none());
        assert!(parse_pdp("hello").is_none());
        assert!(parse_pcq("hello").is_none());
    }

    #[test]
    fn pcq_final_claim_wins_over_demos() {
        let claim = Claim {
            task: TaskKind::ErrorDetection,
            context: "ctx".to_string(),
            query: "city: sheffxeld?".to_string(),
        };
        let back = parse_pcq(&render_pcq(&claim)).unwrap();
        assert_eq!(back.task, TaskKind::ErrorDetection);
    }
}
