//! `MockLlm`: the deterministic simulated language model.

use std::sync::{Arc, Mutex};

use unidm_text::count_tokens;
use unidm_world::World;

use crate::kb::KnowledgeBase;
use crate::model::{Completion, LanguageModel, Usage};
use crate::profile::LlmProfile;
use crate::protocol;
use crate::skills;
use crate::{Dice, LlmError};

/// A deterministic simulated LLM.
///
/// Dispatches incoming prompts to the skill matching their shape (retrieval
/// scoring, context parsing, cloze generation, final answering) and accounts
/// tokens on every call. The same prompt always yields the same completion.
///
/// # Examples
///
/// ```
/// use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
/// use unidm_world::World;
///
/// # fn main() -> Result<(), unidm_llm::LlmError> {
/// let world = World::generate(42);
/// let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 1);
/// let reply = llm.complete(
///     "The task is [data imputation]. The target query is [Copenhagen, timezone]. \
///      The candidate attributes are [country, population]. Which attributes are \
///      helpful for the task and the query?",
/// )?;
/// assert!(reply.text.contains("country"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MockLlm {
    profile: LlmProfile,
    kb: KnowledgeBase,
    dice: Dice,
    usage: Mutex<Usage>,
}

impl MockLlm {
    /// Creates a model whose pretraining memory is sampled from `world` at
    /// the profile's knowledge coverage.
    pub fn new(world: &World, profile: LlmProfile, seed: u64) -> Self {
        let kb = KnowledgeBase::from_world(world, profile.knowledge, seed);
        Self::with_kb(profile, kb, seed)
    }

    /// Creates a model with an explicit knowledge base (e.g. empty, for
    /// testing pure in-context behaviour).
    pub fn with_kb(profile: LlmProfile, kb: KnowledgeBase, seed: u64) -> Self {
        MockLlm {
            profile,
            kb,
            dice: Dice::new(seed),
            usage: Mutex::new(Usage::default()),
        }
    }

    /// The model's capability profile.
    pub fn profile(&self) -> &LlmProfile {
        &self.profile
    }

    /// The model's pretraining memory.
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// A copy of this model with a different profile but the same memory
    /// and seed (used by the fine-tuning harness).
    pub fn with_profile(&self, profile: LlmProfile) -> MockLlm {
        MockLlm {
            profile,
            kb: self.kb.clone(),
            dice: self.dice,
            usage: Mutex::new(Usage::default()),
        }
    }

    fn respond(&self, prompt: &str) -> String {
        if let Some(req) = protocol::parse_prm(prompt) {
            return skills::retrieval::select_attributes(&req, &self.profile, &self.dice, &self.kb);
        }
        if let Some(req) = protocol::parse_pri(prompt) {
            return skills::retrieval::score_instances(&req, &self.profile, &self.dice, &self.kb);
        }
        if let Some(req) = protocol::parse_pdp(prompt) {
            return skills::parsing::parse_context(&req, &self.profile, &self.dice);
        }
        if let Some(claim) = protocol::parse_pcq(prompt) {
            return skills::cloze_gen::generate_cloze(&claim, &self.profile, &self.dice);
        }
        if let Some(req) = protocol::parse_answer_request(prompt) {
            return skills::answer::answer(&req, &self.profile, &self.dice, &self.kb);
        }
        if let Some(req) = protocol::parse_fm(prompt) {
            return skills::answer::answer(&req, &self.profile, &self.dice, &self.kb);
        }
        // A prompt the model does not understand still gets a reply.
        "I'm not sure.".to_string()
    }
}

impl LanguageModel for MockLlm {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn complete(&self, prompt: &str) -> Result<Arc<Completion>, LlmError> {
        if prompt.trim().is_empty() {
            return Err(LlmError::EmptyPrompt);
        }
        let prompt_tokens = count_tokens(prompt);
        if prompt_tokens > self.profile.context_window {
            return Err(LlmError::PromptTooLong {
                tokens: prompt_tokens,
                limit: self.profile.context_window,
            });
        }
        let text = self.respond(prompt);
        let usage = Usage {
            prompt_tokens,
            completion_tokens: count_tokens(&text),
        };
        self.usage.lock().expect("usage lock poisoned").add(usage);
        Ok(Completion::shared(text, usage))
    }

    fn usage(&self) -> Usage {
        *self.usage.lock().expect("usage lock poisoned")
    }

    fn reset_usage(&self) {
        *self.usage.lock().expect("usage lock poisoned") = Usage::default();
    }

    fn context_window(&self) -> usize {
        self.profile.context_window
    }

    fn latency_profile(&self) -> crate::LatencyProfile {
        self.profile.latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{render_pdp, render_pri, SerializedRecord, TaskKind};

    fn llm() -> MockLlm {
        MockLlm::new(&World::generate(7), LlmProfile::gpt3_175b(), 1)
    }

    #[test]
    fn empty_prompt_rejected() {
        assert_eq!(llm().complete("  "), Err(LlmError::EmptyPrompt));
    }

    #[test]
    fn too_long_prompt_rejected() {
        let m = MockLlm::with_kb(
            LlmProfile {
                context_window: 10,
                ..LlmProfile::gpt3_175b()
            },
            KnowledgeBase::empty(),
            1,
        );
        let long = "word ".repeat(100);
        assert!(matches!(
            m.complete(&long),
            Err(LlmError::PromptTooLong { .. })
        ));
    }

    #[test]
    fn usage_accumulates_and_resets() {
        let m = llm();
        m.complete("hello there, model").unwrap();
        m.complete("second prompt").unwrap();
        let u = m.usage();
        assert!(u.prompt_tokens > 0);
        assert!(u.completion_tokens > 0);
        m.reset_usage();
        assert_eq!(m.usage().total(), 0);
    }

    #[test]
    fn dispatches_pri() {
        let m = llm();
        let prompt = render_pri(
            TaskKind::Imputation,
            "Copenhagen, timezone",
            &[SerializedRecord::new(vec![(
                "city".into(),
                "Florence".into(),
            )])],
        );
        let reply = m.complete(&prompt).unwrap();
        assert!(!crate::protocol::parse_pri_response(&reply.text).is_empty());
    }

    #[test]
    fn dispatches_pdp() {
        let m = llm();
        let prompt = render_pdp(&[SerializedRecord::new(vec![
            ("city".into(), "Florence".into()),
            ("country".into(), "Italy".into()),
        ])]);
        let reply = m.complete(&prompt).unwrap();
        assert!(reply.text.contains("Florence"));
        assert!(reply.text.contains("Italy"));
    }

    #[test]
    fn unknown_prompt_gets_fallback() {
        let m = llm();
        let reply = m.complete("Sing me a song about crabs").unwrap();
        assert_eq!(reply.text, "I'm not sure.");
    }

    #[test]
    fn deterministic_completions() {
        let a = llm().complete("Sing me a song about crabs").unwrap();
        let b = llm().complete("Sing me a song about crabs").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn name_reports_profile() {
        assert_eq!(llm().name(), "GPT-3-175B");
    }
}
