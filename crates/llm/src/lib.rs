//! Simulated large-language-model substrate for the UniDM reproduction.
//!
//! The paper drives every pipeline step through a hosted LLM (GPT-3-175B by
//! default). Offline, we replace the hosted model with [`MockLlm`]: a
//! deterministic simulator that preserves the *mechanism* the paper relies
//! on — answers come either from facts present in the prompt context or from
//! the model's own (incomplete) pretraining memory — while exposing the same
//! text-in/text-out interface ([`LanguageModel`]).
//!
//! # Architecture
//!
//! * [`protocol`] — the prompt grammar: renderers (used by the UniDM
//!   pipeline and the FM baseline) and parsers (used by the mock model).
//!   Every template the paper prints (`p_rm`, `p_ri`, `p_dp`, `p_cq`, cloze
//!   questions, FM-style prompts) has a renderer/parser pair with round-trip
//!   tests.
//! * [`kb`] — the model's pretraining memory: a coverage-limited sample of
//!   the synthetic world's facts. What the model "knows" is a strict subset
//!   of what is true.
//! * [`profile`] — capability profiles for the model zoo (GPT-3-175B,
//!   GPT-4-Turbo, Claude2, LLaMA2-7B/70B, Qwen-7B, GPT-J-6B): knowledge
//!   coverage, context-reading fidelity, reasoning, instruction following.
//! * [`skills`] — one module per prompt shape: attribute selection,
//!   instance scoring, context parsing, cloze generation, final answering,
//!   by-example transformation induction.
//! * [`finetune`] — lightweight fine-tuning simulation (Table 5): training
//!   pairs raise task-specific competence with diminishing returns.
//! * Token accounting on every call (Table 7) via [`Usage`].
//! * [`clock`] / [`sim`] — the simulated serving layer: a deterministic
//!   [`VirtualClock`] and [`SimBackend`], a seeded fault injector
//!   (timeouts, 429s, transient 5xx errors, latency spikes) that wraps any
//!   model, so the resilient backend substrate in `unidm::backend` is
//!   testable without a network.
//!
//! # Determinism
//!
//! All randomness is derived by hashing `(model seed, prompt, decision tag)`
//! — the same prompt to the same model always yields the same completion,
//! and there is no hidden mutable RNG state. That purity is what makes the
//! execution substrates in `unidm::exec` sound: a prompt cache can memoize
//! (and even persist) completions, and a batch pool can replay them on any
//! thread, without changing a single answer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
mod determinism;
mod error;
pub mod finetune;
pub mod kb;
mod mock;
mod model;
pub mod profile;
pub mod protocol;
pub mod sim;
pub mod skills;

pub use clock::{Clock, SystemClock, TimerWheel, VirtualClock};
pub use determinism::Dice;
pub use error::LlmError;
pub use kb::KnowledgeBase;
pub use mock::MockLlm;
pub use model::{Completion, LanguageModel, Usage, UsageMeter};
pub use profile::{LatencyProfile, LlmProfile};
pub use sim::{AttemptSample, FaultPlan, FaultStats, SimBackend};
