//! Time sources for the backend substrate.
//!
//! Everything in the resilient client layer that involves time — token
//! refill, retry backoff, breaker cooldowns, injected latency — goes
//! through the [`Clock`] trait instead of `std::time`, so the whole stack
//! can run on a [`VirtualClock`]: a logical microsecond counter where
//! "sleeping" simply advances the counter. That is what makes
//! fault-injection tests deterministic and instantaneous — a simulated
//! 30-second rate-limit stall costs nothing in wall time — while
//! [`SystemClock`] provides real-time semantics for live endpoints.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond time source with a blocking sleep.
///
/// Implementations must be `Send + Sync`: one clock is shared by every
/// worker of a batch, the rate limiter, the retry loop and the fault
/// injector.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Microseconds since the clock's origin.
    fn now_micros(&self) -> u64;

    /// Blocks (or, for virtual clocks, advances time) for `micros`
    /// microseconds.
    fn sleep_micros(&self, micros: u64);
}

/// A deterministic logical clock: an atomic microsecond counter that
/// [`Clock::sleep_micros`] advances instantly.
///
/// Sleeping threads never block — they move shared time forward — so a
/// simulated fault schedule full of multi-second stalls replays in
/// microseconds of wall time. Under concurrency the counter is advanced
/// atomically; interleavings may reorder *when* each sleep lands, but every
/// sleep is fully accounted for, so total elapsed virtual time is the sum
/// of all sleeps regardless of scheduling.
///
/// # Examples
///
/// ```
/// use unidm_llm::{Clock, VirtualClock};
///
/// let clock = VirtualClock::new();
/// assert_eq!(clock.now_micros(), 0);
/// clock.sleep_micros(1_500_000); // "sleep" 1.5s — returns immediately
/// assert_eq!(clock.now_micros(), 1_500_000);
/// ```
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_us: AtomicU64,
}

impl VirtualClock {
    /// Creates a clock at virtual time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Total virtual time elapsed since construction, in microseconds.
    pub fn elapsed_micros(&self) -> u64 {
        self.now_us.load(Ordering::SeqCst)
    }
}

impl Clock for VirtualClock {
    fn now_micros(&self) -> u64 {
        self.now_us.load(Ordering::SeqCst)
    }

    fn sleep_micros(&self, micros: u64) {
        self.now_us.fetch_add(micros, Ordering::SeqCst);
    }
}

/// Wall-clock time: [`Clock::now_micros`] measures from construction and
/// [`Clock::sleep_micros`] really blocks the calling thread.
///
/// This is the clock a live hosted-endpoint deployment would run the
/// backend on; tests and the offline simulation use [`VirtualClock`].
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// Creates a clock whose origin is now.
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_micros(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn sleep_micros(&self, micros: u64) {
        std::thread::sleep(std::time::Duration::from_micros(micros));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_only_by_sleeping() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_micros(), 0);
        clock.sleep_micros(250);
        clock.sleep_micros(750);
        assert_eq!(clock.now_micros(), 1_000);
        assert_eq!(clock.elapsed_micros(), 1_000);
    }

    #[test]
    fn virtual_clock_accounts_concurrent_sleeps_exactly() {
        let clock = VirtualClock::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let clock = &clock;
                scope.spawn(move || {
                    for _ in 0..100 {
                        clock.sleep_micros(3);
                    }
                });
            }
        });
        assert_eq!(clock.elapsed_micros(), 8 * 100 * 3);
    }

    #[test]
    fn system_clock_is_monotone() {
        let clock = SystemClock::new();
        let a = clock.now_micros();
        clock.sleep_micros(1_000);
        let b = clock.now_micros();
        assert!(b >= a + 1_000, "slept {a} -> {b}");
    }

    #[test]
    fn clocks_are_object_safe_send_sync() {
        fn assert_clock<C: Clock + Send + Sync + ?Sized>() {}
        assert_clock::<dyn Clock>();
        assert_clock::<VirtualClock>();
        assert_clock::<SystemClock>();
    }
}
