//! Time sources for the backend substrate.
//!
//! Everything in the resilient client layer that involves time — token
//! refill, retry backoff, breaker cooldowns, injected latency — goes
//! through the [`Clock`] trait instead of `std::time`, so the whole stack
//! can run on a [`VirtualClock`]: a logical microsecond counter where
//! "sleeping" simply advances the counter. That is what makes
//! fault-injection tests deterministic and instantaneous — a simulated
//! 30-second rate-limit stall costs nothing in wall time — while
//! [`SystemClock`] provides real-time semantics for live endpoints.

use std::collections::{BinaryHeap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond time source with a blocking sleep.
///
/// Implementations must be `Send + Sync`: one clock is shared by every
/// worker of a batch, the rate limiter, the retry loop and the fault
/// injector.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Microseconds since the clock's origin.
    fn now_micros(&self) -> u64;

    /// Blocks (or, for virtual clocks, advances time) for `micros`
    /// microseconds.
    fn sleep_micros(&self, micros: u64);
}

/// A deterministic logical clock: an atomic microsecond counter that
/// [`Clock::sleep_micros`] advances instantly.
///
/// Sleeping threads never block — they move shared time forward — so a
/// simulated fault schedule full of multi-second stalls replays in
/// microseconds of wall time. Under concurrency the counter is advanced
/// atomically; interleavings may reorder *when* each sleep lands, but every
/// sleep is fully accounted for, so total elapsed virtual time is the sum
/// of all sleeps regardless of scheduling.
///
/// # Examples
///
/// ```
/// use unidm_llm::{Clock, VirtualClock};
///
/// let clock = VirtualClock::new();
/// assert_eq!(clock.now_micros(), 0);
/// clock.sleep_micros(1_500_000); // "sleep" 1.5s — returns immediately
/// assert_eq!(clock.now_micros(), 1_500_000);
/// ```
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_us: AtomicU64,
}

impl VirtualClock {
    /// Creates a clock at virtual time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Total virtual time elapsed since construction, in microseconds.
    pub fn elapsed_micros(&self) -> u64 {
        self.now_us.load(Ordering::SeqCst)
    }

    /// Advances the clock to `deadline_us` if it is ahead of the current
    /// time; a deadline in the past leaves the clock untouched (the clock
    /// is monotone).
    ///
    /// This is the event-driven counterpart of [`Clock::sleep_micros`]:
    /// where sleeps *add* (concurrent sleeps sum, so total elapsed time is
    /// total latency), `advance_to_micros` *jumps* to the next pending
    /// deadline of a [`TimerWheel`], so overlapped requests overlap in
    /// virtual time and elapsed time measures the makespan instead.
    pub fn advance_to_micros(&self, deadline_us: u64) {
        self.now_us.fetch_max(deadline_us, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_micros(&self) -> u64 {
        self.now_us.load(Ordering::SeqCst)
    }

    fn sleep_micros(&self, micros: u64) {
        self.now_us.fetch_add(micros, Ordering::SeqCst);
    }
}

/// Wall-clock time: [`Clock::now_micros`] measures from construction and
/// [`Clock::sleep_micros`] really blocks the calling thread.
///
/// This is the clock a live hosted-endpoint deployment would run the
/// backend on; tests and the offline simulation use [`VirtualClock`].
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// Creates a clock whose origin is now.
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_micros(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn sleep_micros(&self, micros: u64) {
        std::thread::sleep(std::time::Duration::from_micros(micros));
    }
}

/// A pending-deadline queue for event-driven schedulers: the data
/// structure behind `unidm::dispatch`'s reactor.
///
/// Timers are identified by the `u64` sequence number [`TimerWheel::schedule`]
/// returns. The wheel pops timers in `(deadline, sequence)` order — ties on
/// the deadline break by scheduling order — so a reactor that schedules
/// deterministically pops deterministically. Cancelled timers are dropped
/// lazily on pop and **never** surface, which is what lets a hedged-request
/// loser be cancelled without its (stale) deadline dragging the virtual
/// clock forward.
///
/// # Examples
///
/// ```
/// use unidm_llm::TimerWheel;
///
/// let mut wheel = TimerWheel::new();
/// let early = wheel.schedule(100);
/// let late = wheel.schedule(250);
/// wheel.cancel(early);
/// assert_eq!(wheel.pop_next(), Some((250, late)));
/// assert!(wheel.pop_next().is_none());
/// ```
#[derive(Debug, Default)]
pub struct TimerWheel {
    // Min-heap via Reverse ordering on (deadline, seq).
    heap: BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    live: usize,
}

impl TimerWheel {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        TimerWheel::default()
    }

    /// Schedules a timer at `deadline_us`, returning its sequence number.
    pub fn schedule(&mut self, deadline_us: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(std::cmp::Reverse((deadline_us, seq)));
        self.live += 1;
        seq
    }

    /// Cancels a pending timer. Cancelling an already-popped or unknown
    /// sequence number is a no-op; the wheel never yields a cancelled
    /// timer.
    pub fn cancel(&mut self, seq: u64) {
        if seq < self.next_seq && self.cancelled.insert(seq) {
            self.live = self.live.saturating_sub(1);
        }
    }

    /// Pops the earliest live timer as `(deadline_us, seq)`, skipping (and
    /// forgetting) cancelled entries.
    pub fn pop_next(&mut self) -> Option<(u64, u64)> {
        while let Some(std::cmp::Reverse((deadline, seq))) = self.heap.pop() {
            if self.cancelled.remove(&seq) {
                continue;
            }
            self.live -= 1;
            return Some((deadline, seq));
        }
        None
    }

    /// The deadline of the earliest live timer, without popping it.
    pub fn next_deadline(&mut self) -> Option<u64> {
        while let Some(std::cmp::Reverse((deadline, seq))) = self.heap.peek().copied() {
            if self.cancelled.remove(&seq) {
                self.heap.pop();
                continue;
            }
            return Some(deadline);
        }
        None
    }

    /// Live (scheduled and not yet popped or cancelled) timer count.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live timer is pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_only_by_sleeping() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_micros(), 0);
        clock.sleep_micros(250);
        clock.sleep_micros(750);
        assert_eq!(clock.now_micros(), 1_000);
        assert_eq!(clock.elapsed_micros(), 1_000);
    }

    #[test]
    fn virtual_clock_accounts_concurrent_sleeps_exactly() {
        let clock = VirtualClock::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let clock = &clock;
                scope.spawn(move || {
                    for _ in 0..100 {
                        clock.sleep_micros(3);
                    }
                });
            }
        });
        assert_eq!(clock.elapsed_micros(), 8 * 100 * 3);
    }

    #[test]
    fn virtual_clock_advance_to_is_monotone() {
        let clock = VirtualClock::new();
        clock.advance_to_micros(500);
        assert_eq!(clock.now_micros(), 500);
        clock.advance_to_micros(200); // in the past: no-op
        assert_eq!(clock.now_micros(), 500);
        clock.sleep_micros(100); // sleeps still add on top
        assert_eq!(clock.now_micros(), 600);
    }

    #[test]
    fn timer_wheel_pops_in_deadline_then_schedule_order() {
        let mut wheel = TimerWheel::new();
        let a = wheel.schedule(300);
        let b = wheel.schedule(100);
        let c = wheel.schedule(100); // same deadline as b: b pops first
        assert_eq!(wheel.len(), 3);
        assert_eq!(wheel.pop_next(), Some((100, b)));
        assert_eq!(wheel.pop_next(), Some((100, c)));
        assert_eq!(wheel.pop_next(), Some((300, a)));
        assert!(wheel.is_empty());
        assert_eq!(wheel.pop_next(), None);
    }

    #[test]
    fn timer_wheel_cancellation_never_surfaces() {
        let mut wheel = TimerWheel::new();
        let a = wheel.schedule(100);
        let b = wheel.schedule(200);
        let c = wheel.schedule(300);
        wheel.cancel(b);
        wheel.cancel(b); // double-cancel is a no-op
        wheel.cancel(999); // unknown seq is a no-op
        assert_eq!(wheel.len(), 2);
        assert_eq!(wheel.next_deadline(), Some(100));
        assert_eq!(wheel.pop_next(), Some((100, a)));
        // b's deadline never shows up as the next pending event.
        assert_eq!(wheel.next_deadline(), Some(300));
        assert_eq!(wheel.pop_next(), Some((300, c)));
        assert!(wheel.is_empty());
    }

    #[test]
    fn system_clock_is_monotone() {
        let clock = SystemClock::new();
        let a = clock.now_micros();
        clock.sleep_micros(1_000);
        let b = clock.now_micros();
        assert!(b >= a + 1_000, "slept {a} -> {b}");
    }

    #[test]
    fn clocks_are_object_safe_send_sync() {
        fn assert_clock<C: Clock + Send + Sync + ?Sized>() {}
        assert_clock::<dyn Clock>();
        assert_clock::<VirtualClock>();
        assert_clock::<SystemClock>();
    }
}
