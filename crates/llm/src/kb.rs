//! The simulated model's pretraining memory.
//!
//! A [`KnowledgeBase`] is a *coverage-limited* sample of the world's facts:
//! each fact is kept with a probability that depends on the model's
//! knowledge capability and on how "head" or "tail" the fact's domain is
//! (every LLM knows country timezones; few know a specific restaurant's
//! city). Facts not kept are simply absent — the model can still recover
//! them from retrieved context, which is exactly the mechanism UniDM
//! exploits.

use std::collections::{HashMap, HashSet};

use unidm_world::{Fact, Predicate, World};

use crate::Dice;

/// How familiar a pretrained model is with each fact family, relative to its
/// base knowledge capability.
fn familiarity(pred: Predicate) -> f64 {
    use Predicate::*;
    match pred {
        // Head knowledge: every model that read an encyclopedia has these.
        CountryTimezone | CountryIso | CountryContinent | CityCountry | CityTimezone => 1.0,
        // Closed category vocabularies ("Bachelors", position names) are
        // ordinary words — fully known regardless of fact coverage (the
        // multiplier above 1 offsets the knowledge factor; probabilities
        // clamp at 1).
        EducationYears | ValidToken => 1.15,
        // Mid-tail: product lines, brands, famous players.
        BrandManufacturer => 0.78,
        ProductCategory => 0.85,
        PlayerCollege | PlayerHeight | PlayerPosition => 0.8,
        ArtistGenre => 0.8,
        ProductManufacturer => 0.85,
        BeerBrewery | BeerStyle | SongArtist => 0.7,
        CityPostal => 0.6,
        // Long tail: specific venues, streets, area codes. GPT-3-scale
        // models know a surprising amount of US street/area-code geography
        // — the paper's FM(random) already reaches 81.4% on Restaurant.
        AreaCodeCity => 0.65,
        StreetCity => 0.6,
        RestaurantCuisine => 0.45,
        RestaurantCity => 0.5,
        HospitalCity | HospitalCounty => 0.4,
    }
}

/// Common English words every language model's vocabulary contains,
/// independent of world-fact coverage. Includes the generic nouns the
/// synthetic generators use in addresses, venue names and product lines.
const COMMON_WORDS: &[&str] = &[
    "the",
    "a",
    "an",
    "of",
    "in",
    "on",
    "at",
    "and",
    "or",
    "to",
    "is",
    "for",
    "with",
    "by",
    "u",
    "s",
    "us",
    "no",
    "yes",
    "north",
    "south",
    "east",
    "west",
    "highway",
    "street",
    "avenue",
    "ave",
    "blvd",
    "boulevard",
    "drive",
    "dr",
    "road",
    "rd",
    "lane",
    "ln",
    "way",
    "st",
    "medical",
    "center",
    "hospital",
    "regional",
    "community",
    "memorial",
    "general",
    "grill",
    "bistro",
    "cafe",
    "kitchen",
    "house",
    "tavern",
    "diner",
    "trattoria",
    "brasserie",
    "place",
    "brewing",
    "brewery",
    "ales",
    "beer",
    "works",
    "co",
    "inc",
    "software",
    "electronics",
    "systems",
    "technologies",
    "labs",
    "studio",
    "pro",
    "design",
    "office",
    "vision",
    "stream",
    "power",
    "ultra",
    "home",
    "max",
    "prime",
    "edge",
    "air",
    "core",
    "flex",
    "series",
    "old",
    "new",
    "little",
    "big",
];

/// A coverage-limited fact store.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    facts: HashMap<(String, Predicate), String>,
    reverse: HashMap<(String, Predicate), String>,
    valid: HashMap<String, HashSet<String>>,
    vocab: HashSet<String>,
    len: usize,
}

impl KnowledgeBase {
    /// Builds a knowledge base holding each world fact with probability
    /// `knowledge * familiarity(predicate)`.
    ///
    /// `seed` decorrelates the retained subsets of different models.
    pub fn from_world(world: &World, knowledge: f64, seed: u64) -> Self {
        let dice = Dice::new(seed);
        let mut kb = KnowledgeBase::default();
        for fact in world.facts() {
            let p = knowledge * familiarity(fact.predicate);
            let tag = format!("{:?}", fact.predicate);
            if dice.chance(&format!("{}|{}", fact.subject, fact.object), &tag, p) {
                kb.insert(&fact);
            }
        }
        kb
    }

    /// An empty knowledge base (a model that knows nothing).
    pub fn empty() -> Self {
        KnowledgeBase::default()
    }

    /// Inserts one fact.
    pub fn insert(&mut self, fact: &Fact) {
        if fact.predicate == Predicate::ValidToken {
            self.valid
                .entry(fact.object.to_lowercase())
                .or_default()
                .insert(fact.subject_key());
        }
        self.facts
            .insert((fact.subject_key(), fact.predicate), fact.object.clone());
        self.reverse.insert(
            (fact.object.to_lowercase(), fact.predicate),
            fact.subject.clone(),
        );
        for w in fact.subject.split_whitespace() {
            self.vocab.insert(w.to_lowercase());
        }
        for w in fact.object.split_whitespace() {
            self.vocab.insert(w.to_lowercase());
        }
        self.len += 1;
    }

    /// Number of facts inserted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no facts were inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up the object of `(subject, predicate)` (case-insensitive).
    pub fn lookup(&self, subject: &str, predicate: Predicate) -> Option<&str> {
        self.facts
            .get(&(subject.trim().to_lowercase(), predicate))
            .map(String::as_str)
    }

    /// First hit across several predicates.
    pub fn lookup_any(&self, subject: &str, predicates: &[Predicate]) -> Option<(Predicate, &str)> {
        predicates
            .iter()
            .find_map(|&p| self.lookup(subject, p).map(|o| (p, o)))
    }

    /// Reverse lookup: the subject whose `(subject, predicate)` fact has the
    /// given object. When several subjects share an object, the last
    /// inserted wins — adequate for the functional relations used here
    /// (ISO code → country).
    pub fn lookup_reverse(&self, object: &str, predicate: Predicate) -> Option<&str> {
        self.reverse
            .get(&(object.trim().to_lowercase(), predicate))
            .map(String::as_str)
    }

    /// True if `token` is a known valid member of `domain` ("city", ...).
    pub fn is_valid_token(&self, domain: &str, token: &str) -> bool {
        self.valid
            .get(&domain.to_lowercase())
            .is_some_and(|s| s.contains(&token.trim().to_lowercase()))
    }

    /// True if the model has *any* valid-token vocabulary for `domain`.
    pub fn knows_domain(&self, domain: &str) -> bool {
        self.valid.contains_key(&domain.to_lowercase())
    }

    /// Fraction of whitespace-words of `text` present in the model's
    /// vocabulary — a proxy for how domain-specific a string is.
    ///
    /// Numbers and common English words always count as familiar:
    /// pretraining teaches those to every model regardless of fact
    /// coverage.
    pub fn token_familiarity(&self, text: &str) -> f64 {
        let words: Vec<String> = text
            .split_whitespace()
            .map(|w| {
                w.trim_matches(|c: char| !c.is_alphanumeric())
                    .to_lowercase()
            })
            .filter(|w| !w.is_empty())
            .collect();
        if words.is_empty() {
            return 1.0;
        }
        let known = words
            .iter()
            .filter(|w| {
                w.chars().all(|c| c.is_ascii_digit())
                    || COMMON_WORDS.contains(&w.as_str())
                    || self.vocab.contains(*w)
            })
            .count();
        known as f64 / words.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(7)
    }

    #[test]
    fn coverage_scales_size() {
        let w = world();
        let full = KnowledgeBase::from_world(&w, 1.0, 1);
        let half = KnowledgeBase::from_world(&w, 0.5, 1);
        let none = KnowledgeBase::from_world(&w, 0.0, 1);
        assert!(full.len() > half.len());
        assert!(half.len() > none.len());
        assert_eq!(none.len(), 0);
    }

    #[test]
    fn head_facts_survive_better_than_tail() {
        let w = world();
        let kb = KnowledgeBase::from_world(&w, 0.7, 3);
        let all = w.facts();
        let survival = |pred: Predicate| {
            let total = all.iter().filter(|f| f.predicate == pred).count();
            let kept = all
                .iter()
                .filter(|f| f.predicate == pred && kb.lookup(&f.subject, pred).is_some())
                .count();
            kept as f64 / total.max(1) as f64
        };
        assert!(survival(Predicate::CityCountry) > survival(Predicate::RestaurantCity));
    }

    #[test]
    fn lookup_case_insensitive() {
        let w = world();
        let kb = KnowledgeBase::from_world(&w, 1.0, 1);
        assert_eq!(
            kb.lookup("copenhagen", Predicate::CityCountry),
            Some("Denmark")
        );
        assert_eq!(
            kb.lookup("COPENHAGEN", Predicate::CityCountry),
            Some("Denmark")
        );
    }

    #[test]
    fn lookup_any_order() {
        let w = world();
        let kb = KnowledgeBase::from_world(&w, 1.0, 1);
        let (p, o) = kb
            .lookup_any(
                "Florence",
                &[Predicate::CityTimezone, Predicate::CityCountry],
            )
            .unwrap();
        assert_eq!(p, Predicate::CityTimezone);
        assert_eq!(o, "Central European Time");
    }

    #[test]
    fn valid_tokens() {
        let w = world();
        let kb = KnowledgeBase::from_world(&w, 1.0, 1);
        assert!(kb.is_valid_token("city", "Copenhagen"));
        assert!(!kb.is_valid_token("city", "Copxnhagen"));
        assert!(kb.is_valid_token("education", "Bachelors"));
        assert!(kb.knows_domain("occupation"));
        assert!(!kb.knows_domain("quasar-type"));
    }

    #[test]
    fn token_familiarity_behaviour() {
        let w = world();
        let kb = KnowledgeBase::from_world(&w, 1.0, 1);
        assert!(kb.token_familiarity("Copenhagen Denmark") > 0.9);
        assert!(kb.token_familiarity("zzqx-42 qqblorp") < 0.5);
        assert_eq!(kb.token_familiarity(""), 1.0);
    }

    #[test]
    fn deterministic_for_seed() {
        let w = world();
        let a = KnowledgeBase::from_world(&w, 0.6, 9);
        let b = KnowledgeBase::from_world(&w, 0.6, 9);
        assert_eq!(a.len(), b.len());
        assert_eq!(
            a.lookup("Copenhagen", Predicate::CityCountry),
            b.lookup("Copenhagen", Predicate::CityCountry)
        );
    }
}
