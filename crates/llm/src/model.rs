//! The `LanguageModel` trait and token accounting.

use crate::LlmError;

/// Token usage of one or more completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Usage {
    /// Tokens in prompts.
    pub prompt_tokens: usize,
    /// Tokens in completions.
    pub completion_tokens: usize,
}

impl Usage {
    /// Total tokens (prompt + completion).
    pub fn total(&self) -> usize {
        self.prompt_tokens + self.completion_tokens
    }

    /// Adds another usage into this one.
    pub fn add(&mut self, other: Usage) {
        self.prompt_tokens += other.prompt_tokens;
        self.completion_tokens += other.completion_tokens;
    }
}

/// One completion returned by a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The completed text.
    pub text: String,
    /// Tokens consumed by this call.
    pub usage: Usage,
}

/// A text-in / text-out language model.
///
/// The UniDM pipeline, the FM baseline and the fine-tuning harness are all
/// written against this trait; [`crate::MockLlm`] is the offline
/// implementation. The trait is object-safe so pipelines can hold
/// `&dyn LanguageModel`.
pub trait LanguageModel {
    /// A human-readable model name ("GPT-3-175B").
    fn name(&self) -> &str;

    /// Completes `prompt`.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::EmptyPrompt`] for an empty prompt and
    /// [`LlmError::PromptTooLong`] when the prompt exceeds the context
    /// window.
    fn complete(&self, prompt: &str) -> Result<Completion, LlmError>;

    /// Cumulative token usage since construction or the last reset.
    fn usage(&self) -> Usage;

    /// Resets the cumulative usage counter.
    fn reset_usage(&self);

    /// The model's context window in tokens. Callers should keep prompts
    /// under this bound; [`LanguageModel::complete`] rejects longer ones.
    fn context_window(&self) -> usize {
        usize::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_totals() {
        let mut u = Usage { prompt_tokens: 10, completion_tokens: 5 };
        assert_eq!(u.total(), 15);
        u.add(Usage { prompt_tokens: 1, completion_tokens: 2 });
        assert_eq!(u.prompt_tokens, 11);
        assert_eq!(u.completion_tokens, 7);
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes(_m: &dyn LanguageModel) {}
    }
}
