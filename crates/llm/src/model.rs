//! The `LanguageModel` trait and token accounting.

use std::sync::{Arc, Mutex};

use crate::profile::LatencyProfile;
use crate::LlmError;

/// Token usage of one or more completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Usage {
    /// Tokens in prompts.
    pub prompt_tokens: usize,
    /// Tokens in completions.
    pub completion_tokens: usize,
}

impl Usage {
    /// Total tokens (prompt + completion).
    pub fn total(&self) -> usize {
        self.prompt_tokens + self.completion_tokens
    }

    /// Adds another usage into this one.
    pub fn add(&mut self, other: Usage) {
        self.prompt_tokens += other.prompt_tokens;
        self.completion_tokens += other.completion_tokens;
    }
}

/// One completion returned by a model.
///
/// Completions travel the stack as `Arc<Completion>`: a memoizing layer
/// (`unidm::PromptCache`) can serve the same completion to many callers by
/// bumping a reference count instead of cloning the payload text, which is
/// what keeps its warm hit path allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The completed text.
    pub text: String,
    /// Tokens consumed by this call.
    pub usage: Usage,
}

impl Completion {
    /// Wraps a completion for the trait's shared return shape.
    pub fn shared(text: String, usage: Usage) -> Arc<Completion> {
        Arc::new(Completion { text, usage })
    }
}

/// A text-in / text-out language model.
///
/// The UniDM pipeline, the FM baseline and the fine-tuning harness are all
/// written against this trait; [`crate::MockLlm`] is the offline
/// implementation. The trait is object-safe so pipelines can hold
/// `&dyn LanguageModel`.
///
/// Implementations must be `Send + Sync`: the batch execution engine fans
/// pipeline runs out across worker threads that share one model reference,
/// so any interior mutability (usage counters, caches) must be
/// thread-safe. Per-call token cost is reported inside each
/// [`Completion`]; the cumulative [`LanguageModel::usage`] counter is a
/// convenience for whole-process accounting and must never be diffed to
/// attribute cost to an individual run (concurrent runs interleave).
pub trait LanguageModel: Send + Sync {
    /// A human-readable model name ("GPT-3-175B").
    fn name(&self) -> &str;

    /// Completes `prompt`.
    ///
    /// The completion is returned behind an [`Arc`] so caching layers can
    /// hand the same payload to any number of callers without cloning it;
    /// producing models wrap each fresh completion once at creation.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::EmptyPrompt`] for an empty prompt and
    /// [`LlmError::PromptTooLong`] when the prompt exceeds the context
    /// window.
    fn complete(&self, prompt: &str) -> Result<Arc<Completion>, LlmError>;

    /// Cumulative token usage since construction or the last reset.
    fn usage(&self) -> Usage;

    /// Resets the cumulative usage counter.
    fn reset_usage(&self);

    /// The model's context window in tokens. Callers should keep prompts
    /// under this bound; [`LanguageModel::complete`] rejects longer ones.
    fn context_window(&self) -> usize {
        usize::MAX
    }

    /// The serving-latency shape of this endpoint, used by event-driven
    /// schedulers (`unidm::dispatch`) to place completion deadlines when no
    /// fault plan supplies latencies. Pass-through layers (meters, caches,
    /// backends) should forward their inner model's profile; producing
    /// models override it (see [`crate::LlmProfile::latency`]). The default
    /// is a generic hosted-endpoint shape.
    fn latency_profile(&self) -> LatencyProfile {
        LatencyProfile::default()
    }
}

/// A pass-through model wrapper that meters the tokens of every completion
/// it forwards.
///
/// This is how the pipeline attributes cost to a single run without
/// touching the underlying model's global counter: wrap the shared model in
/// a fresh `UsageMeter` for the run, make every call through the meter, and
/// read [`UsageMeter::used`] at the end. Sound under concurrency because
/// the meter is private to the run while the inner model is shared.
///
/// # Examples
///
/// ```
/// use unidm_llm::{LanguageModel, LlmProfile, MockLlm, UsageMeter};
/// use unidm_world::World;
///
/// # fn main() -> Result<(), unidm_llm::LlmError> {
/// let world = World::generate(42);
/// let shared = MockLlm::new(&world, LlmProfile::gpt3_175b(), 1);
/// shared.complete("traffic from another tenant")?;
///
/// let meter = UsageMeter::new(&shared);
/// let reply = meter.complete("The capital of Denmark is __.")?;
/// // The meter saw exactly this run's tokens, not the shared counter.
/// assert_eq!(meter.used(), reply.usage);
/// assert!(shared.usage().total() > meter.used().total());
/// # Ok(())
/// # }
/// ```
pub struct UsageMeter<'a> {
    inner: &'a dyn LanguageModel,
    used: Mutex<Usage>,
}

impl<'a> UsageMeter<'a> {
    /// Wraps `inner`, starting from zero used tokens.
    pub fn new(inner: &'a dyn LanguageModel) -> Self {
        UsageMeter {
            inner,
            used: Mutex::new(Usage::default()),
        }
    }

    /// Tokens consumed through this meter so far.
    pub fn used(&self) -> Usage {
        *self.used.lock().expect("usage lock poisoned")
    }
}

impl std::fmt::Debug for UsageMeter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UsageMeter")
            .field("inner", &self.inner.name())
            .field("used", &self.used())
            .finish()
    }
}

impl LanguageModel for UsageMeter<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, prompt: &str) -> Result<Arc<Completion>, LlmError> {
        let completion = self.inner.complete(prompt)?;
        self.used
            .lock()
            .expect("usage lock poisoned")
            .add(completion.usage);
        Ok(completion)
    }

    fn usage(&self) -> Usage {
        self.used()
    }

    fn reset_usage(&self) {
        *self.used.lock().expect("usage lock poisoned") = Usage::default();
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }

    fn latency_profile(&self) -> LatencyProfile {
        self.inner.latency_profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_totals() {
        let mut u = Usage {
            prompt_tokens: 10,
            completion_tokens: 5,
        };
        assert_eq!(u.total(), 15);
        u.add(Usage {
            prompt_tokens: 1,
            completion_tokens: 2,
        });
        assert_eq!(u.prompt_tokens, 11);
        assert_eq!(u.completion_tokens, 7);
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes(_m: &dyn LanguageModel) {}
    }

    #[test]
    fn models_are_send_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn LanguageModel>();
        assert_send_sync::<UsageMeter<'_>>();
    }

    struct FixedModel;

    impl LanguageModel for FixedModel {
        fn name(&self) -> &str {
            "fixed"
        }

        fn complete(&self, _prompt: &str) -> Result<Arc<Completion>, LlmError> {
            Ok(Completion::shared(
                "ok".into(),
                Usage {
                    prompt_tokens: 7,
                    completion_tokens: 3,
                },
            ))
        }

        fn usage(&self) -> Usage {
            Usage::default()
        }

        fn reset_usage(&self) {}
    }

    #[test]
    fn usage_meter_accounts_locally() {
        let model = FixedModel;
        let meter = UsageMeter::new(&model);
        assert_eq!(meter.used(), Usage::default());
        meter.complete("a").unwrap();
        meter.complete("b").unwrap();
        assert_eq!(
            meter.used(),
            Usage {
                prompt_tokens: 14,
                completion_tokens: 6
            }
        );
        // The meter is its own counter: the inner model's global usage is
        // untouched, and resetting the meter does not reach through.
        assert_eq!(model.usage(), Usage::default());
        meter.reset_usage();
        assert_eq!(meter.used(), Usage::default());
    }

    #[test]
    fn usage_meter_forwards_identity() {
        let model = FixedModel;
        let meter = UsageMeter::new(&model);
        assert_eq!(meter.name(), "fixed");
        assert_eq!(meter.context_window(), usize::MAX);
        assert_eq!(meter.complete("x").unwrap().text, "ok");
    }
}
