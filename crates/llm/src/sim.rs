//! `SimBackend`: a deterministic fault-injecting simulated endpoint.
//!
//! The resilient backend layer (`unidm::backend`) exists to survive the
//! failure modes of hosted LLM endpoints — timeouts, 429 rate limits,
//! transient 5xx errors, latency spikes — but this repository is offline.
//! [`SimBackend`] closes the gap: it wraps any inner [`LanguageModel`] and
//! injects a **seeded schedule** of faults in front of it, over a
//! [`Clock`] (normally a [`crate::VirtualClock`], so multi-second stalls
//! replay in microseconds).
//!
//! # Determinism
//!
//! Every injection decision is a pure function of `(plan seed, prompt,
//! attempt index)` via [`crate::Dice`] — there is no hidden RNG state and
//! no dependence on time or thread scheduling. Each prompt owns an attempt
//! counter: attempt `i` of a prompt always yields the same outcome, and
//! consecutive injected faults per prompt are capped by
//! [`FaultPlan::max_consecutive_faults`], so a retry loop with at least
//! that budget always completes.
//!
//! Because the outcome *sequence* per prompt is fixed, aggregate statistics
//! are scheduling-independent: however a batch interleaves its calls, the
//! total number of injected faults (and therefore retries upstream) for a
//! given set of logical calls is identical — which is what lets the
//! fault-injection test suite assert bit-identical answers *and*
//! reproducible retry counts across serial, parallel and re-run executions.
//!
//! ```
//! use unidm_llm::{FaultPlan, LanguageModel, LlmProfile, MockLlm, SimBackend};
//! use unidm_world::World;
//!
//! let world = World::generate(42);
//! let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 1);
//! let sim = SimBackend::new(&llm, FaultPlan::heavy(7));
//! // Attempts fail per the seeded schedule; retrying eventually yields the
//! // inner model's (deterministic) completion.
//! let mut reply = sim.complete("The capital of Denmark is __.");
//! while reply.is_err() {
//!     reply = sim.complete("The capital of Denmark is __.");
//! }
//! assert_eq!(reply.unwrap().text, llm.complete("The capital of Denmark is __.").unwrap().text);
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::clock::{Clock, VirtualClock};
use crate::model::{Completion, LanguageModel, Usage};
use crate::{Dice, LlmError};

/// A seeded schedule of injected faults.
///
/// Rates are in permille (parts per thousand) of attempts, drawn
/// independently per `(prompt, attempt)`; integer fields keep the plan
/// `Eq`/`Hash` and the schedule exactly reproducible. The same plan over
/// the same prompts always injects the same faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed of the injection schedule. Two plans differing only in seed
    /// inject different (but individually reproducible) fault sequences.
    pub seed: u64,
    /// Permille of attempts that time out.
    pub timeout_permille: u32,
    /// Permille of attempts rejected with a 429-style rate limit.
    pub rate_limit_permille: u32,
    /// Permille of attempts failing with a transient 5xx-style error.
    pub transient_permille: u32,
    /// Permille of attempts that succeed slowly (latency spike).
    pub slow_permille: u32,
    /// Hard cap on consecutive injected faults per prompt: after this many
    /// failures in a row the next attempt is forced clean, so any retry
    /// budget of at least this size completes. Must be at least 1.
    pub max_consecutive_faults: u32,
    /// Virtual latency of a clean (or rejected) attempt, in microseconds.
    pub base_latency_us: u64,
    /// Virtual latency of a slow successful attempt, in microseconds.
    pub slow_latency_us: u64,
    /// Virtual time an attempt runs before timing out, in microseconds.
    pub timeout_latency_us: u64,
    /// The `Retry-After` hint attached to injected rate limits, in
    /// microseconds.
    pub retry_after_us: u64,
}

impl FaultPlan {
    /// A fault-free plan: every attempt succeeds at base latency. Useful
    /// as a latency-only simulation and as the baseline in tests.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            timeout_permille: 0,
            rate_limit_permille: 0,
            transient_permille: 0,
            slow_permille: 0,
            max_consecutive_faults: 1,
            base_latency_us: 50_000,
            slow_latency_us: 2_000_000,
            timeout_latency_us: 1_000_000,
            retry_after_us: 250_000,
        }
    }

    /// Light degradation: ~7% of attempts fault, short failure runs.
    pub fn light(seed: u64) -> Self {
        FaultPlan {
            timeout_permille: 20,
            rate_limit_permille: 25,
            transient_permille: 25,
            slow_permille: 40,
            max_consecutive_faults: 3,
            ..FaultPlan::none(seed)
        }
    }

    /// Moderate degradation: ~25% of attempts fault.
    pub fn moderate(seed: u64) -> Self {
        FaultPlan {
            timeout_permille: 60,
            rate_limit_permille: 100,
            transient_permille: 90,
            slow_permille: 80,
            max_consecutive_faults: 4,
            ..FaultPlan::none(seed)
        }
    }

    /// Heavy degradation: ~45% of attempts fault, long failure runs — the
    /// regime that exercises breaker trips.
    pub fn heavy(seed: u64) -> Self {
        FaultPlan {
            timeout_permille: 120,
            rate_limit_permille: 180,
            transient_permille: 150,
            slow_permille: 100,
            max_consecutive_faults: 6,
            ..FaultPlan::none(seed)
        }
    }

    /// Every attempt faults (cycling through the fault kinds) until the
    /// consecutive cap forces a success — the worst case a retry budget
    /// must absorb.
    pub fn always_faulty(seed: u64, max_consecutive_faults: u32) -> Self {
        FaultPlan {
            timeout_permille: 333,
            rate_limit_permille: 333,
            transient_permille: 334,
            slow_permille: 0,
            max_consecutive_faults: max_consecutive_faults.max(1),
            ..FaultPlan::none(seed)
        }
    }

    /// A latency-only heavy-tail plan: every attempt succeeds, but 3% of
    /// them stall at [`FaultPlan::slow_latency_us`] (2s against a 50ms
    /// base — a 40× tail). No errors are ever injected, so retry budgets
    /// and attempt counts stay trivially exact; this is the regime that
    /// isolates what request hedging buys.
    pub fn heavy_tail(seed: u64) -> Self {
        FaultPlan {
            slow_permille: 30,
            ..FaultPlan::none(seed)
        }
    }

    /// The plan named by `name` (`none`, `light`, `moderate`, `heavy`,
    /// `heavy-tail`), for CLI flags.
    pub fn named(name: &str, seed: u64) -> Option<Self> {
        match name {
            "none" => Some(FaultPlan::none(seed)),
            "light" => Some(FaultPlan::light(seed)),
            "moderate" => Some(FaultPlan::moderate(seed)),
            "heavy" => Some(FaultPlan::heavy(seed)),
            "heavy-tail" => Some(FaultPlan::heavy_tail(seed)),
            _ => None,
        }
    }
}

/// What the schedule injected for one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Clean { forced: bool },
    Slow,
    Timeout,
    RateLimited,
    Transient,
}

/// Counters of everything a [`SimBackend`] injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Attempts that reached the simulated endpoint.
    pub attempts: u64,
    /// Attempts that succeeded at base latency.
    pub clean: u64,
    /// Attempts that succeeded slowly.
    pub slow: u64,
    /// Injected timeouts.
    pub timeouts: u64,
    /// Injected 429-style rate limits.
    pub rate_limits: u64,
    /// Injected transient 5xx-style errors.
    pub transients: u64,
    /// Successes forced by the consecutive-fault cap.
    pub forced_successes: u64,
}

impl FaultStats {
    /// Total injected faults (timeouts + rate limits + transients).
    pub fn injected(&self) -> u64 {
        self.timeouts + self.rate_limits + self.transients
    }

    /// Folds `other` into `self` — exact integer addition on every field,
    /// commutative, so per-endpoint injectors aggregate like backend
    /// stats.
    pub fn merge(&mut self, other: &FaultStats) {
        self.attempts += other.attempts;
        self.clean += other.clean;
        self.slow += other.slow;
        self.timeouts += other.timeouts;
        self.rate_limits += other.rate_limits;
        self.transients += other.transients;
        self.forced_successes += other.forced_successes;
    }
}

/// One sampled endpoint attempt: the virtual latency it will take and the
/// result it will deliver once that latency has elapsed.
///
/// Produced by [`SimBackend::sample_attempt`], which commits a schedule
/// slot **without sleeping** — the event-driven dispatcher
/// (`unidm::dispatch`) uses this to place the attempt's completion on a
/// timer wheel at `now + latency_us` and keep hundreds of attempts in
/// flight on one thread, instead of blocking a worker per round-trip.
#[derive(Debug, Clone)]
pub struct AttemptSample {
    /// Virtual time the attempt takes, in microseconds.
    pub latency_us: u64,
    /// What the attempt delivers when it completes.
    pub result: Result<Arc<Completion>, LlmError>,
}

/// Per-prompt schedule state: the next attempt index and the current run
/// of consecutive injected faults.
#[derive(Debug, Default, Clone, Copy)]
struct PromptState {
    next_attempt: u64,
    consecutive_faults: u32,
}

/// A deterministic fault-injecting simulated endpoint over any inner
/// [`LanguageModel`].
///
/// See the [module docs](self) for the determinism contract. The backend
/// layer stacks on top of this exactly as it would on a real endpoint:
///
/// ```text
/// PromptCache → ResilientBackend (limiter/retry/breaker) → SimBackend → MockLlm
/// ```
pub struct SimBackend<'a> {
    inner: &'a dyn LanguageModel,
    plan: FaultPlan,
    dice: Dice,
    clock: Arc<dyn Clock>,
    /// Endpoint id mixed into every schedule draw. `None` preserves the
    /// historical `(seed, prompt, attempt)` keying byte-for-byte; `Some`
    /// desynchronizes replicas that share a plan (see
    /// [`SimBackend::with_endpoint`]).
    endpoint: Option<u64>,
    state: Mutex<HashMap<String, PromptState>>,
    stats: Mutex<FaultStats>,
}

impl std::fmt::Debug for SimBackend<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBackend")
            .field("inner", &self.inner.name())
            .field("plan", &self.plan)
            .field("stats", &self.stats())
            .finish()
    }
}

impl<'a> SimBackend<'a> {
    /// Wraps `inner` behind `plan`, on a fresh [`VirtualClock`].
    pub fn new(inner: &'a dyn LanguageModel, plan: FaultPlan) -> Self {
        Self::with_clock(inner, plan, Arc::new(VirtualClock::new()))
    }

    /// Wraps `inner` behind `plan` on a shared clock (so injected latency
    /// and the client's rate limiter see the same timeline).
    pub fn with_clock(
        inner: &'a dyn LanguageModel,
        plan: FaultPlan,
        clock: Arc<dyn Clock>,
    ) -> Self {
        SimBackend {
            inner,
            plan,
            dice: Dice::new(plan.seed),
            clock,
            endpoint: None,
            state: Mutex::new(HashMap::new()),
            stats: Mutex::new(FaultStats::default()),
        }
    }

    /// Tags this injector as endpoint `id` (builder-style): the id is
    /// mixed into every fault-slot draw, so two replicas sharing one
    /// [`FaultPlan`] (same seed) commit *independent* schedules instead of
    /// faulting in lockstep. Untagged backends keep the historical
    /// `(seed, prompt, attempt)` keying exactly.
    pub fn with_endpoint(mut self, id: u64) -> Self {
        self.endpoint = Some(id);
        self
    }

    /// The fault-slot tag of attempt `attempt`: endpoint-aware when
    /// tagged, the historical form otherwise.
    fn fault_tag(&self, attempt: u64) -> String {
        match self.endpoint {
            Some(id) => format!("e{id}-fault-{attempt}"),
            None => format!("fault-{attempt}"),
        }
    }

    /// The plan driving the injection schedule.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The clock injected latency is charged to.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// A snapshot of the injection counters.
    pub fn stats(&self) -> FaultStats {
        *self.stats.lock().expect("sim stats lock poisoned")
    }

    /// Decides (and commits) the outcome of the next attempt of `prompt`.
    ///
    /// The decision is made under the state lock so attempt indices are
    /// allocated exactly once; the outcome for index `i` is a pure
    /// function of `(seed, prompt, i)` and the (deterministic) run of
    /// consecutive faults before it.
    fn next_outcome(&self, prompt: &str) -> Outcome {
        let mut state = self.state.lock().expect("sim state lock poisoned");
        let entry = state.entry(prompt.to_string()).or_default();
        let attempt = entry.next_attempt;
        entry.next_attempt += 1;

        if entry.consecutive_faults >= self.plan.max_consecutive_faults {
            entry.consecutive_faults = 0;
            return Outcome::Clean { forced: true };
        }
        let roll = (self.dice.uniform(prompt, &self.fault_tag(attempt)) * 1000.0) as u32;
        let mut threshold = self.plan.timeout_permille;
        let outcome = if roll < threshold {
            Outcome::Timeout
        } else {
            threshold += self.plan.rate_limit_permille;
            if roll < threshold {
                Outcome::RateLimited
            } else {
                threshold += self.plan.transient_permille;
                if roll < threshold {
                    Outcome::Transient
                } else {
                    threshold += self.plan.slow_permille;
                    if roll < threshold {
                        Outcome::Slow
                    } else {
                        Outcome::Clean { forced: false }
                    }
                }
            }
        };
        entry.consecutive_faults = match outcome {
            Outcome::Timeout | Outcome::RateLimited | Outcome::Transient => {
                entry.consecutive_faults + 1
            }
            Outcome::Clean { .. } | Outcome::Slow => 0,
        };
        outcome
    }

    /// Commits the next attempt of `prompt` and returns what it will do —
    /// **without sleeping**.
    ///
    /// The schedule slot is consumed exactly as [`SimBackend::complete`]
    /// would consume it (the two draw from the same per-prompt attempt
    /// counter and update the same [`FaultStats`]), but injected latency is
    /// *reported* instead of charged to the clock. Blocking callers get the
    /// classic behaviour from `complete`; an event-driven caller samples
    /// here and schedules the completion at `now + latency_us` itself, so
    /// overlapped attempts overlap in virtual time.
    pub fn sample_attempt(&self, prompt: &str) -> AttemptSample {
        let outcome = self.next_outcome(prompt);
        let mut stats = self.stats.lock().expect("sim stats lock poisoned");
        stats.attempts += 1;
        match outcome {
            Outcome::Clean { forced } => {
                stats.clean += 1;
                if forced {
                    stats.forced_successes += 1;
                }
                drop(stats);
                AttemptSample {
                    latency_us: self.plan.base_latency_us,
                    result: self.inner.complete(prompt),
                }
            }
            Outcome::Slow => {
                stats.slow += 1;
                drop(stats);
                AttemptSample {
                    latency_us: self.plan.slow_latency_us,
                    result: self.inner.complete(prompt),
                }
            }
            Outcome::Timeout => {
                stats.timeouts += 1;
                AttemptSample {
                    latency_us: self.plan.timeout_latency_us,
                    result: Err(LlmError::Timeout {
                        elapsed_us: self.plan.timeout_latency_us,
                    }),
                }
            }
            Outcome::RateLimited => {
                stats.rate_limits += 1;
                AttemptSample {
                    latency_us: self.plan.base_latency_us,
                    result: Err(LlmError::RateLimited {
                        retry_after_us: self.plan.retry_after_us,
                    }),
                }
            }
            Outcome::Transient => {
                stats.transients += 1;
                AttemptSample {
                    latency_us: self.plan.base_latency_us,
                    result: Err(LlmError::Transient {
                        status: [500u16, 502, 503][match self.endpoint {
                            Some(id) => self.dice.pick(prompt, &format!("e{id}-status"), 3),
                            None => self.dice.pick(prompt, "status", 3),
                        }],
                    }),
                }
            }
        }
    }
}

impl LanguageModel for SimBackend<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, prompt: &str) -> Result<Arc<Completion>, LlmError> {
        // The blocking path is the sampling path plus a sleep: both consume
        // the same schedule slots, so a blocking stack and the event-driven
        // dispatcher see identical outcome sequences per prompt.
        let sample = self.sample_attempt(prompt);
        self.clock.sleep_micros(sample.latency_us);
        sample.result
    }

    fn usage(&self) -> Usage {
        self.inner.usage()
    }

    fn reset_usage(&self) {
        self.inner.reset_usage();
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }

    fn latency_profile(&self) -> crate::LatencyProfile {
        self.inner.latency_profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LlmProfile, MockLlm};
    use unidm_world::World;

    fn inner() -> (World, MockLlm) {
        let world = World::generate(7);
        let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 7);
        (world, llm)
    }

    /// Drives one prompt to success, returning (injected faults, answer).
    fn run_to_success(sim: &SimBackend<'_>, prompt: &str) -> (u32, String) {
        let mut faults = 0;
        loop {
            match sim.complete(prompt) {
                Ok(c) => return (faults, c.text.clone()),
                Err(e) => {
                    assert!(e.is_transient(), "injected faults are transient: {e}");
                    faults += 1;
                }
            }
        }
    }

    #[test]
    fn fault_free_plan_is_transparent_apart_from_latency() {
        let (_, llm) = inner();
        let sim = SimBackend::new(&llm, FaultPlan::none(3));
        let direct = llm.complete("The capital of Denmark is __.").unwrap();
        let via_sim = sim.complete("The capital of Denmark is __.").unwrap();
        assert_eq!(direct, via_sim);
        let stats = sim.stats();
        assert_eq!((stats.attempts, stats.clean, stats.injected()), (1, 1, 0));
        assert_eq!(sim.clock().now_micros(), sim.plan().base_latency_us);
    }

    #[test]
    fn schedule_is_reproducible_per_seed_and_differs_across_seeds() {
        let (_, llm) = inner();
        let prompts: Vec<String> = (0..30)
            .map(|i| format!("deterministic prompt {i}"))
            .collect();
        let trace = |seed: u64| -> (Vec<u32>, FaultStats) {
            let sim = SimBackend::new(&llm, FaultPlan::heavy(seed));
            let faults = prompts.iter().map(|p| run_to_success(&sim, p).0).collect();
            (faults, sim.stats())
        };
        let (a, a_stats) = trace(1);
        let (b, b_stats) = trace(1);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a_stats, b_stats);
        let (c, _) = trace(2);
        assert_ne!(a, c, "different seeds inject different schedules");
    }

    #[test]
    fn answers_survive_every_fault_schedule() {
        let (_, llm) = inner();
        let prompt = "The capital of Denmark is __.";
        let truth = llm.complete(prompt).unwrap().text.clone();
        for plan in [
            FaultPlan::light(9),
            FaultPlan::moderate(9),
            FaultPlan::heavy(9),
            FaultPlan::always_faulty(9, 4),
        ] {
            let sim = SimBackend::new(&llm, plan);
            let (_, answer) = run_to_success(&sim, prompt);
            assert_eq!(answer, truth, "plan {plan:?} must not change answers");
        }
    }

    #[test]
    fn consecutive_faults_are_capped() {
        let (_, llm) = inner();
        let sim = SimBackend::new(&llm, FaultPlan::always_faulty(11, 3));
        for i in 0..20 {
            let (faults, _) = run_to_success(&sim, &format!("prompt {i}"));
            assert!(faults <= 3, "prompt {i} injected {faults} > cap");
        }
        assert!(sim.stats().forced_successes > 0, "cap must have engaged");
    }

    #[test]
    fn aggregate_attempts_are_scheduling_independent() {
        // Two logical calls per prompt, issued in different interleavings,
        // must consume the same total number of schedule slots.
        let (_, llm) = inner();
        let prompts: Vec<String> = (0..10).map(|i| format!("shared prompt {i}")).collect();
        let total_attempts = |order: &[usize]| -> u64 {
            let sim = SimBackend::new(&llm, FaultPlan::heavy(5));
            for &i in order {
                run_to_success(&sim, &prompts[i]);
            }
            sim.stats().attempts
        };
        let forward: Vec<usize> = (0..10).chain(0..10).collect();
        let interleaved: Vec<usize> = (0..10).flat_map(|i| [i, i]).collect();
        assert_eq!(total_attempts(&forward), total_attempts(&interleaved));
    }

    #[test]
    fn permanent_inner_errors_pass_through() {
        let (_, llm) = inner();
        // A fault-free schedule: the empty prompt reaches the inner model
        // and its permanent error surfaces unchanged.
        let sim = SimBackend::new(&llm, FaultPlan::none(1));
        assert_eq!(sim.complete("  "), Err(LlmError::EmptyPrompt));
    }

    #[test]
    fn sampling_and_blocking_draw_the_same_schedule() {
        // Interleaving sample_attempt and complete over one prompt must
        // walk a single attempt sequence: outcome i is the same whichever
        // API consumes slot i.
        let (_, llm) = inner();
        let prompt = "shared schedule prompt";
        let via_sample: Vec<(u64, bool)> = {
            let sim = SimBackend::new(&llm, FaultPlan::heavy(5));
            (0..12)
                .map(|_| {
                    let s = sim.sample_attempt(prompt);
                    (s.latency_us, s.result.is_ok())
                })
                .collect()
        };
        let via_complete: Vec<(u64, bool)> = {
            let sim = SimBackend::new(&llm, FaultPlan::heavy(5));
            (0..12)
                .map(|_| {
                    let before = sim.clock().now_micros();
                    let ok = sim.complete(prompt).is_ok();
                    (sim.clock().now_micros() - before, ok)
                })
                .collect()
        };
        assert_eq!(via_sample, via_complete);
    }

    #[test]
    fn sampling_does_not_touch_the_clock() {
        let (_, llm) = inner();
        let sim = SimBackend::new(&llm, FaultPlan::heavy_tail(7));
        for i in 0..20 {
            let s = sim.sample_attempt(&format!("prompt {i}"));
            assert!(s.result.is_ok(), "heavy-tail injects latency, not errors");
        }
        assert_eq!(sim.clock().now_micros(), 0, "sampling must not sleep");
        assert_eq!(sim.stats().attempts, 20);
        assert_eq!(sim.stats().injected(), 0);
    }

    #[test]
    fn heavy_tail_is_latency_only_with_a_real_tail() {
        let (_, llm) = inner();
        let plan = FaultPlan::heavy_tail(42);
        assert_eq!(
            plan.timeout_permille + plan.rate_limit_permille + plan.transient_permille,
            0
        );
        let sim = SimBackend::new(&llm, plan);
        let latencies: Vec<u64> = (0..500)
            .map(|i| sim.sample_attempt(&format!("tail probe {i}")).latency_us)
            .collect();
        let slow = latencies
            .iter()
            .filter(|&&l| l == plan.slow_latency_us)
            .count();
        assert!(slow > 0, "the tail must occur at this scale");
        assert!(slow < 50, "the tail must stay a tail: {slow}/500");
        assert!(latencies
            .iter()
            .all(|&l| l == plan.base_latency_us || l == plan.slow_latency_us));
    }

    #[test]
    fn endpoint_tags_desynchronize_replica_schedules() {
        // Two replicas sharing one plan (same seed) must not fault in
        // lockstep: the endpoint id is mixed into the slot commitment.
        let (_, llm) = inner();
        let prompts: Vec<String> = (0..40).map(|i| format!("replica prompt {i}")).collect();
        let trace = |endpoint: Option<u64>| -> Vec<u32> {
            let mut sim = SimBackend::new(&llm, FaultPlan::heavy(5));
            if let Some(id) = endpoint {
                sim = sim.with_endpoint(id);
            }
            prompts.iter().map(|p| run_to_success(&sim, p).0).collect()
        };
        let untagged = trace(None);
        let e0 = trace(Some(0));
        let e1 = trace(Some(1));
        assert_ne!(e0, e1, "replicas 0 and 1 must draw distinct schedules");
        assert_ne!(untagged, e0, "tagging changes the schedule");
        // Same endpoint id remains exactly reproducible.
        assert_eq!(e1, trace(Some(1)));
    }

    #[test]
    fn fault_stats_merge_is_commutative_and_exact() {
        let (_, llm) = inner();
        let stats_for = |seed: u64| {
            let sim = SimBackend::new(&llm, FaultPlan::heavy(seed));
            for i in 0..15 {
                run_to_success(&sim, &format!("merge probe {seed}-{i}"));
            }
            sim.stats()
        };
        let a = stats_for(7);
        let b = stats_for(1337);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.attempts, a.attempts + b.attempts);
        assert_eq!(ab.injected(), a.injected() + b.injected());
        let mut id = a;
        id.merge(&FaultStats::default());
        assert_eq!(id, a, "merging a default is the identity");
    }

    #[test]
    fn named_plans_resolve() {
        assert_eq!(FaultPlan::named("none", 1), Some(FaultPlan::none(1)));
        assert_eq!(FaultPlan::named("light", 2), Some(FaultPlan::light(2)));
        assert_eq!(
            FaultPlan::named("moderate", 3),
            Some(FaultPlan::moderate(3))
        );
        assert_eq!(FaultPlan::named("heavy", 4), Some(FaultPlan::heavy(4)));
        assert_eq!(
            FaultPlan::named("heavy-tail", 6),
            Some(FaultPlan::heavy_tail(6))
        );
        assert_eq!(FaultPlan::named("total-chaos", 5), None);
    }
}
