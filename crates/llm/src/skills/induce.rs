//! By-example transformation induction: the model's in-context program
//! synthesis.
//!
//! Given `(input, output)` demonstrations, the skill searches a small
//! program space — token rearrangement with literal glue, case mapping,
//! dictionary decoding (months, romans), numeric scaling, and knowledge-base
//! relations — for a program consistent with *all* examples, then applies it
//! to the query. Knowledge-base relations are where the simulated LLM beats
//! a pure search engine like TDE: `Germany → GER` has no syntactic program,
//! only a semantic one.

use unidm_world::Predicate;

use crate::kb::KnowledgeBase;

/// English month names (the dictionary knowledge every LLM has).
const MONTHS: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];
const ROMANS: [&str; 10] = ["I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X"];

/// KB relations worth probing during induction.
const KB_RELATIONS: &[Predicate] = &[
    Predicate::CountryIso,
    Predicate::CountryContinent,
    Predicate::CountryTimezone,
    Predicate::CityCountry,
    Predicate::CityTimezone,
    Predicate::BrandManufacturer,
    Predicate::ProductManufacturer,
];

/// One piece of a synthesized output.
#[allow(missing_docs)] // field names are self-describing slice coordinates
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Piece {
    /// Literal text.
    Lit(String),
    /// The whole `idx`-th token.
    Token(usize),
    /// A fixed character slice of the `idx`-th token.
    Slice {
        idx: usize,
        start: usize,
        len: usize,
    },
    /// A fixed slice parsed as a number and reprinted (strips zeros).
    SliceNum {
        idx: usize,
        start: usize,
        len: usize,
    },
    /// First character of the token (initials).
    FirstChar(usize),
    /// A fixed slice decoded as a month number → full month name.
    MonthName {
        idx: usize,
        start: usize,
        len: usize,
    },
    /// A fixed slice decoded as a month number → 3-letter abbreviation.
    MonthAbbr {
        idx: usize,
        start: usize,
        len: usize,
    },
    /// The token parsed as a number and multiplied by `factor`.
    NumScale { idx: usize, factor: i64 },
}

/// A transformation program synthesized from examples.
#[derive(Debug, Clone, PartialEq)]
pub enum Program {
    /// Token rearrangement with literal glue.
    Rearrange(Vec<Piece>),
    /// Whole-string uppercase.
    Upper,
    /// Whole-string lowercase.
    Lower,
    /// Title case per word.
    Title,
    /// Dictionary: month number → name.
    MonthFromNumber,
    /// Dictionary: roman numeral → number.
    RomanToNumber,
    /// Knowledge-base relation, forward direction.
    KbForward(Predicate),
    /// Knowledge-base relation, reverse direction.
    KbReverse(Predicate),
}

impl Program {
    /// Applies the program to `input`; `None` when it does not apply (e.g. a
    /// knowledge gap or missing token).
    pub fn apply(&self, input: &str, kb: &KnowledgeBase) -> Option<String> {
        match self {
            Program::Upper => Some(input.to_uppercase()),
            Program::Lower => Some(input.to_lowercase()),
            Program::Title => Some(title_case(input)),
            Program::MonthFromNumber => {
                let m: usize = input.trim().parse().ok()?;
                (1..=12).contains(&m).then(|| MONTHS[m - 1].to_string())
            }
            Program::RomanToNumber => ROMANS
                .iter()
                .position(|r| r.eq_ignore_ascii_case(input.trim()))
                .map(|i| (i + 1).to_string()),
            Program::KbForward(p) => kb.lookup(input, *p).map(str::to_string),
            Program::KbReverse(p) => kb.lookup_reverse(input, *p).map(str::to_string),
            Program::Rearrange(pieces) => {
                let tokens = tokens_of(input);
                let mut out = String::new();
                for piece in pieces {
                    out.push_str(&apply_piece(piece, &tokens)?);
                }
                Some(out)
            }
        }
    }
}

fn title_case(s: &str) -> String {
    s.split_whitespace()
        .map(|w| {
            let mut cs = w.chars();
            match cs.next() {
                Some(c) => c.to_uppercase().collect::<String>() + &cs.as_str().to_lowercase(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn tokens_of(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        if c.is_alphanumeric() {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn slice(token: &str, start: usize, len: usize) -> Option<&str> {
    // Tokens are ASCII-alnum by construction, so byte slicing is safe here;
    // bail out defensively otherwise.
    if !token.is_ascii() {
        return None;
    }
    token.get(start..start + len)
}

fn apply_piece(piece: &Piece, tokens: &[String]) -> Option<String> {
    match piece {
        Piece::Lit(s) => Some(s.clone()),
        Piece::Token(i) => tokens.get(*i).cloned(),
        Piece::Slice { idx, start, len } => {
            slice(tokens.get(*idx)?, *start, *len).map(str::to_string)
        }
        Piece::SliceNum { idx, start, len } => {
            let s = slice(tokens.get(*idx)?, *start, *len)?;
            s.parse::<i64>().ok().map(|n| n.to_string())
        }
        Piece::FirstChar(i) => tokens.get(*i)?.chars().next().map(|c| c.to_string()),
        Piece::MonthName { idx, start, len } => {
            let m: usize = slice(tokens.get(*idx)?, *start, *len)?.parse().ok()?;
            (1..=12).contains(&m).then(|| MONTHS[m - 1].to_string())
        }
        Piece::MonthAbbr { idx, start, len } => {
            let m: usize = slice(tokens.get(*idx)?, *start, *len)?.parse().ok()?;
            (1..=12)
                .contains(&m)
                .then(|| MONTHS[m - 1][0..3].to_string())
        }
        Piece::NumScale { idx, factor } => {
            let n: i64 = tokens.get(*idx)?.parse().ok()?;
            Some((n * factor).to_string())
        }
    }
}

/// Synthesizes a program consistent with every example.
///
/// Whole-string programs (case, dictionaries, KB relations) are tried first;
/// otherwise a bounded DFS aligns the first example's output against its
/// input tokens and surviving candidates are verified on the rest.
pub fn induce(examples: &[(String, String)], kb: &KnowledgeBase) -> Option<Program> {
    if examples.is_empty() {
        return None;
    }
    let whole: &[Program] = &[
        Program::Upper,
        Program::Lower,
        Program::Title,
        Program::MonthFromNumber,
        Program::RomanToNumber,
    ];
    for prog in whole {
        if verifies(prog, examples, kb) {
            return Some(prog.clone());
        }
    }
    for &p in KB_RELATIONS {
        let fwd = Program::KbForward(p);
        if verifies(&fwd, examples, kb) {
            return Some(fwd);
        }
        let rev = Program::KbReverse(p);
        if verifies(&rev, examples, kb) {
            return Some(rev);
        }
    }
    // Numeric scaling ("5 km" → "5000 m") needs the factor from the data.
    if let Some(prog) = induce_scale(examples) {
        if verifies(&prog, examples, kb) {
            return Some(prog);
        }
    }
    // Token rearrangement via bounded DFS on the first example.
    let (input, output) = &examples[0];
    let tokens = tokens_of(input);
    let mut budget = 50_000usize;
    let mut pieces = Vec::new();
    let mut found = Vec::new();
    dfs(output, 0, &tokens, &mut pieces, &mut found, &mut budget);
    for candidate in found {
        // A program with no input dependence is a constant, not a
        // transformation; an LLM asked to generalise would not emit it.
        if candidate.iter().all(|p| matches!(p, Piece::Lit(_))) {
            continue;
        }
        let prog = Program::Rearrange(candidate);
        if verifies(&prog, examples, kb) {
            return Some(prog);
        }
    }
    None
}

fn verifies(prog: &Program, examples: &[(String, String)], kb: &KnowledgeBase) -> bool {
    examples
        .iter()
        .all(|(i, o)| prog.apply(i, kb).as_deref() == Some(o.as_str()))
}

fn induce_scale(examples: &[(String, String)]) -> Option<Program> {
    let (i0, o0) = &examples[0];
    let ti = tokens_of(i0);
    let to = tokens_of(o0);
    let a: i64 = ti.first()?.parse().ok()?;
    let b: i64 = to.first()?.parse().ok()?;
    if a == 0 || b % a != 0 {
        return None;
    }
    let factor = b / a;
    let mut pieces = vec![Piece::NumScale { idx: 0, factor }];
    let rest = o0.strip_prefix(&to[0])?;
    if !rest.is_empty() {
        pieces.push(Piece::Lit(rest.to_string()));
    }
    Some(Program::Rearrange(pieces))
}

/// Depth-first alignment of `output[pos..]` against the input tokens.
/// Collects up to a handful of complete decompositions.
fn dfs(
    output: &str,
    pos: usize,
    tokens: &[String],
    pieces: &mut Vec<Piece>,
    found: &mut Vec<Vec<Piece>>,
    budget: &mut usize,
) {
    if *budget == 0 || found.len() >= 64 {
        return;
    }
    *budget -= 1;
    if pos >= output.len() {
        found.push(pieces.clone());
        return;
    }
    let rest = &output[pos..];

    // Candidate: whole token match (longest tokens first).
    let mut idxs: Vec<usize> = (0..tokens.len()).collect();
    idxs.sort_by_key(|&i| std::cmp::Reverse(tokens[i].len()));
    for &i in &idxs {
        let t = &tokens[i];
        if t.len() >= 2 && rest.starts_with(t.as_str()) {
            pieces.push(Piece::Token(i));
            dfs(output, pos + t.len(), tokens, pieces, found, budget);
            pieces.pop();
        }
    }
    // Candidate: fixed slices of tokens (len >= 2) matching the rest.
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ascii() || t.len() < 2 {
            continue;
        }
        for start in 0..t.len() {
            for len in (2..=(t.len() - start).min(8)).rev() {
                let Some(s) = slice(t, start, len) else {
                    continue;
                };
                if rest.starts_with(s) && s.len() != t.len() {
                    pieces.push(Piece::Slice { idx: i, start, len });
                    dfs(output, pos + len, tokens, pieces, found, budget);
                    pieces.pop();
                }
                // Numeric re-print of the slice ("05" → "5"). Offered even
                // when it prints identically to the raw slice, because a
                // later example may need the zero-stripping variant.
                if let Ok(n) = s.parse::<i64>() {
                    let printed = n.to_string();
                    // Runs of zeros printing as a bare "0" are degenerate.
                    let degenerate = printed == "0" && len > 1;
                    if !degenerate && rest.starts_with(&printed) {
                        pieces.push(Piece::SliceNum { idx: i, start, len });
                        dfs(output, pos + printed.len(), tokens, pieces, found, budget);
                        pieces.pop();
                    }
                }
                // Month decodings of two-digit slices.
                if len == 2 {
                    if let Ok(m) = s.parse::<usize>() {
                        if (1..=12).contains(&m) {
                            let name = MONTHS[m - 1];
                            if rest.starts_with(name) {
                                pieces.push(Piece::MonthName { idx: i, start, len });
                                dfs(output, pos + name.len(), tokens, pieces, found, budget);
                                pieces.pop();
                            }
                            let abbr = &name[0..3];
                            if rest.starts_with(abbr) {
                                pieces.push(Piece::MonthAbbr { idx: i, start, len });
                                dfs(output, pos + 3, tokens, pieces, found, budget);
                                pieces.pop();
                            }
                        }
                    }
                }
            }
        }
    }
    // Candidate: first character of a token (initials).
    for (i, t) in tokens.iter().enumerate() {
        if let Some(c) = t.chars().next() {
            if rest.starts_with(c) {
                pieces.push(Piece::FirstChar(i));
                dfs(output, pos + c.len_utf8(), tokens, pieces, found, budget);
                pieces.pop();
            }
        }
    }
    // Candidate: one literal character (last resort keeps programs small).
    if let Some(c) = rest.chars().next() {
        if !c.is_alphanumeric() || tokens.iter().all(|t| !t.contains(c)) {
            match pieces.last_mut() {
                Some(Piece::Lit(s)) => {
                    s.push(c);
                    dfs(output, pos + c.len_utf8(), tokens, pieces, found, budget);
                    if let Some(Piece::Lit(s)) = pieces.last_mut() {
                        s.pop();
                    }
                }
                _ => {
                    pieces.push(Piece::Lit(c.to_string()));
                    dfs(output, pos + c.len_utf8(), tokens, pieces, found, budget);
                    pieces.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_world::World;

    fn kb() -> KnowledgeBase {
        KnowledgeBase::from_world(&World::generate(7), 1.0, 1)
    }

    fn ex(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn induces_date_reorder() {
        let kb = kb();
        let prog = induce(
            &ex(&[("2021-03-15", "03/15/2021"), ("1999-12-01", "12/01/1999")]),
            &kb,
        )
        .expect("inducible");
        assert_eq!(prog.apply("2005-07-04", &kb).unwrap(), "07/04/2005");
    }

    #[test]
    fn induces_compact_date_split() {
        let kb = kb();
        let prog = induce(
            &ex(&[("20210315", "2021-03-15"), ("19991201", "1999-12-01")]),
            &kb,
        )
        .expect("inducible");
        assert_eq!(prog.apply("20050704", &kb).unwrap(), "2005-07-04");
    }

    #[test]
    fn induces_pretty_date_with_month_abbr() {
        let kb = kb();
        let prog = induce(
            &ex(&[("20210315", "Mar 15 2021"), ("19990405", "Apr 5 1999")]),
            &kb,
        )
        .expect("inducible");
        assert_eq!(prog.apply("20201103", &kb).unwrap(), "Nov 3 2020");
    }

    #[test]
    fn induces_initials() {
        let kb = kb();
        let prog = induce(
            &ex(&[("John Smith", "J. Smith"), ("Mary Jones", "M. Jones")]),
            &kb,
        )
        .expect("inducible");
        assert_eq!(prog.apply("Alan Turing", &kb).unwrap(), "A. Turing");
    }

    #[test]
    fn induces_name_swap() {
        let kb = kb();
        let prog = induce(
            &ex(&[("John Smith", "Smith, John"), ("Mary Jones", "Jones, Mary")]),
            &kb,
        )
        .expect("inducible");
        assert_eq!(prog.apply("Alan Turing", &kb).unwrap(), "Turing, Alan");
    }

    #[test]
    fn induces_case_ops() {
        let kb = kb();
        assert_eq!(
            induce(&ex(&[("abc", "ABC"), ("xy", "XY")]), &kb),
            Some(Program::Upper)
        );
        assert_eq!(
            induce(&ex(&[("hello world", "Hello World")]), &kb),
            Some(Program::Title)
        );
    }

    #[test]
    fn induces_month_dictionary() {
        let kb = kb();
        let prog = induce(&ex(&[("03", "March"), ("11", "November")]), &kb).unwrap();
        assert_eq!(prog.apply("07", &kb).unwrap(), "July");
    }

    #[test]
    fn induces_roman() {
        let kb = kb();
        let prog = induce(&ex(&[("III", "3"), ("IX", "9")]), &kb).unwrap();
        assert_eq!(prog.apply("VII", &kb).unwrap(), "7");
    }

    #[test]
    fn induces_kb_relation() {
        let kb = kb();
        let prog =
            induce(&ex(&[("Germany", "GER"), ("Italy", "ITA")]), &kb).expect("country→iso known");
        assert_eq!(prog, Program::KbForward(Predicate::CountryIso));
        assert_eq!(prog.apply("France", &kb).unwrap(), "FRA");
    }

    #[test]
    fn kb_relation_with_gap_returns_none_on_apply() {
        let empty = KnowledgeBase::empty();
        let prog = Program::KbForward(Predicate::CountryIso);
        assert_eq!(prog.apply("Germany", &empty), None);
    }

    #[test]
    fn induces_numeric_scale() {
        let kb = kb();
        let prog =
            induce(&ex(&[("5 km", "5000 m"), ("12 km", "12000 m")]), &kb).expect("scale inducible");
        assert_eq!(prog.apply("3 km", &kb).unwrap(), "3000 m");
    }

    #[test]
    fn induces_phone_paren() {
        let kb = kb();
        let prog = induce(
            &ex(&[
                ("404/262-7379", "(404) 262-7379"),
                ("212/759-5941", "(212) 759-5941"),
            ]),
            &kb,
        )
        .expect("inducible");
        assert_eq!(prog.apply("310/859-8744", &kb).unwrap(), "(310) 859-8744");
    }

    #[test]
    fn uninducible_returns_none() {
        let kb = kb();
        assert!(induce(&ex(&[("abc", "qqqqzzz91")]), &kb).is_none());
        assert!(induce(&[], &kb).is_none());
    }
}
