//! Cloze-question generation skill: answering `p_cq`.
//!
//! The model learns the claim→cloze mapping from the in-prompt
//! demonstrations. A capable model emits the canonical cloze; an incapable
//! one falls back to near-verbatim concatenation — which is exactly the
//! degradation the target-prompt-construction ablation measures.

use crate::profile::LlmProfile;
use crate::protocol::{render_cloze, render_simple, Claim};
use crate::Dice;

/// Answers `p_cq`: the cloze question for `claim`.
pub fn generate_cloze(claim: &Claim, profile: &LlmProfile, dice: &Dice) -> String {
    let follows = dice.chance(
        &format!("{}|{}", claim.query, claim.context),
        "pcq-follow",
        profile.effective_instruction(),
    );
    if follows {
        render_cloze(claim)
    } else {
        // Failed to imitate the demonstrations; produces a flat restatement.
        render_simple(claim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{claim_query_imputation, SerializedRecord, TaskKind};

    fn claim() -> Claim {
        Claim {
            task: TaskKind::Imputation,
            context: "Florence belongs to the country Italy.".to_string(),
            query: claim_query_imputation(
                &SerializedRecord::new(vec![("city".into(), "Copenhagen".into())]),
                "timezone",
            ),
        }
    }

    #[test]
    fn strong_model_emits_cloze() {
        let out = generate_cloze(&claim(), &LlmProfile::gpt4_turbo(), &Dice::new(1));
        assert!(out.contains("is __."), "got {out}");
    }

    #[test]
    fn weak_model_sometimes_flat() {
        let profile = LlmProfile::gptj_6b();
        let mut flat = 0;
        for i in 0..40 {
            let mut c = claim();
            c.context = format!("Context number {i}.");
            let out = generate_cloze(&c, &profile, &Dice::new(3));
            if out.starts_with("Task: ") {
                flat += 1;
            }
        }
        assert!(flat > 10, "weak model should often fail: {flat}/40");
    }

    #[test]
    fn deterministic() {
        let a = generate_cloze(&claim(), &LlmProfile::gpt3_175b(), &Dice::new(2));
        let b = generate_cloze(&claim(), &LlmProfile::gpt3_175b(), &Dice::new(2));
        assert_eq!(a, b);
    }
}
